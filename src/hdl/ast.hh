/**
 * @file
 * Abstract syntax tree for the hwdbg Verilog subset.
 *
 * The subset covers the synthesizable constructs used by the bug testbed
 * and by the debugging tools' generated instrumentation: modules with ANSI
 * port lists, parameters/localparams, wire/reg declarations (vectors and
 * memories), continuous assigns, always blocks (edge-triggered and
 * combinational), if/case statements, blocking and nonblocking assignments,
 * $display/$finish system tasks, and module instantiation with named port
 * connections.
 *
 * Nodes are heap-allocated and reference-counted (shared_ptr) so that the
 * instrumentation passes can share subtrees; cloneExpr()/cloneStmt() make
 * deep copies when a pass needs to rewrite a tree.
 */

#ifndef HWDBG_HDL_AST_HH
#define HWDBG_HDL_AST_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/bits.hh"

namespace hwdbg::hdl
{

/** Position of a construct in the original source text. */
struct SourceLoc
{
    std::string file;
    int line = 0;
    int col = 0;

    std::string str() const;
};

// ---------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------

enum class ExprKind
{
    Number,
    Id,
    Unary,
    Binary,
    Ternary,
    Concat,
    Repeat,
    Index,     ///< x[i]: bit select or memory element select
    Range,     ///< x[msb:lsb]: constant part select
};

enum class UnaryOp
{
    Neg,      ///< -x
    LogNot,   ///< !x
    BitNot,   ///< ~x
    RedAnd,   ///< &x
    RedOr,    ///< |x
    RedXor,   ///< ^x
};

enum class BinaryOp
{
    Add, Sub, Mul, Div, Mod,
    BitAnd, BitOr, BitXor,
    LogAnd, LogOr,
    Eq, Ne, Lt, Le, Gt, Ge,
    Shl, Shr,
};

struct Expr;
using ExprPtr = std::shared_ptr<Expr>;

struct Expr
{
    explicit Expr(ExprKind k) : kind(k) {}
    virtual ~Expr() = default;

    ExprKind kind;
    SourceLoc loc;

    /**
     * Self-determined width, filled in by the elaborator's width analysis;
     * 0 means not yet computed.
     */
    uint32_t width = 0;

    template <typename T>
    T *
    as()
    {
        return static_cast<T *>(this);
    }

    template <typename T>
    const T *
    as() const
    {
        return static_cast<const T *>(this);
    }
};

struct NumberExpr : Expr
{
    NumberExpr() : Expr(ExprKind::Number) {}

    Bits value;
    /** True when the literal carried an explicit width (e.g. 8'hff). */
    bool sized = false;
};

struct IdExpr : Expr
{
    IdExpr() : Expr(ExprKind::Id) {}

    std::string name;
    /** Signal table index filled in by sim lowering; -1 = unresolved. */
    int resolved = -1;
};

struct UnaryExpr : Expr
{
    UnaryExpr() : Expr(ExprKind::Unary) {}

    UnaryOp op = UnaryOp::BitNot;
    ExprPtr arg;
};

struct BinaryExpr : Expr
{
    BinaryExpr() : Expr(ExprKind::Binary) {}

    BinaryOp op = BinaryOp::Add;
    ExprPtr lhs;
    ExprPtr rhs;
};

struct TernaryExpr : Expr
{
    TernaryExpr() : Expr(ExprKind::Ternary) {}

    ExprPtr cond;
    ExprPtr thenExpr;
    ExprPtr elseExpr;
};

struct ConcatExpr : Expr
{
    ConcatExpr() : Expr(ExprKind::Concat) {}

    /** Parts in source order: parts[0] is the most significant. */
    std::vector<ExprPtr> parts;
};

struct RepeatExpr : Expr
{
    RepeatExpr() : Expr(ExprKind::Repeat) {}

    ExprPtr count; ///< must elaborate to a constant
    ExprPtr inner;
};

struct IndexExpr : Expr
{
    IndexExpr() : Expr(ExprKind::Index) {}

    std::string base;
    ExprPtr index;
    /** Signal table index filled in by sim lowering; -1 = unresolved. */
    int resolved = -1;
};

struct RangeExpr : Expr
{
    RangeExpr() : Expr(ExprKind::Range) {}

    std::string base;
    ExprPtr msb; ///< must elaborate to a constant
    ExprPtr lsb; ///< must elaborate to a constant
    /** Signal table index filled in by sim lowering; -1 = unresolved. */
    int resolved = -1;
    /** Constant bounds filled in by sim lowering. */
    uint32_t msbConst = 0;
    uint32_t lsbConst = 0;
};

// ---------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------

enum class StmtKind
{
    Block,
    If,
    Case,
    Assign,   ///< blocking or nonblocking procedural assignment
    Display,
    Finish,
    Null,
};

struct Stmt;
using StmtPtr = std::shared_ptr<Stmt>;

struct Stmt
{
    explicit Stmt(StmtKind k) : kind(k) {}
    virtual ~Stmt() = default;

    StmtKind kind;
    SourceLoc loc;

    /**
     * Statement coverage id assigned by sim::buildCoverageItems(); -1
     * until a coverage table is built over the enclosing design. Ids
     * are deterministic (module-traversal order), so rebuilding the
     * table over the same elaborated module reassigns identical ids.
     */
    int32_t coverId = -1;

    template <typename T>
    T *
    as()
    {
        return static_cast<T *>(this);
    }

    template <typename T>
    const T *
    as() const
    {
        return static_cast<const T *>(this);
    }
};

struct BlockStmt : Stmt
{
    BlockStmt() : Stmt(StmtKind::Block) {}

    std::vector<StmtPtr> stmts;
};

struct IfStmt : Stmt
{
    IfStmt() : Stmt(StmtKind::If) {}

    ExprPtr cond;
    StmtPtr thenStmt;
    StmtPtr elseStmt; ///< may be null
};

struct CaseItem
{
    /** Empty labels means this is the default item. */
    std::vector<ExprPtr> labels;
    StmtPtr body;
};

struct CaseStmt : Stmt
{
    CaseStmt() : Stmt(StmtKind::Case) {}

    ExprPtr selector;
    std::vector<CaseItem> items;
    bool isCasez = false;
};

struct AssignStmt : Stmt
{
    AssignStmt() : Stmt(StmtKind::Assign) {}

    ExprPtr lhs; ///< Id, Index, Range, or Concat of those
    ExprPtr rhs;
    bool nonblocking = true;
};

struct DisplayStmt : Stmt
{
    DisplayStmt() : Stmt(StmtKind::Display) {}

    std::string format;
    std::vector<ExprPtr> args;
};

struct FinishStmt : Stmt
{
    FinishStmt() : Stmt(StmtKind::Finish) {}
};

struct NullStmt : Stmt
{
    NullStmt() : Stmt(StmtKind::Null) {}
};

// ---------------------------------------------------------------------
// Module items
// ---------------------------------------------------------------------

enum class ItemKind
{
    Param,
    Net,
    ContAssign,
    Always,
    Instance,
};

enum class NetKind { Wire, Reg };
enum class PortDir { None, Input, Output };

struct Item;
using ItemPtr = std::shared_ptr<Item>;

struct Item
{
    explicit Item(ItemKind k) : kind(k) {}
    virtual ~Item() = default;

    ItemKind kind;
    SourceLoc loc;

    template <typename T>
    T *
    as()
    {
        return static_cast<T *>(this);
    }

    template <typename T>
    const T *
    as() const
    {
        return static_cast<const T *>(this);
    }
};

struct ParamItem : Item
{
    ParamItem() : Item(ItemKind::Param) {}

    std::string name;
    ExprPtr value;
    bool isLocal = false;     ///< localparam
    bool inHeader = false;    ///< declared in #(...) header
};

/** Optional [msb:lsb] vector or memory bound; exprs must be constant. */
struct AstRange
{
    ExprPtr msb;
    ExprPtr lsb;
};

struct NetItem : Item
{
    NetItem() : Item(ItemKind::Net) {}

    NetKind net = NetKind::Wire;
    PortDir dir = PortDir::None;
    std::string name;
    std::optional<AstRange> range;  ///< vector bounds
    std::optional<AstRange> array;  ///< memory bounds (regs only)
};

struct ContAssignItem : Item
{
    ContAssignItem() : Item(ItemKind::ContAssign) {}

    ExprPtr lhs;
    ExprPtr rhs;
};

enum class EdgeKind { Posedge, Negedge };

struct SensItem
{
    EdgeKind edge = EdgeKind::Posedge;
    std::string signal;
};

struct AlwaysItem : Item
{
    AlwaysItem() : Item(ItemKind::Always) {}

    /** Empty when the block is combinational (always @*). */
    std::vector<SensItem> sens;
    bool isComb = false;
    StmtPtr body;
};

struct PortConn
{
    std::string formal;
    ExprPtr actual; ///< may be null for unconnected ports
};

struct InstanceItem : Item
{
    InstanceItem() : Item(ItemKind::Instance) {}

    std::string moduleName;
    std::string instName;
    std::vector<std::pair<std::string, ExprPtr>> paramOverrides;
    std::vector<PortConn> conns;
};

// ---------------------------------------------------------------------
// Modules and designs
// ---------------------------------------------------------------------

struct Module
{
    std::string name;
    SourceLoc loc;
    /** Port names in declaration order. */
    std::vector<std::string> ports;
    std::vector<ItemPtr> items;

    /** Find the declaration of @p net_name, or nullptr. */
    NetItem *findNet(const std::string &net_name) const;
};

using ModulePtr = std::shared_ptr<Module>;

struct Design
{
    std::vector<ModulePtr> modules;

    ModulePtr findModule(const std::string &name) const;
};

// ---------------------------------------------------------------------
// Construction and traversal helpers
// ---------------------------------------------------------------------

ExprPtr mkNum(const Bits &value, bool sized = true);
ExprPtr mkNum(uint32_t width, uint64_t value);
ExprPtr mkId(const std::string &name);
ExprPtr mkUnary(UnaryOp op, ExprPtr arg);
ExprPtr mkBinary(BinaryOp op, ExprPtr lhs, ExprPtr rhs);
ExprPtr mkTernary(ExprPtr cond, ExprPtr then_e, ExprPtr else_e);

/** !(arg); short-circuits constants and double negation. */
ExprPtr mkNot(ExprPtr arg);
/** lhs && rhs with constant folding of 1'b0/1'b1 operands. */
ExprPtr mkAnd(ExprPtr lhs, ExprPtr rhs);
/** lhs || rhs with constant folding of 1'b0/1'b1 operands. */
ExprPtr mkOr(ExprPtr lhs, ExprPtr rhs);
ExprPtr mkEq(ExprPtr lhs, ExprPtr rhs);
/** The literal 1'b1 / 1'b0. */
ExprPtr mkTrue();
ExprPtr mkFalse();

/** Deep copy. */
ExprPtr cloneExpr(const ExprPtr &expr);
StmtPtr cloneStmt(const StmtPtr &stmt);
ItemPtr cloneItem(const ItemPtr &item);
ModulePtr cloneModule(const Module &mod);

/** Invoke @p fn on every identifier referenced by @p expr (incl. bases). */
void forEachIdent(const ExprPtr &expr,
                  const std::function<void(const std::string &)> &fn);

/** Rename every identifier in the tree via @p map (in place). */
void renameIdents(
    const ExprPtr &expr,
    const std::function<std::string(const std::string &)> &map);
void renameIdents(
    const StmtPtr &stmt,
    const std::function<std::string(const std::string &)> &map);

/** True if the two expressions are structurally identical. */
bool exprEquals(const ExprPtr &a, const ExprPtr &b);

/**
 * Structural equality over statements, items, modules, and designs.
 * Source locations and width annotations are ignored; everything the
 * printer is responsible for reproducing (names, operators, statement
 * shape, port order, declaration order) is compared. The fuzz
 * round-trip oracle uses these to check parse(print(d)) == d.
 */
bool stmtEquals(const StmtPtr &a, const StmtPtr &b);
bool itemEquals(const ItemPtr &a, const ItemPtr &b);
bool moduleEquals(const Module &a, const Module &b);
bool designEquals(const Design &a, const Design &b);

} // namespace hwdbg::hdl

#endif // HWDBG_HDL_AST_HH
