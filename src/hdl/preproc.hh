/**
 * @file
 * Minimal Verilog preprocessor.
 *
 * Supports `define NAME [value], `undef, `ifdef, `ifndef, `else, `endif,
 * and object-like macro substitution (`NAME). `timescale and
 * `default_nettype directives are recognized and discarded. The bug
 * testbed uses `ifdef BUG_<id> blocks to switch between buggy and fixed
 * variants of each design.
 */

#ifndef HWDBG_HDL_PREPROC_HH
#define HWDBG_HDL_PREPROC_HH

#include <map>
#include <string>

namespace hwdbg::hdl
{

/**
 * Run the preprocessor over @p source.
 *
 * @param source Raw Verilog text.
 * @param defines Externally supplied macro definitions (name -> body).
 * @param file File name used in diagnostics.
 * @return Preprocessed text with the same number of lines as the input
 *         (suppressed lines become empty) so downstream line numbers
 *         match the original source.
 */
std::string preprocess(const std::string &source,
                       const std::map<std::string, std::string> &defines,
                       const std::string &file = "<input>");

} // namespace hwdbg::hdl

#endif // HWDBG_HDL_PREPROC_HH
