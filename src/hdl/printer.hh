/**
 * @file
 * Verilog code generator.
 *
 * Pretty-prints AST nodes back to Verilog text that the hwdbg parser can
 * re-parse. The debugging tools use this to materialize their generated
 * instrumentation, both so it can be re-simulated and so the "lines of
 * generated Verilog" metric from the paper's evaluation is a real measured
 * quantity.
 */

#ifndef HWDBG_HDL_PRINTER_HH
#define HWDBG_HDL_PRINTER_HH

#include <string>

#include "hdl/ast.hh"

namespace hwdbg::hdl
{

std::string printExpr(const ExprPtr &expr);
std::string printStmt(const StmtPtr &stmt, int indent = 0);
std::string printItem(const ItemPtr &item, int indent = 1);
std::string printModule(const Module &mod);
std::string printDesign(const Design &design);

/** Count non-blank lines in a chunk of generated Verilog. */
int countCodeLines(const std::string &text);

} // namespace hwdbg::hdl

#endif // HWDBG_HDL_PRINTER_HH
