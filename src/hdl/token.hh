/**
 * @file
 * Token definitions for the hwdbg Verilog-subset lexer.
 */

#ifndef HWDBG_HDL_TOKEN_HH
#define HWDBG_HDL_TOKEN_HH

#include <string>

#include "hdl/ast.hh"

namespace hwdbg::hdl
{

enum class TokKind
{
    Eof,
    Ident,
    Number,   ///< literal text, e.g. "8'hff" or "42"
    String,   ///< decoded string body (no quotes)
    SysName,  ///< $display, $finish, ... (text includes the '$')

    // Keywords.
    KwModule, KwEndmodule, KwInput, KwOutput, KwInout,
    KwWire, KwReg, KwInteger,
    KwParameter, KwLocalparam,
    KwAssign, KwAlways, KwPosedge, KwNegedge, KwOr,
    KwBegin, KwEnd, KwIf, KwElse,
    KwCase, KwCasez, KwEndcase, KwDefault,

    // Punctuation.
    LParen, RParen, LBracket, RBracket, LBrace, RBrace,
    Semi, Colon, Comma, Dot, Hash, At, Question, Star,

    // Operators.
    Plus, Minus, Slash, Percent,
    Amp, Pipe, Caret, Tilde, Bang,
    AmpAmp, PipePipe,
    EqEq, BangEq, Lt, LtEq, Gt, GtEq,
    LtLt, GtGt,
    Assign,   ///< '='
};

struct Token
{
    TokKind kind = TokKind::Eof;
    std::string text;
    SourceLoc loc;

    bool is(TokKind k) const { return kind == k; }
};

/** Human-readable token kind name (for diagnostics). */
const char *tokKindName(TokKind kind);

} // namespace hwdbg::hdl

#endif // HWDBG_HDL_TOKEN_HH
