/**
 * @file
 * Elaboration: turn a multi-module Design into one flat Module.
 *
 * Elaboration resolves all parameters to constants, folds constant
 * expressions in declarations, and recursively inlines non-primitive
 * module instances, renaming every inner identifier to
 * "<inst>__<name>". Blackbox primitives (vendor IPs modelled by the
 * simulator: scfifo, dcfifo, altsyncram, signal_recorder) are retained as
 * instances with fully-resolved parameter values.
 *
 * The debugging tools operate on the flat module this pass produces, the
 * same way the paper's tools operate on Verilator's inlined ASTs.
 */

#ifndef HWDBG_ELAB_ELABORATE_HH
#define HWDBG_ELAB_ELABORATE_HH

#include <map>
#include <string>

#include "hdl/ast.hh"

namespace hwdbg::elab
{

/** True for blackbox IPs understood by the simulator. */
bool isPrimitive(const std::string &module_name);

/**
 * Evaluate a constant expression.
 *
 * @param expr Expression made of literals, parameters in @p env, and
 *             operators.
 * @param env Name -> value bindings (parameters).
 * @return The value; raises HdlError for non-constant expressions.
 */
Bits evalConst(const hdl::ExprPtr &expr,
               const std::map<std::string, Bits> &env);

/** Result of elaboration. */
struct ElabResult
{
    hdl::ModulePtr mod;
    /**
     * Values of every parameter/localparam encountered, keyed by the
     * flattened name (e.g. "u_sub__WR_DATA"). Tools use this to map
     * numeric values (such as FSM states) back to symbolic names.
     */
    std::map<std::string, Bits> constants;
};

/**
 * Elaborate @p top (and everything it instantiates) into a single flat
 * module. @p overrides provides top-level parameter values.
 */
ElabResult elaborate(const hdl::Design &design, const std::string &top,
                     const std::map<std::string, Bits> &overrides = {});

} // namespace hwdbg::elab

#endif // HWDBG_ELAB_ELABORATE_HH
