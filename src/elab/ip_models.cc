#include "elab/ip_models.hh"

#include <map>

namespace hwdbg::elab
{

namespace
{

std::map<std::string, IpModel> &
registry()
{
    static std::map<std::string, IpModel> models = [] {
        std::map<std::string, IpModel> out;

        IpModel scfifo;
        scfifo.name = "scfifo";
        scfifo.outputs = {"q", "empty", "full", "usedw"};
        scfifo.clockPorts = {"clock"};
        scfifo.simulatable = true;
        for (const char *output : {"q", "empty", "full", "usedw"})
            for (const char *input : {"wrreq", "rdreq", "sclr"})
                scfifo.deps.push_back(IpPortDep{output, input, false});
        scfifo.deps.push_back(IpPortDep{"q", "data", true});
        scfifo.dataPaths.push_back(
            IpDataPath{"data", "q",
                       {{"wrreq", false}, {"full", true}}});
        out[scfifo.name] = scfifo;

        IpModel dcfifo;
        dcfifo.name = "dcfifo";
        dcfifo.outputs = {"q", "rdempty", "wrfull", "wrusedw"};
        dcfifo.clockPorts = {"wrclk", "rdclk"};
        dcfifo.simulatable = true;
        for (const char *output :
             {"q", "rdempty", "wrfull", "wrusedw"})
            for (const char *input : {"wrreq", "rdreq"})
                dcfifo.deps.push_back(IpPortDep{output, input, false});
        dcfifo.deps.push_back(IpPortDep{"q", "data", true});
        dcfifo.dataPaths.push_back(
            IpDataPath{"data", "q",
                       {{"wrreq", false}, {"wrfull", true}}});
        out[dcfifo.name] = dcfifo;

        IpModel ram;
        ram.name = "altsyncram";
        ram.outputs = {"q_b"};
        ram.clockPorts = {"clock0"};
        ram.simulatable = true;
        ram.deps.push_back(IpPortDep{"q_b", "data_a", true});
        ram.deps.push_back(IpPortDep{"q_b", "wren_a", false});
        ram.deps.push_back(IpPortDep{"q_b", "address_a", false});
        ram.deps.push_back(IpPortDep{"q_b", "address_b", false});
        ram.dataPaths.push_back(
            IpDataPath{"data_a", "q_b", {{"wren_a", false}}});
        out[ram.name] = ram;

        IpModel recorder;
        recorder.name = "signal_recorder";
        recorder.clockPorts = {"clk"};
        recorder.simulatable = true;
        out[recorder.name] = recorder;

        return out;
    }();
    return models;
}

} // namespace

const IpModel *
lookupIpModel(const std::string &name)
{
    auto it = registry().find(name);
    return it == registry().end() ? nullptr : &it->second;
}

void
registerIpModel(IpModel model)
{
    registry()[model.name] = std::move(model);
}

std::vector<std::string>
registeredIpNames()
{
    std::vector<std::string> names;
    for (const auto &[name, model] : registry())
        names.push_back(name);
    return names;
}

} // namespace hwdbg::elab
