#include "elab/elaborate.hh"

#include <set>

#include "common/logging.hh"
#include "elab/ip_models.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"

namespace hwdbg::elab
{

using namespace hdl;

bool
isPrimitive(const std::string &module_name)
{
    return lookupIpModel(module_name) != nullptr;
}

Bits
evalConst(const ExprPtr &expr, const std::map<std::string, Bits> &env)
{
    if (!expr)
        fatal("missing constant expression");
    switch (expr->kind) {
      case ExprKind::Number:
        return expr->as<NumberExpr>()->value;
      case ExprKind::Id: {
        const auto &name = expr->as<IdExpr>()->name;
        auto it = env.find(name);
        if (it == env.end())
            fatal("%s: '%s' is not a constant", expr->loc.str().c_str(),
                  name.c_str());
        return it->second;
      }
      case ExprKind::Unary: {
        const auto *un = expr->as<UnaryExpr>();
        Bits arg = evalConst(un->arg, env);
        switch (un->op) {
          case UnaryOp::Neg: return arg.negate();
          case UnaryOp::LogNot: return Bits(1, arg.isZero() ? 1 : 0);
          case UnaryOp::BitNot: return arg.bitNot();
          case UnaryOp::RedAnd: return Bits(1, arg.redAnd() ? 1 : 0);
          case UnaryOp::RedOr: return Bits(1, arg.redOr() ? 1 : 0);
          case UnaryOp::RedXor: return Bits(1, arg.redXor() ? 1 : 0);
        }
        break;
      }
      case ExprKind::Binary: {
        const auto *bin = expr->as<BinaryExpr>();
        Bits lhs = evalConst(bin->lhs, env);
        Bits rhs = evalConst(bin->rhs, env);
        switch (bin->op) {
          case BinaryOp::Add: return lhs.add(rhs);
          case BinaryOp::Sub: return lhs.sub(rhs);
          case BinaryOp::Mul: return lhs.mul(rhs);
          case BinaryOp::Div: return lhs.divu(rhs);
          case BinaryOp::Mod: return lhs.modu(rhs);
          case BinaryOp::BitAnd: return lhs.bitAnd(rhs);
          case BinaryOp::BitOr: return lhs.bitOr(rhs);
          case BinaryOp::BitXor: return lhs.bitXor(rhs);
          case BinaryOp::LogAnd:
            return Bits(1, (!lhs.isZero() && !rhs.isZero()) ? 1 : 0);
          case BinaryOp::LogOr:
            return Bits(1, (!lhs.isZero() || !rhs.isZero()) ? 1 : 0);
          case BinaryOp::Eq: return Bits(1, lhs.compare(rhs) == 0 ? 1 : 0);
          case BinaryOp::Ne: return Bits(1, lhs.compare(rhs) != 0 ? 1 : 0);
          case BinaryOp::Lt: return Bits(1, lhs.compare(rhs) < 0 ? 1 : 0);
          case BinaryOp::Le: return Bits(1, lhs.compare(rhs) <= 0 ? 1 : 0);
          case BinaryOp::Gt: return Bits(1, lhs.compare(rhs) > 0 ? 1 : 0);
          case BinaryOp::Ge: return Bits(1, lhs.compare(rhs) >= 0 ? 1 : 0);
          case BinaryOp::Shl: return lhs.shl(rhs.toU64());
          case BinaryOp::Shr: return lhs.shr(rhs.toU64());
        }
        break;
      }
      case ExprKind::Ternary: {
        const auto *tern = expr->as<TernaryExpr>();
        Bits cond = evalConst(tern->cond, env);
        return evalConst(cond.isZero() ? tern->elseExpr : tern->thenExpr,
                         env);
      }
      case ExprKind::Concat: {
        const auto *cat = expr->as<ConcatExpr>();
        Bits out(0);
        bool first = true;
        for (const auto &part : cat->parts) {
            Bits val = evalConst(part, env);
            out = first ? val : out.concat(val);
            first = false;
        }
        return out;
      }
      case ExprKind::Repeat: {
        const auto *rep = expr->as<RepeatExpr>();
        uint64_t count = evalConst(rep->count, env).toU64();
        return evalConst(rep->inner, env)
            .replicate(static_cast<uint32_t>(count));
      }
      case ExprKind::Index:
      case ExprKind::Range:
        fatal("%s: bit/part selects are not constant expressions",
              expr->loc.str().c_str());
    }
    panic("evalConst: unreachable");
}

namespace
{

/** Replace parameter references in @p expr with literal numbers. */
void
substConsts(ExprPtr &expr, const std::map<std::string, Bits> &env)
{
    if (!expr)
        return;
    switch (expr->kind) {
      case ExprKind::Number:
        break;
      case ExprKind::Id: {
        auto it = env.find(expr->as<IdExpr>()->name);
        if (it != env.end()) {
            SourceLoc loc = expr->loc;
            expr = mkNum(it->second);
            expr->loc = loc;
        }
        break;
      }
      case ExprKind::Unary:
        substConsts(
            std::static_pointer_cast<UnaryExpr>(expr)->arg, env);
        break;
      case ExprKind::Binary: {
        auto bin = std::static_pointer_cast<BinaryExpr>(expr);
        substConsts(bin->lhs, env);
        substConsts(bin->rhs, env);
        break;
      }
      case ExprKind::Ternary: {
        auto tern = std::static_pointer_cast<TernaryExpr>(expr);
        substConsts(tern->cond, env);
        substConsts(tern->thenExpr, env);
        substConsts(tern->elseExpr, env);
        break;
      }
      case ExprKind::Concat:
        for (auto &part : std::static_pointer_cast<ConcatExpr>(expr)->parts)
            substConsts(part, env);
        break;
      case ExprKind::Repeat: {
        auto rep = std::static_pointer_cast<RepeatExpr>(expr);
        substConsts(rep->count, env);
        substConsts(rep->inner, env);
        break;
      }
      case ExprKind::Index:
        substConsts(std::static_pointer_cast<IndexExpr>(expr)->index, env);
        break;
      case ExprKind::Range: {
        auto range = std::static_pointer_cast<RangeExpr>(expr);
        substConsts(range->msb, env);
        substConsts(range->lsb, env);
        break;
      }
    }
}

void
substConstsStmt(const StmtPtr &stmt, const std::map<std::string, Bits> &env)
{
    if (!stmt)
        return;
    switch (stmt->kind) {
      case StmtKind::Block:
        for (auto &sub : stmt->as<BlockStmt>()->stmts)
            substConstsStmt(sub, env);
        break;
      case StmtKind::If: {
        auto *branch = stmt->as<IfStmt>();
        substConsts(branch->cond, env);
        substConstsStmt(branch->thenStmt, env);
        substConstsStmt(branch->elseStmt, env);
        break;
      }
      case StmtKind::Case: {
        auto *sel = stmt->as<CaseStmt>();
        substConsts(sel->selector, env);
        for (auto &item : sel->items) {
            for (auto &label : item.labels)
                substConsts(label, env);
            substConstsStmt(item.body, env);
        }
        break;
      }
      case StmtKind::Assign: {
        auto *assign = stmt->as<AssignStmt>();
        substConsts(assign->lhs, env);
        substConsts(assign->rhs, env);
        break;
      }
      case StmtKind::Display:
        for (auto &arg : stmt->as<DisplayStmt>()->args)
            substConsts(arg, env);
        break;
      case StmtKind::Finish:
      case StmtKind::Null:
        break;
    }
}

bool
isLValueExpr(const ExprPtr &expr)
{
    switch (expr->kind) {
      case ExprKind::Id:
      case ExprKind::Index:
      case ExprKind::Range:
        return true;
      case ExprKind::Concat:
        for (const auto &part : expr->as<ConcatExpr>()->parts)
            if (!isLValueExpr(part))
                return false;
        return true;
      default:
        return false;
    }
}

class Elaborator
{
  public:
    Elaborator(const Design &design) : design_(design) {}

    ElabResult
    run(const std::string &top, const std::map<std::string, Bits> &overrides)
    {
        ModulePtr top_mod = design_.findModule(top);
        if (!top_mod)
            fatal("top module '%s' not found", top.c_str());
        result_.mod = std::make_shared<Module>();
        result_.mod->name = top_mod->name;
        result_.mod->loc = top_mod->loc;
        elabModule(*top_mod, overrides, "", true);
        return std::move(result_);
    }

  private:
    void
    elabModule(const Module &mod, const std::map<std::string, Bits> &params,
               const std::string &prefix, bool is_top)
    {
        if (!instancePath_.insert(mod.name).second)
            fatal("recursive instantiation of module '%s'",
                  mod.name.c_str());

        std::map<std::string, Bits> env;
        auto flatten = [&](const std::string &name) {
            return prefix + name;
        };

        for (const auto &item : mod.items) {
            switch (item->kind) {
              case ItemKind::Param: {
                const auto *param = item->as<ParamItem>();
                Bits value;
                auto over = params.find(param->name);
                if (over != params.end() && !param->isLocal)
                    value = over->second;
                else
                    value = evalConst(param->value, env);
                env[param->name] = value;
                result_.constants[flatten(param->name)] = value;
                break;
              }
              case ItemKind::Net: {
                auto net = std::make_shared<NetItem>();
                const auto *src = item->as<NetItem>();
                net->loc = src->loc;
                net->net = src->net;
                net->dir = is_top ? src->dir : PortDir::None;
                net->name = flatten(src->name);
                if (src->range) {
                    Bits msb = evalConst(src->range->msb, env);
                    Bits lsb = evalConst(src->range->lsb, env);
                    net->range = AstRange{mkNum(msb.resized(32), false),
                                          mkNum(lsb.resized(32), false)};
                }
                if (src->array) {
                    // Normalize memory bounds to [size-1:0] regardless of
                    // the declaration order ([0:N] or [N:0]).
                    uint64_t bound_a =
                        evalConst(src->array->msb, env).toU64();
                    uint64_t bound_b =
                        evalConst(src->array->lsb, env).toU64();
                    uint64_t hi = std::max(bound_a, bound_b);
                    uint64_t lo = std::min(bound_a, bound_b);
                    net->array =
                        AstRange{mkNum(Bits(32, hi), false),
                                 mkNum(Bits(32, lo), false)};
                }
                result_.mod->items.push_back(net);
                if (is_top && src->dir != PortDir::None)
                    result_.mod->ports.push_back(net->name);
                break;
              }
              case ItemKind::ContAssign: {
                auto assign = std::static_pointer_cast<ContAssignItem>(
                    cloneItem(item));
                substConsts(assign->lhs, env);
                substConsts(assign->rhs, env);
                if (!prefix.empty()) {
                    renameIdents(assign->lhs, flatten);
                    renameIdents(assign->rhs, flatten);
                }
                result_.mod->items.push_back(assign);
                break;
              }
              case ItemKind::Always: {
                auto always = std::static_pointer_cast<AlwaysItem>(
                    cloneItem(item));
                substConstsStmt(always->body, env);
                if (!prefix.empty()) {
                    renameIdents(always->body, flatten);
                    for (auto &sens : always->sens)
                        sens.signal = flatten(sens.signal);
                }
                result_.mod->items.push_back(always);
                break;
              }
              case ItemKind::Instance:
                elabInstance(*item->as<InstanceItem>(), env, prefix);
                break;
            }
        }

        instancePath_.erase(mod.name);
    }

    void
    elabInstance(const InstanceItem &inst,
                 const std::map<std::string, Bits> &env,
                 const std::string &prefix)
    {
        HWDBG_STAT_INC("elab.instances", 1);
        auto flatten = [&](const std::string &name) {
            return prefix + name;
        };

        std::map<std::string, Bits> sub_params;
        for (const auto &[name, value] : inst.paramOverrides)
            sub_params[name] = evalConst(value, env);

        if (isPrimitive(inst.moduleName)) {
            auto prim = std::make_shared<InstanceItem>();
            prim->loc = inst.loc;
            prim->moduleName = inst.moduleName;
            prim->instName = flatten(inst.instName);
            for (const auto &[name, value] : sub_params)
                prim->paramOverrides.emplace_back(name, mkNum(value));
            for (const auto &conn : inst.conns) {
                if (conn.formal.empty())
                    fatal("%s: primitive '%s' requires named port "
                          "connections", inst.loc.str().c_str(),
                          inst.moduleName.c_str());
                PortConn out;
                out.formal = conn.formal;
                if (conn.actual) {
                    out.actual = cloneExpr(conn.actual);
                    substConsts(out.actual, env);
                    if (!prefix.empty())
                        renameIdents(out.actual, flatten);
                }
                prim->conns.push_back(std::move(out));
            }
            result_.mod->items.push_back(prim);
            return;
        }

        ModulePtr sub = design_.findModule(inst.moduleName);
        if (!sub)
            fatal("%s: unknown module '%s'", inst.loc.str().c_str(),
                  inst.moduleName.c_str());

        std::string sub_prefix = prefix + inst.instName + "__";

        // Bind ports with continuous assignments.
        std::vector<PortConn> conns = inst.conns;
        bool positional = !conns.empty() && conns[0].formal.empty();
        if (positional) {
            if (conns.size() > sub->ports.size())
                fatal("%s: too many connections for '%s'",
                      inst.loc.str().c_str(), inst.moduleName.c_str());
            for (size_t i = 0; i < conns.size(); ++i)
                conns[i].formal = sub->ports[i];
        }

        std::set<std::string> seen;
        for (const auto &conn : conns) {
            NetItem *port = sub->findNet(conn.formal);
            if (!port || port->dir == PortDir::None)
                fatal("%s: '%s' has no port '%s'", inst.loc.str().c_str(),
                      inst.moduleName.c_str(), conn.formal.c_str());
            if (!seen.insert(conn.formal).second)
                fatal("%s: port '%s' connected twice",
                      inst.loc.str().c_str(), conn.formal.c_str());

            ExprPtr actual;
            if (conn.actual) {
                actual = cloneExpr(conn.actual);
                substConsts(actual, env);
                if (!prefix.empty())
                    renameIdents(actual, flatten);
            }

            auto bind = std::make_shared<ContAssignItem>();
            bind->loc = inst.loc;
            if (port->dir == PortDir::Input) {
                if (!actual) {
                    warn("%s: input port '%s.%s' left unconnected; tied "
                         "to 0", inst.loc.str().c_str(),
                         inst.instName.c_str(), conn.formal.c_str());
                    actual = mkNum(1, 0);
                }
                bind->lhs = mkId(sub_prefix + conn.formal);
                bind->rhs = actual;
            } else {
                if (!actual)
                    continue; // unconnected output
                if (!isLValueExpr(actual))
                    fatal("%s: output port '%s.%s' must connect to an "
                          "assignable expression", inst.loc.str().c_str(),
                          inst.instName.c_str(), conn.formal.c_str());
                bind->lhs = actual;
                bind->rhs = mkId(sub_prefix + conn.formal);
            }
            result_.mod->items.push_back(bind);
        }

        elabModule(*sub, sub_params, sub_prefix, false);
    }

    const Design &design_;
    ElabResult result_;
    std::set<std::string> instancePath_;
};

} // namespace

ElabResult
elaborate(const Design &design, const std::string &top,
          const std::map<std::string, Bits> &overrides)
{
    obs::ObsSpan span("elaborate");
    ElabResult result = Elaborator(design).run(top, overrides);
    HWDBG_STAT_INC("elab.runs", 1);
    HWDBG_STAT_INC("elab.ports", result.mod->ports.size());
    HWDBG_STAT_INC("elab.items", result.mod->items.size());
    return result;
}

} // namespace hwdbg::elab
