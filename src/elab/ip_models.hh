/**
 * @file
 * Blackbox IP dependency models (§4.3, §4.5.1).
 *
 * Dependency Monitor and LossCheck cannot see inside closed-source IPs,
 * so developers provide a model describing the relationship between an
 * IP's inputs and outputs: which output ports depend on which input
 * ports (control vs. data), and under what port-level condition a data
 * input propagates to a data output. Models are registered once and
 * reused across every project instantiating the IP.
 *
 * Models for the IPs used by the testbed (altsyncram, scfifo, dcfifo)
 * and for SignalCat's signal_recorder are built in, mirroring the
 * paper's three IP models (§5).
 */

#ifndef HWDBG_ELAB_IP_MODELS_HH
#define HWDBG_ELAB_IP_MODELS_HH

#include <optional>
#include <set>
#include <string>
#include <vector>

namespace hwdbg::elab
{

/** One output-depends-on-input edge of a blackbox IP. */
struct IpPortDep
{
    std::string out;
    std::string in;
    /** True when the input's *value* flows to the output; false for
     *  control inputs (requests, enables, clears). */
    bool isData = false;
};

/**
 * A value path through the IP with its propagation condition: data on
 * port @p in reaches port @p out when every term holds. A term names a
 * port; a negated term means the port must be low (e.g. a FIFO push
 * succeeds when wrreq && !full).
 */
struct IpDataPath
{
    std::string in;
    std::string out;
    struct Term
    {
        std::string port;
        bool negated = false;
    };
    std::vector<Term> condTerms;
};

struct IpModel
{
    std::string name;
    /** Output ports (everything else connected is an input). */
    std::set<std::string> outputs;
    /** Ports the simulator samples edges on. */
    std::vector<std::string> clockPorts;
    std::vector<IpPortDep> deps;
    std::vector<IpDataPath> dataPaths;
    /**
     * True when the simulator has a behavioral implementation (the
     * four built-ins). Analysis-only models can be registered for IPs
     * whose designs are analyzed but never simulated here.
     */
    bool simulatable = false;
};

/** Model for @p name, or nullptr when none is registered. */
const IpModel *lookupIpModel(const std::string &name);

/**
 * Register (or replace) a model. Registering a model makes instances
 * of the IP survive elaboration as blackboxes; simulation additionally
 * requires a behavioral Primitive, which only the built-ins have.
 */
void registerIpModel(IpModel model);

/** Names of all registered models (built-ins included). */
std::vector<std::string> registeredIpNames();

} // namespace hwdbg::elab

#endif // HWDBG_ELAB_IP_MODELS_HH
