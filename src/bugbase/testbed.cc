#include "bugbase/testbed.hh"

#include "bugbase/designs.hh"
#include "common/logging.hh"
#include "hdl/parser.hh"

namespace hwdbg::bugs
{

const char *
bugClassName(BugClass cls)
{
    switch (cls) {
      case BugClass::DataMisAccess: return "Data Mis-Access";
      case BugClass::Communication: return "Communication";
      case BugClass::Semantic: return "Semantic";
    }
    return "?";
}

const char *
symptomName(Symptom symptom)
{
    switch (symptom) {
      case Symptom::Stuck: return "Stuck";
      case Symptom::DataLoss: return "Loss";
      case Symptom::IncorrectOutput: return "Incor.";
      case Symptom::ExternalError: return "Ext.";
    }
    return "?";
}

namespace
{

core::LossCheckOptions
lc(const std::string &source, const std::string &valid,
   const std::string &sink)
{
    core::LossCheckOptions opts;
    opts.source = source;
    opts.sourceValid = valid;
    opts.sink = sink;
    return opts;
}

std::vector<TestbedBug>
buildTestbed()
{
    std::vector<TestbedBug> bugs;

    {
        TestbedBug bug;
        bug.id = "D1";
        bug.subclass = "Buffer Overflow";
        bug.bugClass = BugClass::DataMisAccess;
        bug.application = "RSD";
        bug.designName = "rsd";
        bug.platform = "HARP";
        bug.bugDefine = "BUG_D1";
        bug.targetMhz = 200;
        bug.symptoms = {Symptom::Stuck, Symptom::DataLoss};
        bug.helpfulTools = {"SC", "FSM", "Stat", "LC"};
        bug.monitors.fsm = true;
        bug.monitors.statEvents = {{"in", "in_valid"},
                                   {"out", "out_valid"}};
        bug.lossCheck = lc("in_data", "in_valid", "out_data");
        bug.expectedLossSite = "buf0";
        bug.rootCauseNote =
            "block length 10 overruns the 8-entry symbol buffer";
        bugs.push_back(std::move(bug));
    }
    {
        TestbedBug bug;
        bug.id = "D2";
        bug.subclass = "Buffer Overflow";
        bug.bugClass = BugClass::DataMisAccess;
        bug.application = "Grayscale";
        bug.designName = "grayscale";
        bug.platform = "HARP";
        bug.bugDefine = "BUG_D2";
        bug.targetMhz = 200;
        bug.symptoms = {Symptom::Stuck, Symptom::DataLoss};
        bug.helpfulTools = {"SC", "FSM", "Stat", "LC"};
        bug.monitors.fsm = true;
        bug.monitors.statEvents = {{"resp", "rd_resp_valid"},
                                   {"wr", "wr_valid"}};
        bug.lossCheck = lc("rd_resp_data", "rd_resp_valid", "wr_data");
        bug.expectedLossSite = "rob";
        bug.rootCauseNote =
            "truncated read tags alias reorder-buffer slots";
        bugs.push_back(std::move(bug));
    }
    {
        TestbedBug bug;
        bug.id = "D3";
        bug.subclass = "Buffer Overflow";
        bug.bugClass = BugClass::DataMisAccess;
        bug.application = "Optimus";
        bug.designName = "optimus";
        bug.platform = "HARP";
        bug.bugDefine = "BUG_D3";
        bug.targetMhz = 400;
        bug.symptoms = {Symptom::DataLoss, Symptom::ExternalError};
        bug.helpfulTools = {"SC", "FSM", "Stat", "Dep", "LC"};
        bug.monitors.fsm = true;
        bug.monitors.statEvents = {{"vm0", "vm0_valid"},
                                   {"vm1", "vm1_valid"},
                                   {"req", "req_valid"}};
        bug.monitors.depVariable = "req_data";
        bug.monitors.depCycles = 3;
        bug.lossCheck = lc("vm0_data", "vm0_valid", "req_data");
        bug.expectedLossSite = "vm0_stage";
        bug.rootCauseNote =
            "guest MMIO pushes ignore the per-VM queue's full flag";
        bugs.push_back(std::move(bug));
    }
    {
        TestbedBug bug;
        bug.id = "D4";
        bug.subclass = "Buffer Overflow";
        bug.bugClass = BugClass::DataMisAccess;
        bug.application = "Frame FIFO";
        bug.designName = "frame_fifo";
        bug.platform = "Generic";
        bug.bugDefine = "BUG_D4";
        bug.targetMhz = 200;
        bug.symptoms = {Symptom::DataLoss, Symptom::IncorrectOutput};
        bug.helpfulTools = {"SC", "Stat", "LC"};
        bug.monitors.statEvents = {{"in", "s_valid"},
                                   {"out", "m_valid"},
                                   {"frames", "len_valid"}};
        bug.lossCheck = lc("s_data", "s_valid", "m_data");
        bug.expectedLossSite = "memd";
        bug.rootCauseNote =
            "no occupancy check: long frames wrap the 16-byte memory";
        bugs.push_back(std::move(bug));
    }
    {
        TestbedBug bug;
        bug.id = "D5";
        bug.subclass = "Bit Truncation";
        bug.bugClass = BugClass::DataMisAccess;
        bug.application = "SHA512";
        bug.designName = "sha512";
        bug.platform = "HARP";
        bug.bugDefine = "BUG_D5";
        bug.targetMhz = 400;
        bug.symptoms = {Symptom::IncorrectOutput, Symptom::ExternalError};
        bug.helpfulTools = {"SC", "Stat", "Dep"};
        bug.monitors.statEvents = {{"words", "w_valid"},
                                   {"digests", "digest_valid"}};
        bug.monitors.depVariable = "wb_addr";
        bug.monitors.depCycles = 3;
        bug.rootCauseNote =
            "bit-length truncated to [41:0] before the >>6 shift";
        bugs.push_back(std::move(bug));
    }
    {
        TestbedBug bug;
        bug.id = "D6";
        bug.subclass = "Bit Truncation";
        bug.bugClass = BugClass::DataMisAccess;
        bug.application = "FFT";
        bug.designName = "fft";
        bug.platform = "Generic";
        bug.bugDefine = "BUG_D6";
        bug.targetMhz = 200;
        bug.symptoms = {Symptom::IncorrectOutput};
        bug.helpfulTools = {"SC", "Dep"};
        bug.monitors.depVariable = "out_re";
        bug.monitors.depCycles = 3;
        bug.rootCauseNote =
            "butterfly product truncated to its low byte";
        bugs.push_back(std::move(bug));
    }
    {
        TestbedBug bug;
        bug.id = "D7";
        bug.subclass = "Misindexing";
        bug.bugClass = BugClass::DataMisAccess;
        bug.application = "FADD";
        bug.designName = "fadd";
        bug.platform = "Generic";
        bug.bugDefine = "BUG_D7";
        bug.targetMhz = 200;
        bug.symptoms = {Symptom::IncorrectOutput};
        bug.helpfulTools = {"SC", "Dep"};
        bug.monitors.depVariable = "sum";
        bug.monitors.depCycles = 2;
        bug.rootCauseNote =
            "fraction extracted as [10:0] instead of [9:0]";
        bugs.push_back(std::move(bug));
    }
    {
        TestbedBug bug;
        bug.id = "D8";
        bug.subclass = "Misindexing";
        bug.bugClass = BugClass::DataMisAccess;
        bug.application = "AXI-Stream Switch";
        bug.designName = "axis_switch";
        bug.platform = "Generic";
        bug.bugDefine = "BUG_D8";
        bug.targetMhz = 200;
        bug.symptoms = {Symptom::IncorrectOutput};
        bug.helpfulTools = {"SC", "Dep"};
        bug.monitors.depVariable = "m1_valid";
        bug.monitors.depCycles = 2;
        bug.rootCauseNote = "destination decoded from header bit 3";
        bugs.push_back(std::move(bug));
    }
    {
        TestbedBug bug;
        bug.id = "D9";
        bug.subclass = "Endianness Mismatch";
        bug.bugClass = BugClass::DataMisAccess;
        bug.application = "SDSPI";
        bug.designName = "sdspi";
        bug.platform = "Generic";
        bug.bugDefine = "BUG_D9";
        bug.targetMhz = 200;
        bug.symptoms = {Symptom::IncorrectOutput};
        bug.helpfulTools = {"SC", "Dep"};
        bug.monitors.depVariable = "resp_crc";
        bug.monitors.depCycles = 3;
        bug.rootCauseNote = "CRC bytes packed little-endian";
        bugs.push_back(std::move(bug));
    }
    {
        TestbedBug bug;
        bug.id = "D10";
        bug.subclass = "Failure-to-Update";
        bug.bugClass = BugClass::DataMisAccess;
        bug.application = "SHA512";
        bug.designName = "sha512";
        bug.platform = "HARP";
        bug.bugDefine = "BUG_D10";
        bug.targetMhz = 400;
        bug.symptoms = {Symptom::IncorrectOutput};
        bug.helpfulTools = {"SC", "FSM", "Dep"};
        bug.monitors.fsm = true;
        bug.monitors.depVariable = "digest";
        bug.monitors.depCycles = 3;
        bug.rootCauseNote = "accumulator not reset on job start";
        bugs.push_back(std::move(bug));
    }
    {
        TestbedBug bug;
        bug.id = "D11";
        bug.subclass = "Failure-to-Update";
        bug.bugClass = BugClass::DataMisAccess;
        bug.application = "Frame FIFO";
        bug.designName = "frame_fifo";
        bug.platform = "Generic";
        bug.bugDefine = "BUG_D11";
        bug.targetMhz = 200;
        bug.symptoms = {Symptom::DataLoss};
        bug.helpfulTools = {"SC", "Stat"};
        bug.monitors.statEvents = {{"in_last", "s_last"},
                                   {"frames", "len_valid"}};
        // LossCheck is attempted on D11 but the filtering hides the
        // loss (the paper's single false negative).
        bug.lossCheck = lc("s_data", "s_valid", "m_data");
        bug.expectedLossSite = "";
        bug.rootCauseNote = "drop flag never cleared after a bad frame";
        bugs.push_back(std::move(bug));
    }
    {
        TestbedBug bug;
        bug.id = "D12";
        bug.subclass = "Failure-to-Update";
        bug.bugClass = BugClass::DataMisAccess;
        bug.application = "Frame FIFO";
        bug.designName = "frame_fifo";
        bug.platform = "Generic";
        bug.bugDefine = "BUG_D12";
        bug.targetMhz = 200;
        bug.symptoms = {Symptom::IncorrectOutput};
        bug.helpfulTools = {"SC", "Stat"};
        bug.monitors.statEvents = {{"beats", "s_valid"},
                                   {"frames", "len_valid"}};
        bug.rootCauseNote = "length counter not reset between frames";
        bugs.push_back(std::move(bug));
    }
    {
        TestbedBug bug;
        bug.id = "D13";
        bug.subclass = "Failure-to-Update";
        bug.bugClass = BugClass::DataMisAccess;
        bug.application = "Frame Length Measurer";
        bug.designName = "frame_len";
        bug.platform = "Generic";
        bug.bugDefine = "BUG_D13";
        bug.targetMhz = 200;
        bug.symptoms = {Symptom::IncorrectOutput};
        bug.helpfulTools = {"SC", "Stat", "Dep"};
        bug.monitors.statEvents = {{"beats", "s_valid"},
                                   {"frames", "len_valid"}};
        bug.monitors.depVariable = "len";
        bug.monitors.depCycles = 2;
        bug.rootCauseNote = "beat counter not cleared at end of frame";
        bugs.push_back(std::move(bug));
    }

    {
        TestbedBug bug;
        bug.id = "C1";
        bug.subclass = "Deadlock";
        bug.bugClass = BugClass::Communication;
        bug.application = "SDSPI";
        bug.designName = "sdspi";
        bug.platform = "Generic";
        bug.bugDefine = "BUG_C1";
        bug.targetMhz = 200;
        bug.symptoms = {Symptom::Stuck};
        bug.helpfulTools = {"SC", "FSM", "Dep"};
        bug.monitors.fsm = true;
        bug.monitors.depVariable = "tx_go";
        bug.monitors.depCycles = 2;
        bug.rootCauseNote =
            "tx_go/rx_go enables form a circular dependency, both 0";
        bugs.push_back(std::move(bug));
    }
    {
        TestbedBug bug;
        bug.id = "C2";
        bug.subclass = "Producer-Consumer Mismatch";
        bug.bugClass = BugClass::Communication;
        bug.application = "Optimus";
        bug.designName = "optimus";
        bug.platform = "HARP";
        bug.bugDefine = "BUG_C2";
        bug.targetMhz = 400;
        bug.symptoms = {Symptom::Stuck, Symptom::DataLoss};
        bug.helpfulTools = {"SC", "FSM", "Stat", "Dep", "LC"};
        bug.monitors.fsm = true;
        bug.monitors.statEvents = {{"resp0", "resp0_valid"},
                                   {"resp1", "resp1_valid"},
                                   {"resp_out", "resp_valid"}};
        bug.monitors.depVariable = "resp_data";
        bug.monitors.depCycles = 2;
        bug.lossCheck = lc("resp1_data", "resp1_valid", "resp_data");
        bug.expectedLossSite = "resp1_stage";
        bug.rootCauseNote =
            "single response staging register for two producers";
        bugs.push_back(std::move(bug));
    }
    {
        TestbedBug bug;
        bug.id = "C3";
        bug.subclass = "Signal Asynchrony";
        bug.bugClass = BugClass::Communication;
        bug.application = "SDSPI";
        bug.designName = "sdspi";
        bug.platform = "Generic";
        bug.bugDefine = "BUG_C3";
        bug.targetMhz = 200;
        bug.symptoms = {Symptom::IncorrectOutput};
        bug.helpfulTools = {"SC", "Dep"};
        bug.monitors.depVariable = "sum_data";
        bug.monitors.depCycles = 3;
        bug.rootCauseNote =
            "summary valid asserted one cycle before the data";
        bugs.push_back(std::move(bug));
    }
    {
        TestbedBug bug;
        bug.id = "C4";
        bug.subclass = "Signal Asynchrony";
        bug.bugClass = BugClass::Communication;
        bug.application = "AXI-Stream FIFO";
        bug.designName = "axis_fifo";
        bug.platform = "Generic";
        bug.bugDefine = "BUG_C4";
        bug.targetMhz = 200;
        bug.symptoms = {Symptom::DataLoss};
        bug.helpfulTools = {"SC", "Stat", "LC"};
        bug.monitors.statEvents = {{"in", "s_valid && s_ready"},
                                   {"out", "m_valid && m_ready"}};
        bug.lossCheck = lc("s_data", "s_valid", "m_data");
        bug.expectedLossSite = "skid_data";
        bug.rootCauseNote =
            "skid valid lags skid data, so s_ready lies for one cycle";
        bugs.push_back(std::move(bug));
    }

    {
        TestbedBug bug;
        bug.id = "S1";
        bug.subclass = "Protocol Violation";
        bug.bugClass = BugClass::Semantic;
        bug.application = "AXI-Lite Demo";
        bug.designName = "axil_demo";
        bug.platform = "Xilinx";
        bug.bugDefine = "BUG_S1";
        bug.targetMhz = 200;
        bug.symptoms = {Symptom::Stuck, Symptom::ExternalError};
        bug.helpfulTools = {"SC", "Dep"};
        bug.monitors.depVariable = "bvalid";
        bug.monitors.depCycles = 2;
        bug.rootCauseNote = "bvalid dropped without waiting for bready";
        bugs.push_back(std::move(bug));
    }
    {
        TestbedBug bug;
        bug.id = "S2";
        bug.subclass = "Protocol Violation";
        bug.bugClass = BugClass::Semantic;
        bug.application = "AXI-Stream Demo";
        bug.designName = "axis_demo";
        bug.platform = "Xilinx";
        bug.bugDefine = "BUG_S2";
        bug.targetMhz = 200;
        bug.symptoms = {Symptom::IncorrectOutput,
                        Symptom::ExternalError};
        bug.helpfulTools = {"SC", "Stat"};
        bug.monitors.statEvents = {{"valid_cycles", "tvalid"},
                                   {"accepts", "tready"}};
        bug.rootCauseNote =
            "tdata advances while tvalid is high and tready low";
        bugs.push_back(std::move(bug));
    }
    {
        TestbedBug bug;
        bug.id = "S3";
        bug.subclass = "Incomplete Implementation";
        bug.bugClass = BugClass::Semantic;
        bug.application = "AXI-Stream Adapter";
        bug.designName = "axis_adapter";
        bug.platform = "Generic";
        bug.bugDefine = "BUG_S3";
        bug.targetMhz = 200;
        bug.symptoms = {Symptom::IncorrectOutput};
        bug.helpfulTools = {"SC", "Dep"};
        bug.monitors.depVariable = "m_last";
        bug.monitors.depCycles = 2;
        bug.rootCauseNote = "tkeep ignored on the final beat";
        bugs.push_back(std::move(bug));
    }

    return bugs;
}

} // namespace

const std::vector<TestbedBug> &
testbedBugs()
{
    static const std::vector<TestbedBug> bugs = buildTestbed();
    return bugs;
}

const TestbedBug &
bugById(const std::string &id)
{
    for (const auto &bug : testbedBugs())
        if (bug.id == id)
            return bug;
    fatal("unknown testbed bug '%s'", id.c_str());
}

elab::ElabResult
buildDesign(const TestbedBug &bug, bool buggy)
{
    std::map<std::string, std::string> defines;
    if (buggy)
        defines[bug.bugDefine] = "";
    hdl::Design design = hdl::parseWithDefines(
        designSource(bug.designName), defines, bug.designName + ".v");
    return elab::elaborate(design, bug.designName);
}

} // namespace hwdbg::bugs
