#include "bugbase/workloads.hh"

#include <vector>

#include "common/logging.hh"

namespace hwdbg::bugs
{

using sim::Simulator;

namespace
{

void
tick(Simulator &sim)
{
    sim.poke("clk", uint64_t(0));
    sim.eval();
    sim.poke("clk", uint64_t(1));
    sim.eval();
}

void
resetDesign(Simulator &sim)
{
    sim.poke("clk", uint64_t(0));
    sim.eval();
    sim.poke("rst", uint64_t(1));
    tick(sim);
    sim.poke("rst", uint64_t(0));
}

// -------------------------------------------------------------------
// rsd (D1)
// -------------------------------------------------------------------

WorkloadResult
wlRsd(Simulator &sim)
{
    WorkloadResult result;
    resetDesign(sim);

    std::vector<uint64_t> bytes;
    for (int i = 0; i < 10; ++i)
        bytes.push_back(static_cast<uint64_t>(i * 7 + 3) & 0xff);
    uint64_t parity = 0;
    for (int i = 0; i < 8; ++i)
        parity ^= bytes[i];

    sim.poke("expected_parity", parity);
    sim.poke("mode_ext", uint64_t(1));
    sim.poke("inject_dbg", uint64_t(0));

    size_t fed = 0;
    bool got_output = false;
    uint64_t out = 0;
    int drain = 3; // keep clocking briefly after the result appears
    for (int cycle = 0; cycle < 120 && drain > 0; ++cycle) {
        if (got_output)
            --drain;
        bool ready = sim.peekU64("ready") != 0;
        bool accept = ready && fed < bytes.size();
        sim.poke("in_valid", uint64_t(accept));
        if (accept)
            sim.poke("in_data", bytes[fed]);
        tick(sim);
        if (accept) {
            ++fed;
            ++result.inputsAccepted;
        }
        if (sim.peekU64("out_valid")) {
            got_output = true;
            out = sim.peekU64("out_data");
            ++result.outputsProduced;
        }
    }

    if (!got_output) {
        result.observed.insert(Symptom::Stuck);
        if (result.inputsAccepted >= 8)
            result.observed.insert(Symptom::DataLoss);
        result.detail = "decoder never produced a block result";
    } else if (out != parity) {
        result.observed.insert(Symptom::IncorrectOutput);
        result.detail = "parity output mismatch";
    } else {
        result.passed = true;
    }
    return result;
}

void
gtRsd(Simulator &sim)
{
    resetDesign(sim);
    sim.poke("expected_parity", uint64_t(0));
    sim.poke("mode_ext", uint64_t(0));
    sim.poke("inject_dbg", uint64_t(0));
    // Partial block: four symbols, then quiesce (trivially passing).
    for (int i = 0; i < 4; ++i) {
        sim.poke("in_valid", uint64_t(1));
        sim.poke("in_data", uint64_t(0x20 + i));
        tick(sim);
    }
    sim.poke("in_valid", uint64_t(0));
    for (int i = 0; i < 10; ++i)
        tick(sim);
}

// -------------------------------------------------------------------
// grayscale (D2)
// -------------------------------------------------------------------

struct PendingResp
{
    int due;
    uint64_t tag;
    uint64_t data;
};

WorkloadResult
runGrayscale(Simulator &sim, bool gentle)
{
    WorkloadResult result;
    resetDesign(sim);

    std::vector<uint64_t> pixels;
    for (int i = 0; i < 8; ++i)
        pixels.push_back(static_cast<uint64_t>(16 + i * 3));

    sim.poke("start", uint64_t(1));
    tick(sim);
    sim.poke("start", uint64_t(0));

    std::vector<PendingResp> pending;
    int requests_seen = 0;
    std::vector<uint64_t> outputs;
    bool done = false;

    for (int cycle = 0; cycle < 250 && !done; ++cycle) {
        sim.poke("rd_resp_valid", uint64_t(0));
        for (const auto &resp : pending) {
            if (resp.due == cycle) {
                sim.poke("rd_resp_valid", uint64_t(1));
                sim.poke("rd_resp_tag", resp.tag);
                sim.poke("rd_resp_data", resp.data);
            }
        }
        bool consumer_ready = gentle || cycle >= 40;
        sim.poke("wr_ready", uint64_t(consumer_ready));
        tick(sim);
        if (sim.peekU64("rd_req_valid") && requests_seen < 8) {
            int latency = gentle ? 4 + requests_seen * 3 : 2;
            pending.push_back(PendingResp{
                cycle + latency, sim.peekU64("rd_req_tag"),
                pixels[static_cast<size_t>(requests_seen)]});
            ++requests_seen;
            ++result.inputsAccepted;
        }
        if (sim.peekU64("wr_valid")) {
            outputs.push_back(sim.peekU64("wr_data"));
            ++result.outputsProduced;
        }
        if (sim.peekU64("done"))
            done = true;
    }

    bool correct = outputs.size() == pixels.size();
    if (correct)
        for (size_t i = 0; i < pixels.size(); ++i)
            if (outputs[i] != (pixels[i] >> 1))
                correct = false;

    if (!done) {
        result.observed.insert(Symptom::Stuck);
        if (outputs.size() < pixels.size())
            result.observed.insert(Symptom::DataLoss);
        result.detail = "write FSM never finished";
    } else if (!correct) {
        result.observed.insert(Symptom::IncorrectOutput);
        result.detail = "pixel outputs mismatch";
    } else {
        result.passed = true;
    }
    return result;
}

// -------------------------------------------------------------------
// optimus (D3, C2)
// -------------------------------------------------------------------

WorkloadResult
wlOptimusD3(Simulator &sim, bool gentle)
{
    WorkloadResult result;
    resetDesign(sim);
    sim.poke("resp0_valid", uint64_t(0));
    sim.poke("resp1_valid", uint64_t(0));

    std::vector<uint64_t> reqs;
    for (int i = 0; i < 8; ++i)
        reqs.push_back(static_cast<uint64_t>(0x100 + i));

    size_t sent = 0;
    std::vector<uint64_t> seen;
    for (int cycle = 0; cycle < 120; ++cycle) {
        bool host_ready = gentle || cycle >= 12;
        sim.poke("host_ready", uint64_t(host_ready));
        bool vm_ready = sim.peekU64("vm0_ready") != 0;
        bool spaced = !gentle || cycle % 2 == 0;
        bool send = vm_ready && sent < reqs.size() && spaced;
        sim.poke("vm0_valid", uint64_t(send));
        if (send)
            sim.poke("vm0_data", reqs[sent]);
        tick(sim);
        if (send) {
            ++sent;
            ++result.inputsAccepted;
        }
        if (sim.peekU64("req_valid")) {
            seen.push_back(sim.peekU64("req_data"));
            ++result.outputsProduced;
        }
    }

    bool external = sim.peekU64("err_overflow") != 0;
    bool all_delivered = seen == reqs;
    if (external)
        result.observed.insert(Symptom::ExternalError);
    if (seen.size() < reqs.size())
        result.observed.insert(Symptom::DataLoss);
    else if (!all_delivered)
        result.observed.insert(Symptom::IncorrectOutput);
    result.passed = all_delivered && !external;
    if (!result.passed)
        result.detail = csprintf("%zu/%zu MMIO requests delivered",
                                 seen.size(), reqs.size());
    return result;
}

WorkloadResult
wlOptimusC2(Simulator &sim, bool gentle)
{
    WorkloadResult result;
    resetDesign(sim);
    sim.poke("host_ready", uint64_t(1));
    sim.poke("vm0_valid", uint64_t(0));
    sim.poke("vm1_valid", uint64_t(0));

    // Response traffic: two response pairs. In the trigger the pairs
    // are simultaneous (the second arrival exposes the overwrite); in
    // the ground truth they are spaced apart.
    int got0 = 0, got1 = 0;
    for (int cycle = 0; cycle < 60; ++cycle) {
        bool fire0 = cycle == 5 || cycle == 9;
        bool fire1 = gentle ? (cycle == 7 || cycle == 12)
                            : (cycle == 5 || cycle == 9);
        sim.poke("resp0_valid", uint64_t(fire0));
        sim.poke("resp1_valid", uint64_t(fire1));
        if (fire0)
            sim.poke("resp0_data", uint64_t(0xAA));
        if (fire1)
            sim.poke("resp1_data", uint64_t(0xBB));
        if (fire0 || fire1)
            ++result.inputsAccepted;
        tick(sim);
        if (sim.peekU64("resp_valid")) {
            ++result.outputsProduced;
            if (sim.peekU64("resp_vm") == 0 &&
                sim.peekU64("resp_data") == 0xAA)
                ++got0;
            if (sim.peekU64("resp_vm") == 1 &&
                sim.peekU64("resp_data") == 0xBB)
                ++got1;
        }
    }

    if (got0 < 2 || got1 < 2) {
        // The guest whose response vanished spins forever.
        result.observed.insert(Symptom::Stuck);
        result.observed.insert(Symptom::DataLoss);
        result.detail = "a VM response was lost";
    } else {
        result.passed = true;
    }
    return result;
}

// -------------------------------------------------------------------
// sha512 (D5, D10)
// -------------------------------------------------------------------

struct ShaJob
{
    uint64_t totalBits;
    uint64_t baseAddr;
    std::vector<uint64_t> words;
};

struct ShaResult
{
    bool done = false;
    uint64_t digest = 0;
    uint64_t wbAddr = 0;
};

uint64_t
shaGoldenDigest(const ShaJob &job)
{
    uint64_t acc = 0;
    for (uint64_t word : job.words)
        acc = (((acc << 3) | (acc >> 29)) & 0xffffffffull) ^ word;
    uint64_t msg_words =
        (job.totalBits & 0xffffffffffffull) >> 6;
    return (acc ^ (msg_words & 0xffffffffull) ^
            ((msg_words >> 32) & 0xffffull)) & 0xffffffffull;
}

uint64_t
shaGoldenAddr(const ShaJob &job)
{
    uint64_t msg_words = (job.totalBits & 0xffffffffffffull) >> 6;
    return (job.baseAddr + msg_words) & 0xffffffffffffull;
}

ShaResult
runShaJob(Simulator &sim, const ShaJob &job)
{
    ShaResult out;
    sim.poke("start", uint64_t(1));
    sim.poke("total_bits", Bits(64, job.totalBits));
    sim.poke("base_addr", Bits(48, job.baseAddr));
    tick(sim);
    sim.poke("start", uint64_t(0));

    size_t fed = 0;
    for (int cycle = 0; cycle < 60; ++cycle) {
        bool ready = sim.peekU64("w_ready") != 0;
        bool send = ready && fed < job.words.size();
        sim.poke("w_valid", uint64_t(send));
        if (send)
            sim.poke("w_data", job.words[fed]);
        tick(sim);
        if (send)
            ++fed;
        if (sim.peekU64("digest_valid")) {
            out.done = true;
            out.digest = sim.peekU64("digest");
            out.wbAddr = sim.peekU64("wb_addr");
            break;
        }
    }
    return out;
}

WorkloadResult
wlSha(Simulator &sim, bool big_length)
{
    WorkloadResult result;
    resetDesign(sim);

    ShaJob job1;
    job1.totalBits =
        big_length ? ((uint64_t(1) << 46) | 0x1240) : 0x1240;
    job1.baseAddr = 0x10000;
    for (int i = 0; i < 8; ++i)
        job1.words.push_back(
            static_cast<uint64_t>(0x01010101u * (i + 1)) & 0xffffffffu);
    ShaJob job2 = job1;
    job2.words.clear();
    for (int i = 0; i < 8; ++i)
        job2.words.push_back(
            static_cast<uint64_t>(0x00f0f00fu + 77 * i) & 0xffffffffu);

    for (const ShaJob &job : {job1, job2}) {
        ShaResult got = runShaJob(sim, job);
        result.inputsAccepted += job.words.size();
        if (!got.done) {
            result.observed.insert(Symptom::Stuck);
            result.detail = "hash job never completed";
            return result;
        }
        ++result.outputsProduced;
        if (got.wbAddr != shaGoldenAddr(job)) {
            // The shell rejects the out-of-range write-back address.
            result.observed.insert(Symptom::ExternalError);
        }
        if (got.digest != shaGoldenDigest(job))
            result.observed.insert(Symptom::IncorrectOutput);
    }
    result.passed = result.observed.empty();
    return result;
}

// -------------------------------------------------------------------
// fft (D6)
// -------------------------------------------------------------------

WorkloadResult
wlFft(Simulator &sim)
{
    WorkloadResult result;
    resetDesign(sim);

    struct Sample
    {
        uint64_t re, im, twre, twim;
    };
    std::vector<Sample> samples = {
        {200, 13, 150, 9},   {90, 201, 33, 180},
        {255, 255, 255, 255}, {1, 2, 3, 4},
        {170, 55, 201, 140},
    };

    std::vector<std::pair<uint64_t, uint64_t>> outputs;
    for (size_t i = 0; i <= samples.size() + 2; ++i) {
        bool send = i < samples.size();
        sim.poke("in_valid", uint64_t(send));
        if (send) {
            sim.poke("in_re", samples[i].re);
            sim.poke("in_im", samples[i].im);
            sim.poke("tw_re", samples[i].twre);
            sim.poke("tw_im", samples[i].twim);
            ++result.inputsAccepted;
        }
        tick(sim);
        if (sim.peekU64("out_valid")) {
            outputs.emplace_back(sim.peekU64("out_re"),
                                 sim.peekU64("out_im"));
            ++result.outputsProduced;
        }
    }

    bool correct = outputs.size() == samples.size();
    for (size_t i = 0; correct && i < samples.size(); ++i) {
        uint64_t pre = samples[i].re * samples[i].twre +
                       samples[i].im * samples[i].twim;
        uint64_t pim = samples[i].re * samples[i].twim +
                       samples[i].im * samples[i].twre;
        if (outputs[i].first != ((pre >> 8) & 0xff) ||
            outputs[i].second != ((pim >> 8) & 0xff))
            correct = false;
    }
    if (correct) {
        result.passed = true;
    } else {
        result.observed.insert(Symptom::IncorrectOutput);
        result.detail = "butterfly outputs mismatch";
    }
    return result;
}

// -------------------------------------------------------------------
// fadd (D7)
// -------------------------------------------------------------------

uint64_t
faddGolden(uint64_t a, uint64_t b)
{
    uint64_t exp_a = (a >> 10) & 0x1f;
    uint64_t exp_b = (b >> 10) & 0x1f;
    uint64_t frac_a = a & 0x3ff;
    uint64_t frac_b = b & 0x3ff;
    bool a_ge_b = exp_a >= exp_b;
    uint64_t exp_big = a_ge_b ? exp_a : exp_b;
    uint64_t diff = a_ge_b ? exp_a - exp_b : exp_b - exp_a;
    uint64_t frac_big = a_ge_b ? frac_a : frac_b;
    uint64_t frac_small = (a_ge_b ? frac_b : frac_a) >> diff;
    uint64_t frac_sum = (frac_big + frac_small) & 0xfff;
    if (frac_sum & 0x800)
        return (((exp_big + 1) & 0x1f) << 10) | ((frac_sum >> 1) & 0x3ff);
    return ((exp_big & 0x1f) << 10) | (frac_sum & 0x3ff);
}

WorkloadResult
wlFadd(Simulator &sim)
{
    WorkloadResult result;
    resetDesign(sim);
    std::vector<std::pair<uint64_t, uint64_t>> pairs = {
        {(5u << 10) | 0x155, (3u << 10) | 0x2aa}, // odd exponent: bug hits
        {(7u << 10) | 0x3ff, (7u << 10) | 0x3ff},
        {(1u << 10) | 0x001, (9u << 10) | 0x200},
    };
    bool correct = true;
    for (const auto &[a, b] : pairs) {
        sim.poke("in_valid", uint64_t(1));
        sim.poke("a", a);
        sim.poke("b", b);
        tick(sim);
        sim.poke("in_valid", uint64_t(0));
        tick(sim);
        ++result.inputsAccepted;
        ++result.outputsProduced;
        if (sim.peekU64("sum") != faddGolden(a, b))
            correct = false;
    }
    if (correct) {
        result.passed = true;
    } else {
        result.observed.insert(Symptom::IncorrectOutput);
        result.detail = "float sum mismatch";
    }
    return result;
}

// -------------------------------------------------------------------
// axis_switch (D8)
// -------------------------------------------------------------------

WorkloadResult
wlAxisSwitch(Simulator &sim)
{
    WorkloadResult result;
    resetDesign(sim);

    // Frame 1 header routes to port 1 (bit4 set, bit3 clear); frame 2
    // routes to port 0 (bit4 clear, bit3 set - the buggy decode bit).
    struct Frame
    {
        std::vector<uint64_t> beats;
        int port;
    };
    std::vector<Frame> frames = {
        {{0x10, 0x41, 0x42}, 1},
        {{0x08, 0x51}, 0},
    };

    bool correct = true;
    for (const auto &frame : frames) {
        std::vector<uint64_t> got0, got1;
        for (size_t i = 0; i < frame.beats.size() + 2; ++i) {
            bool send = i < frame.beats.size();
            sim.poke("s_valid", uint64_t(send));
            if (send) {
                sim.poke("s_data", frame.beats[i]);
                sim.poke("s_last",
                         uint64_t(i + 1 == frame.beats.size()));
                ++result.inputsAccepted;
            }
            tick(sim);
            if (sim.peekU64("m0_valid"))
                got0.push_back(sim.peekU64("m0_data"));
            if (sim.peekU64("m1_valid"))
                got1.push_back(sim.peekU64("m1_data"));
        }
        result.outputsProduced += got0.size() + got1.size();
        const auto &expect = frame.beats;
        if (frame.port == 0 && (got0 != expect || !got1.empty()))
            correct = false;
        if (frame.port == 1 && (got1 != expect || !got0.empty()))
            correct = false;
    }
    if (correct) {
        result.passed = true;
    } else {
        result.observed.insert(Symptom::IncorrectOutput);
        result.detail = "frame routed to the wrong port";
    }
    return result;
}

// -------------------------------------------------------------------
// sdspi (D9, C1, C3)
// -------------------------------------------------------------------

WorkloadResult
wlSdspi(Simulator &sim)
{
    WorkloadResult result;
    resetDesign(sim);

    // Wait for command acceptance.
    sim.poke("cmd_valid", uint64_t(1));
    sim.poke("cmd_index", uint64_t(17));
    bool accepted = false;
    for (int cycle = 0; cycle < 50 && !accepted; ++cycle) {
        bool ready = sim.peekU64("cmd_ready") != 0;
        tick(sim);
        if (ready)
            accepted = true;
    }
    sim.poke("cmd_valid", uint64_t(0));
    if (!accepted) {
        result.observed.insert(Symptom::Stuck);
        result.detail = "command engine never became ready";
        return result;
    }
    ++result.inputsAccepted;

    // Card sends: data byte, CRC high byte, CRC low byte.
    std::vector<uint64_t> bytes = {0x5a, 0xde, 0xad};
    uint64_t sum_seen = 0;
    bool sum_valid_seen = false;
    bool resp_seen = false;
    size_t fed = 0;
    for (int cycle = 0; cycle < 40; ++cycle) {
        bool send = fed < bytes.size() && cycle % 2 == 0;
        sim.poke("byte_valid", uint64_t(send));
        if (send)
            sim.poke("byte_data", bytes[fed]);
        tick(sim);
        if (send)
            ++fed;
        if (sim.peekU64("sum_valid") && !sum_valid_seen) {
            sum_valid_seen = true;
            sum_seen = sim.peekU64("sum_data");
        }
        if (sim.peekU64("resp_valid"))
            resp_seen = true;
    }

    if (!resp_seen) {
        result.observed.insert(Symptom::Stuck);
        result.detail = "no response produced";
        return result;
    }
    ++result.outputsProduced;

    bool correct = true;
    if (sim.peekU64("resp_data") != 0x5a)
        correct = false;
    if (sim.peekU64("resp_crc") != 0xdead)
        correct = false;
    if (!sum_valid_seen || sum_seen != (0x5aull ^ 0xadull))
        correct = false;
    if (correct) {
        result.passed = true;
    } else {
        result.observed.insert(Symptom::IncorrectOutput);
        result.detail = "response/CRC/summary mismatch";
    }
    return result;
}

// -------------------------------------------------------------------
// frame_fifo (D4, D11, D12)
// -------------------------------------------------------------------

struct FrameSpec
{
    int length;
    bool bad;
};

struct FrameFifoObservation
{
    std::vector<std::pair<uint64_t, bool>> beats; // (data, last)
    std::vector<uint64_t> lens;
};

FrameFifoObservation
driveFrameFifo(Simulator &sim, const std::vector<FrameSpec> &frames,
               WorkloadResult *result)
{
    FrameFifoObservation obs;
    resetDesign(sim);
    sim.poke("m_ready", uint64_t(1));

    uint64_t next_byte = 1;
    auto step = [&](bool valid, uint64_t data, bool last, bool bad) {
        sim.poke("s_valid", uint64_t(valid));
        sim.poke("s_data", data);
        sim.poke("s_last", uint64_t(last));
        sim.poke("s_bad", uint64_t(bad));
        tick(sim);
        if (sim.peekU64("m_valid")) {
            obs.beats.emplace_back(sim.peekU64("m_data"),
                                   sim.peekU64("m_last") != 0);
            if (result)
                ++result->outputsProduced;
        }
        if (sim.peekU64("len_valid"))
            obs.lens.push_back(sim.peekU64("m_len"));
    };

    for (const auto &frame : frames) {
        for (int i = 0; i < frame.length; ++i) {
            bool last = i + 1 == frame.length;
            step(true, next_byte, last, last && frame.bad);
            ++next_byte;
            if (result)
                ++result->inputsAccepted;
        }
        for (int i = 0; i < 24; ++i)
            step(false, 0, false, false);
    }
    for (int i = 0; i < 8; ++i)
        step(false, 0, false, false);
    return obs;
}

/** Golden model of the *fixed* frame FIFO for a frame sequence where
 *  the drain gaps guarantee the memory is empty between frames. */
FrameFifoObservation
frameFifoGolden(const std::vector<FrameSpec> &frames)
{
    FrameFifoObservation golden;
    uint64_t next_byte = 1;
    for (const auto &frame : frames) {
        bool deliver = !frame.bad && frame.length <= 16;
        for (int i = 0; i < frame.length; ++i) {
            if (deliver)
                golden.beats.emplace_back(next_byte,
                                          i + 1 == frame.length);
            ++next_byte;
        }
        if (deliver)
            golden.lens.push_back(static_cast<uint64_t>(frame.length));
    }
    return golden;
}

WorkloadResult
wlFrameFifo(Simulator &sim, const std::vector<FrameSpec> &frames)
{
    WorkloadResult result;
    FrameFifoObservation got = driveFrameFifo(sim, frames, &result);
    FrameFifoObservation want = frameFifoGolden(frames);

    bool beats_match = got.beats == want.beats;
    bool lens_match = got.lens == want.lens;

    // Is the delivered stream an in-order subsequence of the golden one
    // (i.e. only missing beats, nothing corrupted)?
    bool subsequence = true;
    {
        size_t pos = 0;
        for (const auto &beat : got.beats) {
            while (pos < want.beats.size() && want.beats[pos] != beat)
                ++pos;
            if (pos == want.beats.size()) {
                subsequence = false;
                break;
            }
            ++pos;
        }
    }

    // Content loss: the FIFO claimed to deliver more frame bytes than
    // distinct input bytes actually reached the output (overwritten
    // slots never come out). Input bytes are globally unique.
    uint64_t claimed = 0;
    for (uint64_t len : got.lens)
        claimed += len;
    std::set<uint64_t> present;
    for (const auto &[data, last] : got.beats)
        present.insert(data);

    if (got.lens.size() < want.lens.size() ||
        (!subsequence && claimed > present.size()))
        result.observed.insert(Symptom::DataLoss);
    if (!beats_match || !lens_match)
        if (!subsequence || (beats_match && !lens_match))
            result.observed.insert(Symptom::IncorrectOutput);
    result.passed = beats_match && lens_match;
    if (!result.passed)
        result.detail =
            csprintf("%zu/%zu frame beats delivered", got.beats.size(),
                     want.beats.size());
    return result;
}

// -------------------------------------------------------------------
// frame_len (D13)
// -------------------------------------------------------------------

WorkloadResult
wlFrameLen(Simulator &sim)
{
    WorkloadResult result;
    resetDesign(sim);
    std::vector<int> frames = {3, 5, 2};
    std::vector<uint64_t> lens;
    for (int length : frames) {
        for (int i = 0; i < length; ++i) {
            sim.poke("s_valid", uint64_t(1));
            sim.poke("s_last", uint64_t(i + 1 == length));
            tick(sim);
            ++result.inputsAccepted;
            if (sim.peekU64("len_valid"))
                lens.push_back(sim.peekU64("len"));
        }
        sim.poke("s_valid", uint64_t(0));
        tick(sim);
        if (sim.peekU64("len_valid"))
            lens.push_back(sim.peekU64("len"));
    }
    result.outputsProduced = lens.size();
    std::vector<uint64_t> want = {3, 5, 2};
    if (lens == want) {
        result.passed = true;
    } else {
        result.observed.insert(Symptom::IncorrectOutput);
        result.detail = "frame lengths drift";
    }
    return result;
}

// -------------------------------------------------------------------
// axis_fifo (C4)
// -------------------------------------------------------------------

WorkloadResult
runAxisFifo(Simulator &sim, bool gentle)
{
    WorkloadResult result;
    resetDesign(sim);

    std::vector<uint64_t> beats = {1, 2, 3, 4, 5, 6};
    size_t fed = 0;
    std::vector<uint64_t> got;
    for (int cycle = 0; cycle < 60; ++cycle) {
        bool m_ready = gentle || !(cycle >= 3 && cycle <= 6);
        sim.poke("m_ready", uint64_t(m_ready));
        bool s_ready = sim.peekU64("s_ready") != 0;
        bool send = s_ready && fed < beats.size();
        sim.poke("s_valid", uint64_t(send));
        if (send) {
            sim.poke("s_data", beats[fed]);
            sim.poke("s_last", uint64_t(fed + 1 == beats.size()));
        }
        tick(sim);
        if (send) {
            ++fed;
            ++result.inputsAccepted;
        }
        if (sim.peekU64("m_valid") && m_ready) {
            got.push_back(sim.peekU64("m_data"));
            ++result.outputsProduced;
        }
    }

    // De-duplicate held beats: m_valid && m_ready can only repeat a
    // value when the producer stalls; compare against the handshake
    // count instead.
    if (result.outputsProduced < result.inputsAccepted) {
        result.observed.insert(Symptom::DataLoss);
        result.detail = csprintf("%llu beats in, %llu beats out",
                                 (unsigned long long)
                                     result.inputsAccepted,
                                 (unsigned long long)
                                     result.outputsProduced);
    } else if (got.size() >= beats.size() &&
               std::vector<uint64_t>(got.begin(),
                                     got.begin() +
                                         static_cast<long>(
                                             beats.size())) != beats) {
        result.observed.insert(Symptom::IncorrectOutput);
    } else {
        result.passed = true;
    }
    return result;
}

// -------------------------------------------------------------------
// axil_demo (S1)
// -------------------------------------------------------------------

WorkloadResult
wlAxilDemo(Simulator &sim)
{
    WorkloadResult result;
    resetDesign(sim);

    // Write 0xBEEF to register 5 with a master that raises bready two
    // cycles after the address/data handshake.
    sim.poke("awvalid", uint64_t(1));
    sim.poke("awaddr", uint64_t(5));
    sim.poke("wvalid", uint64_t(1));
    sim.poke("wdata", uint64_t(0xbeef));
    sim.poke("bready", uint64_t(0));

    bool aw_done = false;
    bool b_done = false;
    bool checker_error = false;
    int handshake_cycle = -1;
    for (int cycle = 0; cycle < 40 && !b_done; ++cycle) {
        if (aw_done) {
            sim.poke("awvalid", uint64_t(0));
            sim.poke("wvalid", uint64_t(0));
        }
        bool bready = aw_done && cycle >= handshake_cycle + 2;
        sim.poke("bready", uint64_t(bready));
        // Sample the bus as a slave-clocked master would: pre-edge.
        sim.eval();
        bool awready = sim.peekU64("awready") != 0;
        bool bvalid_pre = sim.peekU64("bvalid") != 0;
        tick(sim);
        bool bvalid_post = sim.peekU64("bvalid") != 0;
        if (!aw_done && awready) {
            aw_done = true;
            handshake_cycle = cycle;
            ++result.inputsAccepted;
        }
        // Protocol checker: bvalid must stay asserted until bready.
        if (bvalid_pre && !bready && !bvalid_post)
            checker_error = true;
        if (bvalid_pre && bready) {
            b_done = true;
            ++result.outputsProduced;
        }
    }
    sim.poke("bready", uint64_t(0));
    sim.poke("awvalid", uint64_t(0));
    sim.poke("wvalid", uint64_t(0));

    // Read back register 5.
    bool read_ok = false;
    sim.poke("arvalid", uint64_t(1));
    sim.poke("araddr", uint64_t(5));
    sim.poke("rready", uint64_t(1));
    for (int cycle = 0; cycle < 10; ++cycle) {
        tick(sim);
        if (sim.peekU64("rvalid")) {
            sim.poke("arvalid", uint64_t(0));
            read_ok = sim.peekU64("rdata") == 0xbeef;
            break;
        }
    }

    if (checker_error)
        result.observed.insert(Symptom::ExternalError);
    if (!b_done) {
        result.observed.insert(Symptom::Stuck);
        result.detail = "master never saw the write response";
    }
    if (b_done && !read_ok)
        result.observed.insert(Symptom::IncorrectOutput);
    result.passed = b_done && read_ok && !checker_error;
    return result;
}

// -------------------------------------------------------------------
// axis_demo (S2)
// -------------------------------------------------------------------

WorkloadResult
wlAxisDemo(Simulator &sim)
{
    WorkloadResult result;
    resetDesign(sim);

    sim.poke("nbeats", uint64_t(4));
    sim.poke("start", uint64_t(1));
    tick(sim);
    sim.poke("start", uint64_t(0));

    std::vector<uint64_t> got;
    bool checker_error = false;
    bool prev_stalled = false;
    uint64_t prev_data = 0;
    bool finished = false;
    for (int cycle = 0; cycle < 40 && !finished; ++cycle) {
        bool tready = cycle % 3 == 0;
        sim.poke("tready", uint64_t(tready));
        // Pre-edge view: what the consumer latches at this clock edge.
        sim.eval();
        bool tvalid = sim.peekU64("tvalid") != 0;
        uint64_t tdata = sim.peekU64("tdata");
        bool tlast = sim.peekU64("tlast") != 0;
        // Stability rule: tdata must hold while tvalid && !tready.
        if (prev_stalled && tvalid && tdata != prev_data)
            checker_error = true;
        if (tvalid && tready) {
            got.push_back(tdata);
            ++result.outputsProduced;
            if (tlast)
                finished = true;
        }
        prev_stalled = tvalid && !tready;
        prev_data = tdata;
        tick(sim);
    }

    std::vector<uint64_t> want = {0, 1, 2, 3};
    if (checker_error)
        result.observed.insert(Symptom::ExternalError);
    if (got != want)
        result.observed.insert(Symptom::IncorrectOutput);
    result.passed = !checker_error && got == want;
    return result;
}

// -------------------------------------------------------------------
// axis_adapter (S3)
// -------------------------------------------------------------------

WorkloadResult
wlAxisAdapter(Simulator &sim)
{
    WorkloadResult result;
    resetDesign(sim);

    struct Beat
    {
        uint64_t data;
        uint64_t keep;
        bool last;
    };
    std::vector<Beat> beats = {
        {0xbbaa, 3, false},
        {0x00cc, 1, true}, // single-byte final beat
    };
    std::vector<std::pair<uint64_t, bool>> want = {
        {0xaa, false}, {0xbb, false}, {0xcc, true}};

    std::vector<std::pair<uint64_t, bool>> got;
    size_t fed = 0;
    for (int cycle = 0; cycle < 20; ++cycle) {
        bool ready = sim.peekU64("s_ready") != 0;
        bool send = ready && fed < beats.size();
        sim.poke("s_valid", uint64_t(send));
        if (send) {
            sim.poke("s_data", beats[fed].data);
            sim.poke("s_keep", beats[fed].keep);
            sim.poke("s_last", uint64_t(beats[fed].last));
        }
        tick(sim);
        if (send) {
            ++fed;
            ++result.inputsAccepted;
        }
        if (sim.peekU64("m_valid")) {
            got.emplace_back(sim.peekU64("m_data"),
                             sim.peekU64("m_last") != 0);
            ++result.outputsProduced;
        }
    }

    if (got == want) {
        result.passed = true;
    } else {
        result.observed.insert(Symptom::IncorrectOutput);
        result.detail = "adapter emitted a wrong byte stream";
    }
    return result;
}

} // namespace

WorkloadResult
runWorkload(const TestbedBug &bug, Simulator &sim)
{
    if (bug.id == "D1")
        return wlRsd(sim);
    if (bug.id == "D2")
        return runGrayscale(sim, false);
    if (bug.id == "D3")
        return wlOptimusD3(sim, false);
    if (bug.id == "D4")
        return wlFrameFifo(sim, {{20, false}, {8, false}});
    if (bug.id == "D5")
        return wlSha(sim, true);
    if (bug.id == "D6")
        return wlFft(sim);
    if (bug.id == "D7")
        return wlFadd(sim);
    if (bug.id == "D8")
        return wlAxisSwitch(sim);
    if (bug.id == "D9")
        return wlSdspi(sim);
    if (bug.id == "D10")
        return wlSha(sim, false);
    if (bug.id == "D11")
        return wlFrameFifo(sim, {{20, false}, {4, false}, {5, false}});
    if (bug.id == "D12")
        return wlFrameFifo(sim, {{4, false}, {5, false}});
    if (bug.id == "D13")
        return wlFrameLen(sim);
    if (bug.id == "C1")
        return wlSdspi(sim);
    if (bug.id == "C2")
        return wlOptimusC2(sim, false);
    if (bug.id == "C3")
        return wlSdspi(sim);
    if (bug.id == "C4")
        return runAxisFifo(sim, false);
    if (bug.id == "S1")
        return wlAxilDemo(sim);
    if (bug.id == "S2")
        return wlAxisDemo(sim);
    if (bug.id == "S3")
        return wlAxisAdapter(sim);
    fatal("no workload for bug '%s'", bug.id.c_str());
}

void
driveGroundTruth(const TestbedBug &bug, Simulator &sim)
{
    if (bug.id == "D1") {
        gtRsd(sim);
        return;
    }
    if (bug.id == "D2") {
        runGrayscale(sim, true);
        return;
    }
    if (bug.id == "D3") {
        wlOptimusD3(sim, true);
        return;
    }
    if (bug.id == "D4") {
        // Short frames only: no drops of any kind on the buggy design.
        driveFrameFifo(sim, {{4, false}, {6, false}}, nullptr);
        return;
    }
    if (bug.id == "D11") {
        // The developer's test covers the *intentional* drop: a bad
        // frame whose reverted bytes are later overwritten.
        driveFrameFifo(sim, {{4, true}, {4, false}}, nullptr);
        return;
    }
    if (bug.id == "C2") {
        wlOptimusC2(sim, true);
        return;
    }
    if (bug.id == "C4") {
        runAxisFifo(sim, true);
        return;
    }
    fatal("no ground-truth stimulus for bug '%s'", bug.id.c_str());
}

} // namespace hwdbg::bugs
