/**
 * @file
 * The 68-bug study database behind Table 1.
 *
 * One record per studied bug: the 19-design corpus (§3's target
 * systems), the root-cause subclass, and the symptoms reported in the
 * commit/issue/patch that fixed it. The Table 1 bench aggregates these
 * records into the published classification (3 classes, 13 subclasses,
 * per-subclass counts, and common symptom sets).
 */

#ifndef HWDBG_BUGBASE_STUDY_HH
#define HWDBG_BUGBASE_STUDY_HH

#include <set>
#include <string>
#include <vector>

#include "bugbase/testbed.hh"

namespace hwdbg::bugs
{

struct StudyBug
{
    std::string subclass;
    BugClass bugClass;
    /** Project the bug was found in. */
    std::string project;
    std::string note;
    std::set<Symptom> symptoms;
};

/** All 68 studied bugs. */
const std::vector<StudyBug> &studyBugs();

/** Aggregated Table 1 row. */
struct SubclassSummary
{
    std::string subclass;
    BugClass bugClass;
    int count = 0;
    /** Union of symptoms observed across the subclass ("common
     *  symptoms" column of Table 1). */
    std::set<Symptom> commonSymptoms;
};

/** Table 1: the 13 subclass rows in presentation order. */
std::vector<SubclassSummary> bugStudyTable();

} // namespace hwdbg::bugs

#endif // HWDBG_BUGBASE_STUDY_HH
