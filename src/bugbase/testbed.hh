/**
 * @file
 * The Table 2 testbed: 20 reliably-reproducible bugs with their
 * classification, platform, symptoms, and the debugging tools that help
 * localize each one.
 *
 * The camera-ready table's per-row tick alignment is ambiguous in text
 * form; the symptom/tool matrix encoded here is the canonical
 * reconstruction described in DESIGN.md, consistent with every in-text
 * statement of the paper (7 data-loss bugs; LossCheck succeeds on
 * D1-D4, C2, C4 and is defeated by filtering on D11; SignalCat applies
 * to all 20; each monitor helps at least four bugs).
 */

#ifndef HWDBG_BUGBASE_TESTBED_HH
#define HWDBG_BUGBASE_TESTBED_HH

#include <optional>
#include <set>
#include <string>
#include <vector>

#include "core/losscheck.hh"
#include "elab/elaborate.hh"

namespace hwdbg::bugs
{

enum class BugClass { DataMisAccess, Communication, Semantic };
enum class Symptom { Stuck, DataLoss, IncorrectOutput, ExternalError };

const char *bugClassName(BugClass cls);
const char *symptomName(Symptom symptom);

/** Monitor configuration used when debugging a bug (Fig. 2 setup). */
struct MonitorConfig
{
    bool fsm = false;
    /** (event name, 1-bit signal) pairs for Statistics Monitor. */
    std::vector<std::pair<std::string, std::string>> statEvents;
    /** Variable for Dependency Monitor (empty = not used). */
    std::string depVariable;
    int depCycles = 4;
};

struct TestbedBug
{
    std::string id;          ///< D1..D13, C1..C4, S1..S3
    std::string subclass;    ///< Table 1 subclass name
    BugClass bugClass;
    std::string application; ///< Table 2 application name
    std::string designName;  ///< key into designSources()
    std::string platform;    ///< "HARP", "Generic", or "Xilinx"
    std::string bugDefine;   ///< preprocessor define enabling the bug
    double targetMhz;        ///< design target frequency (§6.4)
    std::set<Symptom> symptoms;
    /** "SC", "FSM", "Stat", "Dep", "LC". */
    std::set<std::string> helpfulTools;
    MonitorConfig monitors;
    std::optional<core::LossCheckOptions> lossCheck;
    /** Register LossCheck should localize (empty: none expected, as in
     *  the D11 false negative). */
    std::string expectedLossSite;
    std::string rootCauseNote;
};

const std::vector<TestbedBug> &testbedBugs();
const TestbedBug &bugById(const std::string &id);

/** Parse + elaborate a bug's design in its buggy or fixed variant. */
elab::ElabResult buildDesign(const TestbedBug &bug, bool buggy);

} // namespace hwdbg::bugs

#endif // HWDBG_BUGBASE_TESTBED_HH
