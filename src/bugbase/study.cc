#include "bugbase/study.hh"

#include <map>

#include "common/logging.hh"

namespace hwdbg::bugs
{

namespace
{

constexpr Symptom kStuck = Symptom::Stuck;
constexpr Symptom kLoss = Symptom::DataLoss;
constexpr Symptom kIncor = Symptom::IncorrectOutput;
constexpr Symptom kExt = Symptom::ExternalError;

std::vector<StudyBug>
buildStudy()
{
    std::vector<StudyBug> bugs;
    auto add = [&](const char *subclass, BugClass cls,
                   const char *project, const char *note,
                   std::set<Symptom> symptoms) {
        bugs.push_back(StudyBug{subclass, cls, project, note,
                                std::move(symptoms)});
    };
    const BugClass data = BugClass::DataMisAccess;
    const BugClass comm = BugClass::Communication;
    const BugClass sem = BugClass::Semantic;

    // ---- Buffer Overflow (5) -------------------------------------
    add("Buffer Overflow", data, "Reed-Solomon decoder",
        "syndrome buffer indexed past depth", {kStuck, kLoss});
    add("Buffer Overflow", data, "Grayscale",
        "reorder buffer slot aliasing", {kStuck, kLoss});
    add("Buffer Overflow", data, "Optimus",
        "MMIO queue pushed while full", {kLoss, kExt});
    add("Buffer Overflow", data, "verilog-ethernet",
        "frame FIFO wraps on oversized frame", {kLoss, kIncor});
    add("Buffer Overflow", data, "Nyuzi GPGPU",
        "store queue entry count exceeds depth", {kLoss});

    // ---- Bit Truncation (12) -------------------------------------
    add("Bit Truncation", data, "SHA512",
        "bit length cast before shift", {kIncor, kExt});
    add("Bit Truncation", data, "ZipCPU FFT",
        "butterfly product scaled at wrong width", {kIncor});
    add("Bit Truncation", data, "CVA6",
        "physical address truncated in PTW", {kIncor, kExt});
    add("Bit Truncation", data, "VexRiscv",
        "CSR counter write drops high bits", {kIncor});
    add("Bit Truncation", data, "openwifi",
        "RSSI accumulator narrower than sum", {kIncor});
    add("Bit Truncation", data, "Bitcoin Miner",
        "nonce counter truncated at 28 bits", {kIncor});
    add("Bit Truncation", data, "Corundum NIC",
        "PCIe length field truncated", {kIncor, kExt});
    add("Bit Truncation", data, "verilog-axis",
        "tid width mismatch on join", {kIncor});
    add("Bit Truncation", data, "ADI HDL library",
        "DMA burst length register too narrow", {kIncor});
    add("Bit Truncation", data, "Optimus",
        "guest physical offset truncated", {kIncor, kExt});
    add("Bit Truncation", data, "SDSPI",
        "block address shifted into 24 bits", {kIncor});
    add("Bit Truncation", data, "Nyuzi GPGPU",
        "fp exponent narrowed during normalize", {kIncor});

    // ---- Misindexing (5) -----------------------------------------
    add("Misindexing", data, "FADD",
        "fraction extracted as [23:0]", {kIncor});
    add("Misindexing", data, "verilog-axis",
        "destination field sliced at wrong offset", {kIncor, kLoss});
    add("Misindexing", data, "CVA6",
        "page-table level index off by one", {kIncor});
    add("Misindexing", data, "openwifi",
        "subcarrier index mapped to wrong bin", {kIncor});
    add("Misindexing", data, "ADI HDL library",
        "channel enable bit indexed from wrong word", {kLoss});

    // ---- Endianness Mismatch (1) ---------------------------------
    add("Endianness Mismatch", data, "SDSPI",
        "CRC bytes assembled little-endian", {kIncor});

    // ---- Failure-to-Update (5) -----------------------------------
    add("Failure-to-Update", data, "SHA512",
        "digest accumulator not reset per job", {kIncor});
    add("Failure-to-Update", data, "verilog-ethernet",
        "drop flag not cleared on new frame", {kLoss});
    add("Failure-to-Update", data, "verilog-ethernet",
        "frame length counter not reset", {kIncor});
    add("Failure-to-Update", data, "Corundum NIC",
        "completion counter missing reset", {kIncor, kExt});
    add("Failure-to-Update", data, "Bitcoin Miner",
        "midstate register stale after retarget", {kIncor});

    // ---- Deadlock (3) --------------------------------------------
    add("Deadlock", comm, "SDSPI",
        "tx/rx enables wait on each other", {kStuck});
    add("Deadlock", comm, "Nyuzi GPGPU",
        "L2 writeback waits on fill that waits on writeback",
        {kStuck});
    add("Deadlock", comm, "Optimus",
        "doorbell ack gated by quiesced engine", {kStuck});

    // ---- Producer-Consumer Mismatch (3) --------------------------
    add("Producer-Consumer Mismatch", comm, "Optimus",
        "two VM responses race for one staging register",
        {kStuck, kLoss});
    add("Producer-Consumer Mismatch", comm, "openwifi",
        "sample FIFO overrun on RX burst", {kLoss, kIncor});
    add("Producer-Consumer Mismatch", comm, "Corundum NIC",
        "descriptor ring producer outruns consumer", {kLoss});

    // ---- Signal Asynchrony (10) ----------------------------------
    add("Signal Asynchrony", comm, "SDSPI",
        "response valid one cycle before data", {kIncor});
    add("Signal Asynchrony", comm, "verilog-axis",
        "skid valid lags skid data", {kLoss});
    add("Signal Asynchrony", comm, "CVA6",
        "exception flag misaligned with commit", {kIncor});
    add("Signal Asynchrony", comm, "VexRiscv",
        "branch flush a stage behind target", {kIncor});
    add("Signal Asynchrony", comm, "openwifi",
        "IQ sample pair split across cycles", {kIncor});
    add("Signal Asynchrony", comm, "ADI HDL library",
        "DMA request ahead of address phase", {kIncor});
    add("Signal Asynchrony", comm, "ZipCPU FFT",
        "twiddle index lags sample stream", {kIncor});
    add("Signal Asynchrony", comm, "Grayscale",
        "write strobe early versus data mux", {kIncor});
    add("Signal Asynchrony", comm, "Corundum NIC",
        "timestamp sampled a cycle after capture", {kIncor});
    add("Signal Asynchrony", comm, "Nyuzi GPGPU",
        "scoreboard clear misaligned with retire", {kIncor});

    // ---- Use-Without-Valid (1) -----------------------------------
    add("Use-Without-Valid", comm, "openwifi",
        "FFT input consumed while valid low", {kIncor});

    // ---- Protocol Violation (3) ----------------------------------
    add("Protocol Violation", sem, "Xilinx AXI-Lite demo",
        "bvalid dropped before bready", {kStuck, kExt});
    add("Protocol Violation", sem, "Xilinx AXI-Stream demo",
        "tdata changes while stalled", {kIncor, kExt});
    add("Protocol Violation", sem, "Corundum NIC",
        "PCIe TLP issued before credits", {kStuck, kExt});

    // ---- API Misuse (3) ------------------------------------------
    add("API Misuse", sem, "FADD",
        "comparator module ports swapped", {kIncor});
    add("API Misuse", sem, "HardCloud",
        "CCI-P MPF configured with wrong channel", {kIncor});
    add("API Misuse", sem, "ADI HDL library",
        "FIFO IP parameterized below burst size", {kIncor});

    // ---- Incomplete Implementation (7) ---------------------------
    add("Incomplete Implementation", sem, "verilog-axis",
        "width adapter ignores tkeep on last beat", {kIncor});
    add("Incomplete Implementation", sem, "CVA6",
        "misaligned store corner case unhandled", {kIncor});
    add("Incomplete Implementation", sem, "VexRiscv",
        "compressed instruction on page boundary", {kIncor});
    add("Incomplete Implementation", sem, "openwifi",
        "short-GI mode missing in deframer", {kIncor});
    add("Incomplete Implementation", sem, "Nyuzi GPGPU",
        "denormal handling absent in FP path", {kIncor});
    add("Incomplete Implementation", sem, "ZipCPU FFT",
        "no handling for single-point transform", {kIncor});
    add("Incomplete Implementation", sem, "Bitcoin Miner",
        "difficulty rollover case missing", {kIncor});

    // ---- Erroneous Expression (10) -------------------------------
    add("Erroneous Expression", sem, "Reed-Solomon decoder",
        "wrong polynomial coefficient in control", {kIncor});
    add("Erroneous Expression", sem, "Grayscale",
        "inverted done condition in control flow", {kIncor});
    add("Erroneous Expression", sem, "SHA512",
        "round constant index expression wrong", {kIncor});
    add("Erroneous Expression", sem, "CVA6",
        "branch predicate uses signed compare", {kIncor});
    add("Erroneous Expression", sem, "VexRiscv",
        "forwarding select expression wrong", {kIncor});
    add("Erroneous Expression", sem, "openwifi",
        "CFO correction sign flipped", {kIncor});
    add("Erroneous Expression", sem, "Bitcoin Miner",
        "target compare off by a nibble", {kIncor});
    add("Erroneous Expression", sem, "Corundum NIC",
        "checksum fold expression wrong", {kIncor});
    add("Erroneous Expression", sem, "verilog-ethernet",
        "padding length computed with or-not-plus", {kIncor});
    add("Erroneous Expression", sem, "ADI HDL library",
        "interrupt mask combined with wrong reduce", {kIncor});

    return bugs;
}

} // namespace

const std::vector<StudyBug> &
studyBugs()
{
    static const std::vector<StudyBug> bugs = buildStudy();
    return bugs;
}

std::vector<SubclassSummary>
bugStudyTable()
{
    // Presentation order matches Table 1.
    static const std::vector<std::pair<const char *, BugClass>> order = {
        {"Buffer Overflow", BugClass::DataMisAccess},
        {"Bit Truncation", BugClass::DataMisAccess},
        {"Misindexing", BugClass::DataMisAccess},
        {"Endianness Mismatch", BugClass::DataMisAccess},
        {"Failure-to-Update", BugClass::DataMisAccess},
        {"Deadlock", BugClass::Communication},
        {"Producer-Consumer Mismatch", BugClass::Communication},
        {"Signal Asynchrony", BugClass::Communication},
        {"Use-Without-Valid", BugClass::Communication},
        {"Protocol Violation", BugClass::Semantic},
        {"API Misuse", BugClass::Semantic},
        {"Incomplete Implementation", BugClass::Semantic},
        {"Erroneous Expression", BugClass::Semantic},
    };

    std::map<std::string, SubclassSummary> by_name;
    for (const auto &[name, cls] : order) {
        SubclassSummary summary;
        summary.subclass = name;
        summary.bugClass = cls;
        by_name[name] = summary;
    }
    for (const auto &bug : studyBugs()) {
        auto it = by_name.find(bug.subclass);
        if (it == by_name.end())
            panic("study bug with unknown subclass '%s'",
                  bug.subclass.c_str());
        ++it->second.count;
        it->second.commonSymptoms.insert(bug.symptoms.begin(),
                                         bug.symptoms.end());
    }

    std::vector<SubclassSummary> table;
    for (const auto &[name, cls] : order)
        table.push_back(by_name[name]);
    return table;
}

} // namespace hwdbg::bugs
