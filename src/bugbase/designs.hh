/**
 * @file
 * Verilog sources for the reproducible-bug testbed (Table 2).
 *
 * Each design is a faithful, simplified re-implementation of the buggy
 * subsystem of the corresponding open-source project from the paper's
 * study (the paper's own artifact likewise ships simplified snippets per
 * bug). Every bug is switchable with a `BUG_<id>` preprocessor define so
 * that the same source yields the buggy and the fixed variant.
 */

#ifndef HWDBG_BUGBASE_DESIGNS_HH
#define HWDBG_BUGBASE_DESIGNS_HH

#include <map>
#include <string>
#include <vector>

namespace hwdbg::bugs
{

/** Design name -> Verilog source text. */
const std::map<std::string, std::string> &designSources();

/** Source text of one design (fatal if unknown). */
const std::string &designSource(const std::string &name);

/** All design names. */
std::vector<std::string> designNames();

} // namespace hwdbg::bugs

#endif // HWDBG_BUGBASE_DESIGNS_HH
