/**
 * @file
 * Workload drivers for the testbed.
 *
 * Each bug has a trigger workload that reproduces it push-button style:
 * the driver acts as the testbench/shell (memory responses, bus masters,
 * stream producers/consumers, protocol checkers), compares against a
 * golden model of the fixed design, and reports the observed symptoms.
 * The same driver passes on the fixed variant of the design.
 *
 * LossCheck bugs additionally have a ground-truth stimulus: a test that
 * passes even on the buggy design (the paper's §4.5.3 "presumably passed
 * during simulation testing"), used to filter intentional data drops.
 */

#ifndef HWDBG_BUGBASE_WORKLOADS_HH
#define HWDBG_BUGBASE_WORKLOADS_HH

#include <set>
#include <string>

#include "bugbase/testbed.hh"
#include "sim/simulator.hh"

namespace hwdbg::bugs
{

struct WorkloadResult
{
    /** Symptoms detected by the testbench. */
    std::set<Symptom> observed;
    /** True when the run completed with golden-matching outputs. */
    bool passed = false;
    uint64_t inputsAccepted = 0;
    uint64_t outputsProduced = 0;
    std::string detail;
};

/** Run the trigger workload for @p bug on @p sim. */
WorkloadResult runWorkload(const TestbedBug &bug, sim::Simulator &sim);

/**
 * Drive the passing (ground truth) stimulus for @p bug; meaningful for
 * the LossCheck-relevant bugs. The caller inspects sim.log() afterward.
 */
void driveGroundTruth(const TestbedBug &bug, sim::Simulator &sim);

} // namespace hwdbg::bugs

#endif // HWDBG_BUGBASE_WORKLOADS_HH
