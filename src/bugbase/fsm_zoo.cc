#include "bugbase/fsm_zoo.hh"

#include <sstream>

namespace hwdbg::bugs
{

namespace
{

FsmZoo
buildZoo()
{
    FsmZoo zoo;
    std::ostringstream src;
    src << "module fsm_zoo (\n"
           "    input wire clk,\n"
           "    input wire rst,\n"
           "    input wire go,\n"
           "    input wire stop,\n"
           "    input wire [1:0] mode_in,\n"
           "    input wire [7:0] din,\n"
           "    output wire [7:0] dout\n"
           ");\n";

    // --- 13 case-style FSMs (3 states each), all detectable. --------
    for (int i = 0; i < 13; ++i) {
        std::string var = "cs" + std::to_string(i);
        zoo.labeledFsms.push_back(var);
        src << "reg [1:0] " << var << ";\n"
            << "always @(posedge clk)\n"
            << "    case (" << var << ")\n"
            << "      2'd0: if (go) " << var << " <= 2'd1;\n"
            << "      2'd1: if (stop) " << var << " <= 2'd2;\n"
            << "      2'd2: " << var << " <= 2'd0;\n"
            << "      default: " << var << " <= 2'd0;\n"
            << "    endcase\n";
    }

    // --- 8 if-style FSMs, all detectable. ----------------------------
    for (int i = 0; i < 8; ++i) {
        std::string var = "is" + std::to_string(i);
        zoo.labeledFsms.push_back(var);
        src << "reg [1:0] " << var << ";\n"
            << "always @(posedge clk) begin\n"
            << "    if (rst) " << var << " <= 2'd0;\n"
            << "    if (" << var << " == 2'd0 && go) " << var
            << " <= 2'd3;\n"
            << "    if (" << var << " == 2'd3 && stop) " << var
            << " <= 2'd0;\n"
            << "end\n";
    }

    // --- 5 hard styles: genuine FSMs the heuristics miss. ------------
    // (1)(2) Two-process FSMs: next state through a combinational reg.
    for (int i = 0; i < 2; ++i) {
        std::string var = "tp" + std::to_string(i);
        zoo.labeledFsms.push_back(var);
        zoo.hardStyles.push_back(var);
        src << "reg [1:0] " << var << ";\n"
            << "reg [1:0] " << var << "_next;\n"
            << "always @* begin\n"
            << "    " << var << "_next = " << var << ";\n"
            << "    if (" << var << " == 2'd0 && go) " << var
            << "_next = 2'd1;\n"
            << "    if (" << var << " == 2'd1) " << var
            << "_next = 2'd0;\n"
            << "end\n"
            << "always @(posedge clk) " << var << " <= " << var
            << "_next;\n";
    }
    // (3) Counter-encoded sequencer: transitions by arithmetic.
    zoo.labeledFsms.push_back("seqst");
    zoo.hardStyles.push_back("seqst");
    src << "reg [1:0] seqst;\n"
           "always @(posedge clk)\n"
           "    if (seqst == 2'd3) seqst <= 2'd0;\n"
           "    else if (go) seqst <= seqst + 2'd1;\n";
    // (4) Bit-probed status word: individual state bits are selected.
    zoo.labeledFsms.push_back("bitst");
    zoo.hardStyles.push_back("bitst");
    src << "reg [1:0] bitst;\n"
           "wire bit_busy = bitst[0];\n"
           "always @(posedge clk) begin\n"
           "    if (bitst == 2'd0 && go) bitst <= 2'd1;\n"
           "    if (bitst == 2'd1 && stop) bitst <= 2'd0;\n"
           "end\n";
    // (5) Data-loaded state: one transition loads an input value.
    zoo.labeledFsms.push_back("dlst");
    zoo.hardStyles.push_back("dlst");
    src << "reg [1:0] dlst;\n"
           "always @(posedge clk) begin\n"
           "    if (dlst == 2'd0 && go) dlst <= mode_in;\n"
           "    if (dlst == 2'd2) dlst <= 2'd0;\n"
           "end\n";

    // --- Decoys: registers that are NOT state machines. --------------
    zoo.decoys = {"cnt_a", "cnt_b", "shift_a", "acc_a", "data_a",
                  "toggle_a"};
    src << "reg [7:0] cnt_a;\n"
           "reg [7:0] cnt_b;\n"
           "reg [7:0] shift_a;\n"
           "reg [7:0] acc_a;\n"
           "reg [7:0] data_a;\n"
           "reg toggle_a;\n"
           "always @(posedge clk) begin\n"
           "    cnt_a <= cnt_a + 8'd1;\n"
           "    if (go) cnt_b <= cnt_b + 8'd2;\n"
           "    shift_a <= {shift_a[6:0], go};\n"
           "    acc_a <= acc_a ^ din;\n"
           "    if (go) data_a <= din;\n"
           "    toggle_a <= !toggle_a;\n"
           "end\n";

    src << "assign dout = cnt_a ^ acc_a ^ data_a;\n"
           "endmodule\n";

    zoo.source = src.str();
    return zoo;
}

} // namespace

const FsmZoo &
fsmZoo()
{
    static const FsmZoo zoo = buildZoo();
    return zoo;
}

const std::vector<std::pair<std::string, std::string>> &
testbedFsmLabels()
{
    static const std::vector<std::pair<std::string, std::string>>
        labels = {
            {"rsd", "state"},
            {"grayscale", "rd_state"},
            {"grayscale", "wr_state"},
            {"optimus", "bus_state"},
            {"sha512", "state"},
            {"sdspi", "state"},
        };
    return labels;
}

} // namespace hwdbg::bugs
