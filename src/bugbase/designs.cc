#include "bugbase/designs.hh"

#include "common/logging.hh"

namespace hwdbg::bugs
{

namespace
{

// -------------------------------------------------------------------
// rsd: Reed-Solomon-style block decoder (HardCloud / Intel HARP).
// BUG_D1 (Buffer Overflow): the block length is miscomputed as 10, so
// the 8-entry symbol buffer is indexed past its depth; the 4-bit index
// truncates (power-of-two wrap) and overwrites unconsumed slots. The
// parity check then never matches and the decoder rescans forever.
// The mirror register models an intentionally-overwritten debug tap
// (the source of LossCheck's one false positive on D1, §6.3).
// -------------------------------------------------------------------
const char *rsd_v = R"VLG(
module rsd (
    input wire clk,
    input wire rst,
    input wire in_valid,
    input wire [7:0] in_data,
    input wire [7:0] expected_parity,
    input wire mode_ext,
    input wire inject_dbg,
    output wire ready,
    output reg out_valid,
    output reg [7:0] out_data
);
localparam S_LOAD = 2'd0, S_CHECK = 2'd1, S_DONE = 2'd2;
`ifdef BUG_D1
localparam BLOCK = 10;
`else
localparam BLOCK = 8;
`endif
reg [1:0] state;
reg [3:0] wr_idx;
reg [3:0] rd_idx;
reg [7:0] acc;
reg [7:0] buf0 [0:7];
reg [7:0] mirror;

assign ready = state == S_LOAD && !rst;

always @(posedge clk) begin
    out_valid <= 1'b0;
    if (rst) begin
        state <= S_LOAD;
        wr_idx <= 4'd0;
        rd_idx <= 4'd0;
        acc <= 8'd0;
    end else begin
        case (state)
          S_LOAD:
            if (in_valid) begin
                buf0[wr_idx] <= in_data;
                wr_idx <= wr_idx + 4'd1;
                if (wr_idx == BLOCK - 1) begin
                    state <= S_CHECK;
                    rd_idx <= 4'd0;
                    acc <= 8'd0;
                end
            end
          S_CHECK: begin
            acc <= acc ^ buf0[rd_idx];
            rd_idx <= rd_idx + 4'd1;
            if (rd_idx == 4'd7)
                state <= S_DONE;
          end
          S_DONE:
            if (acc == expected_parity) begin
                out_valid <= 1'b1;
                out_data <= acc;
                state <= S_LOAD;
                wr_idx <= 4'd0;
            end else begin
                state <= S_CHECK;
                rd_idx <= 4'd0;
                acc <= 8'd0;
            end
        endcase
        if (mode_ext && in_valid)
            mirror <= in_data;
        if (inject_dbg && state == S_CHECK)
            acc <= acc ^ mirror;
    end
end
endmodule
)VLG";

// -------------------------------------------------------------------
// grayscale: HARP image accelerator with out-of-order memory responses
// and a reorder buffer (the paper's §6.3 case study).
// BUG_D2 (Buffer Overflow): read-request tags are truncated to 2 bits,
// so requests 4..7 alias tags 0..3. Their responses overwrite
// unconsumed reorder-buffer slots (data loss) and slots 4..7 are never
// marked valid, leaving the write FSM stuck in WR_DATA while the read
// FSM reaches RD_FINISH.
// -------------------------------------------------------------------
const char *grayscale_v = R"VLG(
module grayscale (
    input wire clk,
    input wire rst,
    input wire start,
    input wire dbg_sel,
    output reg rd_req_valid,
    output reg [2:0] rd_req_tag,
    input wire rd_resp_valid,
    input wire [2:0] rd_resp_tag,
    input wire [7:0] rd_resp_data,
    input wire wr_ready,
    output reg wr_valid,
    output reg [7:0] wr_data,
    output reg done
);
localparam RD_IDLE = 2'd0, RD_REQ = 2'd1, RD_FINISH = 2'd2;
localparam WR_IDLE = 2'd0, WR_DATA = 2'd1, WR_FINISH = 2'd2;
localparam NPIX = 8;
reg [1:0] rd_state;
reg [1:0] wr_state;
reg [3:0] req_cnt;
reg [3:0] wr_idx;
reg [7:0] rob [0:7];
reg rob_vld [0:7];
reg [7:0] last_resp;

always @(posedge clk) begin
    rd_req_valid <= 1'b0;
    wr_valid <= 1'b0;
    done <= 1'b0;
    if (rst) begin
        rd_state <= RD_IDLE;
        wr_state <= WR_IDLE;
        req_cnt <= 4'd0;
        wr_idx <= 4'd0;
    end else begin
        case (rd_state)
          RD_IDLE:
            if (start) begin
                rd_state <= RD_REQ;
                req_cnt <= 4'd0;
            end
          RD_REQ: begin
            rd_req_valid <= 1'b1;
`ifdef BUG_D2
            rd_req_tag <= {1'b0, req_cnt[1:0]};
`else
            rd_req_tag <= req_cnt[2:0];
`endif
            req_cnt <= req_cnt + 4'd1;
            if (req_cnt == NPIX - 1)
                rd_state <= RD_FINISH;
          end
          RD_FINISH:
            if (wr_state == WR_FINISH)
                rd_state <= RD_IDLE;
        endcase
        if (rd_resp_valid) begin
            rob[rd_resp_tag] <= rd_resp_data;
            rob_vld[rd_resp_tag] <= 1'b1;
            last_resp <= rd_resp_data;
        end
        // Diagnostic tap: replay the last raw response on request.
        if (dbg_sel)
            wr_data <= last_resp;
        case (wr_state)
          WR_IDLE:
            if (start) begin
                wr_state <= WR_DATA;
                wr_idx <= 4'd0;
            end
          WR_DATA:
            if (rob_vld[wr_idx[2:0]] && wr_ready) begin
                wr_valid <= 1'b1;
                wr_data <= rob[wr_idx[2:0]] >> 1;
                rob_vld[wr_idx[2:0]] <= 1'b0;
                wr_idx <= wr_idx + 4'd1;
                if (wr_idx == NPIX - 1)
                    wr_state <= WR_FINISH;
            end
          WR_FINISH: begin
            done <= 1'b1;
            wr_state <= WR_IDLE;
          end
        endcase
    end
end
endmodule
)VLG";

// -------------------------------------------------------------------
// optimus: shared-memory FPGA hypervisor MMIO path (two guest VMs).
// BUG_D3 (Buffer Overflow): the request path accepts guest MMIO writes
// unconditionally; pushes into a full per-VM queue are dropped and the
// shell raises an overflow error.
// BUG_C2 (Producer-Consumer Mismatch): the response path uses a single
// staging register for both VMs; simultaneous responses lose one and
// the waiting guest hangs.
// -------------------------------------------------------------------
const char *optimus_v = R"VLG(
module optimus (
    input wire clk,
    input wire rst,
    input wire vm0_valid,
    input wire [15:0] vm0_data,
    input wire vm1_valid,
    input wire [15:0] vm1_data,
    output wire vm0_ready,
    output wire vm1_ready,
    input wire host_ready,
    output reg req_valid,
    output reg [15:0] req_data,
    output reg req_vm,
    input wire resp0_valid,
    input wire [15:0] resp0_data,
    input wire resp1_valid,
    input wire [15:0] resp1_data,
    output reg resp_valid,
    output reg [15:0] resp_data,
    output reg resp_vm,
    input wire dbg_replay,
    output reg err_overflow
);
wire [15:0] q0;
wire [15:0] q1;
wire e0, f0, e1, f1;
reg [15:0] vm0_stage;
reg vm0_stage_v;
reg [15:0] vm1_stage;
reg vm1_stage_v;
`ifdef BUG_D3
assign vm0_ready = 1'b1;
assign vm1_ready = 1'b1;
wire push0 = vm0_stage_v;
wire push1 = vm1_stage_v;
`else
assign vm0_ready = !f0 && !vm0_stage_v;
assign vm1_ready = !f1 && !vm1_stage_v;
wire push0 = vm0_stage_v && !f0;
wire push1 = vm1_stage_v && !f1;
`endif
reg turn;
// Round-robin with pressure relief: a full queue gets priority.
wire pop0 = host_ready && !e0 && (f0 || turn == 1'b0 || e1);
wire pop1 = host_ready && !e1 && (f1 || turn == 1'b1 || e0) && !pop0;
scfifo #(.WIDTH(16), .DEPTH(4)) u_q0 (
    .clock(clk),
    .sclr(rst),
    .data(vm0_stage),
    .wrreq(push0),
    .rdreq(pop0),
    .q(q0),
    .empty(e0),
    .full(f0)
);
scfifo #(.WIDTH(16), .DEPTH(4)) u_q1 (
    .clock(clk),
    .sclr(rst),
    .data(vm1_stage),
    .wrreq(push1),
    .rdreq(pop1),
    .q(q1),
    .empty(e1),
    .full(f1)
);
reg pop0_d;
reg pop1_d;
localparam B_IDLE = 2'd0, B_ISSUE = 2'd1, B_RESP = 2'd2;
reg [1:0] bus_state;
reg [15:0] resp0_stage;
reg [15:0] resp1_stage;
reg [15:0] last_req0;
reg [15:0] last_resp1;
`ifdef BUG_C2
reg [15:0] stage;
reg stage_v;
reg stage_vm;
reg p0_v;
reg p1_v;
`else
reg s0_v;
reg s1_v;
`endif

always @(posedge clk) begin
    req_valid <= 1'b0;
    resp_valid <= 1'b0;
    if (rst) begin
        turn <= 1'b0;
        err_overflow <= 1'b0;
        pop0_d <= 1'b0;
        pop1_d <= 1'b0;
        vm0_stage_v <= 1'b0;
        vm1_stage_v <= 1'b0;
        bus_state <= B_IDLE;
`ifdef BUG_C2
        stage_v <= 1'b0;
        p0_v <= 1'b0;
        p1_v <= 1'b0;
`else
        s0_v <= 1'b0;
        s1_v <= 1'b0;
`endif
    end else begin
        // MMIO capture stage per VM.
        vm0_stage_v <= vm0_valid && vm0_ready;
        if (vm0_valid && vm0_ready) begin
            vm0_stage <= vm0_data;
            last_req0 <= vm0_data;
        end
        vm1_stage_v <= vm1_valid && vm1_ready;
        if (vm1_valid && vm1_ready)
            vm1_stage <= vm1_data;
        if ((push0 && f0) || (push1 && f1))
            err_overflow <= 1'b1;
        pop0_d <= pop0;
        pop1_d <= pop1;
        if (pop0)
            turn <= 1'b1;
        if (pop1)
            turn <= 1'b0;
        if (pop0_d) begin
            req_valid <= 1'b1;
            req_data <= q0;
            req_vm <= 1'b0;
        end else if (pop1_d) begin
            req_valid <= 1'b1;
            req_data <= q1;
            req_vm <= 1'b1;
        end
        case (bus_state)
          B_IDLE:
            if (pop0 || pop1)
                bus_state <= B_ISSUE;
          B_ISSUE:
            bus_state <= B_RESP;
          B_RESP:
            if (resp0_valid || resp1_valid)
                bus_state <= B_IDLE;
          default:
            bus_state <= B_IDLE;
        endcase
        // Response capture stage per VM.
        if (resp0_valid)
            resp0_stage <= resp0_data;
        if (resp1_valid) begin
            resp1_stage <= resp1_data;
            last_resp1 <= resp1_data;
        end
        // Diagnostic replay of the last observed traffic.
        if (dbg_replay) begin
            req_valid <= 1'b1;
            req_data <= last_req0;
            resp_valid <= 1'b1;
            resp_data <= last_resp1;
        end
`ifdef BUG_C2
        p0_v <= resp0_valid;
        p1_v <= resp1_valid;
        if (p0_v) begin
            stage <= resp0_stage;
            stage_vm <= 1'b0;
            stage_v <= 1'b1;
        end else if (p1_v) begin
            stage <= resp1_stage;
            stage_vm <= 1'b1;
            stage_v <= 1'b1;
        end else if (stage_v) begin
            resp_valid <= 1'b1;
            resp_data <= stage;
            resp_vm <= stage_vm;
            stage_v <= 1'b0;
        end
`else
        if (resp0_valid)
            s0_v <= 1'b1;
        if (resp1_valid)
            s1_v <= 1'b1;
        if (s0_v && !resp0_valid) begin
            resp_valid <= 1'b1;
            resp_data <= resp0_stage;
            resp_vm <= 1'b0;
            s0_v <= 1'b0;
        end else if (s1_v && !resp1_valid) begin
            resp_valid <= 1'b1;
            resp_data <= resp1_stage;
            resp_vm <= 1'b1;
            s1_v <= 1'b0;
        end
`endif
    end
end
endmodule
)VLG";

// -------------------------------------------------------------------
// sha512: HARP hash accelerator (message absorb + finalize).
// BUG_D5 (Bit Truncation): the 48-bit message word count is computed
// from bits [41:0] of the bit length before the >>6, truncating bits
// [47:42]; the final write-back address and digest are wrong, and the
// shell reports the bad address (the paper's page-fault symptom).
// BUG_D10 (Failure-to-Update): the accumulator is not cleared when a
// new job starts, so the second digest is polluted by the first.
// -------------------------------------------------------------------
const char *sha512_v = R"VLG(
module sha512 (
    input wire clk,
    input wire rst,
    input wire start,
    input wire [63:0] total_bits,
    input wire [47:0] base_addr,
    input wire w_valid,
    input wire [31:0] w_data,
    output wire w_ready,
    output reg digest_valid,
    output reg [31:0] digest,
    output reg wb_valid,
    output reg [47:0] wb_addr
);
localparam H_IDLE = 2'd0, H_ABSORB = 2'd1, H_FINAL = 2'd2;
localparam NWORDS = 8;
reg [1:0] state;
reg [3:0] wcnt;
reg [31:0] acc;
reg [63:0] tbits;
`ifdef BUG_D5
wire [47:0] msg_words = {6'd0, tbits[41:0]} >> 6;
`else
wire [47:0] msg_words = tbits[47:0] >> 6;
`endif
assign w_ready = state == H_ABSORB;

always @(posedge clk) begin
    digest_valid <= 1'b0;
    wb_valid <= 1'b0;
    if (rst) begin
        state <= H_IDLE;
        acc <= 32'd0;
        wcnt <= 4'd0;
    end else begin
        case (state)
          H_IDLE:
            if (start) begin
                state <= H_ABSORB;
                wcnt <= 4'd0;
                tbits <= total_bits;
`ifdef BUG_D10
`else
                acc <= 32'd0;
`endif
            end
          H_ABSORB:
            if (w_valid) begin
                acc <= {acc[28:0], acc[31:29]} ^ w_data;
                wcnt <= wcnt + 4'd1;
                if (wcnt == NWORDS - 1)
                    state <= H_FINAL;
            end
          H_FINAL: begin
            digest <= acc ^ msg_words[31:0] ^ {16'd0, msg_words[47:32]};
            digest_valid <= 1'b1;
            wb_valid <= 1'b1;
            wb_addr <= base_addr + msg_words;
            state <= H_IDLE;
          end
        endcase
    end
end
endmodule
)VLG";

// -------------------------------------------------------------------
// fft: butterfly datapath from the ZipCPU FFT.
// BUG_D6 (Bit Truncation): the scaled product keeps the low byte of
// the 17-bit product instead of the aligned [15:8] slice.
// -------------------------------------------------------------------
const char *fft_v = R"VLG(
module fft (
    input wire clk,
    input wire rst,
    input wire in_valid,
    input wire [7:0] in_re,
    input wire [7:0] in_im,
    input wire [7:0] tw_re,
    input wire [7:0] tw_im,
    output reg out_valid,
    output reg [7:0] out_re,
    output reg [7:0] out_im
);
reg [16:0] prod_re;
reg [16:0] prod_im;
reg stage_valid;

always @(posedge clk) begin
    out_valid <= 1'b0;
    if (rst) begin
        stage_valid <= 1'b0;
    end else begin
        stage_valid <= in_valid;
        if (in_valid) begin
            prod_re <= in_re * tw_re + in_im * tw_im;
            prod_im <= in_re * tw_im + in_im * tw_re;
        end
        if (stage_valid) begin
            out_valid <= 1'b1;
`ifdef BUG_D6
            out_re <= prod_re[7:0];
            out_im <= prod_im[7:0];
`else
            out_re <= prod_re[15:8];
            out_im <= prod_im[15:8];
`endif
        end
    end
end
endmodule
)VLG";

// -------------------------------------------------------------------
// fadd: the floating-point adder contributed by a hardware developer.
// BUG_D7 (Misindexing): the fraction is extracted as bits [10:0]
// (including the exponent LSB) instead of [9:0] - the paper's IEEE-754
// misindexing pattern.
// -------------------------------------------------------------------
const char *fadd_v = R"VLG(
module fadd (
    input wire clk,
    input wire rst,
    input wire in_valid,
    input wire [15:0] a,
    input wire [15:0] b,
    output reg out_valid,
    output reg [15:0] sum
);
wire [4:0] exp_a = a[14:10];
wire [4:0] exp_b = b[14:10];
`ifdef BUG_D7
wire [10:0] frac_a = a[10:0];
wire [10:0] frac_b = b[10:0];
`else
wire [10:0] frac_a = {1'b0, a[9:0]};
wire [10:0] frac_b = {1'b0, b[9:0]};
`endif
wire a_ge_b = exp_a >= exp_b;
wire [4:0] exp_big = a_ge_b ? exp_a : exp_b;
wire [4:0] exp_diff = a_ge_b ? exp_a - exp_b : exp_b - exp_a;
wire [10:0] frac_big = a_ge_b ? frac_a : frac_b;
wire [10:0] frac_small = (a_ge_b ? frac_b : frac_a) >> exp_diff;
wire [11:0] frac_sum = {1'b0, frac_big} + {1'b0, frac_small};

always @(posedge clk) begin
    out_valid <= 1'b0;
    if (rst) begin
        sum <= 16'd0;
    end else if (in_valid) begin
        out_valid <= 1'b1;
        if (frac_sum[11])
            sum <= {1'b0, exp_big + 5'd1, frac_sum[10:1]};
        else
            sum <= {1'b0, exp_big, frac_sum[9:0]};
    end
end
endmodule
)VLG";

// -------------------------------------------------------------------
// axis_switch: 1-to-2 AXI-Stream switch (verilog-axis style).
// BUG_D8 (Misindexing): the destination bit is taken from header bit 3
// instead of bit 4, steering frames to the wrong port.
// -------------------------------------------------------------------
const char *axis_switch_v = R"VLG(
module axis_switch (
    input wire clk,
    input wire rst,
    input wire s_valid,
    input wire [7:0] s_data,
    input wire s_last,
    output reg m0_valid,
    output reg [7:0] m0_data,
    output reg m0_last,
    output reg m1_valid,
    output reg [7:0] m1_data,
    output reg m1_last
);
reg in_frame;
reg cur_port;
`ifdef BUG_D8
wire dest = s_data[3];
`else
wire dest = s_data[4];
`endif

always @(posedge clk) begin
    m0_valid <= 1'b0;
    m1_valid <= 1'b0;
    if (rst) begin
        in_frame <= 1'b0;
        cur_port <= 1'b0;
    end else if (s_valid) begin
        if (!in_frame) begin
            in_frame <= !s_last;
            cur_port <= dest;
            if (dest) begin
                m1_valid <= 1'b1;
                m1_data <= s_data;
                m1_last <= s_last;
            end else begin
                m0_valid <= 1'b1;
                m0_data <= s_data;
                m0_last <= s_last;
            end
        end else begin
            if (s_last)
                in_frame <= 1'b0;
            if (cur_port) begin
                m1_valid <= 1'b1;
                m1_data <= s_data;
                m1_last <= s_last;
            end else begin
                m0_valid <= 1'b1;
                m0_data <= s_data;
                m0_last <= s_last;
            end
        end
    end
end
endmodule
)VLG";

// -------------------------------------------------------------------
// sdspi: SD-over-SPI controller (ZipCPU sdspi).
// BUG_D9 (Endianness Mismatch): the two CRC response bytes are packed
// into the 16-bit CRC word in the wrong order.
// BUG_C1 (Deadlock): the transmit/receive enables form the paper's
// circular dependency (if (a) b <= 1; if (b) a <= 1) and the reset
// leaves both at 0, so no command is ever accepted.
// BUG_C3 (Signal Asynchrony): the checksum summary valid is asserted
// one cycle before the doubly-buffered summary data.
// -------------------------------------------------------------------
const char *sdspi_v = R"VLG(
module sdspi (
    input wire clk,
    input wire rst,
    input wire cmd_valid,
    input wire [5:0] cmd_index,
    output wire cmd_ready,
    input wire byte_valid,
    input wire [7:0] byte_data,
    output reg resp_valid,
    output reg [7:0] resp_data,
    output reg [15:0] resp_crc,
    output reg sum_valid,
    output reg [7:0] sum_data,
    output reg busy
);
localparam C_IDLE = 2'd0, C_WAIT = 2'd1, C_DONE = 2'd2;
reg [1:0] state;
reg [1:0] byte_cnt;
reg tx_go;
reg rx_go;
reg [7:0] data_buf;
reg [7:0] sum_buf;
reg fire_d;
wire resp_fire = state == C_WAIT && byte_valid && byte_cnt == 2'd2;
assign cmd_ready = state == C_IDLE && tx_go;

always @(posedge clk) begin
    resp_valid <= 1'b0;
    sum_valid <= 1'b0;
    if (rst) begin
        state <= C_IDLE;
        byte_cnt <= 2'd0;
        rx_go <= 1'b0;
        busy <= 1'b0;
        fire_d <= 1'b0;
`ifdef BUG_C1
        tx_go <= 1'b0;
`else
        tx_go <= 1'b1;
`endif
    end else begin
        if (rx_go)
            tx_go <= 1'b1;
        if (tx_go)
            rx_go <= 1'b1;
        case (state)
          C_IDLE:
            if (cmd_valid && tx_go) begin
                state <= C_WAIT;
                busy <= 1'b1;
                byte_cnt <= 2'd0;
            end
          C_WAIT:
            if (byte_valid) begin
                if (byte_cnt == 2'd0)
                    data_buf <= byte_data;
`ifdef BUG_D9
                if (byte_cnt == 2'd1)
                    resp_crc[7:0] <= byte_data;
                if (byte_cnt == 2'd2)
                    resp_crc[15:8] <= byte_data;
`else
                if (byte_cnt == 2'd1)
                    resp_crc[15:8] <= byte_data;
                if (byte_cnt == 2'd2)
                    resp_crc[7:0] <= byte_data;
`endif
                byte_cnt <= byte_cnt + 2'd1;
                if (byte_cnt == 2'd2)
                    state <= C_DONE;
            end
          C_DONE: begin
            resp_valid <= 1'b1;
            resp_data <= data_buf;
            state <= C_IDLE;
            busy <= 1'b0;
          end
        endcase
        if (resp_fire)
            sum_buf <= data_buf ^ byte_data;
        sum_data <= sum_buf;
`ifdef BUG_C3
        sum_valid <= resp_fire;
`else
        fire_d <= resp_fire;
        sum_valid <= fire_d;
`endif
    end
end
endmodule
)VLG";

// -------------------------------------------------------------------
// frame_fifo: store-and-forward frame FIFO (verilog-ethernet style).
// BUG_D4 (Buffer Overflow): no occupancy check - frames longer than
// the 16-byte memory wrap and overwrite unread data.
// BUG_D11 (Failure-to-Update): the drop flag is never cleared after a
// dropped frame, so every following good frame is silently discarded.
// BUG_D12 (Failure-to-Update): the length counter is not reset at the
// end of a frame, so reported lengths accumulate.
// -------------------------------------------------------------------
const char *frame_fifo_v = R"VLG(
module frame_fifo (
    input wire clk,
    input wire rst,
    input wire s_valid,
    input wire [7:0] s_data,
    input wire s_last,
    input wire s_bad,
    input wire m_ready,
    output reg m_valid,
    output reg [7:0] m_data,
    output reg m_last,
    output reg [7:0] m_len,
    output reg len_valid
);
reg [7:0] memd [0:15];
reg meml [0:15];
reg [4:0] wr_ptr;
reg [4:0] wr_cur;
reg [4:0] rd_ptr;
reg drop;
reg [7:0] len_cnt;
wire [4:0] occupancy = wr_cur - rd_ptr;
wire space_ok = occupancy < 5'd16;

always @(posedge clk) begin
    len_valid <= 1'b0;
    if (rst) begin
        wr_ptr <= 5'd0;
        wr_cur <= 5'd0;
        rd_ptr <= 5'd0;
        drop <= 1'b0;
        len_cnt <= 8'd0;
        m_valid <= 1'b0;
    end else begin
        if (s_valid) begin
`ifdef BUG_D4
            memd[wr_cur[3:0]] <= s_data;
            meml[wr_cur[3:0]] <= s_last;
            wr_cur <= wr_cur + 5'd1;
`else
            // Beats are staged into the memory while space remains;
            // frames flagged for dropping are discarded at commit by
            // reverting wr_cur (their staged bytes are overwritten by
            // the next frame - an intentional drop).
            if (space_ok) begin
                memd[wr_cur[3:0]] <= s_data;
                meml[wr_cur[3:0]] <= s_last;
                wr_cur <= wr_cur + 5'd1;
            end
            if (!space_ok)
                drop <= 1'b1;
`endif
            len_cnt <= len_cnt + 8'd1;
            if (s_last) begin
`ifdef BUG_D4
                if (s_bad) begin
`else
                if (s_bad || drop || !space_ok) begin
`endif
                    wr_cur <= wr_ptr;
                end else begin
                    wr_ptr <= wr_cur + 5'd1;
                    m_len <= len_cnt + 8'd1;
                    len_valid <= 1'b1;
                end
`ifdef BUG_D11
`else
                drop <= 1'b0;
`endif
`ifdef BUG_D12
`else
                len_cnt <= 8'd0;
`endif
            end
        end
        if (!m_valid || m_ready) begin
            if (rd_ptr != wr_ptr) begin
                m_valid <= 1'b1;
                m_data <= memd[rd_ptr[3:0]];
                m_last <= meml[rd_ptr[3:0]];
                rd_ptr <= rd_ptr + 5'd1;
            end else begin
                m_valid <= 1'b0;
            end
        end
    end
end
endmodule
)VLG";

// -------------------------------------------------------------------
// frame_len: frame length measurer.
// BUG_D13 (Failure-to-Update): the beat counter is not cleared when a
// frame ends, so every subsequent length report drifts upward.
// -------------------------------------------------------------------
const char *frame_len_v = R"VLG(
module frame_len (
    input wire clk,
    input wire rst,
    input wire s_valid,
    input wire s_last,
    output reg len_valid,
    output reg [15:0] len
);
reg [15:0] cnt;

always @(posedge clk) begin
    len_valid <= 1'b0;
    if (rst) begin
        cnt <= 16'd0;
    end else if (s_valid) begin
        cnt <= cnt + 16'd1;
        if (s_last) begin
            len <= cnt + 16'd1;
            len_valid <= 1'b1;
`ifdef BUG_D13
`else
            cnt <= 16'd0;
`endif
        end
    end
end
endmodule
)VLG";

// -------------------------------------------------------------------
// axis_fifo: AXI-Stream register slice with a skid buffer.
// BUG_C4 (Signal Asynchrony): the skid-buffer valid flag is set one
// cycle after the skid data, so s_ready stays high one cycle too long
// and a second beat overwrites the buffered (unconsumed) one.
// -------------------------------------------------------------------
const char *axis_fifo_v = R"VLG(
module axis_fifo (
    input wire clk,
    input wire rst,
    input wire s_valid,
    input wire [7:0] s_data,
    input wire s_last,
    output wire s_ready,
    output reg m_valid,
    output reg [7:0] m_data,
    output reg m_last,
    input wire m_ready
);
reg [7:0] skid_data;
reg skid_last;
reg skid_valid;
`ifdef BUG_C4
reg skid_pre;
`endif
assign s_ready = !skid_valid;

always @(posedge clk) begin
    if (rst) begin
        m_valid <= 1'b0;
        skid_valid <= 1'b0;
`ifdef BUG_C4
        skid_pre <= 1'b0;
`endif
    end else begin
`ifdef BUG_C4
        skid_valid <= skid_pre;
`endif
        if (s_valid && s_ready) begin
            if (!m_valid || m_ready) begin
                m_data <= s_data;
                m_last <= s_last;
                m_valid <= 1'b1;
            end else begin
                skid_data <= s_data;
                skid_last <= s_last;
`ifdef BUG_C4
                skid_pre <= 1'b1;
`else
                skid_valid <= 1'b1;
`endif
            end
        end else if (m_valid && m_ready) begin
            if (skid_valid) begin
                m_data <= skid_data;
                m_last <= skid_last;
                skid_valid <= 1'b0;
`ifdef BUG_C4
                skid_pre <= 1'b0;
`endif
            end else begin
                m_valid <= 1'b0;
            end
        end
    end
end
endmodule
)VLG";

// -------------------------------------------------------------------
// axil_demo: Xilinx example AXI-Lite endpoint.
// BUG_S1 (Protocol Violation): bvalid is deasserted one cycle after a
// write response regardless of bready; a master that raises bready
// late never sees the response and times out. A bus protocol checker
// flags the dropped response.
// -------------------------------------------------------------------
const char *axil_demo_v = R"VLG(
module axil_demo (
    input wire clk,
    input wire rst,
    input wire awvalid,
    input wire [3:0] awaddr,
    output wire awready,
    input wire wvalid,
    input wire [15:0] wdata,
    output wire wready,
    output reg bvalid,
    input wire bready,
    input wire arvalid,
    input wire [3:0] araddr,
    output wire arready,
    output reg rvalid,
    output reg [15:0] rdata,
    input wire rready
);
reg [15:0] regs [0:15];
wire do_write = awvalid && wvalid && !bvalid;
assign awready = do_write;
assign wready = do_write;
assign arready = !rvalid;

always @(posedge clk) begin
    if (rst) begin
        bvalid <= 1'b0;
        rvalid <= 1'b0;
    end else begin
        if (do_write) begin
            regs[awaddr] <= wdata;
            bvalid <= 1'b1;
        end
`ifdef BUG_S1
        else
            bvalid <= 1'b0;
`else
        else if (bready)
            bvalid <= 1'b0;
`endif
        if (arvalid && arready) begin
            rvalid <= 1'b1;
            rdata <= regs[araddr];
        end else if (rready) begin
            rvalid <= 1'b0;
        end
    end
end
endmodule
)VLG";

// -------------------------------------------------------------------
// axis_demo: Xilinx example AXI-Stream pattern source.
// BUG_S2 (Protocol Violation): the pattern counter advances every
// cycle, so tdata changes while tvalid is high and tready is low -
// the stability rule the protocol checker enforces.
// -------------------------------------------------------------------
const char *axis_demo_v = R"VLG(
module axis_demo (
    input wire clk,
    input wire rst,
    input wire start,
    input wire [7:0] nbeats,
    output reg tvalid,
    output reg [7:0] tdata,
    output reg tlast,
    input wire tready
);
reg [7:0] cnt;
reg active;

always @(posedge clk) begin
    if (rst) begin
        tvalid <= 1'b0;
        active <= 1'b0;
        cnt <= 8'd0;
    end else begin
        if (start && !active) begin
            active <= 1'b1;
            cnt <= 8'd0;
            tvalid <= 1'b1;
            tdata <= 8'd0;
            tlast <= nbeats == 8'd1;
        end else if (active && tvalid) begin
`ifdef BUG_S2
            tdata <= cnt + 8'd1;
            cnt <= cnt + 8'd1;
            if (tready) begin
                tlast <= cnt + 8'd2 >= nbeats;
                if (tlast) begin
                    active <= 1'b0;
                    tvalid <= 1'b0;
                end
            end
`else
            if (tready) begin
                cnt <= cnt + 8'd1;
                tdata <= cnt + 8'd1;
                tlast <= cnt + 8'd2 >= nbeats;
                if (tlast) begin
                    active <= 1'b0;
                    tvalid <= 1'b0;
                end
            end
`endif
        end
    end
end
endmodule
)VLG";

// -------------------------------------------------------------------
// axis_adapter: 16-to-8 bit AXI-Stream width adapter (verilog-axis).
// BUG_S3 (Incomplete Implementation): the adapter never looks at
// s_keep, so a final beat carrying a single byte still emits two -
// the unhandled corner case appends a garbage byte to every odd-length
// frame.
// -------------------------------------------------------------------
const char *axis_adapter_v = R"VLG(
module axis_adapter (
    input wire clk,
    input wire rst,
    input wire s_valid,
    input wire [15:0] s_data,
    input wire [1:0] s_keep,
    input wire s_last,
    output wire s_ready,
    output reg m_valid,
    output reg [7:0] m_data,
    output reg m_last
);
reg phase;
reg [7:0] hi_buf;
reg hi_last;
assign s_ready = !phase;

always @(posedge clk) begin
    m_valid <= 1'b0;
    if (rst) begin
        phase <= 1'b0;
    end else begin
        if (s_valid && s_ready) begin
            m_valid <= 1'b1;
            m_data <= s_data[7:0];
`ifdef BUG_S3
            phase <= 1'b1;
            hi_buf <= s_data[15:8];
            hi_last <= s_last;
            m_last <= 1'b0;
`else
            if (s_keep[1]) begin
                phase <= 1'b1;
                hi_buf <= s_data[15:8];
                hi_last <= s_last;
                m_last <= 1'b0;
            end else begin
                m_last <= s_last;
            end
`endif
        end else if (phase) begin
            m_valid <= 1'b1;
            m_data <= hi_buf;
            m_last <= hi_last;
            phase <= 1'b0;
        end
    end
end
endmodule
)VLG";

} // namespace

const std::map<std::string, std::string> &
designSources()
{
    static const std::map<std::string, std::string> sources = {
        {"rsd", rsd_v},
        {"grayscale", grayscale_v},
        {"optimus", optimus_v},
        {"sha512", sha512_v},
        {"fft", fft_v},
        {"fadd", fadd_v},
        {"axis_switch", axis_switch_v},
        {"sdspi", sdspi_v},
        {"frame_fifo", frame_fifo_v},
        {"frame_len", frame_len_v},
        {"axis_fifo", axis_fifo_v},
        {"axil_demo", axil_demo_v},
        {"axis_demo", axis_demo_v},
        {"axis_adapter", axis_adapter_v},
    };
    return sources;
}

const std::string &
designSource(const std::string &name)
{
    const auto &sources = designSources();
    auto it = sources.find(name);
    if (it == sources.end())
        fatal("unknown testbed design '%s'", name.c_str());
    return it->second;
}

std::vector<std::string>
designNames()
{
    std::vector<std::string> names;
    for (const auto &[name, source] : designSources())
        names.push_back(name);
    return names;
}

} // namespace hwdbg::bugs
