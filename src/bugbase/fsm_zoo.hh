/**
 * @file
 * FSM-detection accuracy corpus.
 *
 * The paper evaluates FSM Monitor's detection heuristics against 32
 * manually-identified FSMs in its benchmark suite (0 false positives,
 * 5 false negatives, §4.2). Our corpus is the 14 testbed designs (6
 * hand-labeled FSMs) plus a generated "zoo" module containing 26 more
 * labeled state machines in a spread of real coding styles - including
 * the styles the paper's heuristics are known to miss (two-process
 * FSMs whose next state flows through a wire, counter-encoded
 * sequencers, bit-probed status words, and data-loaded states) - along
 * with labeled non-FSM decoy registers (counters, shift registers,
 * accumulators) to measure false positives.
 */

#ifndef HWDBG_BUGBASE_FSM_ZOO_HH
#define HWDBG_BUGBASE_FSM_ZOO_HH

#include <string>
#include <vector>

namespace hwdbg::bugs
{

struct FsmZoo
{
    /** Verilog source of the zoo module ("fsm_zoo"). */
    std::string source;
    /** Hand-labeled state variables (ground truth). */
    std::vector<std::string> labeledFsms;
    /** Labeled FSMs written in styles the heuristics cannot see. */
    std::vector<std::string> hardStyles;
    /** Labeled non-FSM registers (false-positive bait). */
    std::vector<std::string> decoys;
};

const FsmZoo &fsmZoo();

/** Hand labels for the testbed designs: design name -> state vars. */
const std::vector<std::pair<std::string, std::string>> &
testbedFsmLabels();

} // namespace hwdbg::bugs

#endif // HWDBG_BUGBASE_FSM_ZOO_HH
