#include "obs/jsoncheck.hh"

#include <cctype>
#include <cstdlib>
#include <map>

namespace hwdbg::obs
{

const JsonValue *
JsonValue::get(const std::string &key) const
{
    for (const auto &[name, value] : members)
        if (name == key)
            return value.get();
    return nullptr;
}

namespace
{

class JsonParser
{
  public:
    explicit JsonParser(const std::string &text) : text_(text) {}

    JsonPtr
    run(std::string *error)
    {
        error_.clear();
        JsonPtr root = value();
        skipWs();
        if (root && pos_ != text_.size())
            fail("trailing characters after document");
        if (!error_.empty()) {
            *error = "offset " + std::to_string(pos_) + ": " + error_;
            return nullptr;
        }
        error->clear();
        return root;
    }

  private:
    void
    fail(const std::string &why)
    {
        if (error_.empty())
            error_ = why;
    }

    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r'))
            ++pos_;
    }

    bool
    eat(char c)
    {
        skipWs();
        if (pos_ < text_.size() && text_[pos_] == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    bool
    literal(const char *word)
    {
        size_t n = 0;
        while (word[n])
            ++n;
        if (text_.compare(pos_, n, word) != 0)
            return false;
        pos_ += n;
        return true;
    }

    JsonPtr
    value()
    {
        skipWs();
        if (pos_ >= text_.size()) {
            fail("unexpected end of input");
            return nullptr;
        }
        char c = text_[pos_];
        if (c == '{')
            return object();
        if (c == '[')
            return array();
        if (c == '"')
            return string();
        if (c == 't' || c == 'f' || c == 'n')
            return keyword();
        if (c == '-' || (c >= '0' && c <= '9'))
            return numberValue();
        fail(std::string("unexpected character '") + c + "'");
        return nullptr;
    }

    JsonPtr
    object()
    {
        ++pos_; // '{'
        auto out = std::make_shared<JsonValue>();
        out->kind = JsonValue::Kind::Object;
        if (eat('}'))
            return out;
        for (;;) {
            skipWs();
            if (pos_ >= text_.size() || text_[pos_] != '"') {
                fail("expected object key string");
                return nullptr;
            }
            JsonPtr key = string();
            if (!key)
                return nullptr;
            if (!eat(':')) {
                fail("expected ':' after object key");
                return nullptr;
            }
            JsonPtr val = value();
            if (!val)
                return nullptr;
            out->members.emplace_back(key->text, std::move(val));
            if (eat(','))
                continue;
            if (eat('}'))
                return out;
            fail("expected ',' or '}' in object");
            return nullptr;
        }
    }

    JsonPtr
    array()
    {
        ++pos_; // '['
        auto out = std::make_shared<JsonValue>();
        out->kind = JsonValue::Kind::Array;
        if (eat(']'))
            return out;
        for (;;) {
            JsonPtr val = value();
            if (!val)
                return nullptr;
            out->elems.push_back(std::move(val));
            if (eat(','))
                continue;
            if (eat(']'))
                return out;
            fail("expected ',' or ']' in array");
            return nullptr;
        }
    }

    JsonPtr
    string()
    {
        ++pos_; // '"'
        auto out = std::make_shared<JsonValue>();
        out->kind = JsonValue::Kind::String;
        while (pos_ < text_.size()) {
            char c = text_[pos_++];
            if (c == '"')
                return out;
            if (static_cast<unsigned char>(c) < 0x20) {
                fail("unescaped control character in string");
                return nullptr;
            }
            if (c != '\\') {
                out->text += c;
                continue;
            }
            if (pos_ >= text_.size())
                break;
            char esc = text_[pos_++];
            switch (esc) {
              case '"': out->text += '"'; break;
              case '\\': out->text += '\\'; break;
              case '/': out->text += '/'; break;
              case 'b': out->text += '\b'; break;
              case 'f': out->text += '\f'; break;
              case 'n': out->text += '\n'; break;
              case 'r': out->text += '\r'; break;
              case 't': out->text += '\t'; break;
              case 'u': {
                if (pos_ + 4 > text_.size()) {
                    fail("truncated \\u escape");
                    return nullptr;
                }
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    char h = text_[pos_++];
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        code |= static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        code |= static_cast<unsigned>(h - 'A' + 10);
                    else {
                        fail("bad \\u escape digit");
                        return nullptr;
                    }
                }
                // Validation only: fold to a byte, no UTF-8 encoding.
                out->text += static_cast<char>(code & 0xFF);
                break;
              }
              default:
                fail("unknown escape in string");
                return nullptr;
            }
        }
        fail("unterminated string");
        return nullptr;
    }

    JsonPtr
    keyword()
    {
        auto out = std::make_shared<JsonValue>();
        if (literal("true")) {
            out->kind = JsonValue::Kind::Bool;
            out->boolean = true;
            return out;
        }
        if (literal("false")) {
            out->kind = JsonValue::Kind::Bool;
            return out;
        }
        if (literal("null"))
            return out;
        fail("unknown keyword");
        return nullptr;
    }

    JsonPtr
    numberValue()
    {
        size_t start = pos_;
        if (pos_ < text_.size() && text_[pos_] == '-')
            ++pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E' || text_[pos_] == '+' ||
                text_[pos_] == '-'))
            ++pos_;
        std::string body = text_.substr(start, pos_ - start);
        char *end = nullptr;
        double v = std::strtod(body.c_str(), &end);
        if (end != body.c_str() + body.size() || body.empty()) {
            fail("malformed number");
            return nullptr;
        }
        auto out = std::make_shared<JsonValue>();
        out->kind = JsonValue::Kind::Number;
        out->number = v;
        return out;
    }

    const std::string &text_;
    size_t pos_ = 0;
    std::string error_;
};

} // namespace

JsonPtr
parseJson(const std::string &text, std::string *error)
{
    return JsonParser(text).run(error);
}

std::string
checkTraceJson(const std::string &text)
{
    std::string error;
    JsonPtr root = parseJson(text, &error);
    if (!root)
        return "not JSON: " + error;
    if (!root->isObject())
        return "trace root is not an object";
    const JsonValue *events = root->get("traceEvents");
    if (!events || !events->isArray())
        return "missing \"traceEvents\" array";

    struct TidState
    {
        int depth = 0;
        double lastTs = -1;
    };
    std::map<double, TidState> perTid;
    size_t spans = 0;
    for (size_t i = 0; i < events->elems.size(); ++i) {
        const JsonValue &event = *events->elems[i];
        std::string at = "event " + std::to_string(i) + ": ";
        if (!event.isObject())
            return at + "not an object";
        const JsonValue *ph = event.get("ph");
        if (!ph || !ph->isString() || ph->text.size() != 1)
            return at + "missing one-character \"ph\"";
        const JsonValue *name = event.get("name");
        if (!name || !name->isString())
            return at + "missing \"name\" string";
        if (ph->text == "M") {
            if (name->text == "thread_name") {
                const JsonValue *args = event.get("args");
                if (!args || !args->isObject() || !args->get("name") ||
                    !args->get("name")->isString())
                    return at + "thread_name without args.name";
            }
            continue;
        }
        if (ph->text != "B" && ph->text != "E")
            return at + "unexpected ph \"" + ph->text + "\"";
        const JsonValue *ts = event.get("ts");
        const JsonValue *pid = event.get("pid");
        const JsonValue *tid = event.get("tid");
        if (!ts || !ts->isNumber())
            return at + "missing numeric \"ts\"";
        if (!pid || !pid->isNumber() || !tid || !tid->isNumber())
            return at + "missing numeric \"pid\"/\"tid\"";
        TidState &state = perTid[tid->number];
        if (ts->number < state.lastTs)
            return at + "timestamps not monotonic on tid " +
                   std::to_string(static_cast<long long>(tid->number));
        state.lastTs = ts->number;
        if (ph->text == "B") {
            ++state.depth;
            ++spans;
            if (name->text.empty())
                return at + "B event with empty name";
        } else {
            if (--state.depth < 0)
                return at + "E event without a matching B on tid " +
                       std::to_string(static_cast<long long>(tid->number));
        }
    }
    for (const auto &[tid, state] : perTid)
        if (state.depth != 0)
            return "unbalanced spans on tid " +
                   std::to_string(static_cast<long long>(tid)) + " (" +
                   std::to_string(state.depth) + " unclosed)";
    if (spans == 0)
        return "trace contains no spans";
    return "";
}

namespace
{

std::string
checkNumberMap(const JsonValue *group, const char *what)
{
    if (!group || !group->isObject())
        return std::string("missing \"") + what + "\" object";
    for (const auto &[name, value] : group->members) {
        if (!value->isNumber())
            return std::string(what) + "." + name + " is not a number";
        if (value->number < 0)
            return std::string(what) + "." + name + " is negative";
    }
    return "";
}

} // namespace

std::string
checkMetricsJson(const std::string &text)
{
    std::string error;
    JsonPtr root = parseJson(text, &error);
    if (!root)
        return "not JSON: " + error;
    if (!root->isObject())
        return "metrics root is not an object";
    if (std::string err = checkNumberMap(root->get("counters"),
                                         "counters");
        !err.empty())
        return err;
    if (std::string err = checkNumberMap(root->get("gauges"), "gauges");
        !err.empty())
        return err;
    const JsonValue *hists = root->get("histograms");
    if (!hists || !hists->isObject())
        return "missing \"histograms\" object";
    for (const auto &[name, hist] : hists->members) {
        std::string at = "histograms." + name + ": ";
        if (!hist->isObject())
            return at + "not an object";
        const JsonValue *buckets = hist->get("buckets");
        const JsonValue *count = hist->get("count");
        if (!buckets || !buckets->isArray())
            return at + "missing \"buckets\" array";
        if (!count || !count->isNumber())
            return at + "missing numeric \"count\"";
        for (const char *field : {"sum", "min", "max"}) {
            const JsonValue *v = hist->get(field);
            if (!v || !v->isNumber())
                return at + "missing numeric \"" + field + "\"";
        }
        double total = 0;
        double lastBound = -1;
        for (size_t i = 0; i < buckets->elems.size(); ++i) {
            const JsonValue &pair = *buckets->elems[i];
            if (!pair.isArray() || pair.elems.size() != 2)
                return at + "bucket " + std::to_string(i) +
                       " is not a [bound, count] pair";
            const JsonValue &bound = *pair.elems[0];
            const JsonValue &n = *pair.elems[1];
            bool lastBucket = i + 1 == buckets->elems.size();
            if (lastBucket) {
                if (bound.kind != JsonValue::Kind::Null)
                    return at + "final bucket bound must be null (+inf)";
            } else {
                if (!bound.isNumber())
                    return at + "bucket bound is not a number";
                if (bound.number <= lastBound)
                    return at + "bucket bounds not increasing";
                lastBound = bound.number;
            }
            if (!n.isNumber() || n.number < 0)
                return at + "bucket count invalid";
            total += n.number;
        }
        if (total != count->number)
            return at + "bucket counts do not sum to \"count\"";
    }
    return "";
}

} // namespace hwdbg::obs
