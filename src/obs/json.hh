/**
 * @file
 * Shared JSON emission helpers: the one string escaper every hwdbg
 * emitter uses, and the build-provenance stamp carried by every JSON
 * artifact (metrics, traces, fuzz reports, debug transcripts, coverage
 * files).
 *
 * Before this header existed, five emitters each carried a hand-rolled
 * escaper with subtly different escape tables; they now all call
 * jsonEscape() so transcripts and reports agree on byte-level escaping.
 */

#ifndef HWDBG_OBS_JSON_HH
#define HWDBG_OBS_JSON_HH

#include <string>

namespace hwdbg::obs
{

/**
 * Escape @p text for embedding inside a JSON string literal: quotes
 * and backslashes are backslash-escaped, \n/\t/\r use their short
 * forms, other control bytes (< 0x20) become \u00XX, and everything
 * else (including non-ASCII UTF-8 bytes) passes through untouched.
 */
std::string jsonEscape(const std::string &text);

/** Compile-time build provenance (CMake stamps the values in). */
struct BuildInfo
{
    std::string version;   ///< hwdbg release version
    std::string git;       ///< short git hash, or "unknown"
    std::string buildType; ///< CMAKE_BUILD_TYPE, or "unknown"
};

const BuildInfo &buildInfo();

/**
 * The provenance object every JSON artifact embeds under a "build"
 * key: {"tool":"hwdbg","version":...,"git":...,"type":...}. Constant
 * within one build, so double-run byte-diff tests stay valid.
 */
std::string buildInfoJson();

} // namespace hwdbg::obs

#endif // HWDBG_OBS_JSON_HH
