/**
 * @file
 * Hierarchical trace spans emitted as Chrome/Perfetto trace-event JSON.
 *
 * Usage: wrap a phase in an ObsSpan and it shows up as one slice on the
 * calling thread's track, nested under whatever span encloses it:
 *
 *     obs::ObsSpan span("elaborate");
 *     ... work ...
 *
 * A session is process-global: startTrace() arms it, stopTrace()
 * disarms it and returns the JSON ({"traceEvents": [...]}), loadable
 * directly in https://ui.perfetto.dev or chrome://tracing. The CLI
 * binds a session to --trace FILE.
 *
 * Threading: each thread appends to its own buffer (registered once,
 * guarded by a per-buffer mutex that is uncontended on the hot path),
 * so spans from the fuzz worker pool never serialize against each
 * other. setTraceThreadName() labels the calling thread's track.
 *
 * The disabled path is branch-on-null: when no session is armed, an
 * ObsSpan is one relaxed atomic load in the constructor and one in the
 * destructor — cheap enough to leave every span compiled into the
 * tier-1 build.
 */

#ifndef HWDBG_OBS_TRACE_HH
#define HWDBG_OBS_TRACE_HH

#include <string>

namespace hwdbg::obs
{

/** True while a trace session is armed (one relaxed load). */
bool traceEnabled();

/** Arm a session; clears events from any previous session. */
void startTrace();

/**
 * Disarm the session and render every recorded event as Chrome
 * trace-event JSON. Spans still open when the session stops get a
 * synthetic end so the stream stays balanced.
 */
std::string stopTrace();

/** stopTrace() straight to a file; false (and a warning) on IO error. */
bool writeTrace(const std::string &path);

/** Label the calling thread's track (e.g. "fuzz-worker-3"). */
void setTraceThreadName(const std::string &name);

/**
 * Register a named virtual track that is not bound to any thread —
 * e.g. one track per serve session, written by whichever connection
 * thread handles a command. Returns the track id for the ObsSpan
 * track overloads. Tracks live for the process, so callers that mint
 * them per logical entity should only do so while traceEnabled().
 */
uint32_t traceRegisterTrack(const std::string &name);

/** RAII span on the calling thread's track, or on a virtual track. */
class ObsSpan
{
  public:
    explicit ObsSpan(const char *name);
    explicit ObsSpan(const std::string &name);
    /** Record onto virtual track @p track (0 = the calling thread). */
    ObsSpan(const char *name, uint32_t track);
    ObsSpan(const std::string &name, uint32_t track);
    ~ObsSpan();

    ObsSpan(const ObsSpan &) = delete;
    ObsSpan &operator=(const ObsSpan &) = delete;

  private:
    void begin(const char *name);
    /** Session generation this span recorded into; 0 = inactive. */
    uint64_t session_ = 0;
    /** Virtual track the span records on; 0 = thread-local buffer. */
    uint32_t track_ = 0;
};

} // namespace hwdbg::obs

#endif // HWDBG_OBS_TRACE_HH
