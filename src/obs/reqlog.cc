#include "obs/reqlog.hh"

#include <ostream>
#include <sstream>

#include "obs/json.hh"

namespace hwdbg::obs
{

namespace
{

/** Latency ladder: 1 µs .. ~16.7 s in powers of two, +inf above. */
std::vector<uint64_t>
latencyBounds()
{
    std::vector<uint64_t> bounds;
    for (uint64_t b = 1; b <= (uint64_t{1} << 24); b *= 2)
        bounds.push_back(b);
    return bounds;
}

} // namespace

RequestLog::CommandStats::CommandStats() : latency(latencyBounds()) {}

RequestLog::RequestLog(size_t capacity, size_t slowCapacity)
    : capacity_(capacity ? capacity : 1),
      slowCapacity_(slowCapacity ? slowCapacity : 1)
{
}

void
RequestLog::setEnabled(bool on)
{
    enabled_.store(on, std::memory_order_relaxed);
}

bool
RequestLog::enabled() const
{
    return enabled_.load(std::memory_order_relaxed);
}

void
RequestLog::setSlowThresholdUs(uint64_t us)
{
    slowThresholdUs_.store(us, std::memory_order_relaxed);
}

uint64_t
RequestLog::slowThresholdUs() const
{
    return slowThresholdUs_.load(std::memory_order_relaxed);
}

void
RequestLog::setSpill(std::ostream *out)
{
    std::lock_guard<std::mutex> guard(mu_);
    spill_ = out;
}

uint64_t
RequestLog::nextRequestId()
{
    return nextId_.fetch_add(1, std::memory_order_relaxed) + 1;
}

void
RequestLog::record(const RequestEvent &event)
{
    if (!enabled())
        return;
    std::lock_guard<std::mutex> guard(mu_);
    if (ring_.size() >= capacity_)
        ring_.pop_front();
    ring_.push_back(event);
    ++requests_;
    if (!event.ok)
        ++errors_;
    if (event.latencyUs >= slowThresholdUs()) {
        ++slowCount_;
        if (slowRing_.size() >= slowCapacity_)
            slowRing_.pop_front();
        slowRing_.push_back(event);
    }
    auto &slot = commands_[event.cmd];
    if (!slot)
        slot = std::make_unique<CommandStats>();
    ++slot->count;
    if (!event.ok)
        ++slot->errors;
    slot->latency.record(event.latencyUs);
    if (spill_)
        *spill_ << eventJson(event) << "\n";
}

uint64_t
RequestLog::requests() const
{
    std::lock_guard<std::mutex> guard(mu_);
    return requests_;
}

uint64_t
RequestLog::errors() const
{
    std::lock_guard<std::mutex> guard(mu_);
    return errors_;
}

uint64_t
RequestLog::slowCount() const
{
    std::lock_guard<std::mutex> guard(mu_);
    return slowCount_;
}

std::vector<RequestEvent>
RequestLog::recent() const
{
    std::lock_guard<std::mutex> guard(mu_);
    return std::vector<RequestEvent>(ring_.begin(), ring_.end());
}

std::vector<RequestEvent>
RequestLog::slow() const
{
    std::lock_guard<std::mutex> guard(mu_);
    return std::vector<RequestEvent>(slowRing_.begin(), slowRing_.end());
}

std::vector<CommandSnapshot>
RequestLog::commands() const
{
    std::lock_guard<std::mutex> guard(mu_);
    std::vector<CommandSnapshot> out;
    out.reserve(commands_.size());
    for (const auto &[cmd, stats] : commands_) {
        CommandSnapshot snap;
        snap.cmd = cmd;
        snap.count = stats->count;
        snap.errors = stats->errors;
        snap.p50Us = stats->latency.quantile(0.50);
        snap.p95Us = stats->latency.quantile(0.95);
        snap.p99Us = stats->latency.quantile(0.99);
        snap.maxUs = stats->latency.max();
        out.push_back(std::move(snap));
    }
    return out;
}

void
RequestLog::reset()
{
    std::lock_guard<std::mutex> guard(mu_);
    ring_.clear();
    slowRing_.clear();
    commands_.clear();
    requests_ = 0;
    errors_ = 0;
    slowCount_ = 0;
}

std::string
RequestLog::eventJson(const RequestEvent &event)
{
    std::ostringstream out;
    out << "{\"request\": " << event.id << ", \"session\": "
        << event.session << ", \"cmd\": \"" << jsonEscape(event.cmd)
        << "\", \"ok\": " << (event.ok ? "true" : "false")
        << ", \"latency_us\": " << event.latencyUs << "}";
    return out.str();
}

} // namespace hwdbg::obs
