/**
 * @file
 * Process-wide metrics registry in the gem5-stats spirit.
 *
 * Three instrument kinds, all safe to hit from any thread:
 *
 *  - Counter: monotonically increasing u64 (relaxed atomic add).
 *  - Gauge: last-written / maximum u64 (use setMax() from concurrent
 *    code so the stored value stays order-independent).
 *  - Histogram: fixed upper-bound buckets plus count/sum/min/max.
 *    Bucket i counts samples with value <= bounds[i]; the final
 *    implicit bucket is +inf.
 *
 * The fast path is lock-free: instruments are found once per call site
 * (a function-local static behind the HWDBG_STAT_* macros) and then
 * updated with relaxed atomics. The registry mutex is only taken at
 * first registration and at snapshot time.
 *
 * Recording is gated on a global enable flag (--metrics on the CLI,
 * enableMetrics() in tests): the disabled path of every macro is one
 * relaxed load and a branch, cheap enough to stay compiled into the
 * tier-1 build. Because every recorded quantity is a deterministic
 * function of the work performed (never of wall time or thread
 * interleaving), snapshots of the same workload are byte-identical no
 * matter how many threads ran it.
 *
 * NOTE: the HWDBG_STAT_* macros cache the instrument per call site, so
 * they are only correct with a fixed name. For dynamic names (e.g.
 * per-rule counters) call counter(name).inc() directly.
 */

#ifndef HWDBG_OBS_METRICS_HH
#define HWDBG_OBS_METRICS_HH

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace hwdbg::obs
{

class Counter
{
  public:
    void inc(uint64_t n = 1) { val_.fetch_add(n, std::memory_order_relaxed); }
    uint64_t value() const { return val_.load(std::memory_order_relaxed); }
    void reset() { val_.store(0, std::memory_order_relaxed); }

  private:
    std::atomic<uint64_t> val_{0};
};

class Gauge
{
  public:
    void set(uint64_t v) { val_.store(v, std::memory_order_relaxed); }
    /** Raise to @p v if larger (order-independent under concurrency). */
    void setMax(uint64_t v)
    {
        uint64_t cur = val_.load(std::memory_order_relaxed);
        while (cur < v &&
               !val_.compare_exchange_weak(cur, v,
                                           std::memory_order_relaxed)) {
        }
    }
    uint64_t value() const { return val_.load(std::memory_order_relaxed); }
    void reset() { val_.store(0, std::memory_order_relaxed); }

  private:
    std::atomic<uint64_t> val_{0};
};

class Histogram
{
  public:
    /** @p bounds must be strictly increasing; empty selects the
     *  default powers-of-two ladder 1,2,4,...,65536. */
    explicit Histogram(std::vector<uint64_t> bounds);

    void record(uint64_t v);

    const std::vector<uint64_t> &bounds() const { return bounds_; }
    /** Count in bucket @p i; bucket bounds_.size() is the +inf bucket. */
    uint64_t bucketCount(size_t i) const
    {
        return counts_[i].load(std::memory_order_relaxed);
    }
    uint64_t count() const { return count_.load(std::memory_order_relaxed); }
    uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
    /** Smallest/largest recorded sample; 0 when empty. */
    uint64_t min() const;
    uint64_t max() const { return max_.load(std::memory_order_relaxed); }
    /**
     * Estimated sample value at quantile @p q in [0,1]: the upper
     * bound of the first bucket whose cumulative count reaches
     * ceil(q * count()), clamped into [min(), max()] so the estimate
     * never leaves the observed range (the +inf bucket reports
     * max()). An empty histogram returns 0 — the same convention as
     * min(), so p50/p95/p99 of a never-sampled latency render 0.
     */
    uint64_t quantile(double q) const;
    void reset();

  private:
    std::vector<uint64_t> bounds_;
    std::vector<std::atomic<uint64_t>> counts_;
    std::atomic<uint64_t> count_{0};
    std::atomic<uint64_t> sum_{0};
    std::atomic<uint64_t> min_{UINT64_MAX};
    std::atomic<uint64_t> max_{0};
};

/** True when metric recording is on (one relaxed load). */
bool metricsEnabled();
/** Turn recording on/off (instruments and values are kept either way). */
void enableMetrics(bool on = true);
/** Zero every registered instrument (references stay valid). */
void resetMetrics();

/** Find-or-create; references stay valid for the process lifetime. */
Counter &counter(const std::string &name);
Gauge &gauge(const std::string &name);
Histogram &histogram(const std::string &name,
                     const std::vector<uint64_t> &bounds = {});

/** Current value of a counter; 0 when it was never registered. */
uint64_t counterValue(const std::string &name);

/** Deterministic snapshots (instruments sorted by name). */
std::string metricsJson();
std::string metricsText();

/**
 * Write a snapshot to @p path: JSON when it ends in ".json", text
 * otherwise. Returns false (and warns) when the file cannot be written.
 */
bool writeMetrics(const std::string &path);

} // namespace hwdbg::obs

// Call-site macros: one relaxed load + branch when disabled; the
// instrument lookup happens once per site, on the first enabled hit.
#define HWDBG_STAT_INC(name, n)                                         \
    do {                                                                \
        if (::hwdbg::obs::metricsEnabled()) {                           \
            static ::hwdbg::obs::Counter &hwdbg_stat_c_ =               \
                ::hwdbg::obs::counter(name);                            \
            hwdbg_stat_c_.inc(n);                                       \
        }                                                               \
    } while (0)

#define HWDBG_STAT_MAX(name, v)                                         \
    do {                                                                \
        if (::hwdbg::obs::metricsEnabled()) {                           \
            static ::hwdbg::obs::Gauge &hwdbg_stat_g_ =                 \
                ::hwdbg::obs::gauge(name);                              \
            hwdbg_stat_g_.setMax(v);                                    \
        }                                                               \
    } while (0)

#define HWDBG_STAT_HIST(name, v)                                        \
    do {                                                                \
        if (::hwdbg::obs::metricsEnabled()) {                           \
            static ::hwdbg::obs::Histogram &hwdbg_stat_h_ =             \
                ::hwdbg::obs::histogram(name);                          \
            hwdbg_stat_h_.record(v);                                    \
        }                                                               \
    } while (0)

#endif // HWDBG_OBS_METRICS_HH
