/**
 * @file
 * Structured per-request event log for long-lived servers.
 *
 * Every completed request is recorded as one RequestEvent (request id,
 * session id, command kind, outcome, latency) into a bounded in-memory
 * ring. Requests at or above a configurable latency threshold are
 * additionally kept in a separate slow-request ring so they survive
 * churn in the main ring, and every event can be spilled as one JSON
 * line to an optional stream for offline analysis.
 *
 * Per-command aggregates (count, errors, latency histogram with
 * p50/p95/p99 export) accumulate alongside the rings, so a stats
 * snapshot never has to replay events.
 *
 * Threading: record() and every accessor take one mutex; the expected
 * call rate (one record per protocol command) is far below contention
 * territory, and a single lock keeps ring + aggregates + spill
 * mutually consistent. The disabled path is one relaxed atomic load.
 * Latency numbers are wall-clock and therefore nondeterministic; all
 * JSON fields derived from them carry a `_us` suffix so callers can
 * scrub them uniformly when comparing documents.
 */

#ifndef HWDBG_OBS_REQLOG_HH
#define HWDBG_OBS_REQLOG_HH

#include <atomic>
#include <cstdint>
#include <deque>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.hh"

namespace hwdbg::obs
{

/** One completed request. */
struct RequestEvent
{
    uint64_t id = 0;        ///< Request id, 1-based, process-unique.
    uint64_t session = 0;   ///< Owning session; 0 = server-level.
    std::string cmd;        ///< Command kind ("open", "run", ...).
    bool ok = true;         ///< Protocol outcome.
    uint64_t latencyUs = 0; ///< Wall-clock service time.
};

/** Value-type snapshot of one command's aggregate (safe to hand out). */
struct CommandSnapshot
{
    std::string cmd;
    uint64_t count = 0;
    uint64_t errors = 0;
    uint64_t p50Us = 0;
    uint64_t p95Us = 0;
    uint64_t p99Us = 0;
    uint64_t maxUs = 0;
};

class RequestLog
{
  public:
    /** @p capacity bounds the main ring, @p slowCapacity the slow ring. */
    explicit RequestLog(size_t capacity = 1024, size_t slowCapacity = 64);

    /** Recording gate; record() is one relaxed load + branch when off. */
    void setEnabled(bool on);
    bool enabled() const;

    /** Requests with latency >= the threshold land in the slow ring
     *  (so 0 marks everything slow — handy in tests). */
    void setSlowThresholdUs(uint64_t us);
    uint64_t slowThresholdUs() const;

    /** JSON-lines spill target; null disables. Not owned; the caller
     *  must clear it before the stream dies. */
    void setSpill(std::ostream *out);

    /** Next request id (first call returns 1). Ids are handed out even
     *  while recording is disabled so they stay unique. */
    uint64_t nextRequestId();

    /** Record one completed request; no-op when disabled. */
    void record(const RequestEvent &event);

    uint64_t requests() const;
    uint64_t errors() const;
    uint64_t slowCount() const;

    /** Oldest-first copies of the rings. */
    std::vector<RequestEvent> recent() const;
    std::vector<RequestEvent> slow() const;

    /** Per-command aggregates, sorted by command name. */
    std::vector<CommandSnapshot> commands() const;

    /** Drop rings and aggregates (ids keep counting). */
    void reset();

    /** One-line JSON rendering used for the spill and `slow` output. */
    static std::string eventJson(const RequestEvent &event);

  private:
    struct CommandStats
    {
        uint64_t count = 0;
        uint64_t errors = 0;
        Histogram latency;
        CommandStats();
    };

    mutable std::mutex mu_;
    size_t capacity_;
    size_t slowCapacity_;
    std::deque<RequestEvent> ring_;
    std::deque<RequestEvent> slowRing_;
    std::map<std::string, std::unique_ptr<CommandStats>> commands_;
    uint64_t requests_ = 0;
    uint64_t errors_ = 0;
    uint64_t slowCount_ = 0;
    std::ostream *spill_ = nullptr;
    std::atomic<bool> enabled_{false};
    std::atomic<uint64_t> slowThresholdUs_{100000};
    std::atomic<uint64_t> nextId_{0};
};

} // namespace hwdbg::obs

#endif // HWDBG_OBS_REQLOG_HH
