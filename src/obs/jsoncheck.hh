/**
 * @file
 * Minimal JSON parser and schema checks for the obs output formats.
 *
 * CI and the tests validate every --trace / --metrics file against
 * these checks (`hwdbg obscheck`), so a malformed emitter fails fast
 * instead of producing a file Perfetto silently rejects.
 *
 * The parser handles the full JSON grammar (objects, arrays, strings
 * with escapes, numbers, booleans, null) with no external dependency;
 * it exists for validation, not speed.
 */

#ifndef HWDBG_OBS_JSONCHECK_HH
#define HWDBG_OBS_JSONCHECK_HH

#include <map>
#include <memory>
#include <string>
#include <vector>

namespace hwdbg::obs
{

struct JsonValue;
using JsonPtr = std::shared_ptr<JsonValue>;

struct JsonValue
{
    enum class Kind { Null, Bool, Number, String, Array, Object };
    Kind kind = Kind::Null;

    bool boolean = false;
    double number = 0;
    std::string text;
    std::vector<JsonPtr> elems;
    /** Insertion-ordered object members. */
    std::vector<std::pair<std::string, JsonPtr>> members;

    /** Member by key, or nullptr. */
    const JsonValue *get(const std::string &key) const;
    bool isObject() const { return kind == Kind::Object; }
    bool isArray() const { return kind == Kind::Array; }
    bool isNumber() const { return kind == Kind::Number; }
    bool isString() const { return kind == Kind::String; }
};

/**
 * Parse @p text. On success returns the root and clears @p error; on
 * failure returns nullptr and sets @p error to "offset N: reason".
 */
JsonPtr parseJson(const std::string &text, std::string *error);

/**
 * Check that @p text is a Chrome trace-event file our tools emitted:
 * an object with a "traceEvents" array whose B/E events carry
 * name/ts/pid/tid, balance per tid, and have non-decreasing
 * timestamps per tid. Returns "" when valid, else the first violation.
 */
std::string checkTraceJson(const std::string &text);

/**
 * Check that @p text is a metrics snapshot: an object with "counters",
 * "gauges" (number-valued objects) and "histograms" (objects whose
 * bucket counts sum to "count"). Returns "" when valid.
 */
std::string checkMetricsJson(const std::string &text);

} // namespace hwdbg::obs

#endif // HWDBG_OBS_JSONCHECK_HH
