#include "obs/trace.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <memory>
#include <mutex>
#include <sstream>
#include <vector>

#include "common/logging.hh"
#include "obs/json.hh"

namespace hwdbg::obs
{

namespace
{

using Clock = std::chrono::steady_clock;

struct TraceEvent
{
    std::string name;
    char ph; ///< 'B' or 'E'
    double ts; ///< microseconds since session start
};

/** One per thread, owned by the registry, alive for the process. */
struct TraceBuffer
{
    std::mutex lock;
    uint32_t tid;
    std::string threadName;
    std::vector<TraceEvent> events;
    /** Session generation the buffered events belong to. */
    uint64_t session = 0;
};

struct TraceRegistry
{
    std::mutex lock;
    std::vector<std::unique_ptr<TraceBuffer>> buffers;
    Clock::time_point start;
};

/** Session generation: 0 = disarmed; each startTrace() bumps it. */
std::atomic<uint64_t> currentSession{0};
std::atomic<bool> armed{false};
std::atomic<uint64_t> sessionCounter{0};

TraceRegistry &
traceRegistry()
{
    static TraceRegistry *r = new TraceRegistry;
    return *r;
}

TraceBuffer &
myBuffer()
{
    thread_local TraceBuffer *buf = nullptr;
    if (!buf) {
        TraceRegistry &r = traceRegistry();
        std::lock_guard<std::mutex> guard(r.lock);
        r.buffers.push_back(std::make_unique<TraceBuffer>());
        buf = r.buffers.back().get();
        buf->tid = static_cast<uint32_t>(r.buffers.size());
    }
    return *buf;
}

/** Buffer backing track @p tid; null when the id was never issued. */
TraceBuffer *
bufferByTid(uint32_t tid)
{
    TraceRegistry &r = traceRegistry();
    std::lock_guard<std::mutex> guard(r.lock);
    if (tid == 0 || tid > r.buffers.size())
        return nullptr;
    return r.buffers[tid - 1].get();
}

double
nowUs()
{
    return std::chrono::duration<double, std::micro>(
               Clock::now() - traceRegistry().start)
        .count();
}

void
append(TraceBuffer &buf, TraceEvent event, uint64_t session)
{
    std::lock_guard<std::mutex> guard(buf.lock);
    if (buf.session != session) {
        // First event of a new session: drop leftovers from the old one.
        buf.events.clear();
        buf.session = session;
    }
    buf.events.push_back(std::move(event));
}

} // namespace

bool
traceEnabled()
{
    return armed.load(std::memory_order_relaxed);
}

void
startTrace()
{
    TraceRegistry &r = traceRegistry();
    std::lock_guard<std::mutex> guard(r.lock);
    r.start = Clock::now();
    uint64_t session = sessionCounter.fetch_add(1) + 1;
    currentSession.store(session, std::memory_order_relaxed);
    armed.store(true, std::memory_order_release);
}

std::string
stopTrace()
{
    armed.store(false, std::memory_order_release);
    uint64_t session = currentSession.load(std::memory_order_relaxed);
    double endTs = nowUs();

    struct Flat
    {
        uint32_t tid;
        TraceEvent event;
    };
    std::vector<Flat> all;
    std::vector<std::pair<uint32_t, std::string>> names;

    TraceRegistry &r = traceRegistry();
    {
        std::lock_guard<std::mutex> guard(r.lock);
        for (auto &buf : r.buffers) {
            std::lock_guard<std::mutex> bufGuard(buf->lock);
            if (buf->session != session) {
                buf->events.clear();
                continue;
            }
            // Balance spans the session cut off mid-flight.
            int depth = 0;
            for (const auto &event : buf->events)
                depth += event.ph == 'B' ? 1 : -1;
            for (; depth > 0; --depth)
                buf->events.push_back(
                    TraceEvent{"<unfinished>", 'E', endTs});
            if (!buf->threadName.empty())
                names.emplace_back(buf->tid, buf->threadName);
            else if (buf->tid == 1)
                names.emplace_back(buf->tid, "main");
            for (auto &event : buf->events)
                all.push_back(Flat{buf->tid, std::move(event)});
            buf->events.clear();
        }
    }
    // Stable: events of one tid come from one buffer in program order,
    // so equal timestamps never reorder a thread's B/E nesting.
    std::stable_sort(all.begin(), all.end(),
                     [](const Flat &a, const Flat &b) {
                         return a.event.ts < b.event.ts;
                     });

    std::ostringstream out;
    out << "{\"build\": " << buildInfoJson()
        << ",\n\"traceEvents\": [\n";
    bool first = true;
    for (const auto &[tid, name] : names) {
        out << (first ? "" : ",\n")
            << "{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, "
               "\"tid\": "
            << tid << ", \"args\": {\"name\": \"" << jsonEscape(name)
            << "\"}}";
        first = false;
    }
    for (const auto &flat : all) {
        char ts[32];
        std::snprintf(ts, sizeof ts, "%.3f", flat.event.ts);
        out << (first ? "" : ",\n") << "{\"name\": \""
            << jsonEscape(flat.event.name) << "\", \"cat\": \"hwdbg\", "
            << "\"ph\": \"" << flat.event.ph << "\", \"ts\": " << ts
            << ", \"pid\": 1, \"tid\": " << flat.tid << "}";
        first = false;
    }
    out << "\n], \"displayTimeUnit\": \"ms\"}\n";
    return out.str();
}

bool
writeTrace(const std::string &path)
{
    std::string json = stopTrace();
    std::ofstream out(path);
    if (!out) {
        warn("cannot write trace file '%s'", path.c_str());
        return false;
    }
    out << json;
    return static_cast<bool>(out);
}

void
setTraceThreadName(const std::string &name)
{
    TraceBuffer &buf = myBuffer();
    std::lock_guard<std::mutex> guard(buf.lock);
    buf.threadName = name;
}

uint32_t
traceRegisterTrack(const std::string &name)
{
    TraceRegistry &r = traceRegistry();
    std::lock_guard<std::mutex> guard(r.lock);
    r.buffers.push_back(std::make_unique<TraceBuffer>());
    TraceBuffer *buf = r.buffers.back().get();
    buf->tid = static_cast<uint32_t>(r.buffers.size());
    buf->threadName = name;
    return buf->tid;
}

void
ObsSpan::begin(const char *name)
{
    if (!armed.load(std::memory_order_relaxed))
        return;
    uint64_t session = currentSession.load(std::memory_order_relaxed);
    TraceBuffer *buf = track_ ? bufferByTid(track_) : &myBuffer();
    if (!buf)
        return;
    append(*buf, TraceEvent{name, 'B', nowUs()}, session);
    session_ = session;
}

ObsSpan::ObsSpan(const char *name)
{
    begin(name);
}

ObsSpan::ObsSpan(const std::string &name)
{
    begin(name.c_str());
}

ObsSpan::ObsSpan(const char *name, uint32_t track) : track_(track)
{
    begin(name);
}

ObsSpan::ObsSpan(const std::string &name, uint32_t track) : track_(track)
{
    begin(name.c_str());
}

ObsSpan::~ObsSpan()
{
    if (!session_)
        return;
    // Only close the span if the session it opened in is still live;
    // stopTrace() balances anything it cut off.
    if (!armed.load(std::memory_order_relaxed) ||
        currentSession.load(std::memory_order_relaxed) != session_)
        return;
    TraceBuffer *buf = track_ ? bufferByTid(track_) : &myBuffer();
    if (buf)
        append(*buf, TraceEvent{"", 'E', nowUs()}, session_);
}

} // namespace hwdbg::obs
