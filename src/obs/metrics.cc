#include "obs/metrics.hh"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>

#include "common/logging.hh"
#include "obs/json.hh"

namespace hwdbg::obs
{

namespace
{

std::atomic<bool> metricsOn{false};

std::vector<uint64_t>
defaultBounds()
{
    std::vector<uint64_t> bounds;
    for (uint64_t b = 1; b <= 65536; b *= 2)
        bounds.push_back(b);
    return bounds;
}

/**
 * The registry is a leaked singleton: instruments are never removed, so
 * references handed out to call-site statics stay valid through process
 * exit (including exit-time destructors of other globals).
 */
struct Registry
{
    std::mutex lock;
    std::map<std::string, std::unique_ptr<Counter>> counters;
    std::map<std::string, std::unique_ptr<Gauge>> gauges;
    std::map<std::string, std::unique_ptr<Histogram>> histograms;
};

Registry &
registry()
{
    static Registry *r = new Registry;
    return *r;
}

} // namespace

Histogram::Histogram(std::vector<uint64_t> bounds)
    : bounds_(bounds.empty() ? defaultBounds() : std::move(bounds)),
      counts_(bounds_.size() + 1)
{
    for (size_t i = 1; i < bounds_.size(); ++i)
        if (bounds_[i] <= bounds_[i - 1])
            panic("histogram bounds must be strictly increasing");
}

void
Histogram::record(uint64_t v)
{
    size_t i = std::lower_bound(bounds_.begin(), bounds_.end(), v) -
               bounds_.begin();
    counts_[i].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
    uint64_t cur = min_.load(std::memory_order_relaxed);
    while (v < cur &&
           !min_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
    cur = max_.load(std::memory_order_relaxed);
    while (v > cur &&
           !max_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
}

uint64_t
Histogram::min() const
{
    uint64_t v = min_.load(std::memory_order_relaxed);
    return v == UINT64_MAX ? 0 : v;
}

uint64_t
Histogram::quantile(double q) const
{
    uint64_t total = count();
    if (total == 0)
        return 0;
    q = std::min(std::max(q, 0.0), 1.0);
    uint64_t rank = static_cast<uint64_t>(
        std::ceil(q * static_cast<double>(total)));
    if (rank == 0)
        rank = 1;
    uint64_t seen = 0;
    for (size_t i = 0; i < counts_.size(); ++i) {
        seen += counts_[i].load(std::memory_order_relaxed);
        if (seen >= rank) {
            uint64_t bound = i < bounds_.size() ? bounds_[i] : max();
            return std::min(std::max(bound, min()), max());
        }
    }
    // Racing recorders can leave count() ahead of the bucket sums for
    // a moment; the largest observed sample is the honest answer.
    return max();
}

void
Histogram::reset()
{
    for (auto &c : counts_)
        c.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0, std::memory_order_relaxed);
    min_.store(UINT64_MAX, std::memory_order_relaxed);
    max_.store(0, std::memory_order_relaxed);
}

bool
metricsEnabled()
{
    return metricsOn.load(std::memory_order_relaxed);
}

void
enableMetrics(bool on)
{
    metricsOn.store(on, std::memory_order_relaxed);
}

void
resetMetrics()
{
    Registry &r = registry();
    std::lock_guard<std::mutex> guard(r.lock);
    for (auto &[name, c] : r.counters)
        c->reset();
    for (auto &[name, g] : r.gauges)
        g->reset();
    for (auto &[name, h] : r.histograms)
        h->reset();
}

Counter &
counter(const std::string &name)
{
    Registry &r = registry();
    std::lock_guard<std::mutex> guard(r.lock);
    auto &slot = r.counters[name];
    if (!slot)
        slot = std::make_unique<Counter>();
    return *slot;
}

Gauge &
gauge(const std::string &name)
{
    Registry &r = registry();
    std::lock_guard<std::mutex> guard(r.lock);
    auto &slot = r.gauges[name];
    if (!slot)
        slot = std::make_unique<Gauge>();
    return *slot;
}

Histogram &
histogram(const std::string &name, const std::vector<uint64_t> &bounds)
{
    Registry &r = registry();
    std::lock_guard<std::mutex> guard(r.lock);
    auto &slot = r.histograms[name];
    if (!slot)
        slot = std::make_unique<Histogram>(bounds);
    return *slot;
}

uint64_t
counterValue(const std::string &name)
{
    Registry &r = registry();
    std::lock_guard<std::mutex> guard(r.lock);
    auto it = r.counters.find(name);
    return it == r.counters.end() ? 0 : it->second->value();
}

std::string
metricsJson()
{
    Registry &r = registry();
    std::lock_guard<std::mutex> guard(r.lock);
    std::ostringstream out;
    out << "{\n  \"build\": " << buildInfoJson() << ",\n"
        << "  \"counters\": {";
    bool first = true;
    for (const auto &[name, c] : r.counters) {
        out << (first ? "" : ",") << "\n    \"" << name
            << "\": " << c->value();
        first = false;
    }
    out << (first ? "" : "\n  ") << "},\n  \"gauges\": {";
    first = true;
    for (const auto &[name, g] : r.gauges) {
        out << (first ? "" : ",") << "\n    \"" << name
            << "\": " << g->value();
        first = false;
    }
    out << (first ? "" : "\n  ") << "},\n  \"histograms\": {";
    first = true;
    for (const auto &[name, h] : r.histograms) {
        out << (first ? "" : ",") << "\n    \"" << name << "\": {";
        out << "\"buckets\": [";
        const auto &bounds = h->bounds();
        for (size_t i = 0; i <= bounds.size(); ++i) {
            if (i)
                out << ", ";
            if (i < bounds.size())
                out << "[" << bounds[i] << ", " << h->bucketCount(i)
                    << "]";
            else
                out << "[null, " << h->bucketCount(i) << "]";
        }
        out << "], \"count\": " << h->count() << ", \"sum\": "
            << h->sum() << ", \"min\": " << h->min()
            << ", \"max\": " << h->max() << "}";
        first = false;
    }
    out << (first ? "" : "\n  ") << "}\n}\n";
    return out.str();
}

std::string
metricsText()
{
    Registry &r = registry();
    std::lock_guard<std::mutex> guard(r.lock);
    std::ostringstream out;
    for (const auto &[name, c] : r.counters)
        out << name << " " << c->value() << "\n";
    for (const auto &[name, g] : r.gauges)
        out << name << " " << g->value() << "\n";
    for (const auto &[name, h] : r.histograms) {
        out << name << " count=" << h->count() << " sum=" << h->sum()
            << " min=" << h->min() << " max=" << h->max() << " buckets=";
        const auto &bounds = h->bounds();
        for (size_t i = 0; i <= bounds.size(); ++i) {
            if (i)
                out << ",";
            if (i < bounds.size())
                out << "le" << bounds[i] << ":" << h->bucketCount(i);
            else
                out << "inf:" << h->bucketCount(i);
        }
        out << "\n";
    }
    return out.str();
}

bool
writeMetrics(const std::string &path)
{
    bool json = path.size() >= 5 &&
                path.compare(path.size() - 5, 5, ".json") == 0;
    std::ofstream out(path);
    if (!out) {
        warn("cannot write metrics file '%s'", path.c_str());
        return false;
    }
    out << (json ? metricsJson() : metricsText());
    return static_cast<bool>(out);
}

} // namespace hwdbg::obs
