#include "obs/json.hh"

#include <cstdio>

#ifndef HWDBG_VERSION
#define HWDBG_VERSION "unknown"
#endif
#ifndef HWDBG_GIT_HASH
#define HWDBG_GIT_HASH "unknown"
#endif
#ifndef HWDBG_BUILD_TYPE
#define HWDBG_BUILD_TYPE "unknown"
#endif

namespace hwdbg::obs
{

std::string
jsonEscape(const std::string &text)
{
    std::string out;
    out.reserve(text.size() + 8);
    for (char c : text) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          case '\r':
            out += "\\r";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

const BuildInfo &
buildInfo()
{
    static const BuildInfo info{HWDBG_VERSION, HWDBG_GIT_HASH,
                                HWDBG_BUILD_TYPE};
    return info;
}

std::string
buildInfoJson()
{
    const BuildInfo &info = buildInfo();
    return "{\"tool\":\"hwdbg\",\"version\":\"" +
           jsonEscape(info.version) + "\",\"git\":\"" +
           jsonEscape(info.git) + "\",\"type\":\"" +
           jsonEscape(info.buildType) + "\"}";
}

} // namespace hwdbg::obs
