/**
 * @file
 * ValidCheck: use-without-valid detection.
 *
 * An extension built on LossCheck's data-propagation machinery, in the
 * direction the paper's §7 suggests ("the core data propagation logic
 * of LossCheck could be generalized and adapted to other sophisticated
 * FPGA debugging tools"): it targets the use-without-valid subclass of
 * the bug study (§3.3.4), where a data signal guarded by a valid
 * interface is consumed while the valid signal is low, e.g.
 *
 *     sum <= sum + data;          // data_valid ignored
 *
 * For each (data, valid) pair the developer names, ValidCheck finds
 * every assignment whose right-hand side reads the data signal and
 * instruments the design to report uses whose path constraint can fire
 * while valid is low.
 */

#ifndef HWDBG_CORE_VALIDCHECK_HH
#define HWDBG_CORE_VALIDCHECK_HH

#include <map>
#include <set>
#include <string>
#include <vector>

#include "hdl/ast.hh"
#include "sim/eval.hh"

namespace hwdbg::core
{

/** A data signal and the valid signal qualifying it (§2.3). */
struct ValidPair
{
    std::string data;
    std::string valid;
};

struct ValidCheckOptions
{
    std::vector<ValidPair> pairs;
};

struct ValidCheckResult
{
    hdl::ModulePtr module;
    /** Number of data-signal uses instrumented per pair (data name ->
     *  use count), the static half of the analysis. */
    std::map<std::string, int> usesInstrumented;
    int generatedLines = 0;
};

ValidCheckResult applyValidCheck(const hdl::Module &mod,
                                 const ValidCheckOptions &opts);

/** One reported use-without-valid occurrence. */
struct InvalidUse
{
    uint64_t cycle;
    /** Data signal consumed while invalid. */
    std::string data;
    /** Register the invalid value flowed into. */
    std::string target;
};

/** Extract ValidCheck reports from a log (deduplicated by target). */
std::vector<InvalidUse>
invalidUses(const std::vector<sim::EvalContext::LogLine> &log);

} // namespace hwdbg::core

#endif // HWDBG_CORE_VALIDCHECK_HH
