#include "core/instrument.hh"

#include "common/testhooks.hh"

#include "analysis/guards.hh"
#include "common/logging.hh"
#include "hdl/printer.hh"

namespace hwdbg::core
{

using namespace hdl;

std::string
designClock(const Module &mod)
{
    for (const auto &item : mod.items) {
        if (item->kind != ItemKind::Always)
            continue;
        const auto *proc = item->as<AlwaysItem>();
        if (proc->isComb)
            continue;
        std::string clock = analysis::processClock(*proc);
        if (!clock.empty())
            return clock;
    }
    return "clk";
}

InstrumentBuilder::InstrumentBuilder(const Module &original)
    : mod_(cloneModule(original)),
      originalLines_(countCodeLines(printModule(original)))
{
}

std::string
InstrumentBuilder::fresh(const std::string &prefix)
{
    return prefix + "_" + std::to_string(counter_++);
}

void
InstrumentBuilder::addReg(const std::string &name, uint32_t width)
{
    if (mod_->findNet(name))
        fatal("instrumentation name clash: '%s'", name.c_str());
    auto net = std::make_shared<NetItem>();
    net->net = NetKind::Reg;
    net->name = name;
    if (width > 1)
        net->range = AstRange{mkNum(Bits(32, width - 1), false),
                              mkNum(Bits(32, 0), false)};
    mod_->items.push_back(net);
}

void
InstrumentBuilder::addWire(const std::string &name, uint32_t width)
{
    if (mod_->findNet(name))
        fatal("instrumentation name clash: '%s'", name.c_str());
    auto net = std::make_shared<NetItem>();
    net->net = NetKind::Wire;
    net->name = name;
    if (width > 1)
        net->range = AstRange{mkNum(Bits(32, width - 1), false),
                              mkNum(Bits(32, 0), false)};
    mod_->items.push_back(net);
}

void
InstrumentBuilder::addAssign(ExprPtr lhs, ExprPtr rhs)
{
    auto assign = std::make_shared<ContAssignItem>();
    assign->lhs = std::move(lhs);
    assign->rhs = std::move(rhs);
    mod_->items.push_back(assign);
}

void
InstrumentBuilder::addClockedStmt(const std::string &clock, StmtPtr stmt)
{
    for (auto &[existing_clock, stmts] : clockedStmts_) {
        if (existing_clock == clock) {
            stmts.push_back(std::move(stmt));
            return;
        }
    }
    clockedStmts_.push_back({clock, {std::move(stmt)}});
}

void
InstrumentBuilder::finish()
{
    if (finished_)
        return;
    finished_ = true;
    // Generated monitor processes go BEFORE the design's own clocked
    // processes: triggered processes execute in item order, and a
    // monitor placed after a user process would observe post-edge
    // values of registers the user code updates with blocking
    // assignments. A hardware monitor samples flip-flop outputs as
    // they were before the edge; running first preserves that view.
    auto pos = mod_->items.begin();
    while (pos != mod_->items.end() &&
           !((*pos)->kind == ItemKind::Always &&
             !(*pos)->as<AlwaysItem>()->isComb))
        ++pos;
    for (auto &[clock, stmts] : clockedStmts_) {
        auto always = std::make_shared<AlwaysItem>();
        always->sens.push_back(
            SensItem{mutationOn(MUT_INSTR_WRONG_EDGE) ? EdgeKind::Negedge
                                                      : EdgeKind::Posedge,
                     clock});
        auto block = std::make_shared<BlockStmt>();
        block->stmts = std::move(stmts);
        always->body = block;
        pos = std::next(mod_->items.insert(pos, always));
    }
    clockedStmts_.clear();
}

int
InstrumentBuilder::generatedLines() const
{
    if (!finished_)
        panic("generatedLines() before finish()");
    return countCodeLines(printModule(*mod_)) - originalLines_;
}

} // namespace hwdbg::core
