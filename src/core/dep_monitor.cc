#include "core/dep_monitor.hh"

#include "analysis/depgraph.hh"
#include "common/logging.hh"
#include "core/instrument.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "sim/design.hh"

namespace hwdbg::core
{

using namespace hdl;

DepMonitorResult
applyDepMonitor(const Module &mod, const DepMonitorOptions &opts)
{
    obs::ObsSpan span("instrument.dep_monitor");
    HWDBG_STAT_INC("instrument.dep_monitor.runs", 1);
    if (opts.variable.empty())
        fatal("Dependency Monitor: no variable specified");
    if (!mod.findNet(opts.variable))
        fatal("Dependency Monitor: no signal named '%s'",
              opts.variable.c_str());

    analysis::DepGraph graph(mod);
    DepMonitorResult result;
    result.chain = graph.backwardSlice(opts.variable, opts.cycles,
                                       opts.followData,
                                       opts.followControl);

    InstrumentBuilder builder(mod);
    std::string clock = designClock(mod);

    for (const auto &[reg, dist] : result.chain) {
        const NetItem *net = builder.module()->findNet(reg);
        if (!net)
            continue; // IP-internal endpoint
        if (net->array)
            continue; // memories are tracked through their read ports
        uint32_t width = 1;
        if (net->range)
            width = static_cast<uint32_t>(
                        sim::constU64(net->range->msb)) + 1;

        std::string prev = "__dep_prev_" + reg;
        builder.addReg(prev, width);

        auto disp = std::make_shared<DisplayStmt>();
        disp->format = "[DepMonitor] " + reg + " = %h (dist " +
                       std::to_string(dist) + ")";
        disp->args.push_back(mkId(reg));

        auto branch = std::make_shared<IfStmt>();
        branch->cond = mkBinary(BinaryOp::Ne, mkId(prev), mkId(reg));
        branch->thenStmt = disp;
        builder.addClockedStmt(clock, branch);

        auto update = std::make_shared<AssignStmt>();
        update->lhs = mkId(prev);
        update->rhs = mkId(reg);
        update->nonblocking = true;
        builder.addClockedStmt(clock, update);
    }

    builder.finish();
    result.module = builder.module();
    result.generatedLines = builder.generatedLines();
    return result;
}

std::vector<DepUpdate>
depUpdates(const std::vector<sim::EvalContext::LogLine> &log)
{
    std::vector<DepUpdate> updates;
    const std::string prefix = "[DepMonitor] ";
    for (const auto &line : log) {
        if (line.text.rfind(prefix, 0) != 0)
            continue;
        std::string body = line.text.substr(prefix.size());
        size_t eq = body.find(" = ");
        if (eq == std::string::npos)
            continue;
        size_t paren = body.find(" (", eq);
        DepUpdate update;
        update.cycle = line.cycle;
        update.variable = body.substr(0, eq);
        update.value = body.substr(
            eq + 3,
            paren == std::string::npos ? std::string::npos
                                       : paren - eq - 3);
        updates.push_back(std::move(update));
    }
    return updates;
}

} // namespace hwdbg::core
