#include "core/signalcat.hh"

#include <set>

#include "analysis/guards.hh"
#include "common/logging.hh"
#include "common/testhooks.hh"
#include "core/instrument.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "sim/design.hh"
#include "sim/eval.hh"

namespace hwdbg::core
{

using namespace hdl;

namespace
{

/** Replace every $display in the tree with a null statement. */
void
stripDisplays(const StmtPtr &stmt)
{
    if (!stmt)
        return;
    switch (stmt->kind) {
      case StmtKind::Block: {
        auto *block = stmt->as<BlockStmt>();
        for (auto &sub : block->stmts) {
            if (sub->kind == StmtKind::Display)
                sub = std::make_shared<NullStmt>();
            else
                stripDisplays(sub);
        }
        break;
      }
      case StmtKind::If: {
        auto *branch = stmt->as<IfStmt>();
        if (branch->thenStmt &&
            branch->thenStmt->kind == StmtKind::Display)
            branch->thenStmt = std::make_shared<NullStmt>();
        else
            stripDisplays(branch->thenStmt);
        if (branch->elseStmt &&
            branch->elseStmt->kind == StmtKind::Display)
            branch->elseStmt = std::make_shared<NullStmt>();
        else
            stripDisplays(branch->elseStmt);
        break;
      }
      case StmtKind::Case: {
        auto *sel = stmt->as<CaseStmt>();
        for (auto &item : sel->items) {
            if (item.body && item.body->kind == StmtKind::Display)
                item.body = std::make_shared<NullStmt>();
            else
                stripDisplays(item.body);
        }
        break;
      }
      default:
        break;
    }
}

/** Edge on which a display's process samples its clock. */
EdgeKind
displayEdge(const analysis::GuardedDisplay &gd)
{
    for (const auto &sens : gd.proc->sens)
        if (sens.signal == gd.clock)
            return sens.edge;
    return EdgeKind::Posedge;
}

bool
refsAny(const ExprPtr &expr, const std::set<std::string> &dirty)
{
    if (!expr)
        return false;
    bool hit = false;
    renameIdents(expr, [&](const std::string &name) {
        if (dirty.count(name))
            hit = true;
        return name;
    });
    return hit;
}

/**
 * Walk @p stmt in execution order tracking which variables blocking
 * assignments have written so far (@p dirty). The recorder taps nets,
 * so it always sees pre-edge register values; a $display whose
 * arguments or path condition read a variable a blocking assignment
 * already updated this edge would print the post-write value instead,
 * and no net tap can reproduce that. Returns false on such a display.
 * Branch-insensitive on purpose: both arms of an If feed one dirty
 * set, over-approximating the race.
 */
bool
scanRaces(const StmtPtr &stmt, std::set<std::string> &dirty,
          bool cond_dirty)
{
    if (!stmt)
        return true;
    switch (stmt->kind) {
      case StmtKind::Block:
        for (const auto &sub : stmt->as<BlockStmt>()->stmts)
            if (!scanRaces(sub, dirty, cond_dirty))
                return false;
        return true;
      case StmtKind::If: {
        const auto *branch = stmt->as<IfStmt>();
        bool cd = cond_dirty || refsAny(branch->cond, dirty);
        return scanRaces(branch->thenStmt, dirty, cd) &&
               scanRaces(branch->elseStmt, dirty, cd);
      }
      case StmtKind::Case: {
        const auto *sel = stmt->as<CaseStmt>();
        bool cd = cond_dirty || refsAny(sel->selector, dirty);
        for (const auto &item : sel->items)
            if (!scanRaces(item.body, dirty, cd))
                return false;
        return true;
      }
      case StmtKind::Assign: {
        const auto *assign = stmt->as<AssignStmt>();
        if (!assign->nonblocking)
            renameIdents(assign->lhs, [&](const std::string &name) {
                dirty.insert(name);
                return name;
            });
        return true;
      }
      case StmtKind::Display: {
        if (cond_dirty)
            return false;
        for (const auto &arg : stmt->as<DisplayStmt>()->args)
            if (refsAny(arg, dirty))
                return false;
        return true;
      }
      default:
        return true;
    }
}

/** True when some $display races an earlier blocking assignment.
 *  Clocked processes execute in item order, so the dirty set carries
 *  across processes on the same sweep. */
bool
displaysRaceBlocking(const Module &mod)
{
    std::set<std::string> dirty;
    for (const auto &item : mod.items) {
        if (item->kind != ItemKind::Always)
            continue;
        const auto *proc = item->as<AlwaysItem>();
        if (proc->isComb)
            continue;
        if (!scanRaces(proc->body, dirty, false))
            return true;
    }
    return false;
}

} // namespace

bool
signalCatSupported(const Module &mod)
{
    auto displays = analysis::collectDisplays(mod);
    if (displays.empty())
        return true;
    if (displays[0].clock.empty())
        return false;
    for (const auto &gd : displays)
        if (gd.clock != displays[0].clock ||
            displayEdge(gd) != displayEdge(displays[0]))
            return false;
    return !displaysRaceBlocking(mod);
}

SignalCatResult
applySignalCat(const Module &mod, const SignalCatOptions &opts)
{
    obs::ObsSpan span("instrument.signalcat");
    HWDBG_STAT_INC("instrument.signalcat.runs", 1);
    InstrumentBuilder builder(mod);
    ModulePtr work = builder.module();

    // Annotate expression widths so the statement arguments have known
    // sizes (lowering mutates only annotations, not structure).
    sim::LoweredDesign annotate(work);

    auto displays = analysis::collectDisplays(*work);

    SignalCatResult result;
    result.plan.recorderInstance = opts.recorderInstance;
    result.plan.bufferDepth = opts.bufferDepth;

    if (displays.empty()) {
        builder.finish();
        result.module = work;
        result.generatedLines = builder.generatedLines();
        return result;
    }

    uint32_t num_stmts = static_cast<uint32_t>(displays.size());
    std::string clock = displays[0].clock;
    EdgeKind edge = displayEdge(displays[0]);
    for (const auto &gd : displays)
        if (gd.clock != clock || displayEdge(gd) != edge)
            fatal("SignalCat: $display statements mix clocks or edges "
                  "('%s' vs '%s'); one recording clock domain is "
                  "supported",
                  clock.c_str(), gd.clock.c_str());
    if (displaysRaceBlocking(*work))
        fatal("SignalCat: a $display reads a variable a blocking "
              "assignment updates earlier in the same edge; the "
              "recorder taps nets pre-edge and cannot reproduce that "
              "value - use nonblocking assignments");

    // Per-statement enable wires carrying the path constraints.
    std::vector<std::string> enable_wires;
    for (uint32_t i = 0; i < num_stmts; ++i) {
        std::string wire =
            opts.recorderInstance + "_en" + std::to_string(i);
        builder.addWire(wire, 1);
        builder.addAssign(mkId(wire), cloneExpr(displays[i].guard));
        enable_wires.push_back(wire);
    }

    // Entry layout: enable bits in [num_stmts-1:0], then each
    // statement's arguments in order above them.
    uint32_t offset = num_stmts;
    std::vector<ExprPtr> parts_lsb_first;
    {
        auto en_cat = std::make_shared<ConcatExpr>();
        for (uint32_t i = num_stmts; i-- > 0;)
            en_cat->parts.push_back(mkId(enable_wires[i]));
        parts_lsb_first.push_back(en_cat);
    }

    for (uint32_t i = 0; i < num_stmts; ++i) {
        SignalCatStatement stmt;
        stmt.format = displays[i].stmt->format;
        stmt.enableBit = i;
        for (const auto &arg : displays[i].stmt->args) {
            uint32_t width = arg->width;
            if (width == 0)
                panic("SignalCat: display argument missing width");
            uint32_t skew =
                mutationOn(MUT_INSTR_SIGNALCAT_SLICE) ? 1 : 0;
            stmt.argSlices.emplace_back(offset + width - 1 + skew,
                                        offset + skew);
            parts_lsb_first.push_back(cloneExpr(arg));
            offset += width;
        }
        result.plan.statements.push_back(std::move(stmt));
    }
    result.plan.entryWidth = offset;

    // Recorder data bus and valid strobe.
    std::string data_wire = opts.recorderInstance + "_data";
    std::string valid_wire = opts.recorderInstance + "_valid";
    builder.addWire(data_wire, result.plan.entryWidth);
    auto data_cat = std::make_shared<ConcatExpr>();
    for (size_t i = parts_lsb_first.size(); i-- > 0;)
        data_cat->parts.push_back(parts_lsb_first[i]);
    builder.addAssign(mkId(data_wire), data_cat);

    builder.addWire(valid_wire, 1);
    ExprPtr any_enable = mkFalse();
    for (const auto &wire : enable_wires)
        any_enable = mkOr(any_enable, mkId(wire));
    builder.addAssign(mkId(valid_wire), any_enable);

    // The recording IP instance (SignalTap/ILA stand-in).
    auto rec = std::make_shared<InstanceItem>();
    rec->moduleName = "signal_recorder";
    rec->instName = opts.recorderInstance;
    rec->paramOverrides.emplace_back(
        "WIDTH", mkNum(Bits(32, result.plan.entryWidth), false));
    rec->paramOverrides.emplace_back(
        "DEPTH", mkNum(Bits(32, opts.bufferDepth), false));
    rec->paramOverrides.emplace_back(
        "MODE", mkNum(Bits(32, opts.preTrigger ? 1 : 0), false));
    // The recorder IP samples on rising edges of its clk port. For
    // displays living in @(negedge ...) processes, feed it the
    // inverted clock so captures line up with when the statements
    // actually execute (their arguments change half a cycle later).
    ExprPtr rec_clk = mkId(clock);
    if (edge == EdgeKind::Negedge)
        rec_clk = mkNot(rec_clk);
    rec->conns.push_back(PortConn{"clk", std::move(rec_clk)});
    rec->conns.push_back(PortConn{
        "arm",
        opts.armSignal.empty() ? mkTrue() : mkId(opts.armSignal)});
    if (!opts.stopSignal.empty())
        rec->conns.push_back(
            PortConn{"stop", mkId(opts.stopSignal)});
    rec->conns.push_back(PortConn{"valid", mkId(valid_wire)});
    rec->conns.push_back(PortConn{"data", mkId(data_wire)});
    work->items.push_back(rec);

    // Remove the unsynthesizable $display statements.
    for (const auto &item : work->items) {
        if (item->kind != ItemKind::Always)
            continue;
        auto *proc = item->as<AlwaysItem>();
        if (proc->body && proc->body->kind == StmtKind::Display)
            proc->body = std::make_shared<NullStmt>();
        else
            stripDisplays(proc->body);
    }

    builder.finish();
    result.module = work;
    result.generatedLines = builder.generatedLines();
    return result;
}

std::vector<sim::EvalContext::LogLine>
reconstructLog(const sim::SignalRecorder &recorder,
               const SignalCatPlan &plan)
{
    std::vector<sim::EvalContext::LogLine> log;
    for (const auto &entry : recorder.entries()) {
        for (const auto &stmt : plan.statements) {
            if (!entry.data.bit(stmt.enableBit))
                continue;
            std::vector<Bits> args;
            args.reserve(stmt.argSlices.size());
            for (const auto &[msb, lsb] : stmt.argSlices)
                args.push_back(entry.data.slice(msb, lsb));
            log.push_back(sim::EvalContext::LogLine{
                entry.cycle, sim::formatDisplay(stmt.format, args)});
        }
    }
    return log;
}

} // namespace hwdbg::core
