/**
 * @file
 * FSM Monitor: automatic state-machine tracing (§4.2).
 *
 * Statically detects FSM state variables (analysis/fsm_detect) and
 * instruments the design with logic that emits a log message on every
 * state change. After execution, fsmTrace() reconstructs per-FSM
 * state-transition traces from the log — a user-friendly abstraction of
 * the execution compared to a raw waveform. Developers can patch the
 * detector's mistakes by forcing extra state variables in or filtering
 * detected ones out (§4.2).
 */

#ifndef HWDBG_CORE_FSM_MONITOR_HH
#define HWDBG_CORE_FSM_MONITOR_HH

#include <map>
#include <set>
#include <string>
#include <vector>

#include "analysis/fsm_detect.hh"
#include "sim/eval.hh"

namespace hwdbg::core
{

struct FsmMonitorOptions
{
    /** Extra state variables the developer knows about (heuristic
     *  misses, e.g. two-process FSMs). */
    std::set<std::string> forceInclude;
    /** Detected variables to ignore for the current bug. */
    std::set<std::string> exclude;
    /**
     * Flattened-parameter values (ElabResult::constants); used to print
     * symbolic state names in traces.
     */
    std::map<std::string, Bits> constants;
};

struct FsmMonitorResult
{
    hdl::ModulePtr module;
    std::vector<analysis::FsmInfo> fsms;
    /** Monitored variables (detected + forced - excluded). */
    std::vector<std::string> monitored;
    int generatedLines = 0;
};

FsmMonitorResult applyFsmMonitor(const hdl::Module &mod,
                                 const FsmMonitorOptions &opts = {});

/** One observed transition of a monitored FSM. */
struct FsmTraceEntry
{
    uint64_t cycle;
    std::string stateVar;
    uint64_t fromState;
    uint64_t toState;
};

/** Extract FSM Monitor transitions from a simulation/SignalCat log. */
std::vector<FsmTraceEntry>
fsmTrace(const std::vector<sim::EvalContext::LogLine> &log);

/** The last observed state per variable (the "where is it stuck" view).
 *  Variables that never transitioned are reported in state 0. */
std::map<std::string, uint64_t>
finalStates(const std::vector<FsmTraceEntry> &trace,
            const std::vector<std::string> &monitored);

/**
 * Render a state value symbolically using elaborated constants, e.g.
 * value 2 of "u_c__state" -> "WR_DATA" when some constant of that scope
 * equals 2. Falls back to the decimal value.
 */
std::string stateName(const std::string &state_var, uint64_t value,
                      const std::map<std::string, Bits> &constants);

} // namespace hwdbg::core

#endif // HWDBG_CORE_FSM_MONITOR_HH
