/**
 * @file
 * SignalCat: unified logging for simulation and on-FPGA debugging (§4.1).
 *
 * SignalCat gives every other tool (and the developer) a single logging
 * interface: "printf"-like $display statements embedded in the HDL. In
 * simulation they execute natively. For an FPGA deployment SignalCat
 * statically extracts each statement's arguments and path constraint,
 * removes the unsynthesizable $display, and generates an instance of a
 * vendor recording IP (modelled by the signal_recorder primitive) that
 * captures, per cycle, one enable bit per statement plus all statements'
 * argument bits whenever at least one path constraint holds. After the
 * run, reconstructLog() turns the captured entries back into the exact
 * log the simulation would have printed.
 */

#ifndef HWDBG_CORE_SIGNALCAT_HH
#define HWDBG_CORE_SIGNALCAT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "hdl/ast.hh"
#include "sim/primitives.hh"

namespace hwdbg::core
{

struct SignalCatOptions
{
    /** Recording buffer depth in entries (the paper's default: 8192). */
    uint32_t bufferDepth = 8192;
    /**
     * Optional start event: recording is enabled while this 1-bit
     * signal is high (empty = record always) - e.g. "when the first
     * packet arrives" (§4.1).
     */
    std::string armSignal;
    /**
     * Optional stop event: the first cycle this 1-bit signal is high
     * freezes the captured window - e.g. "when an assertion is
     * triggered" (§4.1).
     */
    std::string stopSignal;
    /**
     * Capture window placement (§4.1): false = the first bufferDepth
     * records after arming (post-trigger); true = a ring buffer holding
     * the last bufferDepth records before the stop event (pre-trigger).
     */
    bool preTrigger = false;
    std::string recorderInstance = "u_signalcat_rec";
};

/** Layout of one $display statement inside a recorder entry. */
struct SignalCatStatement
{
    std::string format;
    /** MSB/LSB of each argument within the entry, argument order. */
    std::vector<std::pair<uint32_t, uint32_t>> argSlices;
    /** Bit position of this statement's enable flag. */
    uint32_t enableBit = 0;
};

struct SignalCatPlan
{
    std::vector<SignalCatStatement> statements;
    uint32_t entryWidth = 0;
    std::string recorderInstance;
    uint32_t bufferDepth = 0;
};

struct SignalCatResult
{
    /** Module with $display replaced by recording logic. */
    hdl::ModulePtr module;
    SignalCatPlan plan;
    /** Lines of Verilog SignalCat generated. */
    int generatedLines = 0;
};

/**
 * True when @p mod's clocked $display statements all live in one clock
 * domain sampling on one edge (or there are none). applySignalCat
 * raises HdlError on modules where this is false: the single recording
 * IP instance has one sampling clock.
 */
bool signalCatSupported(const hdl::Module &mod);

/**
 * Instrument @p mod for on-FPGA logging. All $display statements in
 * clocked processes are converted; the result simulates with an empty
 * $display log and a populated recorder instead.
 */
SignalCatResult applySignalCat(const hdl::Module &mod,
                               const SignalCatOptions &opts = {});

/** Rebuild the textual log from a recorder's captured entries. */
std::vector<sim::EvalContext::LogLine>
reconstructLog(const sim::SignalRecorder &recorder,
               const SignalCatPlan &plan);

} // namespace hwdbg::core

#endif // HWDBG_CORE_SIGNALCAT_HH
