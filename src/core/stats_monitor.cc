#include "core/stats_monitor.hh"

#include <cstdlib>

#include "common/logging.hh"
#include "common/testhooks.hh"
#include "core/instrument.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"

namespace hwdbg::core
{

using namespace hdl;

StatsEvent
statsEvent(const std::string &name, const std::string &signal_name)
{
    return StatsEvent{name, mkId(signal_name)};
}

std::string
StatsMonitorResult::counterSignal(const std::string &event_name)
{
    return "__stat_cnt_" + event_name;
}

StatsMonitorResult
applyStatsMonitor(const Module &mod, const StatsMonitorOptions &opts)
{
    obs::ObsSpan span("instrument.stats_monitor");
    HWDBG_STAT_INC("instrument.stats_monitor.runs", 1);
    InstrumentBuilder builder(mod);
    std::string clock = designClock(mod);

    for (const auto &event : opts.events) {
        std::string counter =
            StatsMonitorResult::counterSignal(event.name);
        builder.addReg(counter, opts.counterWidth);

        // if (event) begin cnt <= cnt + 1; $display(...); end
        auto bump = std::make_shared<AssignStmt>();
        bump->lhs = mkId(counter);
        bump->rhs = mkBinary(BinaryOp::Add, mkId(counter),
                             mkNum(Bits(opts.counterWidth, 1)));
        bump->nonblocking = true;

        auto block = std::make_shared<BlockStmt>();
        block->stmts.push_back(bump);
        if (opts.logChanges) {
            auto disp = std::make_shared<DisplayStmt>();
            disp->format = "[Stat] " + event.name + " = %d";
            disp->args.push_back(
                mkBinary(BinaryOp::Add, mkId(counter),
                         mkNum(Bits(opts.counterWidth, 1))));
            block->stmts.push_back(disp);
        }

        auto branch = std::make_shared<IfStmt>();
        branch->cond = mutationOn(MUT_INSTR_STAT_INVERT)
                           ? mkNot(cloneExpr(event.signal))
                           : cloneExpr(event.signal);
        branch->thenStmt = block;
        builder.addClockedStmt(clock, branch);
    }

    builder.finish();
    StatsMonitorResult result;
    result.module = builder.module();
    result.generatedLines = builder.generatedLines();
    return result;
}

std::map<std::string, uint64_t>
statCounts(const std::vector<sim::EvalContext::LogLine> &log)
{
    std::map<std::string, uint64_t> counts;
    const std::string prefix = "[Stat] ";
    for (const auto &line : log) {
        if (line.text.rfind(prefix, 0) != 0)
            continue;
        std::string body = line.text.substr(prefix.size());
        size_t eq = body.find(" = ");
        if (eq == std::string::npos)
            continue;
        counts[body.substr(0, eq)] =
            std::strtoull(body.substr(eq + 3).c_str(), nullptr, 10);
    }
    return counts;
}

} // namespace hwdbg::core
