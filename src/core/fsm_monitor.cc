#include "core/fsm_monitor.hh"

#include <algorithm>
#include <cctype>
#include <cstdlib>

#include "common/logging.hh"
#include "common/testhooks.hh"
#include "core/instrument.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "sim/design.hh"

namespace hwdbg::core
{

using namespace hdl;

FsmMonitorResult
applyFsmMonitor(const Module &mod, const FsmMonitorOptions &opts)
{
    obs::ObsSpan span("instrument.fsm_monitor");
    HWDBG_STAT_INC("instrument.fsm_monitor.runs", 1);
    FsmMonitorResult result;
    result.fsms = analysis::detectFsms(mod);

    std::vector<std::string> monitored;
    for (const auto &fsm : result.fsms)
        if (!opts.exclude.count(fsm.stateVar))
            monitored.push_back(fsm.stateVar);
    for (const auto &forced : opts.forceInclude)
        if (std::find(monitored.begin(), monitored.end(), forced) ==
            monitored.end())
            monitored.push_back(forced);

    InstrumentBuilder builder(mod);
    std::string default_clock = designClock(mod);

    for (const auto &var : monitored) {
        const NetItem *net = builder.module()->findNet(var);
        if (!net)
            fatal("FSM Monitor: no signal named '%s'", var.c_str());
        uint32_t width = 1;
        if (net->range)
            width = static_cast<uint32_t>(
                        sim::constU64(net->range->msb)) + 1;

        std::string clock = default_clock;
        for (const auto &fsm : result.fsms)
            if (fsm.stateVar == var && !fsm.clock.empty())
                clock = fsm.clock;

        std::string prev = "__fsm_prev_" + var;
        builder.addReg(prev, width);

        auto disp = std::make_shared<DisplayStmt>();
        disp->format = "[FSMMonitor] " + var + ": %d -> %d";
        if (mutationOn(MUT_INSTR_FSM_SWAP)) {
            disp->args.push_back(mkId(var));
            disp->args.push_back(mkId(prev));
        } else {
            disp->args.push_back(mkId(prev));
            disp->args.push_back(mkId(var));
        }

        auto branch = std::make_shared<IfStmt>();
        branch->cond =
            mkBinary(BinaryOp::Ne, mkId(prev), mkId(var));
        branch->thenStmt = disp;
        builder.addClockedStmt(clock, branch);

        auto update = std::make_shared<AssignStmt>();
        update->lhs = mkId(prev);
        update->rhs = mkId(var);
        update->nonblocking = true;
        builder.addClockedStmt(clock, update);
    }

    builder.finish();
    result.module = builder.module();
    result.monitored = std::move(monitored);
    result.generatedLines = builder.generatedLines();
    return result;
}

std::vector<FsmTraceEntry>
fsmTrace(const std::vector<sim::EvalContext::LogLine> &log)
{
    std::vector<FsmTraceEntry> trace;
    const std::string prefix = "[FSMMonitor] ";
    for (const auto &line : log) {
        if (line.text.rfind(prefix, 0) != 0)
            continue;
        std::string body = line.text.substr(prefix.size());
        size_t colon = body.find(": ");
        size_t arrow = body.find(" -> ");
        if (colon == std::string::npos || arrow == std::string::npos)
            continue;
        FsmTraceEntry entry;
        entry.cycle = line.cycle;
        entry.stateVar = body.substr(0, colon);
        entry.fromState = std::strtoull(
            body.substr(colon + 2, arrow - colon - 2).c_str(), nullptr,
            10);
        entry.toState = std::strtoull(body.substr(arrow + 4).c_str(),
                                      nullptr, 10);
        trace.push_back(std::move(entry));
    }
    return trace;
}

std::map<std::string, uint64_t>
finalStates(const std::vector<FsmTraceEntry> &trace,
            const std::vector<std::string> &monitored)
{
    std::map<std::string, uint64_t> out;
    for (const auto &var : monitored)
        out[var] = 0;
    for (const auto &entry : trace)
        out[entry.stateVar] = entry.toState;
    return out;
}

std::string
stateName(const std::string &state_var, uint64_t value,
          const std::map<std::string, Bits> &constants)
{
    // Constants in the same flattened scope as the variable are state
    // name candidates; when several share the value (e.g. RD_IDLE and
    // WR_IDLE both 0), prefer the one sharing the longest
    // case-insensitive prefix with the variable name ("wr_state" ->
    // "WR_...").
    std::string scope;
    size_t sep = state_var.rfind("__");
    if (sep != std::string::npos)
        scope = state_var.substr(0, sep + 2);
    std::string local_var =
        scope.empty() ? state_var : state_var.substr(scope.size());

    auto common_prefix = [](const std::string &a, const std::string &b) {
        size_t i = 0;
        while (i < a.size() && i < b.size() &&
               std::tolower(static_cast<unsigned char>(a[i])) ==
                   std::tolower(static_cast<unsigned char>(b[i])))
            ++i;
        return i;
    };

    std::string best;
    size_t best_prefix = 0;
    for (const auto &[name, bits] : constants) {
        bool same_scope =
            scope.empty() ? name.find("__") == std::string::npos
                          : name.rfind(scope, 0) == 0;
        if (!same_scope || bits.compare(Bits(64, value)) != 0)
            continue;
        std::string local =
            scope.empty() ? name : name.substr(scope.size());
        size_t prefix = common_prefix(local, local_var);
        if (best.empty() || prefix > best_prefix) {
            best = local;
            best_prefix = prefix;
        }
    }
    return best.empty() ? std::to_string(value) : best;
}

} // namespace hwdbg::core
