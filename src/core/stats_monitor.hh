/**
 * @file
 * Statistics Monitor: event counters for debugging (§4.4).
 *
 * Generates a counter per developer-specified single-bit event signal
 * plus logging code that emits a message whenever a count changes. The
 * typical use is localizing data loss or anomaly to a circuit region by
 * comparing related counters (e.g. valid inputs received vs. valid
 * outputs produced) without recording full data values every cycle.
 */

#ifndef HWDBG_CORE_STATS_MONITOR_HH
#define HWDBG_CORE_STATS_MONITOR_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "hdl/ast.hh"
#include "sim/eval.hh"

namespace hwdbg::core
{

/** One event to count: a name and a 1-bit expression over the design. */
struct StatsEvent
{
    std::string name;
    hdl::ExprPtr signal;
};

/** Convenience: event on a plain signal. */
StatsEvent statsEvent(const std::string &name,
                      const std::string &signal_name);

struct StatsMonitorOptions
{
    std::vector<StatsEvent> events;
    /** Counter width in bits. */
    uint32_t counterWidth = 32;
    /** Emit a log message on every change (can be disabled to keep only
     *  the final counter values readable via counterSignal()). */
    bool logChanges = true;
};

struct StatsMonitorResult
{
    hdl::ModulePtr module;
    int generatedLines = 0;

    /** Name of the generated counter register for an event. */
    static std::string counterSignal(const std::string &event_name);
};

StatsMonitorResult applyStatsMonitor(const hdl::Module &mod,
                                     const StatsMonitorOptions &opts);

/** Final counts parsed from a log (last reported value per event). */
std::map<std::string, uint64_t>
statCounts(const std::vector<sim::EvalContext::LogLine> &log);

} // namespace hwdbg::core

#endif // HWDBG_CORE_STATS_MONITOR_HH
