/**
 * @file
 * LossCheck: precise data-loss localization (§4.5).
 *
 * Given a Source register (with its valid signal) and a Sink register,
 * LossCheck statically builds the propagation-relation table between
 * them, finds every register on a Source-to-Sink propagation sequence,
 * and instruments the design with shadow state per on-path register R:
 *
 *   A(R)  -- R is assigned this cycle (some relation into R fires);
 *   V(R)  -- R is assigned a *valid* value this cycle (the firing
 *            relation's source currently holds valid data, tracked by a
 *            per-register validity shadow register seeded from the
 *            Source's valid signal);
 *   P(R)  -- R propagates this cycle (some on-path relation out of R
 *            fires);
 *   N(R)  -- "needs propagation", Equation 1:
 *            N(R) <= V(R) | (N(R) & ~P(R));
 *
 * and the loss predicate, Equation 2:  A(R) & ~P(R) & N(R), which fires
 * a log message naming R as the precise location of a potential data
 * loss.
 *
 * False-positive filtering (§4.5.3): run the instrumented design on a
 * passing ("ground truth") workload first, collect the registers that
 * report loss there (intentional drops), and suppress them in the buggy
 * run. runLossCheck() packages that two-phase flow.
 */

#ifndef HWDBG_CORE_LOSSCHECK_HH
#define HWDBG_CORE_LOSSCHECK_HH

#include <functional>
#include <set>
#include <string>
#include <vector>

#include "hdl/ast.hh"
#include "sim/eval.hh"

namespace hwdbg::core
{

struct LossCheckOptions
{
    /** Source register or top-level input carrying the tracked data. */
    std::string source;
    /** Valid signal qualifying the Source (§2.3 valid interface). */
    std::string sourceValid;
    /** Sink register the data should eventually reach. */
    std::string sink;
};

struct LossCheckResult
{
    hdl::ModulePtr module;
    /** Stateful signals on some Source->Sink propagation sequence. */
    std::set<std::string> onPath;
    /** Registers actually instrumented with shadow state. */
    std::set<std::string> instrumented;
    int generatedLines = 0;
};

LossCheckResult applyLossCheck(const hdl::Module &mod,
                               const LossCheckOptions &opts);

/** Registers reported as lossy in a log (deduplicated). */
std::set<std::string>
lossRegisters(const std::vector<sim::EvalContext::LogLine> &log);

/** Outcome of the two-phase (filtered) LossCheck flow. */
struct LossCheckReport
{
    /** Loss sites surviving false-positive filtering. */
    std::set<std::string> reported;
    /** Sites observed on the ground-truth run (intentional drops). */
    std::set<std::string> filtered;
    int generatedLines = 0;
};

/**
 * Run the full LossCheck flow: instrument @p mod, execute the
 * ground-truth workload (a passing test) to learn intentional drops,
 * then execute the failing workload and report the remaining loss
 * sites. Each workload callback receives the instrumented module,
 * simulates it, and returns the log.
 */
LossCheckReport runLossCheck(
    const hdl::Module &mod, const LossCheckOptions &opts,
    const std::function<std::vector<sim::EvalContext::LogLine>(
        hdl::ModulePtr)> &ground_truth_workload,
    const std::function<std::vector<sim::EvalContext::LogLine>(
        hdl::ModulePtr)> &failing_workload);

} // namespace hwdbg::core

#endif // HWDBG_CORE_LOSSCHECK_HH
