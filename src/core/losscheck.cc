#include "core/losscheck.hh"

#include <map>

#include "analysis/relations.hh"
#include "common/logging.hh"
#include "core/instrument.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "hdl/printer.hh"

namespace hwdbg::core
{

using namespace hdl;

LossCheckResult
applyLossCheck(const Module &mod, const LossCheckOptions &opts)
{
    obs::ObsSpan span("instrument.losscheck");
    HWDBG_STAT_INC("instrument.losscheck.runs", 1);
    if (!mod.findNet(opts.source))
        fatal("LossCheck: no signal named '%s'", opts.source.c_str());
    if (!mod.findNet(opts.sink))
        fatal("LossCheck: no signal named '%s'", opts.sink.c_str());
    if (!mod.findNet(opts.sourceValid))
        fatal("LossCheck: no valid signal named '%s'",
              opts.sourceValid.c_str());

    analysis::RelationTable table(mod);
    const analysis::DepGraph &graph = table.graph();

    LossCheckResult result;
    result.onPath = table.propagationPath(opts.source, opts.sink);
    if (result.onPath.empty())
        fatal("LossCheck: no propagation path from '%s' to '%s'",
              opts.source.c_str(), opts.sink.c_str());

    // Registers that get shadow state: on-path registers except the
    // Sink (arrival at the Sink is success). Top-level-input sources
    // are not tracked (matching the paper, whose Source is a register
    // with a valid interface); the first capture register downstream
    // of the input carries the shadow state instead.
    for (const auto &name : result.onPath) {
        if (name == opts.sink)
            continue;
        if (graph.isReg(name))
            result.instrumented.insert(name);
    }

    InstrumentBuilder builder(mod);
    std::string clock = designClock(mod);

    auto val_name = [](const std::string &reg) {
        return "__lc_val_" + reg;
    };
    auto validity_of = [&](const std::string &src) -> ExprPtr {
        if (src == opts.source && !graph.isReg(src))
            return mkId(opts.sourceValid); // input source: live valid
        if (table.isMemory(src))
            return mkTrue(); // per-entry N bits cover memories
        if (result.instrumented.count(src))
            return mkId(val_name(src));
        return mkTrue(); // IP outputs and untracked sources
    };

    // Memory registers get per-entry needs-propagation bits: a write to
    // an element holding unpropagated valid data is a loss (this is how
    // a power-of-two buffer overflow manifests: the wrapped write lands
    // on an unconsumed slot).
    auto instrument_memory = [&](const std::string &mem) {
        uint64_t size = table.memorySize(mem);
        auto rels_in = table.into(mem);
        auto rels_out = table.outOf(mem);

        std::string n_reg = "__lc_N_" + mem;
        builder.addReg(n_reg, static_cast<uint32_t>(size));

        // The shadow index must follow hardware overflow semantics: the
        // index truncates to the physical address width; a truncated
        // index beyond a non-power-of-two memory is a dropped access.
        uint32_t addr_bits = 0;
        while ((uint64_t(1) << addr_bits) < size)
            ++addr_bits;
        uint64_t mask = addr_bits >= 64
                            ? ~uint64_t(0)
                            : (uint64_t(1) << addr_bits) - 1;
        bool pow2 = (uint64_t(1) << addr_bits) == size;
        auto wrapped = [&](const ExprPtr &idx) {
            return mkBinary(BinaryOp::BitAnd, cloneExpr(idx),
                            mkNum(Bits(addr_bits ? addr_bits : 1, mask)));
        };
        auto in_bounds = [&](const ExprPtr &idx) -> ExprPtr {
            if (pow2)
                return mkTrue();
            return mkBinary(BinaryOp::Lt, wrapped(idx),
                            mkNum(Bits(addr_bits + 1, size)));
        };

        // Reads clear their slot's bit.
        std::vector<const analysis::PropRelation *> reads;
        for (const auto *rel : rels_out) {
            if (!result.onPath.count(rel->dst) || !rel->srcIndex)
                continue;
            reads.push_back(rel);
            auto clear = std::make_shared<AssignStmt>();
            auto idx = std::make_shared<IndexExpr>();
            idx->base = n_reg;
            idx->index = wrapped(rel->srcIndex);
            clear->lhs = idx;
            clear->rhs = mkFalse();
            clear->nonblocking = true;
            auto gate = std::make_shared<IfStmt>();
            gate->cond = mkAnd(cloneExpr(rel->cond),
                               in_bounds(rel->srcIndex));
            gate->thenStmt = clear;
            builder.addClockedStmt(clock, gate);
        }

        // Writes: group relations by (condition, index) so multiple RHS
        // sources of one assignment form a single checked write.
        std::map<std::string, std::pair<const analysis::PropRelation *,
                                        ExprPtr>> writes;
        for (const auto *rel : rels_in) {
            if (!rel->dstIndex)
                continue;
            std::string key = printExpr(rel->cond) + "@" +
                              printExpr(rel->dstIndex);
            ExprPtr validity = result.onPath.count(rel->src)
                                   ? validity_of(rel->src)
                                   : mkFalse();
            auto it = writes.find(key);
            if (it == writes.end())
                writes.emplace(key, std::make_pair(rel, validity));
            else
                it->second.second = mkOr(it->second.second, validity);
        }

        for (const auto &[key, entry] : writes) {
            const auto *rel = entry.first;
            const ExprPtr &validity = entry.second;

            // Simultaneous read of the same slot is propagation, not
            // loss.
            ExprPtr same_slot_read = mkFalse();
            for (const auto *read : reads)
                same_slot_read = mkOr(
                    same_slot_read,
                    mkAnd(cloneExpr(read->cond),
                          mkEq(wrapped(read->srcIndex),
                               wrapped(rel->dstIndex))));

            auto n_at = [&]() {
                auto idx = std::make_shared<IndexExpr>();
                idx->base = n_reg;
                idx->index = wrapped(rel->dstIndex);
                return idx;
            };

            auto disp = std::make_shared<DisplayStmt>();
            disp->format = "[LossCheck] potential data loss at " + mem;
            disp->format += " (slot %d)";
            disp->args.push_back(wrapped(rel->dstIndex));
            auto check = std::make_shared<IfStmt>();
            check->cond =
                mkAnd(ExprPtr(n_at()), mkNot(same_slot_read));
            check->thenStmt = disp;

            auto set_bit = std::make_shared<AssignStmt>();
            set_bit->lhs = n_at();
            set_bit->rhs = cloneExpr(validity);
            set_bit->nonblocking = true;

            auto body = std::make_shared<BlockStmt>();
            body->stmts.push_back(check);
            body->stmts.push_back(set_bit);
            auto gate = std::make_shared<IfStmt>();
            gate->cond = mkAnd(cloneExpr(rel->cond),
                               in_bounds(rel->dstIndex));
            gate->thenStmt = body;
            builder.addClockedStmt(clock, gate);
        }
    };

    for (const auto &reg : result.instrumented) {
        if (table.isMemory(reg)) {
            instrument_memory(reg);
            continue;
        }
        auto rels_in = table.into(reg);
        auto rels_out = table.outOf(reg);

        // A(R): R is assigned this cycle.
        ExprPtr a_expr = mkFalse();
        for (const auto *rel : rels_in)
            a_expr = mkOr(a_expr, cloneExpr(rel->cond));
        if (reg == opts.source && rels_in.empty())
            a_expr = mkId(opts.sourceValid);

        // V(R): R is assigned a valid value this cycle.
        ExprPtr v_expr;
        if (reg == opts.source) {
            v_expr = mkAnd(cloneExpr(a_expr), mkId(opts.sourceValid));
        } else {
            v_expr = mkFalse();
            for (const auto *rel : rels_in) {
                if (!result.onPath.count(rel->src))
                    continue;
                v_expr = mkOr(v_expr, mkAnd(cloneExpr(rel->cond),
                                            validity_of(rel->src)));
            }
        }

        // P(R): R propagates to an on-path register this cycle.
        ExprPtr p_expr = mkFalse();
        for (const auto *rel : rels_out) {
            if (!result.onPath.count(rel->dst))
                continue;
            p_expr = mkOr(p_expr, cloneExpr(rel->cond));
        }

        std::string a_wire = "__lc_A_" + reg;
        std::string v_wire = "__lc_V_" + reg;
        std::string p_wire = "__lc_P_" + reg;
        std::string n_reg = "__lc_N_" + reg;
        builder.addWire(a_wire, 1);
        builder.addWire(v_wire, 1);
        builder.addWire(p_wire, 1);
        builder.addAssign(mkId(a_wire), a_expr);
        builder.addAssign(mkId(v_wire), v_expr);
        builder.addAssign(mkId(p_wire), p_expr);
        builder.addReg(n_reg, 1);
        builder.addReg(val_name(reg), 1);

        // Validity of the value currently held in R.
        auto val_update = std::make_shared<AssignStmt>();
        val_update->lhs = mkId(val_name(reg));
        val_update->rhs = mkTernary(mkId(a_wire), mkId(v_wire),
                                    mkId(val_name(reg)));
        val_update->nonblocking = true;
        builder.addClockedStmt(clock, val_update);

        // Equation 1: N(R) <= V(R) | (N(R) & ~P(R)).
        auto n_update = std::make_shared<AssignStmt>();
        n_update->lhs = mkId(n_reg);
        n_update->rhs = mkBinary(
            BinaryOp::BitOr, mkId(v_wire),
            mkBinary(BinaryOp::BitAnd, mkId(n_reg),
                     mkUnary(UnaryOp::BitNot, mkId(p_wire))));
        n_update->nonblocking = true;
        builder.addClockedStmt(clock, n_update);

        // Equation 2: potential loss when A & ~P & N.
        auto disp = std::make_shared<DisplayStmt>();
        disp->format = "[LossCheck] potential data loss at " + reg;
        disp->format += " (value %h)";
        disp->args.push_back(mkId(reg));
        auto check = std::make_shared<IfStmt>();
        check->cond = mkBinary(
            BinaryOp::BitAnd, mkId(a_wire),
            mkBinary(BinaryOp::BitAnd,
                     mkUnary(UnaryOp::BitNot, mkId(p_wire)),
                     mkId(n_reg)));
        check->thenStmt = disp;
        builder.addClockedStmt(clock, check);
    }

    builder.finish();
    result.module = builder.module();
    result.generatedLines = builder.generatedLines();
    return result;
}

std::set<std::string>
lossRegisters(const std::vector<sim::EvalContext::LogLine> &log)
{
    std::set<std::string> out;
    const std::string prefix = "[LossCheck] potential data loss at ";
    for (const auto &line : log) {
        if (line.text.rfind(prefix, 0) != 0)
            continue;
        std::string reg = line.text.substr(prefix.size());
        size_t paren = reg.find(" (");
        if (paren != std::string::npos)
            reg = reg.substr(0, paren);
        out.insert(reg);
    }
    return out;
}

LossCheckReport
runLossCheck(
    const Module &mod, const LossCheckOptions &opts,
    const std::function<std::vector<sim::EvalContext::LogLine>(
        ModulePtr)> &ground_truth_workload,
    const std::function<std::vector<sim::EvalContext::LogLine>(
        ModulePtr)> &failing_workload)
{
    LossCheckResult inst = applyLossCheck(mod, opts);

    LossCheckReport report;
    report.generatedLines = inst.generatedLines;
    report.filtered = lossRegisters(ground_truth_workload(inst.module));

    std::set<std::string> raw =
        lossRegisters(failing_workload(inst.module));
    for (const auto &reg : raw)
        if (!report.filtered.count(reg))
            report.reported.insert(reg);
    return report;
}

} // namespace hwdbg::core
