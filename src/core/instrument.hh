/**
 * @file
 * Shared infrastructure for the AST-instrumentation passes.
 *
 * Each debugging tool works on a copy of the elaborated module, adds
 * declarations / assigns / clocked logic through an InstrumentBuilder,
 * and reports how much Verilog it generated (the paper evaluates tools
 * partly by the lines of analysis code they write for the developer,
 * §6.3).
 */

#ifndef HWDBG_CORE_INSTRUMENT_HH
#define HWDBG_CORE_INSTRUMENT_HH

#include <string>
#include <vector>

#include "hdl/ast.hh"

namespace hwdbg::core
{

/** Clock driving the design's first clocked process ("clk" fallback). */
std::string designClock(const hdl::Module &mod);

class InstrumentBuilder
{
  public:
    /** Start instrumenting a deep copy of @p original. */
    explicit InstrumentBuilder(const hdl::Module &original);

    hdl::ModulePtr module() { return mod_; }

    /** A fresh identifier with the given prefix. */
    std::string fresh(const std::string &prefix);

    void addReg(const std::string &name, uint32_t width);
    void addWire(const std::string &name, uint32_t width);
    void addAssign(hdl::ExprPtr lhs, hdl::ExprPtr rhs);

    /** Queue statements for the generated always @(posedge clock). */
    void addClockedStmt(const std::string &clock, hdl::StmtPtr stmt);

    /** Materialize queued clocked blocks into the module. */
    void finish();

    /** Lines of Verilog added relative to the original module. */
    int generatedLines() const;

  private:
    hdl::ModulePtr mod_;
    int originalLines_;
    int counter_ = 0;
    std::vector<std::pair<std::string, std::vector<hdl::StmtPtr>>>
        clockedStmts_;
    bool finished_ = false;
};

} // namespace hwdbg::core

#endif // HWDBG_CORE_INSTRUMENT_HH
