/**
 * @file
 * Dependency Monitor: provenance tracking for a variable (§4.3).
 *
 * Statically computes the registers a developer-specified variable may
 * depend on within the previous k cycles (through control and/or data
 * dependencies, traversing combinational logic freely and charging one
 * cycle per register crossing, with blackbox IPs handled through their
 * port dependency models), then instruments the design to log every
 * update to each register in the chain.
 */

#ifndef HWDBG_CORE_DEP_MONITOR_HH
#define HWDBG_CORE_DEP_MONITOR_HH

#include <map>
#include <string>
#include <vector>

#include "hdl/ast.hh"
#include "sim/eval.hh"

namespace hwdbg::core
{

struct DepMonitorOptions
{
    /** Variable whose provenance is wanted. */
    std::string variable;
    /** Cycle horizon k. */
    int cycles = 4;
    bool followData = true;
    bool followControl = true;
};

struct DepMonitorResult
{
    hdl::ModulePtr module;
    /** Dependency chain: register -> minimum cycle distance. */
    std::map<std::string, int> chain;
    int generatedLines = 0;
};

DepMonitorResult applyDepMonitor(const hdl::Module &mod,
                                 const DepMonitorOptions &opts);

/** One observed update of a monitored dependency. */
struct DepUpdate
{
    uint64_t cycle;
    std::string variable;
    /** New value, rendered in hex. */
    std::string value;
};

/** Extract Dependency Monitor updates from a log. */
std::vector<DepUpdate>
depUpdates(const std::vector<sim::EvalContext::LogLine> &log);

} // namespace hwdbg::core

#endif // HWDBG_CORE_DEP_MONITOR_HH
