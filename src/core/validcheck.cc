#include "core/validcheck.hh"

#include <map>

#include "analysis/exprutil.hh"
#include "analysis/guards.hh"
#include "common/logging.hh"
#include "core/instrument.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"

namespace hwdbg::core
{

using namespace hdl;

ValidCheckResult
applyValidCheck(const Module &mod, const ValidCheckOptions &opts)
{
    obs::ObsSpan span("instrument.validcheck");
    HWDBG_STAT_INC("instrument.validcheck.runs", 1);
    for (const auto &pair : opts.pairs) {
        if (!mod.findNet(pair.data))
            fatal("ValidCheck: no signal named '%s'", pair.data.c_str());
        if (!mod.findNet(pair.valid))
            fatal("ValidCheck: no signal named '%s'",
                  pair.valid.c_str());
    }

    InstrumentBuilder builder(mod);
    std::string clock = designClock(mod);
    ValidCheckResult result;

    auto assigns = analysis::collectAssigns(mod);
    for (const auto &pair : opts.pairs) {
        int uses = 0;
        for (const auto &ga : assigns) {
            if (!ga.sequential)
                continue; // combinational uses fire at the consumer reg
            if (!analysis::collectSignals(ga.rhs).count(pair.data))
                continue;
            // Skip uses already qualified by the valid signal: the
            // guard mentioning the valid is the §3.3.4 fix pattern.
            if (analysis::collectSignals(ga.guard).count(pair.valid))
                continue;
            for (const auto &target :
                 analysis::lvalueTargets(ga.lhs)) {
                auto disp = std::make_shared<DisplayStmt>();
                disp->format = "[ValidCheck] " + pair.data +
                               " used without " + pair.valid +
                               " into " + target;
                auto check = std::make_shared<IfStmt>();
                check->cond = mkAnd(cloneExpr(ga.guard),
                                    mkNot(mkId(pair.valid)));
                check->thenStmt = disp;
                builder.addClockedStmt(clock, check);
                ++uses;
            }
        }
        result.usesInstrumented[pair.data] = uses;
    }

    builder.finish();
    result.module = builder.module();
    result.generatedLines = builder.generatedLines();
    return result;
}

std::vector<InvalidUse>
invalidUses(const std::vector<sim::EvalContext::LogLine> &log)
{
    std::vector<InvalidUse> out;
    std::set<std::string> seen;
    const std::string prefix = "[ValidCheck] ";
    for (const auto &line : log) {
        if (line.text.rfind(prefix, 0) != 0)
            continue;
        std::string body = line.text.substr(prefix.size());
        size_t used = body.find(" used without ");
        size_t into = body.find(" into ");
        if (used == std::string::npos || into == std::string::npos)
            continue;
        InvalidUse use;
        use.cycle = line.cycle;
        use.data = body.substr(0, used);
        use.target = body.substr(into + 6);
        if (seen.insert(use.data + "->" + use.target).second)
            out.push_back(std::move(use));
    }
    return out;
}

} // namespace hwdbg::core
