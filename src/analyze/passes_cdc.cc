/**
 * @file
 * Clock-domain-crossing pass.
 *
 * Clock inference is structural: every clocked process's domain is its
 * first posedge sensitivity signal, and a register's domain is the set
 * of clocks of the processes that write it. Two findings:
 *
 *   multi-clock-reg  a register written from processes on different
 *       clocks — both domains race on the flop itself
 *   cdc-unsync       a clocked process on clock A consumes (directly or
 *       through combinational logic) a register written on clock B
 *       without a synchronizer. The first stage of a synchronizer — a
 *       nonblocking assignment whose right-hand side is exactly the
 *       crossing register — is exempt; everything it feeds is in the
 *       destination domain.
 */

#include <map>
#include <set>
#include <string>
#include <vector>

#include "analysis/exprutil.hh"
#include "analyze/analyze.hh"
#include "analyze/passes.hh"
#include "common/logging.hh"

namespace hwdbg::analyze
{

using namespace hdl;

namespace
{

lint::Diagnostic
mkDiag(const std::string &rule, lint::Severity severity,
       const std::string &subclass, const SourceLoc &loc,
       std::string message, std::vector<std::string> signals)
{
    lint::Diagnostic diag;
    diag.rule = rule;
    diag.severity = severity;
    diag.subclass = subclass;
    diag.loc = loc;
    diag.message = std::move(message);
    diag.signals = std::move(signals);
    return diag;
}

/** True when @p expr is exactly one identifier read of @p name. */
bool
isPlainRead(const ExprPtr &expr, const std::string &name)
{
    return expr && expr->kind == ExprKind::Id &&
           expr->as<IdExpr>()->name == name;
}

} // namespace

void
passCdc(AnalyzeContext &ctx)
{
    const ConstFixpoint &fix = ctx.fixpoint();
    const Module &mod = ctx.module();
    const auto &graph = ctx.graph();

    // Write domain(s) per register.
    std::map<std::string, std::set<std::string>> domainsOf;
    for (const auto &ga : fix.assigns) {
        if (!ga.proc || ga.proc->isComb || ga.clock.empty())
            continue;
        for (const auto &target : analysis::lvalueTargets(ga.lhs))
            domainsOf[target].insert(ga.clock);
    }

    for (const auto &[name, domains] : domainsOf) {
        if (domains.size() < 2)
            continue;
        std::string clock_list;
        for (const auto &clock : domains)
            clock_list += (clock_list.empty() ? "" : ", ") + clock;
        ctx.report(mkDiag(
            "multi-clock-reg", lint::Severity::Error,
            "Signal Asynchrony", ctx.declLoc(name),
            csprintf("'%s' is written from processes on different "
                     "clocks (%s)",
                     name.c_str(), clock_list.c_str()),
            {name}));
    }

    // Unsynchronized consumption across domains.
    std::set<std::pair<std::string, std::string>> reported;
    for (const auto &ga : fix.assigns) {
        if (!ga.proc || ga.proc->isComb || ga.clock.empty())
            continue;
        std::set<std::string> reads =
            analysis::collectSignals(ga.rhs);
        for (const auto &sig : analysis::collectSignals(ga.guard))
            reads.insert(sig);
        for (const auto &sig : reads) {
            for (const auto &src : graph.statefulSources(sig)) {
                auto it = domainsOf.find(src);
                if (it == domainsOf.end() || it->second.size() != 1)
                    continue; // input / IP output / multi-clock reg
                const std::string &src_clock = *it->second.begin();
                if (src_clock == ga.clock)
                    continue;
                // Synchronizer first stage: `dst <= src` latches the
                // raw crossing value; its consumers are safe.
                if (ga.sequential && isPlainRead(ga.rhs, src) &&
                    sig == src)
                    continue;
                if (!reported.emplace(src, ga.clock).second)
                    continue;
                ctx.report(mkDiag(
                    "cdc-unsync", lint::Severity::Warning,
                    "Signal Asynchrony",
                    ga.stmt ? ga.stmt->loc : mod.loc,
                    csprintf("'%s' (clock '%s') is consumed in clock "
                             "domain '%s' without a synchronizer",
                             src.c_str(), src_clock.c_str(),
                             ga.clock.c_str()),
                    {src}));
            }
        }
    }
}

} // namespace hwdbg::analyze
