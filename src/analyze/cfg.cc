#include "analyze/cfg.hh"

#include <algorithm>

namespace hwdbg::analyze
{

using namespace hdl;

namespace
{

class Builder
{
  public:
    explicit Builder(Cfg &cfg) : cfg_(cfg)
    {
        cfg_.nodes.clear();
        addNode(CfgNode::Kind::Entry, nullptr);
        addNode(CfgNode::Kind::Exit, nullptr);
    }

    void
    build(const StmtPtr &body)
    {
        uint32_t last = lower(body, cfg_.entry);
        edge(last, cfg_.exit);
    }

  private:
    uint32_t
    addNode(CfgNode::Kind kind, const Stmt *stmt)
    {
        CfgNode node;
        node.kind = kind;
        node.stmt = stmt;
        cfg_.nodes.push_back(node);
        return static_cast<uint32_t>(cfg_.nodes.size() - 1);
    }

    void
    edge(uint32_t from, uint32_t to)
    {
        cfg_.nodes[from].succs.push_back(to);
        cfg_.nodes[to].preds.push_back(from);
    }

    /** Lower @p stmt after node @p pred; return the last node. */
    uint32_t
    lower(const StmtPtr &stmt, uint32_t pred)
    {
        if (!stmt)
            return pred;
        switch (stmt->kind) {
          case StmtKind::Block: {
            uint32_t cur = pred;
            for (const auto &sub : stmt->as<BlockStmt>()->stmts)
                cur = lower(sub, cur);
            return cur;
          }
          case StmtKind::If: {
            const auto *branch = stmt->as<IfStmt>();
            uint32_t head = addNode(CfgNode::Kind::Branch, stmt.get());
            edge(pred, head);
            uint32_t join = addNode(CfgNode::Kind::Join, nullptr);
            edge(lower(branch->thenStmt, head), join);
            // A missing else arm is an edge straight to the join: the
            // fall-through path where nothing is assigned.
            edge(lower(branch->elseStmt, head), join);
            return join;
          }
          case StmtKind::Case: {
            const auto *sel = stmt->as<CaseStmt>();
            uint32_t head = addNode(CfgNode::Kind::Branch, stmt.get());
            edge(pred, head);
            uint32_t join = addNode(CfgNode::Kind::Join, nullptr);
            bool has_default = false;
            for (const auto &item : sel->items) {
                if (item.labels.empty())
                    has_default = true;
                edge(lower(item.body, head), join);
            }
            // Without a default, an unmatched selector skips the whole
            // statement; model that as its own fall-through edge.
            if (!has_default)
                edge(head, join);
            return join;
          }
          case StmtKind::Assign:
          case StmtKind::Display:
          case StmtKind::Finish:
          case StmtKind::Null: {
            uint32_t node = addNode(CfgNode::Kind::Stmt, stmt.get());
            edge(pred, node);
            return node;
          }
        }
        return pred;
    }

    Cfg &cfg_;
};

} // namespace

Cfg
buildCfg(const StmtPtr &body)
{
    Cfg cfg;
    Builder builder(cfg);
    builder.build(body);
    return cfg;
}

Cfg
buildCfg(const AlwaysItem &proc)
{
    Cfg cfg = buildCfg(proc.body);
    cfg.proc = &proc;
    return cfg;
}

std::vector<uint32_t>
rpoOrder(const Cfg &cfg)
{
    std::vector<uint32_t> post;
    std::vector<uint8_t> seen(cfg.nodes.size(), 0);
    // Iterative DFS; the graphs are acyclic so a plain post-order works.
    struct Frame
    {
        uint32_t node;
        size_t next = 0;
    };
    std::vector<Frame> stack;
    stack.push_back({cfg.entry});
    seen[cfg.entry] = 1;
    while (!stack.empty()) {
        Frame &top = stack.back();
        const auto &succs = cfg.nodes[top.node].succs;
        if (top.next < succs.size()) {
            uint32_t next = succs[top.next++];
            if (!seen[next]) {
                seen[next] = 1;
                stack.push_back({next});
            }
        } else {
            post.push_back(top.node);
            stack.pop_back();
        }
    }
    std::reverse(post.begin(), post.end());
    return post;
}

} // namespace hwdbg::analyze
