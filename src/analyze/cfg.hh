/**
 * @file
 * Per-process control-flow graph over statement trees.
 *
 * Each always block (and, degenerately, each continuous assignment)
 * lowers to a small CFG: straight-line statements become Stmt nodes,
 * if/case statements become a Branch node fanning out to one arm per
 * alternative and a Join node where the arms re-converge. The dataflow
 * passes (solver.hh) run forward analyses over this graph; guard
 * expressions for path feasibility come from analysis/guards.cc, which
 * walks the same trees.
 */

#ifndef HWDBG_ANALYZE_CFG_HH
#define HWDBG_ANALYZE_CFG_HH

#include <cstdint>
#include <vector>

#include "hdl/ast.hh"

namespace hwdbg::analyze
{

struct CfgNode
{
    enum class Kind { Entry, Exit, Stmt, Branch, Join };
    Kind kind = Kind::Stmt;

    /**
     * The statement this node executes or branches on: Assign, Display,
     * Finish or Null for Stmt nodes; If or Case for Branch nodes; null
     * for Entry/Exit/Join.
     */
    const hdl::Stmt *stmt = nullptr;

    std::vector<uint32_t> succs;
    std::vector<uint32_t> preds;
};

struct Cfg
{
    std::vector<CfgNode> nodes;
    /** Always nodes[0]. */
    uint32_t entry = 0;
    /** Always nodes[1]; reachable from every path end. */
    uint32_t exit = 1;
    /** Owning process (null when built from a bare statement). */
    const hdl::AlwaysItem *proc = nullptr;
};

/** Build the CFG of one process body. */
Cfg buildCfg(const hdl::AlwaysItem &proc);

/** Build the CFG of a bare statement tree (tests, tools). */
Cfg buildCfg(const hdl::StmtPtr &body);

/**
 * Node indices in reverse post-order from the entry: every node appears
 * after all of its non-back-edge predecessors, the order a forward
 * solver should visit. The graphs are acyclic by construction (no loops
 * in the statement subset), so this is a topological order.
 */
std::vector<uint32_t> rpoOrder(const Cfg &cfg);

} // namespace hwdbg::analyze

#endif // HWDBG_ANALYZE_CFG_HH
