/**
 * @file
 * Internal declarations of the analyze passes (one per passes_*.cc).
 */

#ifndef HWDBG_ANALYZE_PASSES_HH
#define HWDBG_ANALYZE_PASSES_HH

namespace hwdbg::analyze
{

class AnalyzeContext;

void passConst(AnalyzeContext &ctx);
void passXinit(AnalyzeContext &ctx);
void passRace(AnalyzeContext &ctx);
void passCdc(AnalyzeContext &ctx);
void passLoop(AnalyzeContext &ctx);

} // namespace hwdbg::analyze

#endif // HWDBG_ANALYZE_PASSES_HH
