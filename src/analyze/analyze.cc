#include "analyze/analyze.hh"

#include <algorithm>
#include <functional>
#include <sstream>

#include "analysis/exprutil.hh"
#include "analyze/passes.hh"
#include "common/logging.hh"
#include "obs/json.hh"
#include "obs/jsoncheck.hh"
#include "obs/trace.hh"

namespace hwdbg::analyze
{

using namespace hdl;

// ----------------------------------------------------------------- context

AnalyzeContext::AnalyzeContext(const Module &mod)
    : mod_(&mod), sigs_(mod)
{
}

AnalyzeContext::~AnalyzeContext() = default;

const analysis::DepGraph &
AnalyzeContext::graph()
{
    if (!graph_)
        graph_ = std::make_unique<analysis::DepGraph>(*mod_);
    return *graph_;
}

const ConstFixpoint &
AnalyzeContext::fixpoint()
{
    if (!fix_)
        fix_ = std::make_unique<ConstFixpoint>(
            solveConstants(*mod_, sigs_));
    return *fix_;
}

namespace
{

void
collectExprReads(const ExprPtr &expr, std::set<std::string> &out)
{
    if (!expr)
        return;
    for (const auto &sig : analysis::collectSignals(expr))
        out.insert(sig);
}

void
collectStmtReads(const StmtPtr &stmt, std::set<std::string> &out)
{
    if (!stmt)
        return;
    switch (stmt->kind) {
      case StmtKind::Block:
        for (const auto &sub : stmt->as<BlockStmt>()->stmts)
            collectStmtReads(sub, out);
        break;
      case StmtKind::If: {
        const auto *branch = stmt->as<IfStmt>();
        collectExprReads(branch->cond, out);
        collectStmtReads(branch->thenStmt, out);
        collectStmtReads(branch->elseStmt, out);
        break;
      }
      case StmtKind::Case: {
        const auto *sel = stmt->as<CaseStmt>();
        collectExprReads(sel->selector, out);
        for (const auto &item : sel->items) {
            for (const auto &label : item.labels)
                collectExprReads(label, out);
            collectStmtReads(item.body, out);
        }
        break;
      }
      case StmtKind::Assign: {
        const auto *assign = stmt->as<AssignStmt>();
        collectExprReads(assign->rhs, out);
        // Index/part-select lvalues read their index expressions (and
        // partially read the base); the written targets are not reads.
        std::set<std::string> lhs_sigs;
        collectExprReads(assign->lhs, lhs_sigs);
        for (const auto &target :
             analysis::lvalueTargets(assign->lhs))
            lhs_sigs.erase(target);
        for (const auto &sig : lhs_sigs)
            out.insert(sig);
        break;
      }
      case StmtKind::Display:
        for (const auto &arg : stmt->as<DisplayStmt>()->args)
            collectExprReads(arg, out);
        break;
      case StmtKind::Finish:
      case StmtKind::Null:
        break;
    }
}

} // namespace

const std::set<std::string> &
AnalyzeContext::procReads(const AlwaysItem *proc)
{
    auto it = reads_.find(proc);
    if (it != reads_.end())
        return it->second;
    std::set<std::string> reads;
    if (proc)
        collectStmtReads(proc->body, reads);
    return reads_.emplace(proc, std::move(reads)).first->second;
}

SourceLoc
AnalyzeContext::declLoc(const std::string &name) const
{
    if (const auto *info = sigs_.find(name))
        return info->loc;
    return mod_->loc;
}

void
AnalyzeContext::report(lint::Diagnostic diag)
{
    diags_.push_back(std::move(diag));
}

std::vector<lint::Diagnostic>
AnalyzeContext::take()
{
    lint::sortDiagnostics(diags_);
    return std::move(diags_);
}

// ---------------------------------------------------------------- registry

void
passLoop(AnalyzeContext &ctx)
{
    for (auto &diag : lint::combCycleDiagnostics(
             ctx.graph().combCycles(), [&](const std::string &name) {
                 return ctx.declLoc(name);
             }))
        ctx.report(std::move(diag));
}

const std::vector<AnalyzePass> &
analyzePasses()
{
    static const std::vector<AnalyzePass> passes = {
        {"const",
         "constant/known-bits propagation: dead guards, stuck "
         "outputs, unobservable logic",
         passConst},
        {"xinit",
         "definite assignment: registers readable before any "
         "assignment reaches them",
         passXinit},
        {"race",
         "scheduler races: blocking writes visible to sibling "
         "same-clock processes, mixed or multi-process drivers",
         passRace},
        {"cdc",
         "clock-domain crossings without a synchronizer register",
         passCdc},
        {"loop",
         "combinational loops (shared diagnostics with lint)",
         passLoop},
    };
    return passes;
}

const AnalyzePass *
passById(const std::string &id)
{
    for (const auto &pass : analyzePasses())
        if (pass.id == id)
            return &pass;
    return nullptr;
}

std::vector<lint::Diagnostic>
runAnalyze(const Module &mod, const AnalyzeOptions &opts)
{
    obs::ObsSpan span("analyze");
    for (const auto &id : opts.passes)
        if (!passById(id))
            fatal("unknown analyze pass '%s'", id.c_str());
    AnalyzeContext ctx(mod);
    for (const auto &pass : analyzePasses()) {
        if (!opts.passes.empty() && !opts.passes.count(pass.id))
            continue;
        obs::ObsSpan passSpan(std::string("analyze.") + pass.id);
        pass.run(ctx);
    }
    return ctx.take();
}

// -------------------------------------------------------------------- JSON

std::string
renderAnalyzeJson(const std::vector<std::string> &passes,
                  const std::vector<lint::Diagnostic> &diags)
{
    std::ostringstream out;
    out << "{\"format\": \"hwdbg-analyze\", \"version\": 1,\n";
    out << "\"build\": " << obs::buildInfoJson() << ",\n";
    out << "\"passes\": [";
    for (size_t i = 0; i < passes.size(); ++i)
        out << (i ? ", " : "") << "\"" << obs::jsonEscape(passes[i])
            << "\"";
    out << "],\n";
    std::string body = lint::renderJson(diags);
    while (!body.empty() && body.back() == '\n')
        body.pop_back();
    out << "\"diagnostics\": " << body << "}\n";
    return out.str();
}

std::string
checkAnalyzeJson(const std::string &text)
{
    auto fail = [](const std::string &why) { return why; };
    std::string parse_error;
    obs::JsonPtr root = obs::parseJson(text, &parse_error);
    if (!root)
        return fail(parse_error);
    if (!root->isObject())
        return fail("root is not an object");

    const auto *format = root->get("format");
    if (!format || !format->isString() ||
        format->text != "hwdbg-analyze")
        return fail("\"format\" must be \"hwdbg-analyze\"");
    const auto *version = root->get("version");
    if (!version || !version->isNumber() || version->number != 1)
        return fail("unsupported analyze format version");

    const auto *build = root->get("build");
    if (!build || !build->isObject())
        return fail("missing \"build\" object");
    for (const char *key : {"tool", "version", "git", "type"}) {
        const auto *member = build->get(key);
        if (!member || !member->isString())
            return fail(std::string("build.") + key +
                        " must be a string");
    }
    if (build->get("tool")->text != "hwdbg")
        return fail("build.tool must be \"hwdbg\"");

    const auto *passes = root->get("passes");
    if (!passes || !passes->isArray())
        return fail("missing \"passes\" array");
    for (const auto &elem : passes->elems) {
        if (!elem->isString())
            return fail("passes must be strings");
        if (!passById(elem->text))
            return fail("unknown pass \"" + elem->text + "\"");
    }

    const auto *diags = root->get("diagnostics");
    if (!diags || !diags->isArray())
        return fail("missing \"diagnostics\" array");
    for (const auto &elem : diags->elems) {
        if (!elem->isObject())
            return fail("diagnostics must be objects");
        for (const char *key :
             {"rule", "severity", "subclass", "file", "message"}) {
            const auto *member = elem->get(key);
            if (!member || !member->isString())
                return fail(std::string("diagnostic ") + key +
                            " must be a string");
        }
        const std::string &sev = elem->get("severity")->text;
        if (sev != "info" && sev != "warning" && sev != "error")
            return fail("bad severity \"" + sev + "\"");
        for (const char *key : {"line", "col"}) {
            const auto *member = elem->get(key);
            if (!member || !member->isNumber())
                return fail(std::string("diagnostic ") + key +
                            " must be a number");
        }
        const auto *signals = elem->get("signals");
        if (!signals || !signals->isArray())
            return fail("diagnostic signals must be an array");
        for (const auto &sig : signals->elems)
            if (!sig->isString())
                return fail("diagnostic signals must be strings");
    }
    return "";
}

} // namespace hwdbg::analyze
