/**
 * @file
 * Generic forward dataflow solver over a per-process CFG.
 *
 * A Domain supplies the lattice and transfer function:
 *
 *   struct Domain {
 *     using Value = ...;
 *     Value entryValue();                        // fact at Entry
 *     bool meetInto(Value &into, const Value &from);  // true if changed
 *     Value transfer(const CfgNode &node, Value in);
 *   };
 *
 * The solver visits nodes in reverse post-order with a worklist; since
 * the statement CFGs are acyclic each node's input stabilizes after one
 * sweep, but the worklist keeps the solver correct if a cyclic graph is
 * ever fed in (it terminates as long as meetInto is monotone and the
 *  lattice has finite height).
 */

#ifndef HWDBG_ANALYZE_SOLVER_HH
#define HWDBG_ANALYZE_SOLVER_HH

#include <deque>
#include <optional>
#include <vector>

#include "analyze/cfg.hh"

namespace hwdbg::analyze
{

template <typename Domain>
struct DataflowResult
{
    /**
     * Input fact per node; std::nullopt for nodes no path reaches
     * (possible only in degenerate graphs).
     */
    std::vector<std::optional<typename Domain::Value>> in;
    /** Output fact per node. */
    std::vector<std::optional<typename Domain::Value>> out;
};

template <typename Domain>
DataflowResult<Domain>
solveForward(const Cfg &cfg, Domain &dom)
{
    DataflowResult<Domain> res;
    res.in.resize(cfg.nodes.size());
    res.out.resize(cfg.nodes.size());

    std::vector<uint32_t> order = rpoOrder(cfg);
    std::vector<size_t> rank(cfg.nodes.size(), 0);
    for (size_t i = 0; i < order.size(); ++i)
        rank[order[i]] = i;

    res.in[cfg.entry] = dom.entryValue();

    std::deque<uint32_t> work(order.begin(), order.end());
    std::vector<uint8_t> queued(cfg.nodes.size(), 1);
    while (!work.empty()) {
        uint32_t n = work.front();
        work.pop_front();
        queued[n] = 0;
        if (!res.in[n])
            continue;
        typename Domain::Value out =
            dom.transfer(cfg.nodes[n], *res.in[n]);
        bool changed = false;
        if (!res.out[n]) {
            res.out[n] = std::move(out);
            changed = true;
        } else {
            changed = dom.meetInto(*res.out[n], out);
        }
        if (!changed)
            continue;
        for (uint32_t succ : cfg.nodes[n].succs) {
            bool succ_changed;
            if (!res.in[succ]) {
                res.in[succ] = *res.out[n];
                succ_changed = true;
            } else {
                succ_changed = dom.meetInto(*res.in[succ], *res.out[n]);
            }
            if (succ_changed && !queued[succ]) {
                queued[succ] = 1;
                // Keep roughly-RPO processing: later-ranked nodes go to
                // the back so predecessors usually run first.
                if (rank[succ] < rank[n])
                    work.push_front(succ);
                else
                    work.push_back(succ);
            }
        }
    }
    return res;
}

} // namespace hwdbg::analyze

#endif // HWDBG_ANALYZE_SOLVER_HH
