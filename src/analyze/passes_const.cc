/**
 * @file
 * Constant-propagation pass: dead and always-true guards, outputs (or
 * output bits) stuck at constants, and logic that never reaches an
 * observable sink. All facts come from the whole-design known-bits
 * fixpoint plus a backward liveness sweep over the dependency graph.
 */

#include <deque>
#include <functional>
#include <sstream>

#include "analysis/exprutil.hh"
#include "analyze/analyze.hh"
#include "analyze/passes.hh"
#include "common/logging.hh"

namespace hwdbg::analyze
{

using namespace hdl;

namespace
{

lint::Diagnostic
mkDiag(const std::string &rule, lint::Severity severity,
       const std::string &subclass, const SourceLoc &loc,
       std::string message, std::vector<std::string> signals)
{
    lint::Diagnostic diag;
    diag.rule = rule;
    diag.severity = severity;
    diag.subclass = subclass;
    diag.loc = loc;
    diag.message = std::move(message);
    diag.signals = std::move(signals);
    return diag;
}

SourceLoc
assignLoc(const analysis::GuardedAssign &ga, const Module &mod)
{
    if (ga.stmt)
        return ga.stmt->loc;
    if (ga.cont)
        return ga.cont->loc;
    return mod.loc;
}

std::string
fmtConst(const KnownBits &kb)
{
    std::ostringstream out;
    out << kb.width << "'h" << std::hex << kb.value;
    return out.str();
}

/**
 * Signals whose value is externally observable: output ports, operands
 * and path conditions of $display/$finish, and anything wired to a
 * primitive instance.
 */
std::set<std::string>
observableSinks(const Module &mod)
{
    std::set<std::string> sinks;
    for (const auto &item : mod.items) {
        switch (item->kind) {
          case ItemKind::Net: {
            const auto *net = item->as<NetItem>();
            if (net->dir == PortDir::Output)
                sinks.insert(net->name);
            break;
          }
          case ItemKind::Instance:
            for (const auto &conn : item->as<InstanceItem>()->conns)
                if (conn.actual)
                    for (const auto &sig :
                         analysis::collectSignals(conn.actual))
                        sinks.insert(sig);
            break;
          case ItemKind::Always: {
            const auto *proc = item->as<AlwaysItem>();
            // Collect $display/$finish reads together with every
            // enclosing condition: the guard decides whether the
            // side effect happens, so it is observable too.
            std::vector<ExprPtr> conds;
            std::function<void(const StmtPtr &)> walk =
                [&](const StmtPtr &stmt) {
                    if (!stmt)
                        return;
                    switch (stmt->kind) {
                      case StmtKind::Block:
                        for (const auto &sub :
                             stmt->as<BlockStmt>()->stmts)
                            walk(sub);
                        break;
                      case StmtKind::If: {
                        const auto *branch = stmt->as<IfStmt>();
                        conds.push_back(branch->cond);
                        walk(branch->thenStmt);
                        walk(branch->elseStmt);
                        conds.pop_back();
                        break;
                      }
                      case StmtKind::Case: {
                        const auto *sel = stmt->as<CaseStmt>();
                        conds.push_back(sel->selector);
                        for (const auto &ci : sel->items)
                            walk(ci.body);
                        conds.pop_back();
                        break;
                      }
                      case StmtKind::Display: {
                        for (const auto &arg :
                             stmt->as<DisplayStmt>()->args)
                            for (const auto &sig :
                                 analysis::collectSignals(arg))
                                sinks.insert(sig);
                        for (const auto &cond : conds)
                            for (const auto &sig :
                                 analysis::collectSignals(cond))
                                sinks.insert(sig);
                        break;
                      }
                      case StmtKind::Finish:
                        for (const auto &cond : conds)
                            for (const auto &sig :
                                 analysis::collectSignals(cond))
                                sinks.insert(sig);
                        break;
                      default:
                        break;
                    }
                };
            walk(proc->body);
            break;
          }
          default:
            break;
        }
    }
    return sinks;
}

} // namespace

void
passConst(AnalyzeContext &ctx)
{
    const Module &mod = ctx.module();
    const SignalTable &sigs = ctx.signals();
    const ConstFixpoint &fix = ctx.fixpoint();

    // --- dead and always-true guards.
    for (size_t i = 0; i < fix.assigns.size(); ++i) {
        const auto &ga = fix.assigns[i];
        if (!fix.deadGuard[i] && !fix.trueGuard[i])
            continue;
        auto targets = analysis::lvalueTargets(ga.lhs);
        std::vector<std::string> signals(targets.begin(),
                                         targets.end());
        for (const auto &sig : analysis::collectSignals(ga.guard))
            if (!targets.count(sig))
                signals.push_back(sig);
        std::string target_list;
        for (const auto &target : targets)
            target_list += (target_list.empty() ? "" : ", ") + target;
        if (fix.deadGuard[i]) {
            ctx.report(mkDiag(
                "dead-guard", lint::Severity::Warning,
                "Failure-to-Update", assignLoc(ga, mod),
                csprintf("branch guard is never true: assignment to "
                         "'%s' is unreachable",
                         target_list.c_str()),
                std::move(signals)));
        } else {
            ctx.report(mkDiag(
                "const-guard", lint::Severity::Info,
                "Incomplete Implementation", assignLoc(ga, mod),
                csprintf("branch guard is always true for assignment "
                         "to '%s'",
                         target_list.c_str()),
                std::move(signals)));
        }
    }

    // --- outputs stuck at a constant (fully or per bit).
    for (const auto &[name, info] : sigs.all()) {
        if (info.dir != PortDir::Output || info.isArray ||
            info.width == 0 || info.width > 64)
            continue;
        KnownBits kb = fix.factOf(name, sigs);
        if (kb.fullyKnown()) {
            ctx.report(mkDiag(
                "stuck-output", lint::Severity::Warning,
                "Failure-to-Update", info.loc,
                csprintf("output '%s' is stuck at %s", name.c_str(),
                         fmtConst(kb).c_str()),
                {name}));
        } else if (kb.anyKnown() && info.width > 1) {
            std::ostringstream bitlist;
            bool first = true;
            for (uint32_t bit = 0; bit < kb.width; ++bit) {
                if (!(kb.known >> bit & 1))
                    continue;
                bitlist << (first ? "" : ", ") << "[" << bit
                        << "]=" << (kb.value >> bit & 1);
                first = false;
            }
            ctx.report(mkDiag(
                "stuck-bit", lint::Severity::Warning,
                "Failure-to-Update", info.loc,
                csprintf("output '%s' has stuck bits: %s",
                         name.c_str(), bitlist.str().c_str()),
                {name}));
        }
    }

    // --- backward liveness: logic that never reaches a sink.
    const auto &graph = ctx.graph();
    std::set<std::string> live = observableSinks(mod);
    std::deque<std::string> work(live.begin(), live.end());
    while (!work.empty()) {
        std::string name = work.front();
        work.pop_front();
        for (const auto *edge : graph.edgesInto(name))
            if (live.insert(edge->src).second)
                work.push_back(edge->src);
    }
    for (const auto &[name, info] : sigs.all()) {
        if (info.dir != PortDir::None || live.count(name))
            continue;
        // Only signals that are read somewhere: completely unread
        // signals are lint's unused-signal finding, not ours.
        if (graph.edgesOutOf(name).empty())
            continue;
        ctx.report(mkDiag(
            "dead-signal", lint::Severity::Warning,
            "Incomplete Implementation", info.loc,
            csprintf("'%s' is read but never reaches an output, "
                     "$display, $finish, or primitive",
                     name.c_str()),
            {name}));
    }
}

} // namespace hwdbg::analyze
