/**
 * @file
 * Definite-assignment pass.
 *
 * Two findings, both "reads that can observe a value no assignment
 * produced" (an X in four-state simulation; a stale or zero value in
 * our two-state simulator):
 *
 *   comb-read-before-write  inside a combinational process, a signal
 *       the process itself drives is read on a path where no assignment
 *       has executed yet — the read sees the previous settling value
 *       (latch-like behavior). Detected with a forward must-assign
 *       dataflow over the process CFG.
 *
 *   read-uninitialized  a register has assignments, but the constant
 *       fixpoint proves every one of them dead (guard never true), and
 *       the register is still read or exported — every read observes
 *       the initial value only.
 */

#include <map>
#include <set>
#include <string>
#include <vector>

#include "analysis/exprutil.hh"
#include "analyze/analyze.hh"
#include "analyze/passes.hh"
#include "analyze/solver.hh"
#include "common/logging.hh"

namespace hwdbg::analyze
{

using namespace hdl;

namespace
{

lint::Diagnostic
mkDiag(const std::string &rule, lint::Severity severity,
       const std::string &subclass, const SourceLoc &loc,
       std::string message, std::vector<std::string> signals)
{
    lint::Diagnostic diag;
    diag.rule = rule;
    diag.severity = severity;
    diag.subclass = subclass;
    diag.loc = loc;
    diag.message = std::move(message);
    diag.signals = std::move(signals);
    return diag;
}

/** Signals a CFG node reads when it executes (or branches). */
std::set<std::string>
nodeReads(const CfgNode &node)
{
    std::set<std::string> reads;
    if (!node.stmt)
        return reads;
    auto add = [&](const ExprPtr &expr) {
        if (!expr)
            return;
        for (const auto &sig : analysis::collectSignals(expr))
            reads.insert(sig);
    };
    switch (node.stmt->kind) {
      case StmtKind::If:
        add(node.stmt->as<IfStmt>()->cond);
        break;
      case StmtKind::Case: {
        const auto *sel = node.stmt->as<CaseStmt>();
        add(sel->selector);
        for (const auto &item : sel->items)
            for (const auto &label : item.labels)
                add(label);
        break;
      }
      case StmtKind::Assign: {
        const auto *assign = node.stmt->as<AssignStmt>();
        add(assign->rhs);
        // Index expressions of the lvalue are reads; the written
        // targets themselves are not.
        std::set<std::string> lhs_sigs;
        for (const auto &sig :
             analysis::collectSignals(assign->lhs))
            lhs_sigs.insert(sig);
        for (const auto &target :
             analysis::lvalueTargets(assign->lhs))
            lhs_sigs.erase(target);
        for (const auto &sig : lhs_sigs)
            reads.insert(sig);
        break;
      }
      case StmtKind::Display:
        for (const auto &arg : node.stmt->as<DisplayStmt>()->args)
            add(arg);
        break;
      default:
        break;
    }
    return reads;
}

} // namespace

void
passXinit(AnalyzeContext &ctx)
{
    const Module &mod = ctx.module();
    const SignalTable &sigs = ctx.signals();
    const ConstFixpoint &fix = ctx.fixpoint();

    // --- comb-read-before-write: must-assign dataflow per comb proc.
    for (const auto &item : mod.items) {
        if (item->kind != ItemKind::Always)
            continue;
        const auto *proc = item->as<AlwaysItem>();
        if (!proc->isComb)
            continue;

        // Signals this process drives anywhere.
        std::set<std::string> written;
        for (const auto &ga : fix.assigns)
            if (ga.proc == proc)
                for (const auto &target :
                     analysis::lvalueTargets(ga.lhs))
                    written.insert(target);
        if (written.empty())
            continue;

        Cfg cfg = buildCfg(*proc);
        MustAssignDomain dom;
        auto res = solveForward(cfg, dom);

        std::set<std::string> reported;
        for (uint32_t n = 0; n < cfg.nodes.size(); ++n) {
            const CfgNode &node = cfg.nodes[n];
            if (!node.stmt || !res.in[n])
                continue;
            for (const auto &sig : nodeReads(node)) {
                if (!written.count(sig) || res.in[n]->count(sig))
                    continue;
                if (!reported.insert(sig).second)
                    continue;
                ctx.report(mkDiag(
                    "comb-read-before-write", lint::Severity::Warning,
                    "Signal Asynchrony", node.stmt->loc,
                    csprintf("'%s' is read before this combinational "
                             "process assigns it; the read observes "
                             "the previous settling value",
                             sig.c_str()),
                    {sig}));
            }
        }
    }

    // --- read-uninitialized: every assignment to a register is dead.
    std::map<std::string, std::vector<size_t>> assignsOf;
    for (size_t i = 0; i < fix.assigns.size(); ++i)
        for (const auto &target :
             analysis::lvalueTargets(fix.assigns[i].lhs))
            assignsOf[target].push_back(i);

    const auto &graph = ctx.graph();
    for (const auto &[name, info] : sigs.all()) {
        if (!info.isReg || info.isArray)
            continue;
        if (fix.primConnected.count(name))
            continue;
        auto it = assignsOf.find(name);
        if (it == assignsOf.end() || it->second.empty())
            continue; // never driven at all: lint's undriven finding
        bool all_dead = true;
        for (size_t i : it->second)
            if (!fix.deadGuard[i])
                all_dead = false;
        if (!all_dead)
            continue;
        bool read = !graph.edgesOutOf(name).empty() ||
                    info.dir == PortDir::Output;
        if (!read)
            continue;
        ctx.report(mkDiag(
            "read-uninitialized", lint::Severity::Warning,
            "Failure-to-Update", info.loc,
            csprintf("no assignment to '%s' is ever reachable; reads "
                     "observe only the initial value (X in four-state "
                     "simulation)",
                     name.c_str()),
            {name}));
    }
}

} // namespace hwdbg::analyze
