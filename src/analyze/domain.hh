/**
 * @file
 * Known-bits abstract domain over subset-Verilog expressions.
 *
 * A KnownBits value records, per bit position, whether the analysis has
 * proven the bit's two-state value. The evaluator mirrors the width and
 * operator semantics of the cycle simulator / RefEval (context-width
 * propagation, zero extension, unsigned compares) so that any bit the
 * analysis claims is constant really is constant in every simulation.
 * Three-valued guard evaluation (triEval) layers truthiness on top:
 * definitely-false guards kill assignments, everything else survives.
 *
 * Precision is capped at 64 bits; wider expressions evaluate to
 * all-unknown, which is always sound.
 */

#ifndef HWDBG_ANALYZE_DOMAIN_HH
#define HWDBG_ANALYZE_DOMAIN_HH

#include <map>
#include <optional>
#include <string>

#include "hdl/ast.hh"

namespace hwdbg::analyze
{

/** Per-bit constancy facts for one value of @c width bits (<= 64). */
struct KnownBits
{
    uint32_t width = 1;
    /** Bit i of the mask set = bit i of the value is proven. */
    uint64_t known = 0;
    /** Proven bit values; zero where unknown. */
    uint64_t value = 0;

    static uint64_t
    maskOf(uint32_t width)
    {
        return width >= 64 ? ~0ULL : ((1ULL << width) - 1);
    }

    static KnownBits
    unknown(uint32_t width)
    {
        return {width, 0, 0};
    }

    static KnownBits
    constant(uint32_t width, uint64_t value)
    {
        return {width, maskOf(width), value & maskOf(width)};
    }

    bool
    fullyKnown() const
    {
        return (known & maskOf(width)) == maskOf(width);
    }

    bool
    anyKnown() const
    {
        return (known & maskOf(width)) != 0;
    }

    /** Definitely zero in every simulation. */
    bool
    knownZero() const
    {
        return fullyKnown() && value == 0;
    }

    /** Some bit is proven one, so the value is definitely nonzero. */
    bool
    knownNonzero() const
    {
        return (known & value & maskOf(width)) != 0;
    }

    /** Zero-extend or truncate to @p new_width. */
    KnownBits resized(uint32_t new_width) const;
};

/** Lattice join: keep bits proven equal on both sides. */
KnownBits joinKnown(const KnownBits &a, const KnownBits &b);

/** Three-valued truth value. */
enum class Tri { False, True, Unknown };

/**
 * Signal declarations of one elaborated module: widths, kinds, and
 * resolved parameter constants, computed without mutating the AST.
 */
class SignalTable
{
  public:
    explicit SignalTable(const hdl::Module &mod);

    struct Info
    {
        uint32_t width = 1;
        bool isReg = false;
        bool isArray = false;
        hdl::PortDir dir = hdl::PortDir::None;
        hdl::SourceLoc loc;
    };

    /** Declaration info, or nullptr for unknown names. */
    const Info *find(const std::string &name) const;
    /** Resolved parameter value, or nullptr. */
    const KnownBits *param(const std::string &name) const;
    const std::map<std::string, Info> &all() const { return sigs_; }

  private:
    std::map<std::string, Info> sigs_;
    std::map<std::string, KnownBits> params_;
};

/**
 * Value facts per signal. A missing entry (or std::nullopt) is bottom:
 * no fact computed yet, used by the optimistic global fixpoint.
 */
using Env = std::map<std::string, std::optional<KnownBits>>;

/**
 * Evaluate a constant expression (numbers and operators only).
 * Returns std::nullopt when the expression references any signal or is
 * wider than 64 bits.
 */
std::optional<uint64_t> constEval(const hdl::ExprPtr &expr);

/**
 * Self-determined width of @p expr under @p sigs, mirroring
 * RefEval::selfWidth. Returns 0 for expressions it cannot size
 * (unknown identifiers, non-constant part selects).
 */
uint32_t selfWidth(const hdl::ExprPtr &expr, const SignalTable &sigs);

/**
 * Abstract evaluation of @p expr at context width @p ctx_width
 * (0 = self-determined), mirroring RefEval::evalE. Returns std::nullopt
 * (bottom) when a referenced signal has no fact yet in @p env.
 */
std::optional<KnownBits> kbEval(const hdl::ExprPtr &expr,
                                uint32_t ctx_width,
                                const SignalTable &sigs, const Env &env);

/**
 * Three-valued truthiness of @p expr: False only when the expression is
 * proven zero, True only when proven nonzero. Bottom evaluates to
 * std::nullopt.
 */
std::optional<Tri> triEval(const hdl::ExprPtr &expr,
                           const SignalTable &sigs, const Env &env);

} // namespace hwdbg::analyze

#endif // HWDBG_ANALYZE_DOMAIN_HH
