/**
 * @file
 * Scheduler-race pass.
 *
 * The simulator executes triggered clocked processes in declaration
 * order, applies blocking writes immediately, and commits nonblocking
 * writes in execution order after every process ran. Three patterns
 * therefore make design behavior depend on the (arbitrary) process
 * order, and all three are exactly what the fuzz process-permutation
 * oracle (Oracle::Order) perturbs:
 *
 *   blocking-race     a clocked process writes a signal with a blocking
 *       assignment while a sibling process on the same clock reads or
 *       writes it in the same time step — whichever process runs first
 *       changes the value observed / surviving
 *   multi-driver-nba  nonblocking writes to one signal from several
 *       clocked processes: the commit order is the execution order, so
 *       the surviving value depends on scheduling
 *   nba-blocking-mix  one signal written both blocking and nonblocking
 *       from clocked processes: the NBA commit silently overwrites the
 *       blocking value at the end of the step (or vice versa)
 *
 * Every signal named in a blocking-race or multi-driver-nba diagnostic
 * is a potential source of permutation divergence; the Order oracle
 * treats observed divergence on an unflagged design as an analyzer
 * soundness failure.
 */

#include <map>
#include <set>
#include <string>
#include <vector>

#include "analysis/exprutil.hh"
#include "analyze/analyze.hh"
#include "analyze/passes.hh"
#include "common/logging.hh"

namespace hwdbg::analyze
{

using namespace hdl;

namespace
{

lint::Diagnostic
mkDiag(const std::string &rule, lint::Severity severity,
       const std::string &subclass, const SourceLoc &loc,
       std::string message, std::vector<std::string> signals)
{
    lint::Diagnostic diag;
    diag.rule = rule;
    diag.severity = severity;
    diag.subclass = subclass;
    diag.loc = loc;
    diag.message = std::move(message);
    diag.signals = std::move(signals);
    return diag;
}

struct ClockedWrite
{
    const AlwaysItem *proc = nullptr;
    std::string clock;
    bool blocking = false;
    SourceLoc loc;
};

} // namespace

void
passRace(AnalyzeContext &ctx)
{
    const ConstFixpoint &fix = ctx.fixpoint();
    const Module &mod = ctx.module();

    // Clocked writes per signal, in module order.
    std::map<std::string, std::vector<ClockedWrite>> writes;
    for (const auto &ga : fix.assigns) {
        if (!ga.proc || ga.proc->isComb)
            continue;
        ClockedWrite cw;
        cw.proc = ga.proc;
        cw.clock = ga.clock;
        cw.blocking = !ga.sequential;
        cw.loc = ga.stmt ? ga.stmt->loc : mod.loc;
        for (const auto &target : analysis::lvalueTargets(ga.lhs))
            writes[target].push_back(cw);
    }

    // Clocked processes with a stable human label (position among all
    // always blocks, matching waveform/debugger numbering).
    std::vector<const AlwaysItem *> clockedProcs;
    std::map<const AlwaysItem *, size_t> procIndex;
    size_t always_idx = 0;
    for (const auto &item : mod.items) {
        if (item->kind != ItemKind::Always)
            continue;
        const auto *proc = item->as<AlwaysItem>();
        procIndex[proc] = always_idx++;
        if (!proc->isComb)
            clockedProcs.push_back(proc);
    }

    for (const auto &[name, sites] : writes) {
        // --- blocking-race: blocking write + same-clock sibling use.
        const ClockedWrite *blocking = nullptr;
        for (const auto &site : sites)
            if (site.blocking && !blocking)
                blocking = &site;
        if (blocking) {
            std::set<size_t> rivals;
            for (const auto *proc : clockedProcs) {
                if (proc == blocking->proc)
                    continue;
                if (analysis::processClock(*proc) != blocking->clock)
                    continue;
                bool uses = ctx.procReads(proc).count(name) != 0;
                for (const auto &site : sites)
                    if (site.proc == proc)
                        uses = true;
                if (uses)
                    rivals.insert(procIndex[proc]);
            }
            if (!rivals.empty()) {
                std::string rival_list;
                for (size_t rival : rivals)
                    rival_list += (rival_list.empty() ? "" : ", ") +
                                  csprintf("always-block %zu", rival);
                ctx.report(mkDiag(
                    "blocking-race", lint::Severity::Error,
                    "Signal Asynchrony", blocking->loc,
                    csprintf("blocking write to '%s' races with %s on "
                             "the same clock edge; the observed value "
                             "depends on process execution order",
                             name.c_str(), rival_list.c_str()),
                    {name}));
            }
        }

        // --- nba-blocking-mix: both styles drive one signal.
        bool has_blocking = false, has_nba = false;
        SourceLoc mix_loc = mod.loc;
        for (const auto &site : sites) {
            if (site.blocking && !has_blocking) {
                has_blocking = true;
                mix_loc = site.loc;
            }
            has_nba |= !site.blocking;
        }
        if (has_blocking && has_nba) {
            ctx.report(mkDiag(
                "nba-blocking-mix", lint::Severity::Warning,
                "Signal Asynchrony", mix_loc,
                csprintf("'%s' is written with both blocking and "
                         "nonblocking assignments in clocked "
                         "processes; the nonblocking commit can "
                         "silently overwrite the blocking value",
                         name.c_str()),
                {name}));
        }

        // --- multi-driver-nba: NBA writers in several processes.
        std::set<const AlwaysItem *> nbaProcs;
        SourceLoc nba_loc = mod.loc;
        bool first_nba = true;
        for (const auto &site : sites) {
            if (site.blocking)
                continue;
            if (first_nba) {
                nba_loc = site.loc;
                first_nba = false;
            }
            nbaProcs.insert(site.proc);
        }
        if (nbaProcs.size() >= 2) {
            ctx.report(mkDiag(
                "multi-driver-nba", lint::Severity::Warning,
                "Signal Asynchrony", nba_loc,
                csprintf("'%s' receives nonblocking writes from %zu "
                         "clocked processes; the surviving value "
                         "follows process execution order",
                         name.c_str(), nbaProcs.size()),
                {name}));
        }
    }
}

} // namespace hwdbg::analyze
