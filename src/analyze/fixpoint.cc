#include "analyze/fixpoint.hh"

#include <algorithm>
#include <deque>
#include <map>

#include "analysis/exprutil.hh"
#include "analyze/solver.hh"

namespace hwdbg::analyze
{

using namespace hdl;

// ------------------------------------------------------------- must-assign

bool
MustAssignDomain::meetInto(Value &into, const Value &from)
{
    size_t before = into.size();
    for (auto it = into.begin(); it != into.end();) {
        if (!from.count(*it))
            it = into.erase(it);
        else
            ++it;
    }
    return into.size() != before;
}

MustAssignDomain::Value
MustAssignDomain::transfer(const CfgNode &node, Value in)
{
    if (node.kind == CfgNode::Kind::Stmt && node.stmt &&
        node.stmt->kind == StmtKind::Assign) {
        const auto *assign = node.stmt->as<AssignStmt>();
        for (const auto &target : analysis::lvalueTargets(assign->lhs))
            in.insert(target);
    }
    return in;
}

std::set<std::string>
mustAssignAtExit(const AlwaysItem &proc)
{
    Cfg cfg = buildCfg(proc);
    MustAssignDomain dom;
    auto res = solveForward(cfg, dom);
    if (!res.in[cfg.exit])
        return {};
    return *res.in[cfg.exit];
}

// ---------------------------------------------------------- const fixpoint

namespace
{

/** Signals whose fact is pinned to all-unknown from the start. */
enum class Seed { Bottom, Zero, Unknown };

std::set<std::string>
primitiveConnections(const Module &mod)
{
    std::set<std::string> out;
    for (const auto &item : mod.items) {
        if (item->kind != ItemKind::Instance)
            continue;
        for (const auto &conn : item->as<InstanceItem>()->conns)
            if (conn.actual)
                for (const auto &sig :
                     analysis::collectSignals(conn.actual))
                    out.insert(sig);
    }
    return out;
}

} // namespace

KnownBits
ConstFixpoint::factOf(const std::string &name,
                      const SignalTable &sigs) const
{
    const auto *info = sigs.find(name);
    uint32_t width = info && info->width ? info->width : 1;
    auto it = env.find(name);
    if (it == env.end() || !it->second)
        return KnownBits::unknown(std::min<uint32_t>(width, 64));
    return it->second->resized(std::min<uint32_t>(width, 64));
}

ConstFixpoint
solveConstants(const Module &mod, const SignalTable &sigs)
{
    ConstFixpoint fix;
    fix.assigns = analysis::collectAssigns(mod);
    fix.primConnected = primitiveConnections(mod);

    // Which comb processes fully assign which registers: those
    // registers never expose their zero init (settling overwrites it
    // before anything observes the value).
    std::map<const AlwaysItem *, std::set<std::string>> combMust;
    std::map<std::string, std::vector<size_t>> assignsOf;
    std::map<std::string, std::vector<const AlwaysItem *>> combProcsOf;
    std::map<std::string, bool> hasNonCombAssign;
    for (size_t i = 0; i < fix.assigns.size(); ++i) {
        const auto &ga = fix.assigns[i];
        for (const auto &target : analysis::lvalueTargets(ga.lhs)) {
            assignsOf[target].push_back(i);
            if (ga.proc && ga.proc->isComb) {
                auto &procs = combProcsOf[target];
                if (std::find(procs.begin(), procs.end(), ga.proc) ==
                    procs.end())
                    procs.push_back(ga.proc);
                if (!combMust.count(ga.proc))
                    combMust[ga.proc] = mustAssignAtExit(*ga.proc);
            } else {
                hasNonCombAssign[target] = true;
            }
        }
    }

    // Seed the environment.
    std::map<std::string, Seed> seeds;
    for (const auto &[name, info] : sigs.all()) {
        Seed seed = Seed::Bottom;
        if (info.dir == PortDir::Input || info.isArray ||
            info.width == 0 || info.width > 64 ||
            fix.primConnected.count(name)) {
            seed = Seed::Unknown;
        } else if (info.isReg) {
            // Zero init is observable unless the register is driven
            // exclusively by comb processes that all fully assign it.
            bool comb_total = !hasNonCombAssign[name] &&
                              !combProcsOf[name].empty();
            for (const auto *proc : combProcsOf[name])
                if (!combMust[proc].count(name))
                    comb_total = false;
            seed = comb_total ? Seed::Bottom : Seed::Zero;
        }
        seeds[name] = seed;
        switch (seed) {
          case Seed::Bottom:
            fix.env[name] = std::nullopt;
            break;
          case Seed::Zero:
            fix.env[name] = KnownBits::constant(info.width, 0);
            break;
          case Seed::Unknown:
            fix.env[name] = KnownBits::unknown(
                std::min<uint32_t>(std::max(info.width, 1u), 64));
            break;
        }
    }

    // Reverse dependency map: reading signal -> assignments to re-run.
    std::map<std::string, std::set<std::string>> dependents;
    for (const auto &ga : fix.assigns) {
        std::set<std::string> reads = analysis::collectSignals(ga.rhs);
        for (const auto &sig : analysis::collectSignals(ga.guard))
            reads.insert(sig);
        // Part-select / concat lvalues read their index expressions.
        for (const auto &sig : analysis::collectSignals(ga.lhs))
            reads.insert(sig);
        // Self-dependencies stay in: q <= q + 1 must re-run until the
        // join over successive values stabilizes.
        for (const auto &target : analysis::lvalueTargets(ga.lhs))
            for (const auto &read : reads)
                dependents[read].insert(target);
    }

    auto recompute =
        [&](const std::string &name) -> std::optional<KnownBits> {
        const auto *info = sigs.find(name);
        if (!info || seeds[name] == Seed::Unknown)
            return fix.env[name];
        std::optional<KnownBits> acc;
        if (seeds[name] == Seed::Zero)
            acc = KnownBits::constant(info->width, 0);
        for (size_t i : assignsOf[name]) {
            const auto &ga = fix.assigns[i];
            auto guard = triEval(ga.guard, sigs, fix.env);
            if (!guard || *guard == Tri::False)
                continue;
            std::optional<KnownBits> val;
            if (ga.lhs->kind == ExprKind::Id) {
                uint32_t cw = std::max(info->width,
                                       selfWidth(ga.rhs, sigs));
                val = kbEval(ga.rhs, cw, sigs, fix.env);
                if (val)
                    val = val->resized(info->width);
            } else {
                // Partial writes (bit/part select, concat lvalues)
                // are not tracked bit-precisely.
                val = KnownBits::unknown(info->width);
            }
            if (!val)
                continue;
            acc = acc ? joinKnown(*acc, *val) : *val;
        }
        return acc;
    };

    std::deque<std::string> work;
    std::set<std::string> queued;
    for (const auto &[name, seed] : seeds) {
        work.push_back(name);
        queued.insert(name);
    }
    // Each signal's fact rises monotonically through a lattice of
    // height <= 66, so this terminates; the bound is a safety net.
    size_t budget = (seeds.size() + 1) * 200;
    while (!work.empty() && budget-- > 0) {
        std::string name = work.front();
        work.pop_front();
        queued.erase(name);
        auto next = recompute(name);
        bool changed;
        auto &cur = fix.env[name];
        if (!next) {
            changed = false;
        } else if (!cur) {
            cur = *next;
            changed = true;
        } else {
            KnownBits joined = joinKnown(*cur, *next);
            changed = joined.known != cur->known ||
                      joined.value != cur->value ||
                      joined.width != cur->width;
            if (changed)
                cur = joined;
        }
        if (!changed)
            continue;
        for (const auto &dep : dependents[name])
            if (queued.insert(dep).second)
                work.push_back(dep);
    }
    if (!work.empty()) {
        // Budget exhausted before the fixpoint (should be impossible:
        // the lattice has finite height). Degrade every fact to
        // all-unknown rather than report from an unsettled state.
        for (auto &[name, fact] : fix.env) {
            const auto *info = sigs.find(name);
            fact = KnownBits::unknown(std::min<uint32_t>(
                info && info->width ? info->width : 1, 64));
        }
    }

    fix.deadGuard.assign(fix.assigns.size(), 0);
    fix.trueGuard.assign(fix.assigns.size(), 0);
    for (size_t i = 0; i < fix.assigns.size(); ++i) {
        const auto &ga = fix.assigns[i];
        auto guard = triEval(ga.guard, sigs, fix.env);
        if (guard && *guard == Tri::False)
            fix.deadGuard[i] = 1;
        else if (guard && *guard == Tri::True &&
                 ga.guard->kind != ExprKind::Number)
            fix.trueGuard[i] = 1;
    }
    return fix;
}

} // namespace hwdbg::analyze
