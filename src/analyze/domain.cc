#include "analyze/domain.hh"

#include <algorithm>

namespace hwdbg::analyze
{

using namespace hdl;

namespace
{

constexpr uint32_t kMaxWidth = 64;

/** All-unknown at @p width, clamped to the precision cap. */
KnownBits
unknownAt(uint32_t width)
{
    return KnownBits::unknown(std::min(width, kMaxWidth));
}

/** One bit whose value may be known. */
struct TriBit
{
    bool known = false;
    bool value = false;
};

} // namespace

KnownBits
KnownBits::resized(uint32_t new_width) const
{
    if (new_width > kMaxWidth)
        return KnownBits::unknown(kMaxWidth);
    KnownBits out;
    out.width = new_width;
    if (new_width <= width) {
        out.known = known & maskOf(new_width);
        out.value = value & maskOf(new_width);
    } else {
        // Zero extension: the new high bits are proven zero.
        out.known = known | (maskOf(new_width) & ~maskOf(width));
        out.value = value;
    }
    return out;
}

KnownBits
joinKnown(const KnownBits &a, const KnownBits &b)
{
    KnownBits out;
    out.width = std::max(a.width, b.width);
    KnownBits ax = a.resized(out.width);
    KnownBits bx = b.resized(out.width);
    out.known = ax.known & bx.known & ~(ax.value ^ bx.value);
    out.value = ax.value & out.known;
    return out;
}

// ------------------------------------------------------------ signal table

SignalTable::SignalTable(const Module &mod)
{
    for (const auto &item : mod.items) {
        if (item->kind == ItemKind::Param) {
            const auto *param = item->as<ParamItem>();
            if (auto val = constEval(param->value)) {
                uint32_t width =
                    std::min<uint32_t>(param->value->width
                                           ? param->value->width
                                           : 32,
                                       kMaxWidth);
                params_.emplace(param->name,
                                KnownBits::constant(width, *val));
            }
            continue;
        }
        if (item->kind != ItemKind::Net)
            continue;
        const auto *net = item->as<NetItem>();
        Info info;
        info.isReg = net->net == NetKind::Reg;
        info.isArray = net->array.has_value();
        info.dir = net->dir;
        info.loc = net->loc;
        if (net->range) {
            auto msb = constEval(net->range->msb);
            auto lsb = constEval(net->range->lsb);
            if (msb && lsb && *msb >= *lsb)
                info.width = static_cast<uint32_t>(*msb - *lsb) + 1;
            else
                info.width = 0; // unsizable: treated as unknown
        }
        sigs_[net->name] = info;
    }
}

const SignalTable::Info *
SignalTable::find(const std::string &name) const
{
    auto it = sigs_.find(name);
    return it == sigs_.end() ? nullptr : &it->second;
}

const KnownBits *
SignalTable::param(const std::string &name) const
{
    auto it = params_.find(name);
    return it == params_.end() ? nullptr : &it->second;
}

// ---------------------------------------------------------------- constEval

std::optional<uint64_t>
constEval(const ExprPtr &expr)
{
    if (!expr)
        return std::nullopt;
    switch (expr->kind) {
      case ExprKind::Number: {
        const auto *num = expr->as<NumberExpr>();
        if (num->value.width() > kMaxWidth)
            return std::nullopt;
        return num->value.toU64();
      }
      case ExprKind::Unary: {
        const auto *un = expr->as<UnaryExpr>();
        auto arg = constEval(un->arg);
        if (!arg)
            return std::nullopt;
        switch (un->op) {
          case UnaryOp::Neg:
            return ~*arg + 1;
          case UnaryOp::BitNot:
            return ~*arg;
          case UnaryOp::LogNot:
            return *arg == 0 ? 1 : 0;
          default:
            return std::nullopt;
        }
      }
      case ExprKind::Binary: {
        const auto *bin = expr->as<BinaryExpr>();
        auto lhs = constEval(bin->lhs);
        auto rhs = constEval(bin->rhs);
        if (!lhs || !rhs)
            return std::nullopt;
        switch (bin->op) {
          case BinaryOp::Add: return *lhs + *rhs;
          case BinaryOp::Sub: return *lhs - *rhs;
          case BinaryOp::Mul: return *lhs * *rhs;
          case BinaryOp::Div:
            return *rhs == 0 ? std::nullopt
                             : std::optional<uint64_t>(*lhs / *rhs);
          case BinaryOp::Mod:
            return *rhs == 0 ? std::nullopt
                             : std::optional<uint64_t>(*lhs % *rhs);
          case BinaryOp::BitAnd: return *lhs & *rhs;
          case BinaryOp::BitOr: return *lhs | *rhs;
          case BinaryOp::BitXor: return *lhs ^ *rhs;
          case BinaryOp::Shl:
            return *rhs >= 64 ? 0 : *lhs << *rhs;
          case BinaryOp::Shr:
            return *rhs >= 64 ? 0 : *lhs >> *rhs;
          case BinaryOp::Eq: return *lhs == *rhs ? 1 : 0;
          case BinaryOp::Ne: return *lhs != *rhs ? 1 : 0;
          case BinaryOp::Lt: return *lhs < *rhs ? 1 : 0;
          case BinaryOp::Le: return *lhs <= *rhs ? 1 : 0;
          case BinaryOp::Gt: return *lhs > *rhs ? 1 : 0;
          case BinaryOp::Ge: return *lhs >= *rhs ? 1 : 0;
          case BinaryOp::LogAnd:
            return (*lhs != 0 && *rhs != 0) ? 1 : 0;
          case BinaryOp::LogOr:
            return (*lhs != 0 || *rhs != 0) ? 1 : 0;
        }
        return std::nullopt;
      }
      default:
        return std::nullopt;
    }
}

// ---------------------------------------------------------------- selfWidth

uint32_t
selfWidth(const ExprPtr &expr, const SignalTable &sigs)
{
    if (!expr)
        return 0;
    switch (expr->kind) {
      case ExprKind::Number: {
        const auto *num = expr->as<NumberExpr>();
        return num->sized ? num->value.width()
                          : std::max<uint32_t>(32, num->value.width());
      }
      case ExprKind::Id: {
        const auto *id = expr->as<IdExpr>();
        if (const auto *info = sigs.find(id->name))
            return info->isArray ? 0 : info->width;
        if (const auto *param = sigs.param(id->name))
            return param->width;
        return 0;
      }
      case ExprKind::Unary: {
        const auto *un = expr->as<UnaryExpr>();
        uint32_t arg = selfWidth(un->arg, sigs);
        return (un->op == UnaryOp::Neg || un->op == UnaryOp::BitNot)
                   ? arg
                   : 1;
      }
      case ExprKind::Binary: {
        const auto *bin = expr->as<BinaryExpr>();
        uint32_t lhs = selfWidth(bin->lhs, sigs);
        uint32_t rhs = selfWidth(bin->rhs, sigs);
        switch (bin->op) {
          case BinaryOp::Add:
          case BinaryOp::Sub:
          case BinaryOp::Mul:
          case BinaryOp::Div:
          case BinaryOp::Mod:
          case BinaryOp::BitAnd:
          case BinaryOp::BitOr:
          case BinaryOp::BitXor:
            return (lhs && rhs) ? std::max(lhs, rhs) : 0;
          case BinaryOp::Shl:
          case BinaryOp::Shr:
            return lhs;
          default:
            return 1;
        }
      }
      case ExprKind::Ternary: {
        const auto *tern = expr->as<TernaryExpr>();
        uint32_t lhs = selfWidth(tern->thenExpr, sigs);
        uint32_t rhs = selfWidth(tern->elseExpr, sigs);
        return (lhs && rhs) ? std::max(lhs, rhs) : 0;
      }
      case ExprKind::Concat: {
        uint32_t width = 0;
        for (const auto &part : expr->as<ConcatExpr>()->parts) {
            uint32_t pw = selfWidth(part, sigs);
            if (!pw)
                return 0;
            width += pw;
        }
        return width;
      }
      case ExprKind::Repeat: {
        const auto *rep = expr->as<RepeatExpr>();
        auto count = constEval(rep->count);
        uint32_t inner = selfWidth(rep->inner, sigs);
        if (!count || !inner)
            return 0;
        return inner * static_cast<uint32_t>(*count);
      }
      case ExprKind::Index: {
        const auto *idx = expr->as<IndexExpr>();
        const auto *info = sigs.find(idx->base);
        if (!info)
            return 0;
        return info->isArray ? info->width : 1;
      }
      case ExprKind::Range: {
        const auto *range = expr->as<RangeExpr>();
        auto msb = constEval(range->msb);
        auto lsb = constEval(range->lsb);
        if (!msb || !lsb || *lsb > *msb)
            return 0;
        return static_cast<uint32_t>(*msb - *lsb) + 1;
      }
    }
    return 0;
}

// ------------------------------------------------------------------- kbEval

namespace
{

std::optional<KnownBits>
kbEvalImpl(const ExprPtr &expr, uint32_t ctx_width,
           const SignalTable &sigs, const Env &env);

/** Truthiness of an already-evaluated value. */
std::optional<Tri>
triOf(const std::optional<KnownBits> &kb)
{
    if (!kb)
        return std::nullopt;
    if (kb->knownNonzero())
        return Tri::True;
    if (kb->knownZero())
        return Tri::False;
    return Tri::Unknown;
}

/** Ripple-carry addition with a three-valued carry chain. */
KnownBits
rippleAdd(const KnownBits &a, const KnownBits &b, TriBit carry)
{
    KnownBits out;
    out.width = std::max(a.width, b.width);
    KnownBits ax = a.resized(out.width);
    KnownBits bx = b.resized(out.width);
    for (uint32_t i = 0; i < out.width; ++i) {
        TriBit abit{(ax.known >> i & 1) != 0, (ax.value >> i & 1) != 0};
        TriBit bbit{(bx.known >> i & 1) != 0, (bx.value >> i & 1) != 0};
        if (abit.known && bbit.known && carry.known) {
            bool sum = abit.value ^ bbit.value ^ carry.value;
            out.known |= 1ULL << i;
            out.value |= static_cast<uint64_t>(sum) << i;
            carry.value = (abit.value + bbit.value + carry.value) >= 2;
        } else if (abit.known && bbit.known && abit.value == bbit.value) {
            // majority(x, x, c) = x: the carry re-synchronizes even
            // though the sum bit itself stays unknown.
            carry = TriBit{true, abit.value};
        } else {
            carry = TriBit{false, false};
        }
    }
    return out;
}

KnownBits
bitNot(const KnownBits &a)
{
    KnownBits out = a;
    out.value = ~a.value & a.known & KnownBits::maskOf(a.width);
    return out;
}

std::optional<KnownBits>
evalBinary(const BinaryExpr *bin, uint32_t w, const SignalTable &sigs,
           const Env &env)
{
    switch (bin->op) {
      case BinaryOp::Add:
      case BinaryOp::Sub: {
        auto lhs = kbEvalImpl(bin->lhs, w, sigs, env);
        auto rhs = kbEvalImpl(bin->rhs, w, sigs, env);
        if (!lhs || !rhs)
            return std::nullopt;
        if (bin->op == BinaryOp::Add)
            return rippleAdd(*lhs, *rhs, TriBit{true, false})
                .resized(w);
        return rippleAdd(*lhs, bitNot(rhs->resized(w)),
                         TriBit{true, true})
            .resized(w);
      }
      case BinaryOp::Mul:
      case BinaryOp::Div:
      case BinaryOp::Mod: {
        auto lhs = kbEvalImpl(bin->lhs, w, sigs, env);
        auto rhs = kbEvalImpl(bin->rhs, w, sigs, env);
        if (!lhs || !rhs)
            return std::nullopt;
        if (!lhs->fullyKnown() || !rhs->fullyKnown())
            return unknownAt(w);
        if (bin->op == BinaryOp::Mul)
            return KnownBits::constant(std::min(w, kMaxWidth),
                                       lhs->value * rhs->value);
        if (rhs->value == 0)
            return unknownAt(w); // x/0, x%0: leave undefined
        return KnownBits::constant(std::min(w, kMaxWidth),
                                   bin->op == BinaryOp::Div
                                       ? lhs->value / rhs->value
                                       : lhs->value % rhs->value);
      }
      case BinaryOp::BitAnd:
      case BinaryOp::BitOr:
      case BinaryOp::BitXor: {
        auto lhs = kbEvalImpl(bin->lhs, w, sigs, env);
        auto rhs = kbEvalImpl(bin->rhs, w, sigs, env);
        if (!lhs || !rhs)
            return std::nullopt;
        KnownBits a = lhs->resized(std::min(w, kMaxWidth));
        KnownBits b = rhs->resized(std::min(w, kMaxWidth));
        KnownBits out;
        out.width = a.width;
        if (bin->op == BinaryOp::BitAnd) {
            // A proven-zero bit on either side forces the result bit.
            uint64_t zero =
                (a.known & ~a.value) | (b.known & ~b.value);
            out.known = (a.known & b.known) | zero;
            out.value = a.value & b.value & out.known;
        } else if (bin->op == BinaryOp::BitOr) {
            uint64_t one = (a.known & a.value) | (b.known & b.value);
            out.known = (a.known & b.known) | one;
            out.value = (a.value | b.value) & out.known;
        } else {
            out.known = a.known & b.known;
            out.value = (a.value ^ b.value) & out.known;
        }
        return out;
      }
      case BinaryOp::Shl:
      case BinaryOp::Shr: {
        auto lhs = kbEvalImpl(bin->lhs, w, sigs, env);
        auto amt = kbEvalImpl(bin->rhs, 0, sigs, env);
        if (!lhs || !amt)
            return std::nullopt;
        if (!amt->fullyKnown())
            return unknownAt(w);
        KnownBits a = lhs->resized(std::min(w, kMaxWidth));
        uint64_t shift = amt->value;
        if (shift >= a.width)
            return KnownBits::constant(a.width, 0);
        KnownBits out;
        out.width = a.width;
        uint64_t mask = KnownBits::maskOf(a.width);
        if (bin->op == BinaryOp::Shl) {
            // Vacated low bits are proven zero.
            out.known = ((a.known << shift) | ((1ULL << shift) - 1)) &
                        mask;
            out.value = (a.value << shift) & out.known;
        } else {
            uint64_t vacated = mask & ~(mask >> shift);
            out.known = ((a.known & mask) >> shift) | vacated;
            out.value = ((a.value & mask) >> shift) & out.known;
        }
        return out;
      }
      case BinaryOp::LogAnd:
      case BinaryOp::LogOr: {
        auto lhs = triOf(kbEvalImpl(bin->lhs, 0, sigs, env));
        auto rhs = triOf(kbEvalImpl(bin->rhs, 0, sigs, env));
        bool is_and = bin->op == BinaryOp::LogAnd;
        // A dominating operand decides the result even when the other
        // side is still bottom.
        if (is_and && ((lhs && *lhs == Tri::False) ||
                       (rhs && *rhs == Tri::False)))
            return KnownBits::constant(std::min(w, kMaxWidth), 0);
        if (!is_and && ((lhs && *lhs == Tri::True) ||
                        (rhs && *rhs == Tri::True)))
            return KnownBits::constant(std::min(w, kMaxWidth), 1);
        if (!lhs || !rhs)
            return std::nullopt;
        if (*lhs == Tri::Unknown || *rhs == Tri::Unknown)
            return unknownAt(w);
        bool result = is_and
                          ? (*lhs == Tri::True && *rhs == Tri::True)
                          : (*lhs == Tri::True || *rhs == Tri::True);
        return KnownBits::constant(std::min(w, kMaxWidth),
                                   result ? 1 : 0);
      }
      default: {
        // Comparisons, evaluated at max self width like RefEval.
        uint32_t cmp_w = std::max(selfWidth(bin->lhs, sigs),
                                  selfWidth(bin->rhs, sigs));
        if (cmp_w == 0 || cmp_w > kMaxWidth)
            return unknownAt(w);
        auto lhs = kbEvalImpl(bin->lhs, cmp_w, sigs, env);
        auto rhs = kbEvalImpl(bin->rhs, cmp_w, sigs, env);
        if (!lhs || !rhs)
            return std::nullopt;
        KnownBits a = lhs->resized(cmp_w);
        KnownBits b = rhs->resized(cmp_w);
        uint32_t out_w = std::min(w, kMaxWidth);
        if (bin->op == BinaryOp::Eq || bin->op == BinaryOp::Ne) {
            bool is_eq = bin->op == BinaryOp::Eq;
            // A commonly-known differing bit settles (in)equality.
            if ((a.known & b.known & (a.value ^ b.value)) != 0)
                return KnownBits::constant(out_w, is_eq ? 0 : 1);
            if (a.fullyKnown() && b.fullyKnown())
                return KnownBits::constant(out_w, is_eq ? 1 : 0);
            return unknownAt(out_w);
        }
        if (!a.fullyKnown() || !b.fullyKnown())
            return unknownAt(out_w);
        bool result = false;
        switch (bin->op) {
          case BinaryOp::Lt: result = a.value < b.value; break;
          case BinaryOp::Le: result = a.value <= b.value; break;
          case BinaryOp::Gt: result = a.value > b.value; break;
          case BinaryOp::Ge: result = a.value >= b.value; break;
          default: return unknownAt(out_w);
        }
        return KnownBits::constant(out_w, result ? 1 : 0);
      }
    }
}

std::optional<KnownBits>
kbEvalImpl(const ExprPtr &expr, uint32_t ctx_width,
           const SignalTable &sigs, const Env &env)
{
    uint32_t self = selfWidth(expr, sigs);
    if (self == 0)
        return unknownAt(std::max(ctx_width, 1u));
    uint32_t w = std::max(ctx_width, self);
    if (w > kMaxWidth)
        return unknownAt(w);

    switch (expr->kind) {
      case ExprKind::Number: {
        const auto *num = expr->as<NumberExpr>();
        if (num->value.width() > kMaxWidth)
            return unknownAt(w);
        return KnownBits::constant(num->value.width(),
                                   num->value.toU64())
            .resized(w);
      }
      case ExprKind::Id: {
        const auto *id = expr->as<IdExpr>();
        if (const auto *info = sigs.find(id->name)) {
            if (info->isArray || info->width > kMaxWidth)
                return unknownAt(w);
            auto it = env.find(id->name);
            if (it == env.end())
                return unknownAt(info->width).resized(w);
            if (!it->second)
                return std::nullopt; // bottom propagates
            return it->second->resized(w);
        }
        if (const auto *param = sigs.param(id->name))
            return param->resized(w);
        return unknownAt(w);
      }
      case ExprKind::Unary: {
        const auto *un = expr->as<UnaryExpr>();
        switch (un->op) {
          case UnaryOp::Neg: {
            auto arg = kbEvalImpl(un->arg, w, sigs, env);
            if (!arg)
                return std::nullopt;
            return rippleAdd(KnownBits::constant(w, 0),
                             bitNot(arg->resized(w)),
                             TriBit{true, true})
                .resized(w);
          }
          case UnaryOp::BitNot: {
            auto arg = kbEvalImpl(un->arg, w, sigs, env);
            if (!arg)
                return std::nullopt;
            return bitNot(arg->resized(w));
          }
          case UnaryOp::LogNot: {
            auto arg = triOf(kbEvalImpl(un->arg, 0, sigs, env));
            if (!arg)
                return std::nullopt;
            if (*arg == Tri::Unknown)
                return unknownAt(w);
            return KnownBits::constant(w, *arg == Tri::False ? 1 : 0);
          }
          case UnaryOp::RedAnd:
          case UnaryOp::RedOr:
          case UnaryOp::RedXor: {
            auto arg = kbEvalImpl(un->arg, 0, sigs, env);
            if (!arg)
                return std::nullopt;
            uint64_t mask = KnownBits::maskOf(arg->width);
            if (un->op == UnaryOp::RedAnd) {
                if ((arg->known & ~arg->value & mask) != 0)
                    return KnownBits::constant(w, 0);
                if (arg->fullyKnown())
                    return KnownBits::constant(w, 1);
            } else if (un->op == UnaryOp::RedOr) {
                if (arg->knownNonzero())
                    return KnownBits::constant(w, 1);
                if (arg->knownZero())
                    return KnownBits::constant(w, 0);
            } else if (arg->fullyKnown()) {
                return KnownBits::constant(
                    w, __builtin_parityll(arg->value & mask));
            }
            return unknownAt(w);
          }
        }
        return unknownAt(w);
      }
      case ExprKind::Binary:
        return evalBinary(expr->as<BinaryExpr>(), w, sigs, env);
      case ExprKind::Ternary: {
        const auto *tern = expr->as<TernaryExpr>();
        auto cond = triOf(kbEvalImpl(tern->cond, 0, sigs, env));
        if (!cond)
            return std::nullopt;
        if (*cond == Tri::True)
            return kbEvalImpl(tern->thenExpr, w, sigs, env);
        if (*cond == Tri::False)
            return kbEvalImpl(tern->elseExpr, w, sigs, env);
        auto then_v = kbEvalImpl(tern->thenExpr, w, sigs, env);
        auto else_v = kbEvalImpl(tern->elseExpr, w, sigs, env);
        if (!then_v || !else_v)
            return std::nullopt;
        return joinKnown(then_v->resized(w), else_v->resized(w));
      }
      case ExprKind::Concat: {
        const auto *cat = expr->as<ConcatExpr>();
        KnownBits out = KnownBits::constant(0, 0);
        out.width = 0;
        for (const auto &part : cat->parts) {
            auto val = kbEvalImpl(part, 0, sigs, env);
            if (!val)
                return std::nullopt;
            uint32_t pw = val->width;
            if (out.width + pw > kMaxWidth)
                return unknownAt(w);
            out.known = (out.known << pw) | (val->known &
                                            KnownBits::maskOf(pw));
            out.value = (out.value << pw) | (val->value &
                                             KnownBits::maskOf(pw));
            out.width += pw;
        }
        return out.resized(w);
      }
      case ExprKind::Repeat: {
        const auto *rep = expr->as<RepeatExpr>();
        auto inner = kbEvalImpl(rep->inner, 0, sigs, env);
        if (!inner)
            return std::nullopt;
        uint32_t iw = inner->width;
        uint32_t count = iw ? self / iw : 0;
        if (iw == 0 || static_cast<uint64_t>(iw) * count > kMaxWidth)
            return unknownAt(w);
        KnownBits out;
        out.width = iw * count;
        for (uint32_t i = 0; i < count; ++i) {
            out.known |= (inner->known & KnownBits::maskOf(iw))
                         << (i * iw);
            out.value |= (inner->value & KnownBits::maskOf(iw))
                         << (i * iw);
        }
        return out.resized(w);
      }
      case ExprKind::Index: {
        const auto *idx = expr->as<IndexExpr>();
        const auto *info = sigs.find(idx->base);
        if (!info || info->isArray)
            return unknownAt(w); // memory contents are not tracked
        auto index = kbEvalImpl(idx->index, 0, sigs, env);
        if (!index)
            return std::nullopt;
        if (!index->fullyKnown() || index->value >= info->width)
            return unknownAt(w);
        auto it = env.find(idx->base);
        if (it == env.end())
            return unknownAt(w);
        if (!it->second)
            return std::nullopt;
        const KnownBits &base = *it->second;
        if ((base.known >> index->value & 1) == 0)
            return unknownAt(w);
        return KnownBits::constant(1, base.value >> index->value & 1)
            .resized(w);
      }
      case ExprKind::Range: {
        const auto *range = expr->as<RangeExpr>();
        const auto *info = sigs.find(range->base);
        auto msb = constEval(range->msb);
        auto lsb = constEval(range->lsb);
        if (!info || info->isArray || !msb || !lsb || *lsb > *msb ||
            *msb >= kMaxWidth)
            return unknownAt(w);
        auto it = env.find(range->base);
        if (it == env.end())
            return unknownAt(w);
        if (!it->second)
            return std::nullopt;
        KnownBits base = it->second->resized(info->width);
        KnownBits out;
        out.width = static_cast<uint32_t>(*msb - *lsb) + 1;
        out.known = (base.known >> *lsb) & KnownBits::maskOf(out.width);
        out.value = (base.value >> *lsb) & KnownBits::maskOf(out.width);
        return out.resized(w);
      }
    }
    return unknownAt(w);
}

} // namespace

std::optional<KnownBits>
kbEval(const ExprPtr &expr, uint32_t ctx_width, const SignalTable &sigs,
       const Env &env)
{
    return kbEvalImpl(expr, ctx_width, sigs, env);
}

std::optional<Tri>
triEval(const ExprPtr &expr, const SignalTable &sigs, const Env &env)
{
    auto kb = kbEval(expr, 0, sigs, env);
    if (!kb)
        return std::nullopt;
    if (kb->knownNonzero())
        return Tri::True;
    if (kb->knownZero())
        return Tri::False;
    return Tri::Unknown;
}

} // namespace hwdbg::analyze
