/**
 * @file
 * Dataflow static analysis over an elaborated design (`hwdbg analyze`).
 *
 * Where `hwdbg lint` pattern-matches local AST shapes, the analyze
 * framework computes whole-design dataflow facts — a known-bits
 * constant fixpoint across processes (fixpoint.hh), per-process
 * must-assign solutions over statement CFGs (cfg.hh/solver.hh), and
 * the signal dependency graph — and derives diagnostics from them:
 *
 *   const  dead logic: guards proven always-false/true, outputs or
 *          output bits stuck at a constant, signals that never reach
 *          an observable sink
 *   xinit  definite assignment: registers read before any assignment
 *          can reach them (X in four-state simulation)
 *   race   scheduler order dependence: blocking writes in clocked
 *          processes read by sibling same-clock processes, mixed
 *          blocking/nonblocking drivers, multi-process NBA drivers
 *   cdc    clock-domain crossings without a synchronizer stage
 *   loop   combinational loops (shared emitter with lint; identical
 *          findings dedupe)
 *
 * Diagnostics reuse the lint severity/rendering infrastructure; the
 * race pass's verdicts are cross-examined dynamically by the fuzz
 * process-permutation oracle (fuzz/oracles.hh, Oracle::Order).
 */

#ifndef HWDBG_ANALYZE_ANALYZE_HH
#define HWDBG_ANALYZE_ANALYZE_HH

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "analysis/depgraph.hh"
#include "analyze/domain.hh"
#include "analyze/fixpoint.hh"
#include "hdl/ast.hh"
#include "lint/diagnostic.hh"

namespace hwdbg::analyze
{

class AnalyzeContext;

struct AnalyzePass
{
    std::string id;
    std::string description;
    void (*run)(AnalyzeContext &ctx) = nullptr;
};

/** The pass registry, in presentation order. */
const std::vector<AnalyzePass> &analyzePasses();

/** Registry entry for @p id, or nullptr. */
const AnalyzePass *passById(const std::string &id);

struct AnalyzeOptions
{
    /** Pass ids to run; empty means every registered pass. */
    std::set<std::string> passes;
};

/**
 * Run the (selected) passes over an elaborated module and return the
 * diagnostics in stable (location, rule) order.
 */
std::vector<lint::Diagnostic> runAnalyze(const hdl::Module &mod,
                                         const AnalyzeOptions &opts = {});

/**
 * Versioned report file ("hwdbg-analyze" version 1):
 *   {"format":"hwdbg-analyze","version":1,"build":{...},
 *    "passes":[...],"diagnostics":[...]}
 * Deterministic byte-for-byte for the same input and build.
 */
std::string renderAnalyzeJson(const std::vector<std::string> &passes,
                              const std::vector<lint::Diagnostic> &diags);

/**
 * Validate an hwdbg-analyze JSON report (`hwdbg obscheck`). Returns ""
 * when valid, else the first violation.
 */
std::string checkAnalyzeJson(const std::string &text);

/**
 * Shared facts the passes read: signal table, dependency graph,
 * constant fixpoint, and per-process read sets, each computed once on
 * first use.
 */
class AnalyzeContext
{
  public:
    explicit AnalyzeContext(const hdl::Module &mod);
    ~AnalyzeContext();

    const hdl::Module &module() const { return *mod_; }
    const SignalTable &signals() const { return sigs_; }
    const analysis::DepGraph &graph();
    const ConstFixpoint &fixpoint();

    /**
     * Signals read anywhere inside @p proc: assignment right-hand
     * sides, branch and case conditions, $display arguments, and
     * lvalue index expressions.
     */
    const std::set<std::string> &procReads(const hdl::AlwaysItem *proc);

    /** Declaration location of @p name (module location fallback). */
    hdl::SourceLoc declLoc(const std::string &name) const;

    void report(lint::Diagnostic diag);
    /** Sorted diagnostics accumulated so far (consumes them). */
    std::vector<lint::Diagnostic> take();

  private:
    const hdl::Module *mod_;
    SignalTable sigs_;
    std::unique_ptr<analysis::DepGraph> graph_;
    std::unique_ptr<ConstFixpoint> fix_;
    std::map<const hdl::AlwaysItem *, std::set<std::string>> reads_;
    std::vector<lint::Diagnostic> diags_;
};

} // namespace hwdbg::analyze

#endif // HWDBG_ANALYZE_ANALYZE_HH
