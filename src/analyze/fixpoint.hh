/**
 * @file
 * Whole-design known-bits fixpoint.
 *
 * The solver joins every assignment's abstract value into its target
 * signal, worklist-iterating until the environment stabilizes. Guards
 * are evaluated three-valued: a definitely-false guard makes its
 * assignment dead (it contributes nothing, and the const pass reports
 * it); everything else contributes. Registers additionally join their
 * two-state initial value (zero) unless a combinational process
 * provably assigns them on every activation path — that per-process
 * fact comes from a must-assign dataflow over the statement CFG.
 *
 * The iteration is optimistic (signals start at bottom, rise
 * monotonically toward all-unknown), so the result is the least — most
 * precise — sound fixpoint of the abstract transfer functions.
 */

#ifndef HWDBG_ANALYZE_FIXPOINT_HH
#define HWDBG_ANALYZE_FIXPOINT_HH

#include <set>
#include <string>
#include <vector>

#include "analysis/guards.hh"
#include "analyze/cfg.hh"
#include "analyze/domain.hh"

namespace hwdbg::analyze
{

/**
 * Forward must-assign domain: the set of signals assigned on every
 * path reaching a point. Joins intersect; any write (full or partial)
 * counts as an assignment.
 */
struct MustAssignDomain
{
    using Value = std::set<std::string>;

    Value
    entryValue()
    {
        return {};
    }

    /** Intersection; returns true when @p into shrank. */
    bool meetInto(Value &into, const Value &from);

    Value transfer(const CfgNode &node, Value in);
};

/** Signals assigned on every activation path of @p proc. */
std::set<std::string> mustAssignAtExit(const hdl::AlwaysItem &proc);

struct ConstFixpoint
{
    /** Every assignment, from analysis::collectAssigns (module order). */
    std::vector<analysis::GuardedAssign> assigns;
    /** Final facts; a remaining std::nullopt means the signal is part
     *  of a combinational cycle and never settled (treat as unknown). */
    Env env;
    /** Per assign: guard proven false at the fixpoint (dead). */
    std::vector<uint8_t> deadGuard;
    /** Per assign: non-literal guard proven true at the fixpoint. */
    std::vector<uint8_t> trueGuard;
    /** Signals connected to a primitive instance (facts forced to
     *  unknown: the IP may drive them). */
    std::set<std::string> primConnected;

    /** Fact for @p name with bottom widened to all-unknown. */
    KnownBits factOf(const std::string &name,
                     const SignalTable &sigs) const;
};

ConstFixpoint solveConstants(const hdl::Module &mod,
                             const SignalTable &sigs);

} // namespace hwdbg::analyze

#endif // HWDBG_ANALYZE_FIXPOINT_HH
