/**
 * @file
 * ILA-style trace recording over the simulator facade.
 *
 * The paper's recording IP captures *the window around an event*
 * instead of a full waveform: a trigger arms a capacity-bounded buffer
 * that keeps pre-trigger history in a ring and then fills a post-trigger
 * window. This subsystem is the software model of that IP:
 *
 *  - TraceConfig names signals by glob over the elaborated design
 *    (vectors and memory words included), a trigger condition over real
 *    Verilog expressions (edge or change semantics, like debugger
 *    breakpoints), and a bytes-of-buffer budget from which the ring
 *    depth is derived — the capture half of a future overlay cost model.
 *  - TraceRecorder implements sim::EvalHook, so it records identically
 *    on any backend (interp or bytecode) through the one nullable
 *    per-eval hook; bench/trace_overhead gates the detached cost.
 *  - Recording is value-change based: an eval contributes a row only
 *    when a traced signal changed (the first observed eval anchors the
 *    dump with a full row).
 *
 * Snapshot/restore safety ("frontier semantics"): rows are keyed on the
 * simulator's monotonic eval sequence number. Time travel restores an
 * older sequence number and deterministically replays the same tape, so
 * replayed evals reproduce already-recorded values bit-for-bit — the
 * recorder skips them instead of double-recording, and resumes at the
 * frontier. Travel can therefore neither fabricate nor drop a change.
 */

#ifndef HWDBG_TRACE_TRACE_HH
#define HWDBG_TRACE_TRACE_HH

#include <deque>
#include <string>
#include <vector>

#include "sim/simulator.hh"

namespace hwdbg::trace
{

/** What to record: signals, trigger, and a capacity budget. */
struct TraceConfig
{
    /** Glob patterns over elaborated signal names ('*' and '?'); a
     *  bare memory name traces every word as "name[i]". Empty list
     *  means trace everything. */
    std::vector<std::string> signals;

    /** Trigger condition: a Verilog expression over design signals.
     *  Default semantics fire on the rising edge of the condition
     *  (false -> true between evals, like expression breakpoints); a
     *  "change:" prefix fires whenever the expression's value changes.
     *  Empty = no trigger: the ring free-runs and the dump holds the
     *  last `depth` change rows. */
    std::string trigger;

    /** Capacity budget in bytes; ring depth = budget / bytes-per-row.
     *  A budget smaller than one row records nothing (drops count). */
    uint64_t budgetBytes = 4096;

    /** Percent of the ring reserved for pre-trigger history (the rest
     *  is the post-trigger window, which always keeps at least one row
     *  when the depth allows any). Ignored without a trigger. */
    uint32_t prePct = 50;
};

/** One recorded signal (a scalar/vector, or one word of a memory). */
struct TracedSignal
{
    int sig = -1;
    /** Memory word index; -1 for scalars/vectors. */
    int element = -1;
    /** Display name ("state", "mem[3]"). */
    std::string name;
    uint32_t width = 0;
    /** Declaration source location ("file:line"; empty if unknown). */
    std::string loc;
};

/** A finished capture: geometry, outcome, and the recorded window. */
struct TraceDump
{
    std::string top;
    std::string workload;
    std::string backend;
    TraceConfig config;

    /** Derived geometry. */
    uint64_t rowBytes = 0;
    uint64_t depth = 0;
    uint64_t preDepth = 0;
    uint64_t postDepth = 0;

    /** Trigger outcome. */
    bool armed = false;
    bool fired = false;
    uint64_t triggerSeq = 0;
    uint64_t triggerCycle = 0;
    uint64_t triggerFires = 0;

    /** Change rows observed / rows that fell outside the window. */
    uint64_t samples = 0;
    uint64_t drops = 0;

    std::vector<TracedSignal> signals;

    struct Row
    {
        uint64_t seq = 0;
        uint64_t cycle = 0;
        /** One value per entry of `signals`, same order. */
        std::vector<Bits> values;
    };
    /** The captured window in time order (seq strictly increasing). */
    std::vector<Row> rows;
};

/** Match @p name against a glob pattern ('*' any run, '?' one char). */
bool matchGlob(const std::string &pattern, const std::string &name);

/**
 * Resolve @p cfg's signal globs against @p design. Memory signals
 * expand to one entry per word; a pattern matching the bare memory
 * name selects all words. Results are in design signal order. Raises
 * HdlError when no signal matches.
 */
std::vector<TracedSignal>
resolveSignals(const sim::LoweredDesign &design, const TraceConfig &cfg);

/**
 * The recording engine. Construction resolves the config against the
 * simulator's design (raising HdlError on bad globs or trigger text);
 * attach() hooks the simulator and recording runs until detach() or
 * destruction. dump() may be called attached or detached.
 */
class TraceRecorder : public sim::EvalHook
{
  public:
    TraceRecorder(sim::Simulator &sim, const TraceConfig &cfg);
    ~TraceRecorder() override;

    TraceRecorder(const TraceRecorder &) = delete;
    TraceRecorder &operator=(const TraceRecorder &) = delete;

    /** Start recording (installs the per-eval hook). */
    void attach();
    /** Stop recording; recorded state is kept for dump(). */
    void detach();
    bool attached() const { return attached_; }

    // sim::EvalHook
    void onEval(sim::EvalContext &ctx) override;
    void resync(sim::EvalContext &ctx) override;

    /** Assemble the captured window. */
    TraceDump dump(const std::string &workload) const;

    const std::vector<TracedSignal> &signals() const { return signals_; }
    uint64_t rowBytes() const { return rowBytes_; }
    uint64_t depth() const { return depth_; }
    uint64_t samples() const { return samples_; }
    uint64_t drops() const { return drops_; }
    uint64_t triggerFires() const { return fires_; }
    bool triggered() const { return fired_; }

  private:
    enum class State
    {
        Rolling,   ///< no trigger: free-running ring
        Armed,     ///< pre-trigger ring, waiting for the trigger
        Triggered, ///< filling the post-trigger window
        Done       ///< window full; further changes are drops
    };

    void readRow(const sim::EvalContext &ctx,
                 std::vector<Bits> *out) const;

    sim::Simulator &sim_;
    TraceConfig cfg_;
    std::vector<TracedSignal> signals_;

    /** Parsed trigger (null when cfg.trigger is empty). */
    hdl::ExprPtr trig_;
    /** True = fire on any value change; false = rising-edge. */
    bool trigChange_ = false;
    bool trigLastBool_ = false;
    Bits trigLastValue_;

    uint64_t rowBytes_ = 0;
    uint64_t depth_ = 0;
    uint64_t preDepth_ = 0;
    uint64_t postDepth_ = 0;

    State state_ = State::Rolling;
    bool attached_ = false;
    bool started_ = false;
    bool fired_ = false;
    uint64_t lastSeq_ = 0;
    uint64_t triggerSeq_ = 0;
    uint64_t triggerCycle_ = 0;
    uint64_t postRemaining_ = 0;
    uint64_t samples_ = 0;
    uint64_t drops_ = 0;
    uint64_t fires_ = 0;

    /** Last observed value per traced signal (change detection). */
    std::vector<Bits> last_;
    /** Pre-trigger ring (rolling window). */
    std::deque<TraceDump::Row> ring_;
    /** Post-trigger rows, in order. */
    std::vector<TraceDump::Row> post_;
};

} // namespace hwdbg::trace

#endif // HWDBG_TRACE_TRACE_HH
