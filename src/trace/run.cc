#include "trace/run.hh"

#include <utility>

#include "bugbase/workloads.hh"
#include "common/logging.hh"
#include "obs/trace.hh"

namespace hwdbg::trace
{

using sim::Simulator;

namespace
{

/** splitmix64, matching the cover/profiler stimulus draws. */
uint64_t
mix64(uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

} // namespace

TraceDump
traceBugWorkload(const bugs::TestbedBug &bug, bool buggy,
                 const TraceConfig &cfg,
                 const sim::BackendFactory &backend)
{
    obs::ObsSpan span("trace:bug:" + bug.id);
    elab::ElabResult design = bugs::buildDesign(bug, buggy);
    Simulator sim(design.mod);
    if (backend)
        sim.setBackend(backend);
    TraceRecorder recorder(sim, cfg);
    recorder.attach();
    bugs::runWorkload(bug, sim);
    recorder.detach();
    std::string workload = "bug:" + bug.id;
    if (!buggy)
        workload += ":fixed";
    return recorder.dump(workload);
}

TraceDump
traceWithTape(hdl::ModulePtr elaborated, const std::string &workload,
              const sim::StimulusTape &tape, const TraceConfig &cfg,
              const sim::BackendFactory &backend)
{
    obs::ObsSpan span("trace:tape");
    Simulator sim(std::move(elaborated));
    if (backend)
        sim.setBackend(backend);
    TraceRecorder recorder(sim, cfg);
    recorder.attach();
    for (const auto &step : tape.steps) {
        sim.applyStep(step);
        if (sim.finished())
            break;
    }
    recorder.detach();
    return recorder.dump(workload);
}

TraceDump
traceRandom(hdl::ModulePtr elaborated, const std::string &workload,
            uint64_t seed, uint32_t cycles, const TraceConfig &cfg,
            const sim::BackendFactory &backend)
{
    obs::ObsSpan span("trace:random");
    Simulator sim(std::move(elaborated));
    if (backend)
        sim.setBackend(backend);
    TraceRecorder recorder(sim, cfg);
    recorder.attach();

    const sim::LoweredDesign &design = sim.design();
    bool has_clk = design.signalId("clk") >= 0 &&
                   design.info(design.signalId("clk")).dir ==
                       hdl::PortDir::Input;
    bool has_rst = design.signalId("rst") >= 0 &&
                   design.info(design.signalId("rst")).dir ==
                       hdl::PortDir::Input;
    struct DrivenInput
    {
        std::string name;
        uint32_t width;
    };
    std::vector<DrivenInput> inputs;
    for (size_t i = 0; i < design.numSignals(); ++i) {
        const sim::SignalInfo &sig = design.info(static_cast<int>(i));
        if (sig.dir != hdl::PortDir::Input || sig.name == "clk" ||
            sig.name == "rst")
            continue;
        inputs.push_back(DrivenInput{sig.name, sig.width});
    }
    if (!has_clk)
        warn("trace: design has no 'clk' input; running %u "
             "combinational eval rounds",
             cycles);

    for (uint32_t t = 0; t < cycles; ++t) {
        if (has_rst)
            sim.poke("rst", Bits(1, t < 2 ? 1 : 0));
        for (size_t i = 0; i < inputs.size(); ++i) {
            uint64_t draw =
                mix64(seed ^ (static_cast<uint64_t>(t) << 20) ^ i);
            sim.poke(inputs[i].name, Bits(inputs[i].width, draw));
        }
        if (has_clk) {
            sim.poke("clk", Bits(1, 0));
            sim.eval();
            sim.poke("clk", Bits(1, 1));
        }
        sim.eval();
        if (sim.finished())
            break;
    }
    recorder.detach();
    return recorder.dump(workload);
}

} // namespace hwdbg::trace
