/**
 * @file
 * VCD (value change dump) emission for trace windows and live sampling.
 *
 * Replaces the seed-era scalar-only sim::VcdWriter. Two layers:
 *
 *  - VcdBuilder: a declaration + event writer that renders standard
 *    VCD text. Vectors declare as `$var wire N`, memory words are
 *    first-class signals, and every signal starts as X in the
 *    `$dumpvars` block — a trace window does not begin at time zero,
 *    so pre-window values are genuinely unknown.
 *  - VcdRecorder: the live writer (the old VcdWriter workflow): track
 *    every signal of a simulator, including memory words, and sample()
 *    at chosen times.
 *
 * renderVcd() turns a finished TraceDump into VCD with row sequence
 * numbers as timestamps.
 */

#ifndef HWDBG_TRACE_VCD_HH
#define HWDBG_TRACE_VCD_HH

#include <string>
#include <vector>

#include "trace/trace.hh"

namespace hwdbg::trace
{

class VcdBuilder
{
  public:
    /** Declare a signal; returns its handle. Declaration order is
     *  emission order. */
    size_t addSignal(const std::string &name, uint32_t width);

    /** Module name for the single $scope (default "top"). */
    void setScope(const std::string &scope) { scope_ = scope; }

    /** Record a value change at @p time (non-decreasing across calls). */
    void change(size_t handle, uint64_t time, const Bits &value);

    /** Render the accumulated dump as VCD text. */
    std::string render() const;

    /** Write the dump to @p path. */
    void writeFile(const std::string &path) const;

  private:
    struct Signal
    {
        std::string name;
        uint32_t width;
    };
    struct Event
    {
        uint64_t time;
        size_t handle;
        Bits value;
    };

    std::string scope_ = "top";
    std::vector<Signal> signals_;
    std::vector<Event> events_;
};

/**
 * Live sampling over a simulator: tracks every signal (memory words
 * included) and change-detects on each sample(). The migration target
 * for the old sim::VcdWriter call sites.
 */
class VcdRecorder
{
  public:
    explicit VcdRecorder(sim::Simulator &sim);

    /** Record current values at time @p time (monotonic). */
    void sample(uint64_t time);

    std::string render() const { return vcd_.render(); }
    void writeFile(const std::string &path) const
    {
        vcd_.writeFile(path);
    }

  private:
    sim::Simulator &sim_;
    std::vector<TracedSignal> tracked_;
    std::vector<Bits> last_;
    bool started_ = false;
    VcdBuilder vcd_;
};

/** Render a finished trace window as VCD (timestamps = eval seq). */
std::string renderVcd(const TraceDump &dump);

} // namespace hwdbg::trace

#endif // HWDBG_TRACE_VCD_HH
