/**
 * @file
 * Trace run drivers: elaborate a design, attach a recorder, drive it,
 * and return the captured window.
 *
 * The three stimulus sources mirror `hwdbg cover` (and the CLI):
 * testbed bug workloads, recorded stimulus tapes, and the seeded
 * random driver. Recording goes through the backend-agnostic per-eval
 * hook, so any driver accepts an execution backend and the dumps are
 * byte-identical across backends (the fuzz xtrace oracle's claim).
 */

#ifndef HWDBG_TRACE_RUN_HH
#define HWDBG_TRACE_RUN_HH

#include <string>

#include "bugbase/testbed.hh"
#include "trace/trace.hh"

namespace hwdbg::trace
{

/** Record @p bug's trigger workload. */
TraceDump traceBugWorkload(const bugs::TestbedBug &bug, bool buggy,
                           const TraceConfig &cfg,
                           const sim::BackendFactory &backend = {});

/** Replay @p tape on @p elaborated with recording attached. */
TraceDump traceWithTape(hdl::ModulePtr elaborated,
                        const std::string &workload,
                        const sim::StimulusTape &tape,
                        const TraceConfig &cfg,
                        const sim::BackendFactory &backend = {});

/** Drive @p cycles of seeded random stimulus with recording attached. */
TraceDump traceRandom(hdl::ModulePtr elaborated,
                      const std::string &workload, uint64_t seed,
                      uint32_t cycles, const TraceConfig &cfg,
                      const sim::BackendFactory &backend = {});

} // namespace hwdbg::trace

#endif // HWDBG_TRACE_RUN_HH
