#include "trace/trace.hh"

#include <algorithm>

#include "common/logging.hh"
#include "hdl/parser.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "sim/eval.hh"

namespace hwdbg::trace
{

bool
matchGlob(const std::string &pattern, const std::string &name)
{
    // Iterative wildcard match with single-star backtracking.
    size_t p = 0, n = 0;
    size_t star = std::string::npos, mark = 0;
    while (n < name.size()) {
        if (p < pattern.size() &&
            (pattern[p] == '?' || pattern[p] == name[n])) {
            ++p;
            ++n;
        } else if (p < pattern.size() && pattern[p] == '*') {
            star = p++;
            mark = n;
        } else if (star != std::string::npos) {
            p = star + 1;
            n = ++mark;
        } else {
            return false;
        }
    }
    while (p < pattern.size() && pattern[p] == '*')
        ++p;
    return p == pattern.size();
}

namespace
{

/** Declaration location of @p name in @p design's module, or "". */
std::string
declLoc(const sim::LoweredDesign &design, const std::string &name)
{
    const hdl::NetItem *net = design.module().findNet(name);
    if (!net || !net->loc.line)
        return "";
    return net->loc.str();
}

bool
matchAny(const std::vector<std::string> &patterns,
         const std::string &name)
{
    if (patterns.empty())
        return true;
    for (const auto &pattern : patterns)
        if (matchGlob(pattern, name))
            return true;
    return false;
}

} // namespace

std::vector<TracedSignal>
resolveSignals(const sim::LoweredDesign &design, const TraceConfig &cfg)
{
    std::vector<TracedSignal> out;
    for (size_t i = 0; i < design.numSignals(); ++i) {
        int id = static_cast<int>(i);
        const sim::SignalInfo &sig = design.info(id);
        if (sig.arraySize == 0) {
            if (!matchAny(cfg.signals, sig.name))
                continue;
            out.push_back(TracedSignal{id, -1, sig.name, sig.width,
                                       declLoc(design, sig.name)});
            continue;
        }
        // A memory: the bare name selects every word; an explicit
        // "name[i]" pattern selects single words.
        bool whole = matchAny(cfg.signals, sig.name);
        std::string loc = declLoc(design, sig.name);
        for (uint32_t w = 0; w < sig.arraySize; ++w) {
            std::string word =
                sig.name + "[" + std::to_string(w) + "]";
            if (!whole && !matchAny(cfg.signals, word))
                continue;
            out.push_back(TracedSignal{id, static_cast<int>(w),
                                       std::move(word), sig.width,
                                       loc});
        }
    }
    if (out.empty()) {
        std::string globs;
        for (const auto &pattern : cfg.signals)
            globs += (globs.empty() ? "" : ",") + pattern;
        fatal("trace: no signal matches '%s'", globs.c_str());
    }
    return out;
}

TraceRecorder::TraceRecorder(sim::Simulator &sim,
                             const TraceConfig &cfg)
    : sim_(sim), cfg_(cfg), signals_(resolveSignals(sim.design(), cfg))
{
    std::string trigger_text = cfg_.trigger;
    if (trigger_text.rfind("change:", 0) == 0) {
        trigChange_ = true;
        trigger_text = trigger_text.substr(7);
    }
    if (!trigger_text.empty()) {
        trig_ = hdl::parseExprText(trigger_text);
        sim_.design().annotateExpr(trig_);
    } else if (trigChange_) {
        fatal("trace: 'change:' trigger needs an expression");
    }

    // Row cost: seq + cycle headers plus each signal's packed bytes —
    // the byte currency the overlay cost model will share.
    rowBytes_ = 16;
    for (const auto &sig : signals_)
        rowBytes_ += (sig.width + 7) / 8;
    depth_ = cfg_.budgetBytes / rowBytes_;
    if (trig_) {
        uint32_t pct = std::min<uint32_t>(cfg_.prePct, 100);
        preDepth_ = depth_ * pct / 100;
        // The post window always keeps the trigger row when there is
        // any capacity at all.
        if (depth_ > 0 && preDepth_ == depth_)
            preDepth_ = depth_ - 1;
        postDepth_ = depth_ - preDepth_;
        state_ = State::Armed;
    } else {
        preDepth_ = depth_;
        postDepth_ = 0;
        state_ = State::Rolling;
    }
    last_.assign(signals_.size(), Bits());
}

TraceRecorder::~TraceRecorder()
{
    if (attached_)
        detach();
}

void
TraceRecorder::attach()
{
    if (attached_)
        return;
    attached_ = true;
    sim_.setEvalHook(this);
    HWDBG_STAT_INC("trace.attaches", 1);
}

void
TraceRecorder::detach()
{
    if (!attached_)
        return;
    attached_ = false;
    if (sim_.evalHook() == this)
        sim_.setEvalHook(nullptr);
}

void
TraceRecorder::readRow(const sim::EvalContext &ctx,
                       std::vector<Bits> *out) const
{
    out->resize(signals_.size());
    for (size_t i = 0; i < signals_.size(); ++i) {
        const TracedSignal &sig = signals_[i];
        (*out)[i] = sig.element < 0
                        ? ctx.values[sig.sig]
                        : ctx.arrays[sig.sig][sig.element];
    }
}

void
TraceRecorder::resync(sim::EvalContext &ctx)
{
    // Behind the frontier: a time-travel restore. The coming replay is
    // deterministic and already recorded; onEval skips it by sequence
    // number, so baselines must stay at the frontier.
    if (ctx.evalSeq < lastSeq_)
        return;
    lastSeq_ = ctx.evalSeq;
    readRow(ctx, &last_);
    if (trig_) {
        if (trigChange_)
            trigLastValue_ = evalExpr(trig_, ctx);
        else
            trigLastBool_ = evalBool(trig_, ctx);
    }
}

void
TraceRecorder::onEval(sim::EvalContext &ctx)
{
    // Replayed eval (time travel): values are reproduced bit-for-bit
    // from the tape, and this row is already in the buffer.
    if (ctx.evalSeq <= lastSeq_)
        return;
    lastSeq_ = ctx.evalSeq;

    // Change detection against the last observed values.
    bool changed = !started_;
    std::vector<Bits> now;
    readRow(ctx, &now);
    if (!changed)
        for (size_t i = 0; i < now.size(); ++i)
            if (now[i] != last_[i]) {
                changed = true;
                break;
            }

    // Trigger edge/change detection runs on every eval, whether or
    // not any traced signal moved.
    if (trig_ && state_ != State::Done) {
        bool fire = false;
        if (trigChange_) {
            Bits value = evalExpr(trig_, ctx);
            fire = started_ && value != trigLastValue_;
            trigLastValue_ = std::move(value);
        } else {
            bool level = evalBool(trig_, ctx);
            fire = !trigLastBool_ && level;
            trigLastBool_ = level;
        }
        if (fire) {
            ++fires_;
            HWDBG_STAT_INC("trace.trigger_fires", 1);
            if (state_ == State::Armed) {
                fired_ = true;
                triggerSeq_ = ctx.evalSeq;
                triggerCycle_ = ctx.cycle;
                postRemaining_ = postDepth_;
                state_ = postRemaining_ ? State::Triggered
                                        : State::Done;
            }
        }
    }

    started_ = true;
    if (!changed)
        return;
    last_ = now;
    ++samples_;
    HWDBG_STAT_INC("trace.samples", 1);

    TraceDump::Row row{ctx.evalSeq, ctx.cycle, std::move(now)};
    switch (state_) {
      case State::Rolling:
      case State::Armed:
        // Bounded history ring: overwriting costs the oldest row. A
        // zero-depth ring (budget below one row) drops everything.
        if (preDepth_ == 0) {
            ++drops_;
            HWDBG_STAT_INC("trace.drops", 1);
            break;
        }
        if (ring_.size() == preDepth_) {
            ring_.pop_front();
            ++drops_;
            HWDBG_STAT_INC("trace.drops", 1);
        }
        ring_.push_back(std::move(row));
        break;
      case State::Triggered:
        post_.push_back(std::move(row));
        if (--postRemaining_ == 0)
            state_ = State::Done;
        break;
      case State::Done:
        ++drops_;
        HWDBG_STAT_INC("trace.drops", 1);
        break;
    }
}

TraceDump
TraceRecorder::dump(const std::string &workload) const
{
    obs::ObsSpan span("trace.dump");
    TraceDump out;
    out.top = sim_.design().module().name;
    out.workload = workload;
    out.backend = sim_.backendName();
    out.config = cfg_;
    out.rowBytes = rowBytes_;
    out.depth = depth_;
    out.preDepth = preDepth_;
    out.postDepth = postDepth_;
    out.armed = trig_ != nullptr;
    out.fired = fired_;
    out.triggerSeq = triggerSeq_;
    out.triggerCycle = triggerCycle_;
    out.triggerFires = fires_;
    out.samples = samples_;
    out.drops = drops_;
    out.signals = signals_;
    out.rows.reserve(ring_.size() + post_.size());
    out.rows.insert(out.rows.end(), ring_.begin(), ring_.end());
    out.rows.insert(out.rows.end(), post_.begin(), post_.end());
    return out;
}

} // namespace hwdbg::trace
