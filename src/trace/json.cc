#include "trace/json.hh"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "obs/json.hh"
#include "obs/jsoncheck.hh"

namespace hwdbg::trace
{

using obs::jsonEscape;

namespace
{

std::string
hexU64(uint64_t value)
{
    char buf[24];
    std::snprintf(buf, sizeof(buf), "0x%llx",
                  static_cast<unsigned long long>(value));
    return buf;
}

/** Fixed-width hex of a Bits value: one nibble per 4 declared bits. */
std::string
bitsToHex(const Bits &value)
{
    uint32_t nibbles = std::max<uint32_t>(1, (value.width() + 3) / 4);
    std::string out = "0x";
    out.reserve(2 + nibbles);
    for (uint32_t n = nibbles; n-- > 0;) {
        uint32_t bit = n * 4;
        uint64_t word = bit / 64 < value.numWords()
                            ? value.rawWords()[bit / 64]
                            : 0;
        out.push_back("0123456789abcdef"[(word >> (bit % 64)) & 0xf]);
    }
    return out;
}

bool
hexToBits(const std::string &text, uint32_t width, Bits *out)
{
    uint32_t nibbles = std::max<uint32_t>(1, (width + 3) / 4);
    if (text.size() != 2 + nibbles || text[0] != '0' || text[1] != 'x')
        return false;
    std::vector<uint64_t> words((width + 63) / 64, 0);
    if (words.empty())
        words.assign(1, 0);
    for (uint32_t n = 0; n < nibbles; ++n) {
        char c = text[2 + (nibbles - 1 - n)];
        uint32_t nib;
        if (c >= '0' && c <= '9')
            nib = c - '0';
        else if (c >= 'a' && c <= 'f')
            nib = c - 'a' + 10;
        else
            return false;
        uint32_t bit = n * 4;
        if (bit / 64 < words.size())
            words[bit / 64] |= uint64_t(nib) << (bit % 64);
        else if (nib)
            return false;
    }
    *out = Bits::fromWords(width, words.data(), words.size());
    // Reject values with bits above the declared width.
    if (bitsToHex(*out) != text)
        return false;
    return true;
}

bool
hexToU64(const std::string &text, uint64_t *out)
{
    if (text.size() < 3 || text.size() > 18 || text[0] != '0' ||
        text[1] != 'x')
        return false;
    uint64_t value = 0;
    for (size_t i = 2; i < text.size(); ++i) {
        char c = text[i];
        uint32_t nib;
        if (c >= '0' && c <= '9')
            nib = c - '0';
        else if (c >= 'a' && c <= 'f')
            nib = c - 'a' + 10;
        else
            return false;
        value = (value << 4) | nib;
    }
    *out = value;
    return true;
}

bool
getUint(const obs::JsonValue &obj, const char *key, uint64_t *out)
{
    const auto *val = obj.get(key);
    if (!val || !val->isNumber() || val->number < 0)
        return false;
    auto value = static_cast<uint64_t>(val->number);
    if (static_cast<double>(value) != val->number)
        return false;
    *out = value;
    return true;
}

bool
getBool(const obs::JsonValue &obj, const char *key, bool *out)
{
    const auto *val = obj.get(key);
    if (!val || val->kind != obs::JsonValue::Kind::Bool)
        return false;
    *out = val->boolean;
    return true;
}

bool
getString(const obs::JsonValue &obj, const char *key, std::string *out)
{
    const auto *val = obj.get(key);
    if (!val || !val->isString())
        return false;
    *out = val->text;
    return true;
}

bool
getHexU64(const obs::JsonValue &obj, const char *key, uint64_t *out)
{
    std::string text;
    return getString(obj, key, &text) && hexToU64(text, out);
}

} // namespace

std::string
toJson(const TraceDump &dump)
{
    const obs::BuildInfo &build = obs::buildInfo();
    std::ostringstream out;
    out << "{\"format\": \"hwdbg-trace\", \"version\": 1,\n";
    out << "\"build\": {\"tool\": \"hwdbg\", \"version\": \""
        << jsonEscape(build.version) << "\", \"git\": \""
        << jsonEscape(build.git) << "\", \"type\": \""
        << jsonEscape(build.buildType) << "\"},\n";
    out << "\"design\": {\"top\": \"" << jsonEscape(dump.top)
        << "\"},\n";
    out << "\"workload\": \"" << jsonEscape(dump.workload) << "\",\n";
    out << "\"backend\": \"" << jsonEscape(dump.backend) << "\",\n";

    out << "\"config\": {\"signals\": [";
    for (size_t i = 0; i < dump.config.signals.size(); ++i)
        out << (i ? ", " : "") << "\""
            << jsonEscape(dump.config.signals[i]) << "\"";
    out << "], \"trigger\": \"" << jsonEscape(dump.config.trigger)
        << "\", \"budget_bytes\": " << dump.config.budgetBytes
        << ", \"pre_pct\": " << dump.config.prePct << "},\n";

    out << "\"window\": {\"row_bytes\": " << dump.rowBytes
        << ", \"depth\": " << dump.depth
        << ", \"pre_depth\": " << dump.preDepth
        << ", \"post_depth\": " << dump.postDepth << "},\n";

    out << "\"trigger\": {\"armed\": " << (dump.armed ? "true" : "false")
        << ", \"fired\": " << (dump.fired ? "true" : "false")
        << ", \"seq\": \"" << hexU64(dump.triggerSeq)
        << "\", \"cycle\": \"" << hexU64(dump.triggerCycle)
        << "\", \"fires\": " << dump.triggerFires << "},\n";

    out << "\"stats\": {\"samples\": " << dump.samples
        << ", \"drops\": " << dump.drops << "},\n";

    out << "\"signals\": [";
    for (size_t i = 0; i < dump.signals.size(); ++i) {
        const auto &sig = dump.signals[i];
        out << (i ? ",\n " : "\n ") << "{\"name\": \""
            << jsonEscape(sig.name) << "\", \"width\": " << sig.width
            << ", \"loc\": \"" << jsonEscape(sig.loc) << "\"}";
    }
    out << "],\n";

    out << "\"rows\": [";
    for (size_t i = 0; i < dump.rows.size(); ++i) {
        const auto &row = dump.rows[i];
        out << (i ? ",\n " : "\n ") << "{\"seq\": \""
            << hexU64(row.seq) << "\", \"cycle\": \""
            << hexU64(row.cycle) << "\", \"values\": [";
        for (size_t v = 0; v < row.values.size(); ++v)
            out << (v ? ", " : "") << "\"" << bitsToHex(row.values[v])
                << "\"";
        out << "]}";
    }
    out << "]\n}\n";
    return out.str();
}

bool
parseTraceDump(const std::string &text, TraceDump *out,
               std::string *error)
{
    auto fail = [&](const std::string &why) {
        *error = why;
        return false;
    };
    std::string parse_error;
    obs::JsonPtr root = obs::parseJson(text, &parse_error);
    if (!root)
        return fail(parse_error);
    if (!root->isObject())
        return fail("root is not an object");

    std::string format;
    if (!getString(*root, "format", &format) ||
        format != "hwdbg-trace")
        return fail("\"format\" must be \"hwdbg-trace\"");
    uint64_t version = 0;
    if (!getUint(*root, "version", &version) || version != 1)
        return fail("unsupported trace format version");

    *out = TraceDump{};
    const auto *design = root->get("design");
    if (!design || !design->isObject() ||
        !getString(*design, "top", &out->top))
        return fail("missing \"design\" object with string \"top\"");
    if (!getString(*root, "workload", &out->workload))
        return fail("\"workload\" must be a string");
    if (!getString(*root, "backend", &out->backend))
        return fail("\"backend\" must be a string");

    const auto *config = root->get("config");
    if (!config || !config->isObject())
        return fail("missing \"config\" object");
    const auto *globs = config->get("signals");
    if (!globs || !globs->isArray())
        return fail("config.signals must be an array");
    for (const auto &elem : globs->elems) {
        if (!elem->isString())
            return fail("config.signals entries must be strings");
        out->config.signals.push_back(elem->text);
    }
    uint64_t pre_pct = 0;
    if (!getString(*config, "trigger", &out->config.trigger) ||
        !getUint(*config, "budget_bytes", &out->config.budgetBytes) ||
        !getUint(*config, "pre_pct", &pre_pct) || pre_pct > 100)
        return fail("malformed \"config\" object");
    out->config.prePct = static_cast<uint32_t>(pre_pct);

    const auto *window = root->get("window");
    if (!window || !window->isObject() ||
        !getUint(*window, "row_bytes", &out->rowBytes) ||
        !getUint(*window, "depth", &out->depth) ||
        !getUint(*window, "pre_depth", &out->preDepth) ||
        !getUint(*window, "post_depth", &out->postDepth))
        return fail("malformed \"window\" object");
    if (out->preDepth + out->postDepth != out->depth)
        return fail("window pre_depth + post_depth != depth");

    const auto *trigger = root->get("trigger");
    if (!trigger || !trigger->isObject() ||
        !getBool(*trigger, "armed", &out->armed) ||
        !getBool(*trigger, "fired", &out->fired) ||
        !getHexU64(*trigger, "seq", &out->triggerSeq) ||
        !getHexU64(*trigger, "cycle", &out->triggerCycle) ||
        !getUint(*trigger, "fires", &out->triggerFires))
        return fail("malformed \"trigger\" object");
    if (out->fired && !out->armed)
        return fail("trigger fired without being armed");

    const auto *stats = root->get("stats");
    if (!stats || !stats->isObject() ||
        !getUint(*stats, "samples", &out->samples) ||
        !getUint(*stats, "drops", &out->drops))
        return fail("malformed \"stats\" object");

    const auto *signals = root->get("signals");
    if (!signals || !signals->isArray())
        return fail("missing \"signals\" array");
    for (const auto &elem : signals->elems) {
        if (!elem->isObject())
            return fail("signal entries must be objects");
        TracedSignal sig;
        uint64_t width = 0;
        if (!getString(*elem, "name", &sig.name) ||
            !getUint(*elem, "width", &width) || width < 1 ||
            width > (1u << 24) || !getString(*elem, "loc", &sig.loc))
            return fail("malformed signal entry");
        sig.width = static_cast<uint32_t>(width);
        out->signals.push_back(std::move(sig));
    }
    if (out->signals.empty())
        return fail("a trace must declare at least one signal");

    const auto *rows = root->get("rows");
    if (!rows || !rows->isArray())
        return fail("missing \"rows\" array");
    if (rows->elems.size() > out->depth)
        return fail("more rows than the window depth allows");
    uint64_t prev_seq = 0;
    for (const auto &elem : rows->elems) {
        if (!elem->isObject())
            return fail("row entries must be objects");
        TraceDump::Row row;
        if (!getHexU64(*elem, "seq", &row.seq) ||
            !getHexU64(*elem, "cycle", &row.cycle))
            return fail("malformed row entry");
        if (!out->rows.empty() && row.seq <= prev_seq)
            return fail("row seq must be strictly increasing");
        prev_seq = row.seq;
        const auto *values = elem->get("values");
        if (!values || !values->isArray() ||
            values->elems.size() != out->signals.size())
            return fail("row values must match the signal list");
        for (size_t v = 0; v < values->elems.size(); ++v) {
            const auto &value = values->elems[v];
            Bits bits;
            if (!value->isString() ||
                !hexToBits(value->text, out->signals[v].width, &bits))
                return fail("row value " + std::to_string(v) +
                            " must be " +
                            std::to_string(
                                (out->signals[v].width + 3) / 4) +
                            "-digit hex");
            row.values.push_back(std::move(bits));
        }
        out->rows.push_back(std::move(row));
    }

    error->clear();
    return true;
}

std::string
checkTraceDumpJson(const std::string &text)
{
    TraceDump dump;
    std::string error;
    if (!parseTraceDump(text, &dump, &error))
        return error;
    return "";
}

} // namespace hwdbg::trace
