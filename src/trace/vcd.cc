#include "trace/vcd.hh"

#include <fstream>
#include <sstream>

#include "common/logging.hh"

namespace hwdbg::trace
{

namespace
{

/** VCD identifier code for the n-th signal (printable ASCII run). */
std::string
vcdCode(size_t n)
{
    std::string code;
    do {
        code.push_back(static_cast<char>('!' + n % 94));
        n /= 94;
    } while (n != 0);
    return code;
}

void
emitValue(std::ostream &out, const Bits &value, uint32_t width,
          const std::string &code)
{
    if (width == 1)
        out << (value.isZero() ? "0" : "1") << code << "\n";
    else
        out << "b" << value.toBinString() << " " << code << "\n";
}

void
emitX(std::ostream &out, uint32_t width, const std::string &code)
{
    if (width == 1)
        out << "x" << code << "\n";
    else
        out << "bx " << code << "\n";
}

} // namespace

size_t
VcdBuilder::addSignal(const std::string &name, uint32_t width)
{
    signals_.push_back(Signal{name, width});
    return signals_.size() - 1;
}

void
VcdBuilder::change(size_t handle, uint64_t time, const Bits &value)
{
    if (handle >= signals_.size())
        fatal("VcdBuilder::change: unknown signal handle %zu", handle);
    if (!events_.empty() && time < events_.back().time)
        fatal("VcdBuilder::change: time went backwards (%llu < %llu)",
              static_cast<unsigned long long>(time),
              static_cast<unsigned long long>(events_.back().time));
    events_.push_back(Event{time, handle, value});
}

std::string
VcdBuilder::render() const
{
    std::ostringstream out;
    out << "$timescale 1ns $end\n";
    out << "$scope module " << scope_ << " $end\n";
    for (size_t i = 0; i < signals_.size(); ++i)
        out << "$var wire " << signals_[i].width << " " << vcdCode(i)
            << " " << signals_[i].name << " $end\n";
    out << "$upscope $end\n$enddefinitions $end\n";

    // Every signal is unknown until its first recorded change: a
    // capture window does not start at time zero.
    out << "$dumpvars\n";
    for (size_t i = 0; i < signals_.size(); ++i)
        emitX(out, signals_[i].width, vcdCode(i));
    out << "$end\n";

    uint64_t current_time = ~uint64_t(0);
    for (const auto &event : events_) {
        if (event.time != current_time) {
            out << "#" << event.time << "\n";
            current_time = event.time;
        }
        emitValue(out, event.value, signals_[event.handle].width,
                  vcdCode(event.handle));
    }
    return out.str();
}

void
VcdBuilder::writeFile(const std::string &path) const
{
    std::ofstream out(path);
    if (!out)
        fatal("cannot open '%s' for writing", path.c_str());
    out << render();
}

VcdRecorder::VcdRecorder(sim::Simulator &sim) : sim_(sim)
{
    TraceConfig everything;
    tracked_ = resolveSignals(sim.design(), everything);
    last_.assign(tracked_.size(), Bits());
    vcd_.setScope(sim.design().module().name);
    for (const auto &sig : tracked_)
        vcd_.addSignal(sig.name, sig.width);
}

void
VcdRecorder::sample(uint64_t time)
{
    sim::EvalContext &ctx = sim_.context();
    for (size_t i = 0; i < tracked_.size(); ++i) {
        const TracedSignal &sig = tracked_[i];
        const Bits &now = sig.element < 0
                              ? ctx.values[sig.sig]
                              : ctx.arrays[sig.sig][sig.element];
        if (!started_ || now != last_[i]) {
            vcd_.change(i, time, now);
            last_[i] = now;
        }
    }
    started_ = true;
}

std::string
renderVcd(const TraceDump &dump)
{
    VcdBuilder vcd;
    vcd.setScope(dump.top);
    for (const auto &sig : dump.signals)
        vcd.addSignal(sig.name, sig.width);
    std::vector<const Bits *> last(dump.signals.size(), nullptr);
    for (const auto &row : dump.rows) {
        for (size_t i = 0; i < dump.signals.size(); ++i) {
            if (last[i] && *last[i] == row.values[i])
                continue;
            vcd.change(i, row.seq, row.values[i]);
            last[i] = &row.values[i];
        }
    }
    return vcd.render();
}

} // namespace hwdbg::trace
