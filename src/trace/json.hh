/**
 * @file
 * Versioned `hwdbg-trace` JSON v1: the shareable trace artifact.
 *
 * Schema (all 64-bit quantities are "0x…" hex strings so no reader
 * loses precision to doubles):
 *
 *   {"format": "hwdbg-trace", "version": 1,
 *    "build": {"tool", "version", "git", "type"},
 *    "design": {"top": "..."},
 *    "workload": "bug:D3", "backend": "interp",
 *    "config": {"signals": [globs…], "trigger": "...",
 *               "budget_bytes": N, "pre_pct": N},
 *    "window": {"row_bytes": N, "depth": N, "pre_depth": N,
 *               "post_depth": N},
 *    "trigger": {"armed": b, "fired": b, "seq": "0x…",
 *                "cycle": "0x…", "fires": N},
 *    "stats": {"samples": N, "drops": N},
 *    "signals": [{"name", "width", "loc"}…],
 *    "rows": [{"seq": "0x…", "cycle": "0x…",
 *              "values": ["0x…"…]}…]}
 *
 * Row values are fixed-width hex (one nibble per 4 bits of the
 * declared width), row seq is strictly increasing, and every row
 * carries exactly one value per declared signal — checkTraceDumpJson
 * enforces all of it for `hwdbg obscheck`.
 */

#ifndef HWDBG_TRACE_JSON_HH
#define HWDBG_TRACE_JSON_HH

#include <string>

#include "trace/trace.hh"

namespace hwdbg::trace
{

/** Render @p dump as hwdbg-trace JSON v1. */
std::string toJson(const TraceDump &dump);

/** Parse and validate; false + *error on malformed input. */
bool parseTraceDump(const std::string &text, TraceDump *out,
                    std::string *error);

/** Empty string when @p text is valid hwdbg-trace v1, else the error. */
std::string checkTraceDumpJson(const std::string &text);

} // namespace hwdbg::trace

#endif // HWDBG_TRACE_JSON_HH
