#include "cover/signature.hh"

#include <algorithm>
#include <set>

namespace hwdbg::cover
{

namespace
{

/** Clamp a width to the next power of two, capped at 64. */
uint32_t
widthBucket(uint32_t width)
{
    uint32_t bucket = 1;
    while (bucket < width && bucket < 64)
        bucket *= 2;
    return bucket;
}

} // namespace

std::vector<std::string>
signatureKeys(const Snapshot &snap)
{
    std::set<std::string> keys;

    for (const auto &stmt : snap.statements)
        if (stmt.hit)
            keys.insert("stmt:" + stmt.kind);

    // Position of each arm within its statement (arms are emitted in
    // order, so a per-statement counter recovers the index).
    std::vector<uint32_t> armIdx(snap.statements.size(), 0);
    for (const auto &arm : snap.arms) {
        uint32_t idx = armIdx[arm.stmt]++;
        if (!arm.taken)
            continue;
        const auto &stmt = snap.statements[arm.stmt];
        if (stmt.kind == "if") {
            keys.insert("arm:if:" + arm.label);
        } else {
            keys.insert("arm:case:i" +
                        std::to_string(std::min<uint32_t>(idx, 8)));
            if (arm.label == "default")
                keys.insert("arm:case:default");
        }
    }

    for (const auto &sig : snap.signals) {
        uint32_t bucket = widthBucket(sig.width);
        bool full = true;
        for (uint32_t b = 0; b < sig.width; ++b) {
            uint32_t bb = std::min<uint32_t>(b, 32);
            bool rose = (sig.rise[b >> 6] >> (b & 63)) & 1;
            bool fell = (sig.fall[b >> 6] >> (b & 63)) & 1;
            if (rose)
                keys.insert("rise:w" + std::to_string(bucket) + ":b" +
                            std::to_string(bb));
            if (fell)
                keys.insert("fall:w" + std::to_string(bucket) + ":b" +
                            std::to_string(bb));
            full = full && rose && fell;
        }
        if (full && sig.width)
            keys.insert("full:w" + std::to_string(bucket));
    }

    for (const auto &fsm : snap.fsms) {
        for (size_t s = 0; s < fsm.seen.size(); ++s)
            if (fsm.seen[s])
                keys.insert(
                    "fsm:state:i" +
                    std::to_string(std::min<size_t>(s, 8)));
        for (size_t t = 0; t < fsm.transitions.size(); ++t)
            if (fsm.transitions[t].seen)
                keys.insert(
                    "fsm:arc:i" +
                    std::to_string(std::min<size_t>(t, 16)));
        if (!fsm.unexpectedStates.empty())
            keys.insert("fsm:unexpected-state");
        if (!fsm.unexpectedTransitions.empty())
            keys.insert("fsm:unexpected-arc");
    }

    return {keys.begin(), keys.end()};
}

} // namespace hwdbg::cover
