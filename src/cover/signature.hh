/**
 * @file
 * Design-independent coverage signatures for fuzzing.
 *
 * `hwdbg fuzz` generates a fresh random design per seed, so raw
 * coverage ids cannot accumulate across a campaign. Instead each
 * covered goal maps to a structural key that means the same thing in
 * any generated design — "an if took its else arm", "bit 3 of a
 * 16-bit signal fell", "the second arm of a four-item case matched".
 * The campaign tracks the union of keys; a seed's novelty is the
 * number of keys it adds, and a run of seeds adding nothing signals
 * a coverage plateau.
 *
 * The key space is deliberately finite (widths/arms clamp into
 * buckets) so a healthy campaign saturates it: plateau detection is
 * the feature, not an accident.
 */

#ifndef HWDBG_COVER_SIGNATURE_HH
#define HWDBG_COVER_SIGNATURE_HH

#include <string>
#include <vector>

#include "cover/snapshot.hh"

namespace hwdbg::cover
{

/**
 * Structural keys of every goal @p snap covered, sorted and unique.
 * Keys are stable across designs and processes.
 */
std::vector<std::string> signatureKeys(const Snapshot &snap);

} // namespace hwdbg::cover

#endif // HWDBG_COVER_SIGNATURE_HH
