#include "cover/snapshot.hh"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "analysis/fsm_detect.hh"
#include "obs/json.hh"
#include "obs/jsoncheck.hh"

namespace hwdbg::cover
{

using obs::jsonEscape;

const char *
stmtKindName(hdl::StmtKind kind)
{
    switch (kind) {
      case hdl::StmtKind::Block: return "block";
      case hdl::StmtKind::If: return "if";
      case hdl::StmtKind::Case: return "case";
      case hdl::StmtKind::Assign: return "assign";
      case hdl::StmtKind::Display: return "display";
      case hdl::StmtKind::Finish: return "finish";
      case hdl::StmtKind::Null: return "null";
    }
    return "?";
}

namespace
{

std::string
hexU64(uint64_t value)
{
    char buf[24];
    std::snprintf(buf, sizeof(buf), "0x%llx",
                  static_cast<unsigned long long>(value));
    return buf;
}

std::string
hexFingerprint(uint64_t value)
{
    char buf[24];
    std::snprintf(buf, sizeof(buf), "0x%016llx",
                  static_cast<unsigned long long>(value));
    return buf;
}

/** Hex string (MSB first) of @p width packed bits. A nibble never
 *  straddles a word: 4 divides 64. */
std::string
wordsToHex(const std::vector<uint64_t> &words, uint32_t width)
{
    uint32_t nibbles = std::max<uint32_t>(1, (width + 3) / 4);
    std::string out = "0x";
    out.reserve(2 + nibbles);
    for (uint32_t n = nibbles; n-- > 0;) {
        uint32_t bit = n * 4;
        uint64_t word =
            bit / 64 < words.size() ? words[bit / 64] : 0;
        uint32_t nib = (word >> (bit % 64)) & 0xf;
        out.push_back("0123456789abcdef"[nib]);
    }
    return out;
}

bool
hexToWords(const std::string &text, uint32_t width,
           std::vector<uint64_t> *words)
{
    uint32_t nibbles = std::max<uint32_t>(1, (width + 3) / 4);
    if (text.size() != 2 + nibbles || text[0] != '0' || text[1] != 'x')
        return false;
    words->assign((width + 63) / 64, 0);
    if (words->empty())
        words->assign(1, 0);
    for (uint32_t n = 0; n < nibbles; ++n) {
        char c = text[2 + (nibbles - 1 - n)];
        uint32_t nib;
        if (c >= '0' && c <= '9')
            nib = c - '0';
        else if (c >= 'a' && c <= 'f')
            nib = c - 'a' + 10;
        else
            return false;
        uint32_t bit = n * 4;
        if (bit / 64 < words->size())
            (*words)[bit / 64] |= uint64_t(nib) << (bit % 64);
        else if (nib)
            return false;
    }
    return true;
}

bool
hexToU64(const std::string &text, uint64_t *out)
{
    if (text.size() < 3 || text.size() > 18 || text[0] != '0' ||
        text[1] != 'x')
        return false;
    uint64_t value = 0;
    for (size_t i = 2; i < text.size(); ++i) {
        char c = text[i];
        uint32_t nib;
        if (c >= '0' && c <= '9')
            nib = c - '0';
        else if (c >= 'a' && c <= 'f')
            nib = c - 'a' + 10;
        else
            return false;
        value = (value << 4) | nib;
    }
    *out = value;
    return true;
}

uint64_t
popAll(const std::vector<uint64_t> &words)
{
    uint64_t n = 0;
    for (uint64_t word : words)
        n += static_cast<uint64_t>(__builtin_popcountll(word));
    return n;
}

} // namespace

std::string
coverPct(uint64_t covered, uint64_t total)
{
    // Fixed-point so the rendering is deterministic.
    uint64_t p10 = total ? (covered * 1000 + total / 2) / total : 0;
    return std::to_string(p10 / 10) + "." +
           std::to_string(p10 % 10);
}

sim::CoverageTotals
Snapshot::totals() const
{
    sim::CoverageTotals out;
    for (const auto &sig : signals) {
        out.toggleTotal += 2 * static_cast<uint64_t>(sig.width);
        out.toggleHit += popAll(sig.rise) + popAll(sig.fall);
    }
    out.stmtTotal = statements.size();
    for (const auto &stmt : statements)
        out.stmtHit += stmt.hit;
    out.armTotal = arms.size();
    for (const auto &arm : arms)
        out.armTaken += arm.taken;
    for (const auto &fsm : fsms) {
        out.fsmStateTotal += fsm.states.size();
        for (bool seen : fsm.seen)
            out.fsmStateHit += seen;
        out.fsmTransTotal += fsm.transitions.size();
        for (const auto &trans : fsm.transitions)
            out.fsmTransHit += trans.seen;
    }
    return out;
}

std::vector<sim::FsmCoverSpec>
fsmSpecsFor(const hdl::Module &mod)
{
    std::vector<sim::FsmCoverSpec> specs;
    for (const auto &info : analysis::detectFsms(mod)) {
        sim::FsmCoverSpec spec;
        spec.stateVar = info.stateVar;
        for (const auto &state : info.states)
            spec.states.push_back(state.toU64());
        for (const auto &trans : info.transitions) {
            sim::FsmCoverSpec::Transition out;
            out.hasFrom = trans.fromState.has_value();
            if (out.hasFrom)
                out.from = trans.fromState->toU64();
            out.to = trans.toState.toU64();
            spec.transitions.push_back(out);
        }
        specs.push_back(std::move(spec));
    }
    return specs;
}

Snapshot
snapshotFrom(const sim::CoverageItems &items,
             const sim::CoverageCollector &collector,
             const std::string &top, const std::string &workload)
{
    Snapshot snap;
    const obs::BuildInfo &build = obs::buildInfo();
    snap.buildVersion = build.version;
    snap.buildGit = build.git;
    snap.buildType = build.buildType;
    snap.top = top;
    snap.fingerprint = items.fingerprint();
    if (!workload.empty())
        snap.workloads.push_back(workload);

    auto sliceBits = [](const std::vector<uint64_t> &words,
                        uint32_t offset, uint32_t width) {
        std::vector<uint64_t> out((width + 63) / 64, 0);
        if (out.empty())
            out.assign(1, 0);
        for (uint32_t b = 0; b < width; ++b) {
            uint32_t src = offset + b;
            if ((words[src >> 6] >> (src & 63)) & 1)
                out[b >> 6] |= uint64_t(1) << (b & 63);
        }
        return out;
    };
    for (const auto &sig : items.signals) {
        Snapshot::Signal out;
        out.name = sig.name;
        out.width = sig.width;
        out.scope = sig.scope;
        out.rise = sliceBits(collector.riseWords(), sig.bitOffset,
                             sig.width);
        out.fall = sliceBits(collector.fallWords(), sig.bitOffset,
                             sig.width);
        snap.signals.push_back(std::move(out));
    }

    for (size_t i = 0; i < items.statements.size(); ++i) {
        const auto &item = items.statements[i];
        Snapshot::Stmt out;
        out.kind = stmtKindName(item.kind);
        out.loc = item.loc.line ? item.loc.str() : std::string();
        out.scope = item.scope;
        out.hit = collector.stmtHit(static_cast<uint32_t>(i));
        snap.statements.push_back(std::move(out));
    }

    for (size_t i = 0; i < items.arms.size(); ++i) {
        const auto &item = items.arms[i];
        Snapshot::Arm out;
        out.stmt = item.stmtId;
        out.label = item.label;
        out.taken = collector.armTaken(static_cast<uint32_t>(i));
        snap.arms.push_back(std::move(out));
    }

    for (size_t i = 0; i < items.fsms.size(); ++i) {
        const auto &spec = items.fsms[i];
        const auto &state = collector.fsmState(i);
        Snapshot::Fsm out;
        out.stateVar = spec.stateVar;
        out.states = spec.states;
        out.seen = state.stateSeen;
        for (size_t t = 0; t < spec.transitions.size(); ++t) {
            const auto &trans = spec.transitions[t];
            out.transitions.push_back(
                {trans.hasFrom, trans.from, trans.to,
                 state.transSeen[t]});
        }
        out.unexpectedStates.assign(state.unexpectedStates.begin(),
                                    state.unexpectedStates.end());
        out.unexpectedTransitions.assign(
            state.unexpectedTransitions.begin(),
            state.unexpectedTransitions.end());
        snap.fsms.push_back(std::move(out));
    }
    return snap;
}

std::vector<ScopeTotals>
scopeRollups(const Snapshot &snap)
{
    std::vector<ScopeTotals> out;
    auto at = [&](const std::string &scope) -> sim::CoverageTotals & {
        for (auto &entry : out)
            if (entry.scope == scope)
                return entry.totals;
        out.push_back({scope, {}});
        return out.back().totals;
    };
    for (const auto &sig : snap.signals) {
        auto &t = at(sig.scope);
        t.toggleTotal += 2 * static_cast<uint64_t>(sig.width);
        t.toggleHit += popAll(sig.rise) + popAll(sig.fall);
    }
    for (const auto &stmt : snap.statements) {
        auto &t = at(stmt.scope);
        ++t.stmtTotal;
        t.stmtHit += stmt.hit;
    }
    for (const auto &arm : snap.arms) {
        auto &t = at(snap.statements[arm.stmt].scope);
        ++t.armTotal;
        t.armTaken += arm.taken;
    }
    for (const auto &fsm : snap.fsms) {
        auto &t = at(sim::coverScopeOf(fsm.stateVar));
        t.fsmStateTotal += fsm.states.size();
        for (bool seen : fsm.seen)
            t.fsmStateHit += seen;
        t.fsmTransTotal += fsm.transitions.size();
        for (const auto &trans : fsm.transitions)
            t.fsmTransHit += trans.seen;
    }
    std::sort(out.begin(), out.end(),
              [](const ScopeTotals &a, const ScopeTotals &b) {
                  return a.scope < b.scope;
              });
    return out;
}

std::string
toJson(const Snapshot &snap)
{
    std::ostringstream out;
    out << "{\"format\": \"hwdbg-cover\", \"version\": 1,\n";
    out << "\"build\": {\"tool\": \"hwdbg\", \"version\": \""
        << jsonEscape(snap.buildVersion) << "\", \"git\": \""
        << jsonEscape(snap.buildGit) << "\", \"type\": \""
        << jsonEscape(snap.buildType) << "\"},\n";
    out << "\"design\": {\"top\": \"" << jsonEscape(snap.top)
        << "\", \"fingerprint\": \""
        << hexFingerprint(snap.fingerprint) << "\"},\n";

    out << "\"workloads\": [";
    for (size_t i = 0; i < snap.workloads.size(); ++i)
        out << (i ? ", " : "") << "\"" << jsonEscape(snap.workloads[i])
            << "\"";
    out << "],\n";

    out << "\"signals\": [";
    for (size_t i = 0; i < snap.signals.size(); ++i) {
        const auto &sig = snap.signals[i];
        out << (i ? ",\n " : "\n ") << "{\"name\": \""
            << jsonEscape(sig.name) << "\", \"width\": " << sig.width
            << ", \"scope\": \"" << jsonEscape(sig.scope)
            << "\", \"rise\": \"" << wordsToHex(sig.rise, sig.width)
            << "\", \"fall\": \"" << wordsToHex(sig.fall, sig.width)
            << "\"}";
    }
    out << "],\n";

    out << "\"statements\": [";
    for (size_t i = 0; i < snap.statements.size(); ++i) {
        const auto &stmt = snap.statements[i];
        out << (i ? ",\n " : "\n ") << "{\"kind\": \"" << stmt.kind
            << "\", \"loc\": \"" << jsonEscape(stmt.loc)
            << "\", \"scope\": \"" << jsonEscape(stmt.scope)
            << "\", \"hit\": " << (stmt.hit ? "true" : "false")
            << "}";
    }
    out << "],\n";

    out << "\"arms\": [";
    for (size_t i = 0; i < snap.arms.size(); ++i) {
        const auto &arm = snap.arms[i];
        out << (i ? ",\n " : "\n ") << "{\"stmt\": " << arm.stmt
            << ", \"label\": \"" << jsonEscape(arm.label)
            << "\", \"taken\": " << (arm.taken ? "true" : "false")
            << "}";
    }
    out << "],\n";

    out << "\"fsms\": [";
    for (size_t i = 0; i < snap.fsms.size(); ++i) {
        const auto &fsm = snap.fsms[i];
        out << (i ? ",\n " : "\n ") << "{\"state_var\": \""
            << jsonEscape(fsm.stateVar) << "\", \"states\": [";
        for (size_t s = 0; s < fsm.states.size(); ++s)
            out << (s ? ", " : "") << "\"" << hexU64(fsm.states[s])
                << "\"";
        out << "], \"seen\": [";
        for (size_t s = 0; s < fsm.seen.size(); ++s)
            out << (s ? ", " : "") << (fsm.seen[s] ? "true" : "false");
        out << "], \"transitions\": [";
        for (size_t t = 0; t < fsm.transitions.size(); ++t) {
            const auto &trans = fsm.transitions[t];
            out << (t ? ", " : "") << "{";
            if (trans.hasFrom)
                out << "\"from\": \"" << hexU64(trans.from) << "\", ";
            out << "\"to\": \"" << hexU64(trans.to) << "\", \"seen\": "
                << (trans.seen ? "true" : "false") << "}";
        }
        out << "], \"unexpected_states\": [";
        for (size_t s = 0; s < fsm.unexpectedStates.size(); ++s)
            out << (s ? ", " : "") << "\""
                << hexU64(fsm.unexpectedStates[s]) << "\"";
        out << "], \"unexpected_transitions\": [";
        for (size_t t = 0; t < fsm.unexpectedTransitions.size(); ++t)
            out << (t ? ", " : "") << "[\""
                << hexU64(fsm.unexpectedTransitions[t].first)
                << "\", \""
                << hexU64(fsm.unexpectedTransitions[t].second)
                << "\"]";
        out << "]}";
    }
    out << "],\n";

    sim::CoverageTotals totals = snap.totals();
    auto section = [&](const char *name, uint64_t covered,
                       uint64_t total, bool last = false) {
        out << "  \"" << name << "\": {\"covered\": " << covered
            << ", \"total\": " << total << ", \"pct\": "
            << coverPct(covered, total) << "}" << (last ? "\n" : ",\n");
    };
    out << "\"summary\": {\n";
    section("statements", totals.stmtHit, totals.stmtTotal);
    section("branches", totals.armTaken, totals.armTotal);
    section("toggles", totals.toggleHit, totals.toggleTotal);
    section("fsm_states", totals.fsmStateHit, totals.fsmStateTotal);
    section("fsm_transitions", totals.fsmTransHit,
            totals.fsmTransTotal);
    section("overall", totals.covered(), totals.total());
    out << "  \"modules\": [";
    auto rollups = scopeRollups(snap);
    for (size_t i = 0; i < rollups.size(); ++i) {
        const auto &entry = rollups[i];
        out << (i ? ",\n   " : "\n   ") << "{\"scope\": \""
            << jsonEscape(entry.scope)
            << "\", \"covered\": " << entry.totals.covered()
            << ", \"total\": " << entry.totals.total()
            << ", \"pct\": "
            << coverPct(entry.totals.covered(), entry.totals.total())
            << "}";
    }
    out << "]\n}\n}\n";
    return out.str();
}

namespace
{

/** Integer member helper: non-negative integral numbers only. */
bool
getUint(const obs::JsonValue &obj, const char *key, uint64_t *out)
{
    const auto *val = obj.get(key);
    if (!val || !val->isNumber() || val->number < 0)
        return false;
    auto value = static_cast<uint64_t>(val->number);
    if (static_cast<double>(value) != val->number)
        return false;
    *out = value;
    return true;
}

bool
getBool(const obs::JsonValue &obj, const char *key, bool *out)
{
    const auto *val = obj.get(key);
    if (!val || val->kind != obs::JsonValue::Kind::Bool)
        return false;
    *out = val->boolean;
    return true;
}

bool
getString(const obs::JsonValue &obj, const char *key,
          std::string *out)
{
    const auto *val = obj.get(key);
    if (!val || !val->isString())
        return false;
    *out = val->text;
    return true;
}

} // namespace

bool
parseSnapshot(const std::string &text, Snapshot *out,
              std::string *error)
{
    auto fail = [&](const std::string &why) {
        *error = why;
        return false;
    };
    std::string parse_error;
    obs::JsonPtr root = obs::parseJson(text, &parse_error);
    if (!root)
        return fail(parse_error);
    if (!root->isObject())
        return fail("root is not an object");

    std::string format;
    if (!getString(*root, "format", &format) ||
        format != "hwdbg-cover")
        return fail("\"format\" must be \"hwdbg-cover\"");
    uint64_t version = 0;
    if (!getUint(*root, "version", &version) || version != 1)
        return fail("unsupported coverage format version");

    *out = Snapshot{};
    if (const auto *build = root->get("build");
        build && build->isObject()) {
        getString(*build, "version", &out->buildVersion);
        getString(*build, "git", &out->buildGit);
        getString(*build, "type", &out->buildType);
    }

    const auto *design = root->get("design");
    if (!design || !design->isObject())
        return fail("missing \"design\" object");
    if (!getString(*design, "top", &out->top))
        return fail("design.top must be a string");
    std::string fp;
    if (!getString(*design, "fingerprint", &fp) ||
        !hexToU64(fp, &out->fingerprint))
        return fail("design.fingerprint must be a hex string");

    const auto *workloads = root->get("workloads");
    if (!workloads || !workloads->isArray())
        return fail("missing \"workloads\" array");
    for (const auto &elem : workloads->elems) {
        if (!elem->isString())
            return fail("workloads must be strings");
        out->workloads.push_back(elem->text);
    }
    std::sort(out->workloads.begin(), out->workloads.end());
    out->workloads.erase(std::unique(out->workloads.begin(),
                                     out->workloads.end()),
                         out->workloads.end());

    const auto *signals = root->get("signals");
    if (!signals || !signals->isArray())
        return fail("missing \"signals\" array");
    for (const auto &elem : signals->elems) {
        if (!elem->isObject())
            return fail("signal entries must be objects");
        Snapshot::Signal sig;
        uint64_t width = 0;
        std::string rise, fall;
        if (!getString(*elem, "name", &sig.name) ||
            !getUint(*elem, "width", &width) || width < 1 ||
            width > (1u << 24) ||
            !getString(*elem, "scope", &sig.scope) ||
            !getString(*elem, "rise", &rise) ||
            !getString(*elem, "fall", &fall))
            return fail("malformed signal entry");
        sig.width = static_cast<uint32_t>(width);
        if (!hexToWords(rise, sig.width, &sig.rise) ||
            !hexToWords(fall, sig.width, &sig.fall))
            return fail("signal \"" + sig.name +
                        "\": rise/fall must be " +
                        std::to_string((sig.width + 3) / 4) +
                        "-digit hex strings");
        out->signals.push_back(std::move(sig));
    }

    const auto *statements = root->get("statements");
    if (!statements || !statements->isArray())
        return fail("missing \"statements\" array");
    for (const auto &elem : statements->elems) {
        if (!elem->isObject())
            return fail("statement entries must be objects");
        Snapshot::Stmt stmt;
        if (!getString(*elem, "kind", &stmt.kind) ||
            !getString(*elem, "loc", &stmt.loc) ||
            !getString(*elem, "scope", &stmt.scope) ||
            !getBool(*elem, "hit", &stmt.hit))
            return fail("malformed statement entry");
        out->statements.push_back(std::move(stmt));
    }

    const auto *arms = root->get("arms");
    if (!arms || !arms->isArray())
        return fail("missing \"arms\" array");
    for (const auto &elem : arms->elems) {
        if (!elem->isObject())
            return fail("arm entries must be objects");
        Snapshot::Arm arm;
        uint64_t stmt = 0;
        if (!getUint(*elem, "stmt", &stmt) ||
            !getString(*elem, "label", &arm.label) ||
            !getBool(*elem, "taken", &arm.taken))
            return fail("malformed arm entry");
        if (stmt >= out->statements.size())
            return fail("arm refers to statement " +
                        std::to_string(stmt) + " of " +
                        std::to_string(out->statements.size()));
        arm.stmt = static_cast<uint32_t>(stmt);
        out->arms.push_back(std::move(arm));
    }

    const auto *fsms = root->get("fsms");
    if (!fsms || !fsms->isArray())
        return fail("missing \"fsms\" array");
    for (const auto &elem : fsms->elems) {
        if (!elem->isObject())
            return fail("fsm entries must be objects");
        Snapshot::Fsm fsm;
        if (!getString(*elem, "state_var", &fsm.stateVar))
            return fail("fsm.state_var must be a string");
        const auto *states = elem->get("states");
        const auto *seen = elem->get("seen");
        if (!states || !states->isArray() || !seen ||
            !seen->isArray() ||
            states->elems.size() != seen->elems.size())
            return fail("fsm states/seen must be same-length arrays");
        for (const auto &state : states->elems) {
            uint64_t value = 0;
            if (!state->isString() || !hexToU64(state->text, &value))
                return fail("fsm states must be hex strings");
            fsm.states.push_back(value);
        }
        for (const auto &flag : seen->elems) {
            if (flag->kind != obs::JsonValue::Kind::Bool)
                return fail("fsm seen flags must be booleans");
            fsm.seen.push_back(flag->boolean);
        }
        const auto *transitions = elem->get("transitions");
        if (!transitions || !transitions->isArray())
            return fail("fsm transitions must be an array");
        for (const auto &entry : transitions->elems) {
            if (!entry->isObject())
                return fail("fsm transitions must be objects");
            Snapshot::FsmTrans trans;
            std::string to;
            if (!getString(*entry, "to", &to) ||
                !hexToU64(to, &trans.to) ||
                !getBool(*entry, "seen", &trans.seen))
                return fail("malformed fsm transition");
            std::string from;
            if (getString(*entry, "from", &from)) {
                if (!hexToU64(from, &trans.from))
                    return fail("malformed fsm transition source");
                trans.hasFrom = true;
            }
            fsm.transitions.push_back(trans);
        }
        const auto *unexpected = elem->get("unexpected_states");
        if (!unexpected || !unexpected->isArray())
            return fail("fsm unexpected_states must be an array");
        for (const auto &entry : unexpected->elems) {
            uint64_t value = 0;
            if (!entry->isString() || !hexToU64(entry->text, &value))
                return fail("unexpected states must be hex strings");
            fsm.unexpectedStates.push_back(value);
        }
        const auto *arcs = elem->get("unexpected_transitions");
        if (!arcs || !arcs->isArray())
            return fail("fsm unexpected_transitions must be an array");
        for (const auto &entry : arcs->elems) {
            uint64_t from = 0, to = 0;
            if (!entry->isArray() || entry->elems.size() != 2 ||
                !entry->elems[0]->isString() ||
                !hexToU64(entry->elems[0]->text, &from) ||
                !entry->elems[1]->isString() ||
                !hexToU64(entry->elems[1]->text, &to))
                return fail("unexpected transitions must be "
                            "[from, to] hex pairs");
            fsm.unexpectedTransitions.emplace_back(from, to);
        }
        std::sort(fsm.unexpectedStates.begin(),
                  fsm.unexpectedStates.end());
        fsm.unexpectedStates.erase(
            std::unique(fsm.unexpectedStates.begin(),
                        fsm.unexpectedStates.end()),
            fsm.unexpectedStates.end());
        std::sort(fsm.unexpectedTransitions.begin(),
                  fsm.unexpectedTransitions.end());
        fsm.unexpectedTransitions.erase(
            std::unique(fsm.unexpectedTransitions.begin(),
                        fsm.unexpectedTransitions.end()),
            fsm.unexpectedTransitions.end());
        out->fsms.push_back(std::move(fsm));
    }

    error->clear();
    return true;
}

std::string
checkCoverageJson(const std::string &text)
{
    Snapshot snap;
    std::string error;
    if (!parseSnapshot(text, &snap, &error))
        return error;
    return "";
}

std::string
mergeInto(Snapshot &dst, const Snapshot &src)
{
    if (dst.fingerprint != src.fingerprint)
        return "design fingerprints differ (" +
               hexFingerprint(dst.fingerprint) + " vs " +
               hexFingerprint(src.fingerprint) + ")";
    if (dst.top != src.top)
        return "designs differ (top '" + dst.top + "' vs '" +
               src.top + "')";
    if (dst.signals.size() != src.signals.size() ||
        dst.statements.size() != src.statements.size() ||
        dst.arms.size() != src.arms.size() ||
        dst.fsms.size() != src.fsms.size())
        return "coverage shapes differ despite equal fingerprints";

    dst.workloads.insert(dst.workloads.end(), src.workloads.begin(),
                         src.workloads.end());
    std::sort(dst.workloads.begin(), dst.workloads.end());
    dst.workloads.erase(std::unique(dst.workloads.begin(),
                                    dst.workloads.end()),
                        dst.workloads.end());

    for (size_t i = 0; i < dst.signals.size(); ++i) {
        auto &a = dst.signals[i];
        const auto &b = src.signals[i];
        if (a.width != b.width || a.rise.size() != b.rise.size())
            return "signal '" + a.name + "' shapes differ";
        for (size_t w = 0; w < a.rise.size(); ++w) {
            a.rise[w] |= b.rise[w];
            a.fall[w] |= b.fall[w];
        }
    }
    for (size_t i = 0; i < dst.statements.size(); ++i)
        dst.statements[i].hit |= src.statements[i].hit;
    for (size_t i = 0; i < dst.arms.size(); ++i)
        dst.arms[i].taken |= src.arms[i].taken;
    for (size_t i = 0; i < dst.fsms.size(); ++i) {
        auto &a = dst.fsms[i];
        const auto &b = src.fsms[i];
        if (a.seen.size() != b.seen.size() ||
            a.transitions.size() != b.transitions.size())
            return "fsm '" + a.stateVar + "' shapes differ";
        for (size_t s = 0; s < a.seen.size(); ++s)
            a.seen[s] = a.seen[s] || b.seen[s];
        for (size_t t = 0; t < a.transitions.size(); ++t)
            a.transitions[t].seen |= b.transitions[t].seen;
        a.unexpectedStates.insert(a.unexpectedStates.end(),
                                  b.unexpectedStates.begin(),
                                  b.unexpectedStates.end());
        std::sort(a.unexpectedStates.begin(),
                  a.unexpectedStates.end());
        a.unexpectedStates.erase(
            std::unique(a.unexpectedStates.begin(),
                        a.unexpectedStates.end()),
            a.unexpectedStates.end());
        a.unexpectedTransitions.insert(
            a.unexpectedTransitions.end(),
            b.unexpectedTransitions.begin(),
            b.unexpectedTransitions.end());
        std::sort(a.unexpectedTransitions.begin(),
                  a.unexpectedTransitions.end());
        a.unexpectedTransitions.erase(
            std::unique(a.unexpectedTransitions.begin(),
                        a.unexpectedTransitions.end()),
            a.unexpectedTransitions.end());
    }
    return "";
}

} // namespace hwdbg::cover
