#include "cover/run.hh"

#include <utility>

#include "bugbase/workloads.hh"
#include "common/logging.hh"
#include "obs/trace.hh"

namespace hwdbg::cover
{

using sim::Simulator;

namespace
{

/** splitmix64, matching the profiler's stimulus draws. */
uint64_t
mix64(uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

struct Attached
{
    sim::CoverageItems items;
    sim::CoverageCollector collector;

    Attached(Simulator &sim, const hdl::Module &mod)
        : items(buildCoverageItems(sim.design(), fsmSpecsFor(mod))),
          collector(items)
    {
        sim.enableCoverage(&collector);
    }
};

} // namespace

Snapshot
coverBugWorkload(const bugs::TestbedBug &bug, bool buggy,
                 const sim::BackendFactory &backend)
{
    obs::ObsSpan span("cover:bug:" + bug.id);
    elab::ElabResult design = bugs::buildDesign(bug, buggy);
    std::string top = design.mod->name;
    Simulator sim(design.mod);
    if (backend)
        sim.setBackend(backend);
    Attached cover(sim, sim.design().module());
    bugs::runWorkload(bug, sim);
    sim.enableCoverage(nullptr);
    std::string workload = "bug:" + bug.id;
    if (!buggy)
        workload += ":fixed";
    return snapshotFrom(cover.items, cover.collector, top, workload);
}

Snapshot
coverWithTape(hdl::ModulePtr elaborated, const std::string &workload,
              const sim::StimulusTape &tape,
              const sim::BackendFactory &backend)
{
    obs::ObsSpan span("cover:tape");
    std::string top = elaborated->name;
    Simulator sim(std::move(elaborated));
    if (backend)
        sim.setBackend(backend);
    Attached cover(sim, sim.design().module());
    for (const auto &step : tape.steps) {
        sim.applyStep(step);
        if (sim.finished())
            break;
    }
    sim.enableCoverage(nullptr);
    return snapshotFrom(cover.items, cover.collector, top, workload);
}

Snapshot
coverRandom(hdl::ModulePtr elaborated, const std::string &workload,
            uint64_t seed, uint32_t cycles,
            const sim::BackendFactory &backend)
{
    obs::ObsSpan span("cover:random");
    std::string top = elaborated->name;
    Simulator sim(std::move(elaborated));
    if (backend)
        sim.setBackend(backend);
    Attached cover(sim, sim.design().module());

    const sim::LoweredDesign &design = sim.design();
    bool has_clk = design.signalId("clk") >= 0 &&
                   design.info(design.signalId("clk")).dir ==
                       hdl::PortDir::Input;
    bool has_rst = design.signalId("rst") >= 0 &&
                   design.info(design.signalId("rst")).dir ==
                       hdl::PortDir::Input;
    struct DrivenInput
    {
        std::string name;
        uint32_t width;
    };
    std::vector<DrivenInput> inputs;
    for (size_t i = 0; i < design.numSignals(); ++i) {
        const sim::SignalInfo &sig =
            design.info(static_cast<int>(i));
        if (sig.dir != hdl::PortDir::Input || sig.name == "clk" ||
            sig.name == "rst")
            continue;
        inputs.push_back(DrivenInput{sig.name, sig.width});
    }
    if (!has_clk)
        warn("cover: design has no 'clk' input; running %u "
             "combinational eval rounds",
             cycles);

    for (uint32_t t = 0; t < cycles; ++t) {
        if (has_rst)
            sim.poke("rst", Bits(1, t < 2 ? 1 : 0));
        for (size_t i = 0; i < inputs.size(); ++i) {
            uint64_t draw =
                mix64(seed ^ (static_cast<uint64_t>(t) << 20) ^ i);
            sim.poke(inputs[i].name, Bits(inputs[i].width, draw));
        }
        if (has_clk) {
            sim.poke("clk", Bits(1, 0));
            sim.eval();
            sim.poke("clk", Bits(1, 1));
        }
        sim.eval();
        if (sim.finished())
            break;
    }
    sim.enableCoverage(nullptr);
    return snapshotFrom(cover.items, cover.collector, top, workload);
}

} // namespace hwdbg::cover
