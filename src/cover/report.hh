/**
 * @file
 * Human-readable coverage reports.
 *
 * renderCoverText() is the `hwdbg cover` text output: overall and
 * per-category percentages, a per-module rollup ranked worst-first,
 * and the actionable never-lists (signals that never toggled,
 * statements that never executed, branch arms never taken, FSM
 * states/arcs never reached) plus any unexpected FSM observations.
 * The JSON form is cover::toJson() — the report and the interchange
 * format are the same serialization.
 */

#ifndef HWDBG_COVER_REPORT_HH
#define HWDBG_COVER_REPORT_HH

#include <string>

#include "cover/snapshot.hh"

namespace hwdbg::cover
{

struct ReportOptions
{
    /** Cap for each never-list ("... and N more" past it). */
    size_t listLimit = 20;
};

std::string renderCoverText(const Snapshot &snap,
                            const ReportOptions &opts = {});

} // namespace hwdbg::cover

#endif // HWDBG_COVER_REPORT_HH
