/**
 * @file
 * Coverage run drivers: elaborate a design, attach a collector, drive
 * it, and return the resulting Snapshot.
 *
 * Three stimulus sources, matching `hwdbg cover`:
 *  - a testbed bug's trigger workload (the push-button reproducers);
 *  - a recorded stimulus tape (the debugger's vector-file format —
 *    the caller loads the file, keeping this library independent of
 *    src/debug);
 *  - the seeded random driver (the profiler's input scheme: reset for
 *    two cycles, then splitmix-drawn values on every non-clock input
 *    each cycle).
 *
 * All drivers detect FSMs first (analysis::detectFsms) so FSM
 * state/arc coverage rides along automatically.
 */

#ifndef HWDBG_COVER_RUN_HH
#define HWDBG_COVER_RUN_HH

#include <string>

#include "bugbase/testbed.hh"
#include "cover/snapshot.hh"
#include "sim/backend.hh"
#include "sim/simulator.hh"

namespace hwdbg::cover
{

// Each driver takes an optional execution backend (--backend); an empty
// factory runs the interpreter. Coverage events are sampled through the
// CoverageCollector hooks both backends drive identically, so snapshots
// are backend-independent.

/** Run @p bug's trigger workload with coverage attached. */
Snapshot coverBugWorkload(const bugs::TestbedBug &bug, bool buggy,
                          const sim::BackendFactory &backend = {});

/** Replay @p tape on @p elaborated with coverage attached. */
Snapshot coverWithTape(hdl::ModulePtr elaborated,
                       const std::string &workload,
                       const sim::StimulusTape &tape,
                       const sim::BackendFactory &backend = {});

/** Drive @p cycles of seeded random stimulus with coverage attached. */
Snapshot coverRandom(hdl::ModulePtr elaborated,
                     const std::string &workload, uint64_t seed,
                     uint32_t cycles,
                     const sim::BackendFactory &backend = {});

} // namespace hwdbg::cover

#endif // HWDBG_COVER_RUN_HH
