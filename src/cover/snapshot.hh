/**
 * @file
 * The coverage snapshot: a self-contained model of one design's
 * coverage, serializable to the versioned hwdbg-cover JSON format.
 *
 * A Snapshot is built either live (from the sim layer's CoverageItems
 * + CoverageCollector after a run) or by parsing a coverage file.
 * Everything downstream — reports, merging, `hwdbg obscheck`
 * validation — operates on the Snapshot, so there is exactly one
 * serialization path and one parse path.
 *
 * File format (format "hwdbg-cover", version 1):
 *
 *   {"format":"hwdbg-cover","version":1,
 *    "build":{...},                      // provenance of the collector
 *    "design":{"top":...,"fingerprint":"0x..."},
 *    "workloads":[...],                  // sorted, unique
 *    "signals":[{"name","width","scope","rise","fall"}...],
 *    "statements":[{"kind","loc","scope","hit"}...],
 *    "arms":[{"stmt","label","taken"}...],
 *    "fsms":[{"state_var","states","seen","transitions",
 *             "unexpected_states","unexpected_transitions"}...],
 *    "summary":{...}}                    // derived; ignored on parse
 *
 * Bit maps ("rise"/"fall") are hex strings of the packed per-signal
 * bits; 64-bit values (fingerprint, state encodings) are hex strings
 * because JSON numbers cannot carry them exactly.
 *
 * Merging requires equal design fingerprints and is a pure union
 * (bitmap OR, workload/unexpected-set union), which makes it
 * associative, commutative, and idempotent by construction — the
 * property tests/cover/test_cover_json.cc pins down.
 */

#ifndef HWDBG_COVER_SNAPSHOT_HH
#define HWDBG_COVER_SNAPSHOT_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "sim/coverage.hh"

namespace hwdbg::cover
{

struct Snapshot
{
    std::string buildVersion, buildGit, buildType;
    std::string top;
    uint64_t fingerprint = 0;
    /** Sorted unique workload labels (e.g. "bug:D3", "seed:42"). */
    std::vector<std::string> workloads;

    struct Signal
    {
        std::string name;
        uint32_t width = 1;
        std::string scope;
        /** Bit-packed 0->1 / 1->0 observations, LSB first. */
        std::vector<uint64_t> rise, fall;
    };

    struct Stmt
    {
        std::string kind;
        std::string loc;
        std::string scope;
        bool hit = false;
    };

    struct Arm
    {
        uint32_t stmt = 0;
        std::string label;
        bool taken = false;
    };

    struct FsmTrans
    {
        bool hasFrom = false;
        uint64_t from = 0, to = 0;
        bool seen = false;
    };

    struct Fsm
    {
        std::string stateVar;
        std::vector<uint64_t> states;
        std::vector<bool> seen;
        std::vector<FsmTrans> transitions;
        /** Sorted unique observations outside the declared sets. */
        std::vector<uint64_t> unexpectedStates;
        std::vector<std::pair<uint64_t, uint64_t>>
            unexpectedTransitions;
    };

    std::vector<Signal> signals;
    std::vector<Stmt> statements;
    std::vector<Arm> arms;
    std::vector<Fsm> fsms;

    sim::CoverageTotals totals() const;
};

/** Name of a statement kind as recorded in coverage files. */
const char *stmtKindName(hdl::StmtKind kind);

/** Per-instance-scope rollup of a snapshot, sorted by scope name. */
struct ScopeTotals
{
    std::string scope;
    sim::CoverageTotals totals;
};
std::vector<ScopeTotals> scopeRollups(const Snapshot &snap);

/** "87.5"-style fixed-point percentage (deterministic rendering). */
std::string coverPct(uint64_t covered, uint64_t total);

/** Convert detected FSMs into sim-layer coverage specs. */
std::vector<sim::FsmCoverSpec> fsmSpecsFor(const hdl::Module &mod);

/** Capture @p collector's state into a Snapshot. */
Snapshot snapshotFrom(const sim::CoverageItems &items,
                      const sim::CoverageCollector &collector,
                      const std::string &top,
                      const std::string &workload);

/** Serialize (including the derived "summary" section). */
std::string toJson(const Snapshot &snap);

/**
 * Parse and validate a coverage file. Returns true on success; on
 * failure sets @p error and leaves @p out unspecified.
 */
bool parseSnapshot(const std::string &text, Snapshot *out,
                   std::string *error);

/** Schema check for `hwdbg obscheck`: "" when valid, else the reason. */
std::string checkCoverageJson(const std::string &text);

/**
 * Union @p src into @p dst. Returns "" on success, else the reason
 * (mismatched fingerprint/shape).
 */
std::string mergeInto(Snapshot &dst, const Snapshot &src);

} // namespace hwdbg::cover

#endif // HWDBG_COVER_SNAPSHOT_HH
