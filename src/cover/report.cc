#include "cover/report.hh"

#include <algorithm>
#include <iomanip>
#include <sstream>

namespace hwdbg::cover
{

namespace
{

uint64_t
popAll(const std::vector<uint64_t> &words)
{
    uint64_t n = 0;
    for (uint64_t word : words)
        n += static_cast<uint64_t>(__builtin_popcountll(word));
    return n;
}

std::string
hexU64(uint64_t value)
{
    std::ostringstream out;
    out << "0x" << std::hex << value;
    return out.str();
}

void
line(std::ostringstream &out, const char *label, uint64_t covered,
     uint64_t total)
{
    out << "  " << std::left << std::setw(16) << label << std::right
        << std::setw(5) << coverPct(covered, total) << "%  ("
        << covered << "/" << total << ")\n";
}

/** Render a capped list with a trailing "... and N more". */
template <typename T, typename Fn>
void
cappedList(std::ostringstream &out, const std::vector<T> &entries,
           size_t limit, Fn &&render)
{
    size_t shown = std::min(entries.size(), limit);
    for (size_t i = 0; i < shown; ++i)
        render(entries[i]);
    if (entries.size() > shown)
        out << "    ... and " << entries.size() - shown << " more\n";
}

} // namespace

std::string
renderCoverText(const Snapshot &snap, const ReportOptions &opts)
{
    std::ostringstream out;
    sim::CoverageTotals totals = snap.totals();

    out << "coverage report: top '" << snap.top << "'\n";
    out << "build " << snap.buildVersion << " (" << snap.buildGit
        << ", " << snap.buildType << "), design fingerprint "
        << hexU64(snap.fingerprint) << "\n";
    out << "workloads:";
    for (const auto &workload : snap.workloads)
        out << " " << workload;
    out << "\n\n";

    line(out, "overall", totals.covered(), totals.total());
    line(out, "statements", totals.stmtHit, totals.stmtTotal);
    line(out, "branches", totals.armTaken, totals.armTotal);
    line(out, "toggles", totals.toggleHit, totals.toggleTotal);
    if (totals.fsmStateTotal) {
        line(out, "fsm states", totals.fsmStateHit,
             totals.fsmStateTotal);
        line(out, "fsm arcs", totals.fsmTransHit,
             totals.fsmTransTotal);
    }

    // Per-module rollup, worst-covered first (ties by name).
    auto rollups = scopeRollups(snap);
    std::stable_sort(
        rollups.begin(), rollups.end(),
        [](const ScopeTotals &a, const ScopeTotals &b) {
            // covered/total compared as cross-products to stay in
            // integers.
            return a.totals.covered() * b.totals.total() <
                   b.totals.covered() * a.totals.total();
        });
    if (rollups.size() > 1) {
        out << "\nper-module (worst first):\n";
        for (const auto &entry : rollups)
            out << "  " << std::right << std::setw(5)
                << coverPct(entry.totals.covered(),
                            entry.totals.total())
                << "%  " << entry.scope << "  ("
                << entry.totals.covered() << "/"
                << entry.totals.total() << ")\n";
    }

    std::vector<const Snapshot::Signal *> untoggled;
    for (const auto &sig : snap.signals)
        if (popAll(sig.rise) + popAll(sig.fall) == 0)
            untoggled.push_back(&sig);
    if (!untoggled.empty()) {
        out << "\nnever-toggled signals (" << untoggled.size()
            << "):\n";
        cappedList(out, untoggled, opts.listLimit,
                   [&](const Snapshot::Signal *sig) {
                       out << "    " << sig->name << " ["
                           << sig->width << "b]\n";
                   });
    }

    std::vector<const Snapshot::Stmt *> unexecuted;
    for (const auto &stmt : snap.statements)
        if (!stmt.hit)
            unexecuted.push_back(&stmt);
    if (!unexecuted.empty()) {
        out << "\nnever-executed statements (" << unexecuted.size()
            << "):\n";
        cappedList(out, unexecuted, opts.listLimit,
                   [&](const Snapshot::Stmt *stmt) {
                       out << "    " << stmt->kind;
                       if (!stmt->loc.empty())
                           out << " at " << stmt->loc;
                       out << " (" << stmt->scope << ")\n";
                   });
    }

    std::vector<const Snapshot::Arm *> untaken;
    for (const auto &arm : snap.arms)
        if (!arm.taken)
            untaken.push_back(&arm);
    if (!untaken.empty()) {
        out << "\nnever-taken branch arms (" << untaken.size()
            << "):\n";
        cappedList(out, untaken, opts.listLimit,
                   [&](const Snapshot::Arm *arm) {
                       const auto &stmt = snap.statements[arm->stmt];
                       out << "    " << stmt.kind;
                       if (!stmt.loc.empty())
                           out << " at " << stmt.loc;
                       out << ": " << arm->label << "\n";
                   });
    }

    for (const auto &fsm : snap.fsms) {
        uint64_t seen = 0;
        for (bool flag : fsm.seen)
            seen += flag;
        uint64_t arcs = 0;
        for (const auto &trans : fsm.transitions)
            arcs += trans.seen;
        out << "\nfsm " << fsm.stateVar << ": states " << seen << "/"
            << fsm.states.size() << ", arcs " << arcs << "/"
            << fsm.transitions.size() << "\n";
        for (size_t s = 0; s < fsm.states.size(); ++s)
            if (!fsm.seen[s])
                out << "    never in state " << hexU64(fsm.states[s])
                    << "\n";
        for (const auto &trans : fsm.transitions)
            if (!trans.seen) {
                out << "    never took ";
                if (trans.hasFrom)
                    out << hexU64(trans.from);
                else
                    out << "*";
                out << " -> " << hexU64(trans.to) << "\n";
            }
        for (uint64_t state : fsm.unexpectedStates)
            out << "    UNEXPECTED state " << hexU64(state) << "\n";
        for (const auto &[from, to] : fsm.unexpectedTransitions)
            out << "    UNEXPECTED arc " << hexU64(from) << " -> "
                << hexU64(to) << "\n";
    }
    return out.str();
}

} // namespace hwdbg::cover
