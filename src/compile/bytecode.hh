/**
 * @file
 * Flat word-parallel bytecode for the compiled simulation backend.
 *
 * Lowering turns the elaborated design into:
 *  - a dense value slab of 64-bit words: one fixed-offset slot per
 *    signal, per memory element, per deduplicated constant, and per
 *    expression temporary. Signal and array slots form a contiguous
 *    state region at the front so a settle pass can snapshot/compare it
 *    with memcpy/memcmp instead of deep Bits copies;
 *  - straight-line op streams ("chunks"), one per continuous assign,
 *    combinational process, and clocked process, executed by a dispatch
 *    loop. Ops reference slab slots by word offset with widths fixed at
 *    lowering time to mirror the interpreter's context-width rules
 *    exactly (sim/eval.cc is the semantics reference).
 *
 * Slab values are always canonical: bits above a slot's declared width
 * are zero, which makes change detection and state comparison plain
 * word compares.
 */

#ifndef HWDBG_COMPILE_BYTECODE_HH
#define HWDBG_COMPILE_BYTECODE_HH

#include <cstdint>
#include <utility>
#include <vector>

#include "sim/design.hh"

namespace hwdbg::compile
{

using Word = uint64_t;

enum class Opc : uint8_t {
    /** dst(w) = zero-extend/truncate of slab[a] (width wa). */
    Copy,
    // Arithmetic: dst(w) = (a op b) mod 2^w; operand widths wa/wb are
    // always >= w (context-width propagation), so the interpreter's
    // trailing .resized(w) is a truncation the kernels fold in.
    Add, ///< runtime MUT_SIM_ADD_AS_SUB check
    Sub,
    Mul,
    Divu, ///< division by zero yields all-ones (like x)
    Modu,
    // Bitwise: dst(w = max(wa, wb)), operands zero-extended.
    And,
    Or,
    Xor, ///< runtime MUT_SIM_XOR_AS_OR check
    Not, ///< dst(w = wa) = ~a masked
    Neg, ///< dst(w = wa) = two's complement
    Shl, ///< dst(wa) = a << word0(slab[b]); amount >= wa yields zero
    Shr, ///< runtime MUT_SIM_SHR_OFF_BY_ONE check
    LogNot,
    RedAnd,
    RedOr,
    RedXor,
    LogAnd, ///< both operands always evaluated (no short circuit)
    LogOr,
    // Comparisons: zero-extended unsigned compare of a(wa) vs b(wb).
    CmpEq,
    CmpNe,
    CmpLt, ///< runtime MUT_SIM_LT_AS_LE check
    CmpLe,
    CmpGt,
    CmpGe,
    /** dst(w) = (slab[c] != 0) ? resize(a) : resize(b); both arms are
     *  always evaluated (expressions are side-effect free). Runtime
     *  MUT_SIM_TERNARY_SWAP check. */
    Select,
    /** dst(w) = (slab[a] >> aux) keeping aux2 bits (rest zero). */
    SliceGet,
    /** dst(w) = bit uint32(word0(slab[b])) of slab[a]; OOR reads 0. */
    BitGet,
    /** dst(w) = arrays[sig = aux][effectiveIndex(word0(slab[b]))]
     *  resized; an out-of-range index reads zero. */
    ArrGet,
    /** Concat assembly: dst bits [aux + wa - 1 : aux] |= slab[a]. The
     *  destination temp must have been cleared; no change detection. */
    WriteTemp,
    /** Zero nw words at d. */
    ClearTemp,
    Store,   ///< stores[aux]: signal/element/bit/slice store with
             ///< interpreter-exact change detection
    NbaPush, ///< nbas[aux]: resolve target now, queue value for commit
    Jmp,     ///< pc = aux
    Jz,      ///< if slab[a] (width wa) == 0 then pc = aux
    Jnz,
    CoverStmt, ///< if coverage attached: onStmt(stmt)
    CoverArm,  ///< if coverage attached: onArm(stmt, aux)
    Display,   ///< displays[aux]: format + append to ctx log
    WarnDisplay, ///< $display in comb process: warn once per backend
    Finish,      ///< ctx.finished = true; execution continues
};

struct Op
{
    Opc opc;
    uint16_t nw = 0; ///< destination word count
    uint32_t w = 0;  ///< destination width
    uint32_t wa = 0, wb = 0;
    uint32_t a = 0, b = 0, c = 0; ///< operand word offsets
    uint32_t d = 0;               ///< destination word offset
    int32_t aux = 0;              ///< jump target / desc index / arm / lsb
    int32_t aux2 = 0;
    const hdl::Stmt *stmt = nullptr; ///< coverage key
};

/** One store site; kinds mirror sim::StoreTarget resolution. */
struct StoreDesc
{
    enum Kind : uint8_t { Whole, Elem, Bit, Slice };
    Kind kind = Whole;
    int sig = -1;
    uint32_t idxSlot = 0; ///< Elem/Bit: slot holding the index value
    uint32_t msb = 0, lsb = 0; ///< Slice: normalized (msb >= lsb)
    uint32_t valSlot = 0;
    uint32_t valW = 0;
};

/** One nonblocking-assignment push site (one lvalue part). */
struct NbaDesc
{
    StoreDesc::Kind kind = StoreDesc::Whole;
    int sig = -1;
    uint32_t idxSlot = 0;
    uint32_t msb = 0, lsb = 0;
    uint32_t valSlot = 0; ///< full RHS value (width valW)
    uint32_t valW = 0;
    uint32_t rhsMsb = 0, rhsLsb = 0; ///< slice of the RHS for this part
};

struct DisplayDesc
{
    const hdl::DisplayStmt *stmt = nullptr;
    /** Argument slots (offset, width), in order. */
    std::vector<std::pair<uint32_t, uint32_t>> args;
};

struct Program
{
    struct Chunk
    {
        uint32_t begin = 0, end = 0;
    };

    std::vector<Op> ops;
    std::vector<Chunk> assignChunks;  ///< one per design assign
    std::vector<Chunk> combChunks;    ///< one per comb process
    std::vector<Chunk> clockedChunks; ///< one per clocked process

    /** Initial slab image: state region zeroed, constants preloaded. */
    std::vector<Word> slabInit;
    /** Size of the signal+array state region (words) at the slab front. */
    uint32_t stateWords = 0;
    std::vector<uint32_t> sigOff; ///< scalar slot offset per signal id
    /** Element-0 offset per array signal id (stride = words of width). */
    std::vector<uint32_t> arrOff;

    std::vector<StoreDesc> stores;
    std::vector<NbaDesc> nbas;
    std::vector<DisplayDesc> displays;

    // Lowering statistics (reported by tests and `--backend` tooling).
    size_t foldedConsts = 0; ///< expressions folded to constant slots
    size_t deadArms = 0;     ///< if-branches dropped by known-bits facts
};

/** Words needed for @p width bits. */
inline uint32_t
wordsFor(uint32_t width)
{
    return (width + 63) / 64;
}

/** Mask for the (possibly partial) top word of a @p width-bit slot. */
inline Word
topWordMask(uint32_t width)
{
    uint32_t rem = width % 64;
    return rem == 0 ? ~Word(0) : (~Word(0) >> (64 - rem));
}

/**
 * Lower @p design to bytecode. When @p fold is set, the known-bits
 * fixpoint from src/analyze folds fully-known expressions into constant
 * slots and drops if-branches with proven conditions; callers must
 * disable folding when a simulator mutation is active (the abstract
 * domain models unmutated semantics).
 */
Program lowerProgram(const sim::LoweredDesign &design, bool fold);

} // namespace hwdbg::compile

#endif // HWDBG_COMPILE_BYTECODE_HH
