/**
 * @file
 * Bytecode executor: the dispatch loop and its word-level kernels.
 *
 * Every kernel reproduces the corresponding Bits operation from
 * sim/eval.cc over canonical little-endian words (bits above a slot's
 * width are zero). Operands are zero-extended on read; destination
 * slots are masked to their width on write, so canonicality is an
 * invariant of the loop. The value-level simulator mutations
 * (MUT_SIM_ADD_AS_SUB etc.) stay runtime checks here, exactly like the
 * interpreter, so `fuzz --self-check` exercises both backends alike.
 */

#include <algorithm>
#include <chrono>
#include <cstring>

#include "common/logging.hh"
#include "common/testhooks.hh"
#include "compile/backend.hh"
#include "obs/metrics.hh"
#include "sim/coverage.hh"
#include "sim/profiler.hh"
#include "sim/simulator.hh"

namespace hwdbg::compile
{

using sim::SignalInfo;

namespace
{

/** Verbatim replica of eval.cc's hardware-overflow address mapping. */
int64_t
effectiveIndex(uint64_t index, uint32_t size)
{
    uint32_t addr_bits = 0;
    while ((uint64_t(1) << addr_bits) < size)
        ++addr_bits;
    uint64_t effective =
        addr_bits >= 64 ? index : index & ((uint64_t(1) << addr_bits) - 1);
    if (effective >= size)
        return -1;
    return static_cast<int64_t>(effective);
}

/** Zero-extended word read: beyond an operand's words reads zero. */
inline Word
ldw(const Word *s, uint32_t off, uint32_t opnw, uint32_t i)
{
    return i < opnw ? s[off + i] : 0;
}

inline void
maskTop(Word *s, uint32_t off, uint32_t nw, uint32_t w)
{
    if (nw)
        s[off + nw - 1] &= topWordMask(w);
}

inline bool
anyWord(const Word *p, uint32_t nw)
{
    for (uint32_t i = 0; i < nw; ++i)
        if (p[i])
            return true;
    return false;
}

/** Unsigned zero-extended compare: -1, 0, or 1 (Bits::compare). */
int
cmpWords(const Word *s, uint32_t a, uint32_t nwa, uint32_t b,
         uint32_t nwb)
{
    uint32_t nw = std::max(nwa, nwb);
    for (uint32_t k = nw; k-- > 0;) {
        Word aw = ldw(s, a, nwa, k);
        Word bw = ldw(s, b, nwb, k);
        if (aw != bw)
            return aw < bw ? -1 : 1;
    }
    return 0;
}

/** dst(out_w) = (src(src_w) >> lo) truncated: Bits::slice + resize. */
void
sliceWords(Word *dst, uint32_t out_w, const Word *src, uint32_t src_w,
           uint32_t lo)
{
    uint32_t nw_out = wordsFor(out_w);
    uint32_t nw_src = wordsFor(src_w);
    uint32_t ws = lo / 64, bs = lo % 64;
    for (uint32_t i = 0; i < nw_out; ++i) {
        Word low = i + ws < nw_src ? src[i + ws] : 0;
        Word high = (bs && i + ws + 1 < nw_src) ? src[i + ws + 1] : 0;
        dst[i] = bs ? (low >> bs) | (high << (64 - bs)) : low;
    }
    if (nw_out)
        dst[nw_out - 1] &= topWordMask(out_w);
}

/** dst(dst_w) = zero-extend/truncate of src(src_w). */
void
resizeWords(Word *dst, uint32_t dst_w, const Word *src, uint32_t src_w)
{
    uint32_t nw = wordsFor(dst_w);
    uint32_t nws = wordsFor(src_w);
    for (uint32_t i = 0; i < nw; ++i)
        dst[i] = i < nws ? src[i] : 0;
    if (nw)
        dst[nw - 1] &= topWordMask(dst_w);
}

} // namespace

BytecodeBackend::BytecodeBackend(sim::Simulator &sim)
    : Backend(sim),
      // Folding consults the known-bits fixpoint, which models
      // unmutated semantics; any live mutation disables it.
      prog_(lowerProgram(design(), activeMutation == MUT_NONE))
{
    slab_ = prog_.slabInit;
    before_.resize(prog_.stateWords);
    uint32_t max_w = 1;
    for (size_t i = 0; i < design().numSignals(); ++i)
        max_w = std::max(max_w,
                         design().info(static_cast<int>(i)).width);
    scratch_.resize(wordsFor(max_w));
    load();
}

void
BytecodeBackend::run(const Program::Chunk &chunk)
{
    Word *s = slab_.data();
    const Op *ops = prog_.ops.data();
    sim::EvalContext &ectx = ctx();
    sim::CoverageCollector *cov = cover();
    uint32_t pc = chunk.begin;
    while (pc < chunk.end) {
        const Op &op = ops[pc];
        switch (op.opc) {
          case Opc::Copy: {
            uint32_t nwa = wordsFor(op.wa);
            for (uint32_t i = 0; i < op.nw; ++i)
                s[op.d + i] = ldw(s, op.a, nwa, i);
            maskTop(s, op.d, op.nw, op.w);
            break;
          }
          case Opc::Add:
          case Opc::Sub: {
            uint32_t nwa = wordsFor(op.wa), nwb = wordsFor(op.wb);
            bool sub = op.opc == Opc::Sub ||
                       mutationOn(MUT_SIM_ADD_AS_SUB);
            if (sub) {
                Word borrow = 0;
                for (uint32_t i = 0; i < op.nw; ++i) {
                    Word aw = ldw(s, op.a, nwa, i);
                    Word bw = ldw(s, op.b, nwb, i);
                    Word t = aw - bw;
                    Word b1 = aw < bw;
                    Word r = t - borrow;
                    Word b2 = t < borrow;
                    s[op.d + i] = r;
                    borrow = b1 | b2;
                }
            } else {
                unsigned __int128 acc = 0;
                for (uint32_t i = 0; i < op.nw; ++i) {
                    acc += ldw(s, op.a, nwa, i);
                    acc += ldw(s, op.b, nwb, i);
                    s[op.d + i] = static_cast<Word>(acc);
                    acc >>= 64;
                }
            }
            maskTop(s, op.d, op.nw, op.w);
            break;
          }
          case Opc::Mul: {
            uint32_t nwa = wordsFor(op.wa), nwb = wordsFor(op.wb);
            for (uint32_t k = 0; k < op.nw; ++k)
                s[op.d + k] = 0;
            for (uint32_t i = 0; i < op.nw; ++i) {
                Word aw = ldw(s, op.a, nwa, i);
                if (!aw)
                    continue;
                unsigned __int128 carry = 0;
                for (uint32_t j = 0; i + j < op.nw; ++j) {
                    unsigned __int128 cur =
                        static_cast<unsigned __int128>(aw) *
                            ldw(s, op.b, nwb, j) +
                        s[op.d + i + j] + carry;
                    s[op.d + i + j] = static_cast<Word>(cur);
                    carry = cur >> 64;
                }
            }
            maskTop(s, op.d, op.nw, op.w);
            break;
          }
          case Opc::Divu:
          case Opc::Modu: {
            bool div = op.opc == Opc::Divu;
            if (op.wa <= 64 && op.wb <= 64) {
                Word a0 = s[op.a], b0 = s[op.b];
                Word r;
                if (b0 == 0)
                    r = ~Word(0); // division by zero yields all-ones
                else
                    r = div ? a0 / b0 : a0 % b0;
                s[op.d] = r & topWordMask(op.w);
            } else {
                Bits a = Bits::fromWords(op.wa, s + op.a,
                                         wordsFor(op.wa));
                Bits b = Bits::fromWords(op.wb, s + op.b,
                                         wordsFor(op.wb));
                Bits r = (div ? a.divu(b) : a.modu(b)).resized(op.w);
                resizeWords(s + op.d, op.w, r.rawWords(),
                            static_cast<uint32_t>(r.numWords()) * 64);
            }
            break;
          }
          case Opc::And:
          case Opc::Or:
          case Opc::Xor: {
            uint32_t nwa = wordsFor(op.wa), nwb = wordsFor(op.wb);
            Opc eff = op.opc;
            if (eff == Opc::Xor && mutationOn(MUT_SIM_XOR_AS_OR))
                eff = Opc::Or;
            for (uint32_t i = 0; i < op.nw; ++i) {
                Word aw = ldw(s, op.a, nwa, i);
                Word bw = ldw(s, op.b, nwb, i);
                s[op.d + i] = eff == Opc::And ? (aw & bw)
                              : eff == Opc::Or ? (aw | bw)
                                               : (aw ^ bw);
            }
            maskTop(s, op.d, op.nw, op.w);
            break;
          }
          case Opc::Not: {
            uint32_t nwa = wordsFor(op.wa);
            for (uint32_t i = 0; i < op.nw; ++i)
                s[op.d + i] = ~ldw(s, op.a, nwa, i);
            maskTop(s, op.d, op.nw, op.w);
            break;
          }
          case Opc::Neg: {
            uint32_t nwa = wordsFor(op.wa);
            unsigned __int128 acc = 1;
            for (uint32_t i = 0; i < op.nw; ++i) {
                acc += static_cast<Word>(~ldw(s, op.a, nwa, i));
                s[op.d + i] = static_cast<Word>(acc);
                acc >>= 64;
            }
            maskTop(s, op.d, op.nw, op.w);
            break;
          }
          case Opc::Shl: {
            uint64_t amt = s[op.b];
            uint32_t nwa = wordsFor(op.wa);
            if (amt >= op.wa) {
                for (uint32_t i = 0; i < op.nw; ++i)
                    s[op.d + i] = 0;
                break;
            }
            uint32_t ws = static_cast<uint32_t>(amt) / 64;
            uint32_t bs = static_cast<uint32_t>(amt) % 64;
            for (uint32_t k = op.nw; k-- > 0;) {
                Word low = k >= ws ? ldw(s, op.a, nwa, k - ws) : 0;
                Word high = (bs && k > ws)
                                ? ldw(s, op.a, nwa, k - ws - 1)
                                : 0;
                s[op.d + k] =
                    bs ? (low << bs) | (high >> (64 - bs)) : low;
            }
            maskTop(s, op.d, op.nw, op.w);
            break;
          }
          case Opc::Shr: {
            uint64_t amt = s[op.b] +
                           (mutationOn(MUT_SIM_SHR_OFF_BY_ONE) ? 1 : 0);
            uint32_t nwa = wordsFor(op.wa);
            if (amt >= op.wa) {
                for (uint32_t i = 0; i < op.nw; ++i)
                    s[op.d + i] = 0;
                break;
            }
            uint32_t ws = static_cast<uint32_t>(amt) / 64;
            uint32_t bs = static_cast<uint32_t>(amt) % 64;
            for (uint32_t i = 0; i < op.nw; ++i) {
                Word low = ldw(s, op.a, nwa, i + ws);
                Word high = bs ? ldw(s, op.a, nwa, i + ws + 1) : 0;
                s[op.d + i] =
                    bs ? (low >> bs) | (high << (64 - bs)) : low;
            }
            maskTop(s, op.d, op.nw, op.w);
            break;
          }
          case Opc::LogNot:
          case Opc::RedAnd:
          case Opc::RedOr:
          case Opc::RedXor: {
            uint32_t nwa = wordsFor(op.wa);
            bool r = false;
            if (op.opc == Opc::LogNot) {
                r = !anyWord(s + op.a, nwa);
            } else if (op.opc == Opc::RedOr) {
                r = anyWord(s + op.a, nwa);
            } else if (op.opc == Opc::RedAnd) {
                r = true;
                for (uint32_t i = 0; r && i < nwa; ++i) {
                    Word want = i + 1 == nwa ? topWordMask(op.wa)
                                             : ~Word(0);
                    r = s[op.a + i] == want;
                }
            } else {
                Word acc = 0;
                for (uint32_t i = 0; i < nwa; ++i)
                    acc ^= s[op.a + i];
                r = __builtin_parityll(acc);
            }
            for (uint32_t i = 0; i < op.nw; ++i)
                s[op.d + i] = 0;
            s[op.d] = r ? 1 : 0;
            break;
          }
          case Opc::LogAnd:
          case Opc::LogOr: {
            bool a = anyWord(s + op.a, wordsFor(op.wa));
            bool b = anyWord(s + op.b, wordsFor(op.wb));
            bool r = op.opc == Opc::LogAnd ? (a && b) : (a || b);
            for (uint32_t i = 0; i < op.nw; ++i)
                s[op.d + i] = 0;
            s[op.d] = r ? 1 : 0;
            break;
          }
          case Opc::CmpEq:
          case Opc::CmpNe:
          case Opc::CmpLt:
          case Opc::CmpLe:
          case Opc::CmpGt:
          case Opc::CmpGe: {
            int cmp = cmpWords(s, op.a, wordsFor(op.wa), op.b,
                               wordsFor(op.wb));
            bool r = false;
            switch (op.opc) {
              case Opc::CmpEq: r = cmp == 0; break;
              case Opc::CmpNe: r = cmp != 0; break;
              case Opc::CmpLt:
                r = mutationOn(MUT_SIM_LT_AS_LE) ? cmp <= 0 : cmp < 0;
                break;
              case Opc::CmpLe: r = cmp <= 0; break;
              case Opc::CmpGt: r = cmp > 0; break;
              default: r = cmp >= 0; break;
            }
            for (uint32_t i = 0; i < op.nw; ++i)
                s[op.d + i] = 0;
            s[op.d] = r ? 1 : 0;
            break;
          }
          case Opc::Select: {
            bool taken =
                anyWord(s + op.c,
                        wordsFor(static_cast<uint32_t>(op.aux2)));
            if (mutationOn(MUT_SIM_TERNARY_SWAP))
                taken = !taken;
            uint32_t src = taken ? op.a : op.b;
            uint32_t src_w = taken ? op.wa : op.wb;
            resizeWords(s + op.d, op.w, s + src, src_w);
            break;
          }
          case Opc::SliceGet: {
            uint32_t keep = static_cast<uint32_t>(op.aux2);
            uint32_t nw_keep = wordsFor(keep);
            sliceWords(s + op.d, keep, s + op.a, op.wa,
                       static_cast<uint32_t>(op.aux));
            for (uint32_t i = nw_keep; i < op.nw; ++i)
                s[op.d + i] = 0;
            break;
          }
          case Opc::BitGet: {
            uint32_t idx = static_cast<uint32_t>(s[op.b]);
            bool bit = false;
            if (idx < op.wa)
                bit = (s[op.a + idx / 64] >> (idx % 64)) & 1;
            for (uint32_t i = 0; i < op.nw; ++i)
                s[op.d + i] = 0;
            s[op.d] = bit ? 1 : 0;
            break;
          }
          case Opc::ArrGet: {
            int sig = static_cast<int>(op.aux);
            const SignalInfo &info = design().info(sig);
            int64_t elem = effectiveIndex(s[op.b], info.arraySize);
            if (elem < 0) {
                for (uint32_t i = 0; i < op.nw; ++i)
                    s[op.d + i] = 0;
                break;
            }
            const Word *src =
                s + prog_.arrOff[sig] +
                static_cast<size_t>(elem) * wordsFor(info.width);
            resizeWords(s + op.d, op.w, src, info.width);
            break;
          }
          case Opc::WriteTemp: {
            uint32_t nwa = wordsFor(op.wa);
            uint32_t off = static_cast<uint32_t>(op.aux);
            uint32_t ws = off / 64, bs = off % 64;
            for (uint32_t i = 0; i < nwa; ++i) {
                Word v = s[op.a + i];
                s[op.d + ws + i] |= v << bs;
                if (bs) {
                    Word spill = v >> (64 - bs);
                    // The spill word index can sit one past the slot
                    // when the part's top bits are zero; only touch it
                    // when there is something to write.
                    if (spill)
                        s[op.d + ws + i + 1] |= spill;
                }
            }
            break;
          }
          case Opc::ClearTemp:
            for (uint32_t i = 0; i < op.nw; ++i)
                s[op.d + i] = 0;
            break;
          case Opc::Store:
            doStore(prog_.stores[static_cast<size_t>(op.aux)]);
            break;
          case Opc::NbaPush: {
            const NbaDesc &nd =
                prog_.nbas[static_cast<size_t>(op.aux)];
            sim::StoreTarget t;
            t.sig = nd.sig;
            switch (nd.kind) {
              case StoreDesc::Whole:
                break;
              case StoreDesc::Elem: {
                const SignalInfo &info = design().info(nd.sig);
                t.element =
                    effectiveIndex(s[nd.idxSlot], info.arraySize);
                t.dropped = t.element < 0;
                break;
              }
              case StoreDesc::Bit: {
                const SignalInfo &info = design().info(nd.sig);
                uint64_t index = s[nd.idxSlot];
                if (index >= info.width) {
                    t.dropped = true;
                } else {
                    t.whole = false;
                    t.msb = t.lsb = static_cast<uint32_t>(index);
                }
                break;
              }
              case StoreDesc::Slice:
                t.whole = false;
                t.msb = nd.msb;
                t.lsb = nd.lsb;
                break;
            }
            uint32_t pw = nd.rhsMsb - nd.rhsLsb + 1;
            uint32_t off = static_cast<uint32_t>(nbaWords_.size());
            nbaWords_.resize(off + wordsFor(pw));
            sliceWords(nbaWords_.data() + off, pw, s + nd.valSlot,
                       nd.valW, nd.rhsLsb);
            nba_.push_back(NbaEntry{t, off, pw});
            break;
          }
          case Opc::Jmp:
            pc = static_cast<uint32_t>(op.aux);
            continue;
          case Opc::Jz:
            if (!anyWord(s + op.a, wordsFor(op.wa))) {
                pc = static_cast<uint32_t>(op.aux);
                continue;
            }
            break;
          case Opc::Jnz:
            if (anyWord(s + op.a, wordsFor(op.wa))) {
                pc = static_cast<uint32_t>(op.aux);
                continue;
            }
            break;
          case Opc::CoverStmt:
            if (cov)
                cov->onStmt(op.stmt);
            break;
          case Opc::CoverArm:
            if (cov)
                cov->onArm(op.stmt, static_cast<uint32_t>(op.aux));
            break;
          case Opc::Display: {
            const DisplayDesc &dd =
                prog_.displays[static_cast<size_t>(op.aux)];
            std::vector<Bits> args;
            args.reserve(dd.args.size());
            for (const auto &[aoff, aw] : dd.args)
                args.push_back(
                    Bits::fromWords(aw, s + aoff, wordsFor(aw)));
            // Deferred formatting: bank the raw hit, render at drain.
            ectx.pendingLog.push_back(sim::EvalContext::PendingDisplay{
                ectx.cycle, &dd.stmt->format, std::move(args)});
            HWDBG_STAT_INC("sim.display_records", 1);
            break;
          }
          case Opc::WarnDisplay:
            if (!warnedCombDisplay_) {
                warn("$display in combinational process ignored");
                warnedCombDisplay_ = true;
            }
            break;
          case Opc::Finish:
            ectx.finished = true;
            break;
        }
        ++pc;
    }
}

void
BytecodeBackend::doStore(const StoreDesc &sd)
{
    const Word *s = slab_.data();
    sim::StoreTarget t;
    t.sig = sd.sig;
    switch (sd.kind) {
      case StoreDesc::Whole:
        break;
      case StoreDesc::Elem: {
        const SignalInfo &info = design().info(sd.sig);
        t.element = effectiveIndex(s[sd.idxSlot], info.arraySize);
        t.dropped = t.element < 0;
        break;
      }
      case StoreDesc::Bit: {
        const SignalInfo &info = design().info(sd.sig);
        uint64_t index = s[sd.idxSlot];
        if (index >= info.width) {
            t.dropped = true;
        } else {
            t.whole = false;
            t.msb = t.lsb = static_cast<uint32_t>(index);
        }
        break;
      }
      case StoreDesc::Slice:
        t.whole = false;
        t.msb = sd.msb;
        t.lsb = sd.lsb;
        break;
    }
    applySlab(t, s + sd.valSlot, sd.valW);
}

void
BytecodeBackend::applySlab(const sim::StoreTarget &target,
                           const Word *val, uint32_t val_w)
{
    if (target.dropped)
        return;
    const SignalInfo &info = design().info(target.sig);
    sim::EvalContext &ectx = ctx();
    uint32_t snw = wordsFor(info.width);
    Word *slot;
    if (target.element >= 0)
        slot = slab_.data() + prog_.arrOff[target.sig] +
               static_cast<size_t>(target.element) * snw;
    else
        slot = slab_.data() + prog_.sigOff[target.sig];

    if (target.element >= 0 || target.whole) {
        resizeWords(scratch_.data(), info.width, val, val_w);
        if (std::memcmp(slot, scratch_.data(),
                        snw * sizeof(Word)) == 0)
            return;
        if (ectx.cover)
            ectx.cover->onStore(
                target.sig, Bits::fromWords(info.width, slot, snw),
                Bits::fromWords(info.width, scratch_.data(), snw));
        std::memcpy(slot, scratch_.data(), snw * sizeof(Word));
        ectx.valuesChanged = true;
        if (ectx.toggles)
            ++(*ectx.toggles)[target.sig];
        return;
    }

    // Partial (bit/slice) store: rare, so materialize Bits and use the
    // interpreter's own setSlice for exact out-of-range semantics.
    Bits before = Bits::fromWords(info.width, slot, snw);
    Bits after = before;
    after.setSlice(target.msb, target.lsb,
                   Bits::fromWords(val_w, val, wordsFor(val_w)));
    if (after != before) {
        if (ectx.cover)
            ectx.cover->onStore(target.sig, before, after);
        resizeWords(slot, info.width, after.rawWords(),
                    static_cast<uint32_t>(after.numWords()) * 64);
        ectx.valuesChanged = true;
        if (ectx.toggles)
            ++(*ectx.toggles)[target.sig];
    }
}

void
BytecodeBackend::settleComb()
{
    // Same bounded fixpoint as the interpreter: store-site change
    // flags as the fast path, whole-state comparison as the authority
    // (transient toggles inside a pass must not count as progress).
    // The state region is flat words, so the comparison is one memcmp.
    using ProfClock = std::chrono::steady_clock;
    sim::EvalContext &ectx = ctx();
    sim::SimCounters *prof_ = prof();
    size_t work = prog_.assignChunks.size() + prog_.combChunks.size();
    size_t max_iters = work + 4;
    size_t iters_used = 0;
    for (size_t iter = 0; iter < max_iters; ++iter) {
        iters_used = iter + 1;
        std::memcpy(before_.data(), slab_.data(),
                    prog_.stateWords * sizeof(Word));
        ectx.valuesChanged = false;
        for (size_t i = 0; i < prog_.assignChunks.size(); ++i) {
            ProfClock::time_point t0;
            if (prof_)
                t0 = ProfClock::now();
            run(prog_.assignChunks[i]);
            if (prof_) {
                ++prof_->assignEvals[i];
                prof_->assignNs[i] +=
                    std::chrono::duration<double, std::nano>(
                        ProfClock::now() - t0)
                        .count();
            }
        }
        for (size_t i = 0; i < prog_.combChunks.size(); ++i) {
            ProfClock::time_point t0;
            if (prof_)
                t0 = ProfClock::now();
            run(prog_.combChunks[i]);
            if (prof_) {
                ++prof_->combEvals[i];
                prof_->combNs[i] +=
                    std::chrono::duration<double, std::nano>(
                        ProfClock::now() - t0)
                        .count();
            }
        }
        if (!ectx.valuesChanged) {
            noteSettle(iters_used, work);
            return;
        }
        if (std::memcmp(before_.data(), slab_.data(),
                        prog_.stateWords * sizeof(Word)) == 0) {
            noteSettle(iters_used, work);
            return;
        }
    }
    fatal("combinational logic failed to settle (combinational loop?)");
}

void
BytecodeBackend::execClocked(size_t pi)
{
    run(prog_.clockedChunks[pi]);
}

void
BytecodeBackend::commitNba()
{
    for (const NbaEntry &entry : nba_)
        applySlab(entry.target, nbaWords_.data() + entry.off,
                  entry.width);
    nba_.clear();
    nbaWords_.clear();
}

void
BytecodeBackend::onPoke(int sig)
{
    const Bits &v = ctx().values[sig];
    resizeWords(slab_.data() + prog_.sigOff[sig],
                design().info(sig).width, v.rawWords(),
                static_cast<uint32_t>(v.numWords()) * 64);
}

bool
BytecodeBackend::signalBool(int sig)
{
    return anyWord(slab_.data() + prog_.sigOff[sig],
                   wordsFor(design().info(sig).width));
}

void
BytecodeBackend::flush()
{
    for (size_t i = 0; i < design().numSignals(); ++i)
        flushSignal(static_cast<int>(i));
}

void
BytecodeBackend::flushSignal(int sig)
{
    const SignalInfo &info = design().info(sig);
    uint32_t snw = wordsFor(info.width);
    sim::EvalContext &ectx = ctx();
    // Memories keep their (never-written) dummy scalar entry in sync
    // too, so snapshots byte-compare across backends.
    ectx.values[sig] = Bits::fromWords(
        info.width, slab_.data() + prog_.sigOff[sig], snw);
    if (info.arraySize != 0) {
        const Word *base = slab_.data() + prog_.arrOff[sig];
        for (uint32_t e = 0; e < info.arraySize; ++e)
            ectx.arrays[sig][e] = Bits::fromWords(
                info.width, base + static_cast<size_t>(e) * snw, snw);
    }
}

void
BytecodeBackend::loadSignal(int sig)
{
    const SignalInfo &info = design().info(sig);
    uint32_t snw = wordsFor(info.width);
    const sim::EvalContext &ectx = ctx();
    const Bits &v = ectx.values[sig];
    resizeWords(slab_.data() + prog_.sigOff[sig], info.width,
                v.rawWords(), static_cast<uint32_t>(v.numWords()) * 64);
    if (info.arraySize != 0) {
        Word *base = slab_.data() + prog_.arrOff[sig];
        for (uint32_t e = 0; e < info.arraySize; ++e) {
            const Bits &ev = ectx.arrays[sig][e];
            resizeWords(base + static_cast<size_t>(e) * snw,
                        info.width, ev.rawWords(),
                        static_cast<uint32_t>(ev.numWords()) * 64);
        }
    }
}

void
BytecodeBackend::load()
{
    for (size_t i = 0; i < design().numSignals(); ++i)
        loadSignal(static_cast<int>(i));
}

void
BytecodeBackend::exportNba(std::vector<sim::PendingNba> &out) const
{
    out.clear();
    out.reserve(nba_.size());
    for (const NbaEntry &entry : nba_)
        out.push_back(sim::PendingNba{
            entry.target,
            Bits::fromWords(entry.width, nbaWords_.data() + entry.off,
                            wordsFor(entry.width))});
}

void
BytecodeBackend::importNba(const std::vector<sim::PendingNba> &in)
{
    nba_.clear();
    nbaWords_.clear();
    for (const sim::PendingNba &p : in) {
        NbaEntry entry;
        entry.target = p.target;
        entry.width = p.value.width();
        entry.off = static_cast<uint32_t>(nbaWords_.size());
        uint32_t nw = wordsFor(entry.width);
        nbaWords_.resize(entry.off + nw);
        resizeWords(nbaWords_.data() + entry.off, entry.width,
                    p.value.rawWords(),
                    static_cast<uint32_t>(p.value.numWords()) * 64);
        nba_.push_back(entry);
    }
}

sim::BackendFactory
makeBytecodeBackend()
{
    return [](sim::Simulator &sim) {
        return std::unique_ptr<sim::Backend>(new BytecodeBackend(sim));
    };
}

} // namespace hwdbg::compile
