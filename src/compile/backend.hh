/**
 * @file
 * The compiled bytecode simulation backend.
 *
 * BytecodeBackend lowers the design once at construction and then
 * executes settle passes, clocked processes, and the nonblocking
 * commit queue over a dense word slab. State is reconciled with the
 * shared EvalContext only at the seam's flush/load points, so every
 * tool above the Simulator facade (snapshots, coverage, profiler, the
 * debugger) observes values identical to the interpreter's.
 */

#ifndef HWDBG_COMPILE_BACKEND_HH
#define HWDBG_COMPILE_BACKEND_HH

#include "compile/bytecode.hh"
#include "sim/backend.hh"

namespace hwdbg::compile
{

class BytecodeBackend final : public sim::Backend
{
  public:
    explicit BytecodeBackend(sim::Simulator &sim);

    const char *name() const override { return "bytecode"; }
    void settleComb() override;
    void execClocked(size_t pi) override;
    void commitNba() override;
    void onPoke(int sig) override;
    bool signalBool(int sig) override;
    void flush() override;
    void flushSignal(int sig) override;
    void load() override;
    void exportNba(std::vector<sim::PendingNba> &out) const override;
    void importNba(const std::vector<sim::PendingNba> &in) override;

    /** The lowered program; tests and reports inspect fold stats. */
    const Program &program() const { return prog_; }

  private:
    void run(const Program::Chunk &chunk);
    void doStore(const StoreDesc &sd);
    /** applyStore() over the slab: same change detection, coverage,
     *  and toggle side effects as the interpreter's. */
    void applySlab(const sim::StoreTarget &target, const Word *val,
                   uint32_t val_w);
    void loadSignal(int sig);

    Program prog_;
    std::vector<Word> slab_;
    /** Settle snapshot of the slab's state region. */
    std::vector<Word> before_;
    /** Resize buffer for store change detection (max signal words). */
    std::vector<Word> scratch_;

    /** Pending nonblocking writes: targets resolved at push time,
     *  values appended to a word arena (no Bits on the hot path). */
    struct NbaEntry
    {
        sim::StoreTarget target;
        uint32_t off = 0;
        uint32_t width = 0;
    };
    std::vector<NbaEntry> nba_;
    std::vector<Word> nbaWords_;

    bool warnedCombDisplay_ = false;
};

/** Factory handed to Simulator::setBackend / tool options. */
sim::BackendFactory makeBytecodeBackend();

} // namespace hwdbg::compile

#endif // HWDBG_COMPILE_BACKEND_HH
