/**
 * @file
 * Lowering from the elaborated design to bytecode.
 *
 * The lowering mirrors sim/eval.cc's width rules node for node: every
 * slot records the exact width the interpreter's Bits value would have,
 * parents resize on read, and width-sensitive mutations
 * (MUT_SIM_CMP_CTX_WIDTH, MUT_SIM_CASE_SEL_WIDTH) are applied here at
 * lowering time — they are structural. Value-level mutations (add/sub,
 * shift off-by-one, ternary swap, xor/or, lt/le) stay runtime checks in
 * the executor so both backends read the same global switch.
 *
 * Constant folding consults the analyze known-bits fixpoint, whose
 * facts hold for every stored value (including transients inside a
 * settle pass), so replacing a fully-known expression with its constant
 * cannot perturb the trajectory — including the settle iteration count.
 */

#include <algorithm>
#include <map>

#include "analyze/domain.hh"
#include "analyze/fixpoint.hh"
#include "common/logging.hh"
#include "common/testhooks.hh"
#include "compile/bytecode.hh"

namespace hwdbg::compile
{

using namespace hdl;
using sim::LoweredDesign;
using sim::SignalInfo;

namespace
{

class Lowerer
{
  public:
    Lowerer(const LoweredDesign &design, bool fold)
        : design_(design), fold_(fold), sigs_(design.module())
    {
        if (fold_) {
            fix_ = analyze::solveConstants(design_.module(), sigs_);
            env_ = &fix_.env;
        }
    }

    Program run();

  private:
    struct Slot
    {
        uint32_t off = 0;
        uint32_t width = 0;
    };

    uint32_t
    allocWords(uint32_t nw)
    {
        uint32_t off = slabTop_;
        slabTop_ += nw;
        return off;
    }

    Slot
    temp(uint32_t width)
    {
        return Slot{allocWords(wordsFor(width)), width};
    }

    Slot constSlot(const Bits &value);
    Slot lowerExpr(const ExprPtr &e, uint32_t cw);
    Slot resizeTo(const Slot &s, uint32_t w);
    void lowerStmt(const StmtPtr &stmt, bool clocked);
    void lowerStore(const ExprPtr &lhs, const Slot &value);
    void lowerNba(const ExprPtr &lhs, const Slot &value);
    StoreDesc simpleTarget(const ExprPtr &lhs, const Slot &value);

    Op &
    emit(Opc opc)
    {
        prog_.ops.push_back(Op{});
        Op &op = prog_.ops.back();
        op.opc = opc;
        return op;
    }

    Op &
    emitDst(Opc opc, const Slot &dst)
    {
        Op &op = emit(opc);
        op.w = dst.width;
        op.nw = static_cast<uint16_t>(wordsFor(dst.width));
        op.d = dst.off;
        return op;
    }

    uint32_t
    here() const
    {
        return static_cast<uint32_t>(prog_.ops.size());
    }

    const LoweredDesign &design_;
    bool fold_;
    analyze::SignalTable sigs_;
    analyze::ConstFixpoint fix_;
    const analyze::Env *env_ = nullptr;

    Program prog_;
    uint32_t slabTop_ = 0;
    /** (width, words) -> slot offset, so equal constants share a slot. */
    std::map<std::pair<uint32_t, std::vector<Word>>, uint32_t> consts_;
    /** Constant values to paint into slabInit at the end. */
    std::vector<std::pair<uint32_t, Bits>> constImage_;
};

Lowerer::Slot
Lowerer::constSlot(const Bits &value)
{
    std::vector<Word> words(value.rawWords(),
                            value.rawWords() + value.numWords());
    auto key = std::make_pair(value.width(), std::move(words));
    auto it = consts_.find(key);
    if (it != consts_.end())
        return Slot{it->second, value.width()};
    uint32_t off = allocWords(wordsFor(value.width()));
    consts_.emplace(std::move(key), off);
    constImage_.emplace_back(off, value);
    return Slot{off, value.width()};
}

Lowerer::Slot
Lowerer::resizeTo(const Slot &s, uint32_t w)
{
    if (s.width == w)
        return s;
    Slot dst = temp(w);
    Op &op = emitDst(Opc::Copy, dst);
    op.a = s.off;
    op.wa = s.width;
    return dst;
}

Lowerer::Slot
Lowerer::lowerExpr(const ExprPtr &e, uint32_t cw)
{
    uint32_t self = e->width;
    if (self == 0)
        panic("lowerExpr: expression at %s was not annotated",
              e->loc.str().c_str());
    uint32_t w = std::max(cw, self);

    if (e->kind == ExprKind::Number)
        return constSlot(e->as<NumberExpr>()->value.resized(w));

    // Known-bits folding: the abstract evaluator mirrors the
    // interpreter's width rules, so a fully-known fact at exactly the
    // natural width can replace the whole subtree with a constant
    // slot. The conservative width check skips the rare nodes whose
    // natural width exceeds w (wide-operand bitwise/shift chains).
    if (fold_ && w <= 64 && e->kind != ExprKind::Id) {
        auto kb = analyze::kbEval(e, cw, sigs_, *env_);
        if (kb && kb->fullyKnown() && kb->width == w) {
            ++prog_.foldedConsts;
            return constSlot(Bits(w, kb->value));
        }
    }

    switch (e->kind) {
      case ExprKind::Number:
        break; // handled above
      case ExprKind::Id: {
        int sig = e->as<IdExpr>()->resolved;
        Slot s{prog_.sigOff[sig], design_.info(sig).width};
        return resizeTo(s, w);
      }
      case ExprKind::Unary: {
        const auto *un = e->as<UnaryExpr>();
        switch (un->op) {
          case UnaryOp::Neg:
          case UnaryOp::BitNot: {
            Slot v = lowerExpr(un->arg, w);
            Slot dst = temp(v.width);
            Op &op = emitDst(un->op == UnaryOp::Neg ? Opc::Neg
                                                    : Opc::Not,
                             dst);
            op.a = v.off;
            op.wa = v.width;
            return dst;
          }
          case UnaryOp::LogNot:
          case UnaryOp::RedAnd:
          case UnaryOp::RedOr:
          case UnaryOp::RedXor: {
            Slot v = lowerExpr(un->arg, 0);
            Slot dst = temp(w);
            Opc opc = Opc::LogNot;
            if (un->op == UnaryOp::RedAnd)
                opc = Opc::RedAnd;
            else if (un->op == UnaryOp::RedOr)
                opc = Opc::RedOr;
            else if (un->op == UnaryOp::RedXor)
                opc = Opc::RedXor;
            Op &op = emitDst(opc, dst);
            op.a = v.off;
            op.wa = v.width;
            return dst;
          }
        }
        break;
      }
      case ExprKind::Binary: {
        const auto *bin = e->as<BinaryExpr>();
        switch (bin->op) {
          case BinaryOp::Add:
          case BinaryOp::Sub:
          case BinaryOp::Mul:
          case BinaryOp::Div:
          case BinaryOp::Mod: {
            Slot a = lowerExpr(bin->lhs, w);
            Slot b = lowerExpr(bin->rhs, w);
            Slot dst = temp(w);
            Opc opc = Opc::Add;
            if (bin->op == BinaryOp::Sub)
                opc = Opc::Sub;
            else if (bin->op == BinaryOp::Mul)
                opc = Opc::Mul;
            else if (bin->op == BinaryOp::Div)
                opc = Opc::Divu;
            else if (bin->op == BinaryOp::Mod)
                opc = Opc::Modu;
            Op &op = emitDst(opc, dst);
            op.a = a.off;
            op.wa = a.width;
            op.b = b.off;
            op.wb = b.width;
            return dst;
          }
          case BinaryOp::BitAnd:
          case BinaryOp::BitOr:
          case BinaryOp::BitXor: {
            Slot a = lowerExpr(bin->lhs, w);
            Slot b = lowerExpr(bin->rhs, w);
            Slot dst = temp(std::max(a.width, b.width));
            Opc opc = bin->op == BinaryOp::BitAnd ? Opc::And
                      : bin->op == BinaryOp::BitOr ? Opc::Or
                                                   : Opc::Xor;
            Op &op = emitDst(opc, dst);
            op.a = a.off;
            op.wa = a.width;
            op.b = b.off;
            op.wb = b.width;
            return dst;
          }
          case BinaryOp::Shl:
          case BinaryOp::Shr: {
            Slot a = lowerExpr(bin->lhs, w);
            Slot amt = lowerExpr(bin->rhs, 0);
            Slot dst = temp(a.width);
            Op &op = emitDst(bin->op == BinaryOp::Shl ? Opc::Shl
                                                      : Opc::Shr,
                             dst);
            op.a = a.off;
            op.wa = a.width;
            op.b = amt.off;
            op.wb = amt.width;
            return dst;
          }
          case BinaryOp::LogAnd:
          case BinaryOp::LogOr: {
            Slot a = lowerExpr(bin->lhs, 0);
            Slot b = lowerExpr(bin->rhs, 0);
            Slot dst = temp(w);
            Op &op = emitDst(bin->op == BinaryOp::LogAnd
                                 ? Opc::LogAnd
                                 : Opc::LogOr,
                             dst);
            op.a = a.off;
            op.wa = a.width;
            op.b = b.off;
            op.wb = b.width;
            return dst;
          }
          default: {
            // Comparisons: operands at the larger self-determined
            // width (width mutation applied at lowering time; it is
            // structural and set before simulator construction).
            uint32_t cmp_w =
                std::max(bin->lhs->width, bin->rhs->width);
            if (mutationOn(MUT_SIM_CMP_CTX_WIDTH))
                cmp_w = std::max(cmp_w, cw);
            Slot a = lowerExpr(bin->lhs, cmp_w);
            Slot b = lowerExpr(bin->rhs, cmp_w);
            Slot dst = temp(w);
            Opc opc;
            switch (bin->op) {
              case BinaryOp::Eq: opc = Opc::CmpEq; break;
              case BinaryOp::Ne: opc = Opc::CmpNe; break;
              case BinaryOp::Lt: opc = Opc::CmpLt; break;
              case BinaryOp::Le: opc = Opc::CmpLe; break;
              case BinaryOp::Gt: opc = Opc::CmpGt; break;
              case BinaryOp::Ge: opc = Opc::CmpGe; break;
              default:
                panic("lowerExpr: bad comparison");
            }
            Op &op = emitDst(opc, dst);
            op.a = a.off;
            op.wa = a.width;
            op.b = b.off;
            op.wb = b.width;
            return dst;
          }
        }
        break;
      }
      case ExprKind::Ternary: {
        const auto *tern = e->as<TernaryExpr>();
        Slot c = lowerExpr(tern->cond, 0);
        Slot a = lowerExpr(tern->thenExpr, w);
        Slot b = lowerExpr(tern->elseExpr, w);
        Slot dst = temp(w);
        Op &op = emitDst(Opc::Select, dst);
        op.a = a.off;
        op.wa = a.width;
        op.b = b.off;
        op.wb = b.width;
        op.c = c.off;
        op.aux2 = static_cast<int32_t>(c.width);
        return dst;
      }
      case ExprKind::Concat: {
        const auto *cat = e->as<ConcatExpr>();
        std::vector<Slot> parts;
        uint32_t total = 0;
        for (const auto &part : cat->parts) {
            parts.push_back(lowerExpr(part, 0));
            total += parts.back().width;
        }
        Slot dst = temp(total);
        emitDst(Opc::ClearTemp, dst);
        uint32_t consumed = 0;
        for (const Slot &part : parts) {
            Op &op = emitDst(Opc::WriteTemp, dst);
            op.a = part.off;
            op.wa = part.width;
            op.aux =
                static_cast<int32_t>(total - consumed - part.width);
            consumed += part.width;
        }
        return resizeTo(dst, w);
      }
      case ExprKind::Repeat: {
        const auto *rep = e->as<RepeatExpr>();
        Slot inner = lowerExpr(rep->inner, 0);
        uint32_t count = e->width / rep->inner->width;
        uint32_t total = inner.width * count;
        Slot dst = temp(total);
        emitDst(Opc::ClearTemp, dst);
        for (uint32_t k = 0; k < count; ++k) {
            Op &op = emitDst(Opc::WriteTemp, dst);
            op.a = inner.off;
            op.wa = inner.width;
            op.aux = static_cast<int32_t>(k * inner.width);
        }
        return resizeTo(dst, w);
      }
      case ExprKind::Index: {
        const auto *idx = e->as<IndexExpr>();
        const SignalInfo &sig = design_.info(idx->resolved);
        Slot index = lowerExpr(idx->index, 0);
        Slot dst = temp(w);
        if (sig.arraySize != 0) {
            Op &op = emitDst(Opc::ArrGet, dst);
            op.b = index.off;
            op.wb = index.width;
            op.aux = idx->resolved;
        } else {
            Op &op = emitDst(Opc::BitGet, dst);
            op.a = prog_.sigOff[idx->resolved];
            op.wa = sig.width;
            op.b = index.off;
            op.wb = index.width;
        }
        return dst;
      }
      case ExprKind::Range: {
        const auto *range = e->as<RangeExpr>();
        const SignalInfo &sig = design_.info(range->resolved);
        uint32_t lo = std::min(range->msbConst, range->lsbConst);
        uint32_t hi = std::max(range->msbConst, range->lsbConst);
        uint32_t sw = hi - lo + 1;
        Slot dst = temp(w);
        Op &op = emitDst(Opc::SliceGet, dst);
        op.a = prog_.sigOff[range->resolved];
        op.wa = sig.width;
        op.aux = static_cast<int32_t>(lo);
        op.aux2 = static_cast<int32_t>(std::min(sw, w));
        return dst;
      }
    }
    panic("lowerExpr: unreachable");
}

/** One store/NBA part target for a simple (non-concat) lvalue. */
StoreDesc
Lowerer::simpleTarget(const ExprPtr &lhs, const Slot &value)
{
    StoreDesc sd;
    sd.valSlot = value.off;
    sd.valW = value.width;
    switch (lhs->kind) {
      case ExprKind::Id:
        sd.kind = StoreDesc::Whole;
        sd.sig = lhs->as<IdExpr>()->resolved;
        break;
      case ExprKind::Index: {
        const auto *idx = lhs->as<IndexExpr>();
        const SignalInfo &sig = design_.info(idx->resolved);
        Slot index = lowerExpr(idx->index, 0);
        sd.sig = idx->resolved;
        sd.idxSlot = index.off;
        sd.kind = sig.arraySize != 0 ? StoreDesc::Elem : StoreDesc::Bit;
        break;
      }
      case ExprKind::Range: {
        const auto *range = lhs->as<RangeExpr>();
        sd.kind = StoreDesc::Slice;
        sd.sig = range->resolved;
        sd.msb = std::max(range->msbConst, range->lsbConst);
        sd.lsb = std::min(range->msbConst, range->lsbConst);
        break;
      }
      default:
        fatal("%s: expression is not assignable",
              lhs->loc.str().c_str());
    }
    return sd;
}

void
Lowerer::lowerStore(const ExprPtr &lhs, const Slot &value)
{
    // Mirror storeLValue: resolve every part (evaluating index
    // expressions) before the first store lands, then apply in
    // MSB-first order.
    if (lhs->kind == ExprKind::Concat) {
        const auto *cat = lhs->as<ConcatExpr>();
        uint32_t total = lhs->width;
        uint32_t consumed = 0;
        std::vector<StoreDesc> parts;
        for (const auto &part : cat->parts) {
            uint32_t pw = part->width;
            uint32_t rhs_lsb = total - consumed - pw;
            Slot pv = temp(pw);
            Op &op = emitDst(Opc::SliceGet, pv);
            op.a = value.off;
            op.wa = value.width;
            op.aux = static_cast<int32_t>(rhs_lsb);
            op.aux2 = static_cast<int32_t>(pw);
            parts.push_back(simpleTarget(part, pv));
            consumed += pw;
        }
        for (const StoreDesc &sd : parts) {
            Op &op = emit(Opc::Store);
            op.aux = static_cast<int32_t>(prog_.stores.size());
            prog_.stores.push_back(sd);
        }
        return;
    }
    StoreDesc sd = simpleTarget(lhs, value);
    Op &op = emit(Opc::Store);
    op.aux = static_cast<int32_t>(prog_.stores.size());
    prog_.stores.push_back(sd);
}

void
Lowerer::lowerNba(const ExprPtr &lhs, const Slot &value)
{
    // Mirror the interpreter: resolveLValue samples index expressions
    // at execution time, then queues one pending write per part with
    // its RHS slice. NbaPush resolves its target when it executes,
    // which is the same instant.
    struct PartPlan
    {
        const ExprPtr *part;
        uint32_t rhsMsb, rhsLsb;
    };
    std::vector<PartPlan> plan;
    if (lhs->kind == ExprKind::Concat) {
        const auto *cat = lhs->as<ConcatExpr>();
        uint32_t total = lhs->width;
        uint32_t consumed = 0;
        for (const auto &part : cat->parts) {
            uint32_t pw = part->width;
            plan.push_back(PartPlan{&part, total - consumed - 1,
                                    total - consumed - pw});
            consumed += pw;
        }
    } else {
        plan.push_back(PartPlan{&lhs, lhs->width - 1, 0});
    }
    for (const PartPlan &pp : plan) {
        const ExprPtr &part = *pp.part;
        NbaDesc nd;
        nd.valSlot = value.off;
        nd.valW = value.width;
        nd.rhsMsb = pp.rhsMsb;
        nd.rhsLsb = pp.rhsLsb;
        switch (part->kind) {
          case ExprKind::Id:
            nd.kind = StoreDesc::Whole;
            nd.sig = part->as<IdExpr>()->resolved;
            break;
          case ExprKind::Index: {
            const auto *idx = part->as<IndexExpr>();
            const SignalInfo &sig = design_.info(idx->resolved);
            Slot index = lowerExpr(idx->index, 0);
            nd.sig = idx->resolved;
            nd.idxSlot = index.off;
            nd.kind = sig.arraySize != 0 ? StoreDesc::Elem
                                         : StoreDesc::Bit;
            break;
          }
          case ExprKind::Range: {
            const auto *range = part->as<RangeExpr>();
            nd.kind = StoreDesc::Slice;
            nd.sig = range->resolved;
            nd.msb = std::max(range->msbConst, range->lsbConst);
            nd.lsb = std::min(range->msbConst, range->lsbConst);
            break;
          }
          default:
            fatal("%s: expression is not assignable",
                  part->loc.str().c_str());
        }
        Op &op = emit(Opc::NbaPush);
        op.aux = static_cast<int32_t>(prog_.nbas.size());
        prog_.nbas.push_back(nd);
    }
}

void
Lowerer::lowerStmt(const StmtPtr &stmt, bool clocked)
{
    if (!stmt)
        return;
    emit(Opc::CoverStmt).stmt = stmt.get();
    switch (stmt->kind) {
      case StmtKind::Block:
        for (const auto &sub : stmt->as<BlockStmt>()->stmts)
            lowerStmt(sub, clocked);
        break;
      case StmtKind::If: {
        const auto *branch = stmt->as<IfStmt>();
        if (fold_) {
            auto kb = analyze::kbEval(branch->cond, 0, sigs_, *env_);
            if (kb && kb->knownZero()) {
                ++prog_.deadArms;
                Op &arm = emit(Opc::CoverArm);
                arm.stmt = stmt.get();
                arm.aux = 1;
                lowerStmt(branch->elseStmt, clocked);
                break;
            }
            if (kb && kb->knownNonzero()) {
                ++prog_.deadArms;
                Op &arm = emit(Opc::CoverArm);
                arm.stmt = stmt.get();
                arm.aux = 0;
                lowerStmt(branch->thenStmt, clocked);
                break;
            }
        }
        Slot c = lowerExpr(branch->cond, 0);
        uint32_t jz_at = here();
        Op &jz = emit(Opc::Jz);
        jz.a = c.off;
        jz.wa = c.width;
        Op &arm0 = emit(Opc::CoverArm);
        arm0.stmt = stmt.get();
        arm0.aux = 0;
        lowerStmt(branch->thenStmt, clocked);
        uint32_t jmp_at = here();
        emit(Opc::Jmp);
        prog_.ops[jz_at].aux = static_cast<int32_t>(here());
        Op &arm1 = emit(Opc::CoverArm);
        arm1.stmt = stmt.get();
        arm1.aux = 1;
        lowerStmt(branch->elseStmt, clocked);
        prog_.ops[jmp_at].aux = static_cast<int32_t>(here());
        break;
      }
      case StmtKind::Case: {
        const auto *sel = stmt->as<CaseStmt>();
        Slot selector = lowerExpr(sel->selector, 0);
        /** Selector resized once per distinct comparison width. */
        std::map<uint32_t, Slot> selAt;
        auto selSlot = [&](uint32_t cmp_w) {
            auto it = selAt.find(cmp_w);
            if (it != selAt.end())
                return it->second;
            Slot s = resizeTo(selector, cmp_w);
            selAt.emplace(cmp_w, s);
            return s;
        };
        const CaseItem *dflt = nullptr;
        size_t dflt_index = 0;
        /** Jnz op index per item, patched to the arm entry. */
        std::vector<std::pair<uint32_t, size_t>> jumps;
        for (size_t ii = 0; ii < sel->items.size(); ++ii) {
            const CaseItem &item = sel->items[ii];
            if (item.labels.empty()) {
                dflt = &item;
                dflt_index = ii;
                continue;
            }
            for (const auto &label : item.labels) {
                uint32_t cmp_w =
                    std::max(sel->selector->width, label->width);
                if (mutationOn(MUT_SIM_CASE_SEL_WIDTH))
                    cmp_w = sel->selector->width;
                Slot sv = selSlot(cmp_w);
                Slot lv = resizeTo(lowerExpr(label, cmp_w), cmp_w);
                Slot flag = temp(1);
                Op &eq = emitDst(Opc::CmpEq, flag);
                eq.a = sv.off;
                eq.wa = cmp_w;
                eq.b = lv.off;
                eq.wb = cmp_w;
                uint32_t jnz_at = here();
                Op &jnz = emit(Opc::Jnz);
                jnz.a = flag.off;
                jnz.wa = 1;
                jumps.emplace_back(jnz_at, ii);
            }
        }
        uint32_t tail_at = here();
        emit(Opc::Jmp); // to default arm or no-match arm
        std::vector<uint32_t> end_jumps;
        std::vector<uint32_t> arm_entry(sel->items.size(), 0);
        for (size_t ii = 0; ii < sel->items.size(); ++ii) {
            const CaseItem &item = sel->items[ii];
            arm_entry[ii] = here();
            Op &arm = emit(Opc::CoverArm);
            arm.stmt = stmt.get();
            arm.aux = static_cast<int32_t>(ii);
            lowerStmt(item.body, clocked);
            end_jumps.push_back(here());
            emit(Opc::Jmp);
        }
        uint32_t nomatch_at = here();
        if (!dflt) {
            Op &arm = emit(Opc::CoverArm);
            arm.stmt = stmt.get();
            arm.aux = static_cast<int32_t>(sel->items.size());
        }
        uint32_t end_at = here();
        prog_.ops[tail_at].aux = static_cast<int32_t>(
            dflt ? arm_entry[dflt_index] : nomatch_at);
        for (const auto &[at, ii] : jumps)
            prog_.ops[at].aux = static_cast<int32_t>(arm_entry[ii]);
        for (uint32_t at : end_jumps)
            prog_.ops[at].aux = static_cast<int32_t>(end_at);
        break;
      }
      case StmtKind::Assign: {
        const auto *assign = stmt->as<AssignStmt>();
        uint32_t lw = assign->lhs->width;
        uint32_t cw = std::max(lw, assign->rhs->width);
        Slot value = resizeTo(lowerExpr(assign->rhs, cw), lw);
        if (clocked && assign->nonblocking)
            lowerNba(assign->lhs, value);
        else
            lowerStore(assign->lhs, value);
        break;
      }
      case StmtKind::Display: {
        const auto *disp = stmt->as<DisplayStmt>();
        if (!clocked) {
            emit(Opc::WarnDisplay);
            break;
        }
        DisplayDesc dd;
        dd.stmt = disp;
        for (const auto &arg : disp->args) {
            Slot s = lowerExpr(arg, 0);
            dd.args.emplace_back(s.off, s.width);
        }
        Op &op = emit(Opc::Display);
        op.aux = static_cast<int32_t>(prog_.displays.size());
        prog_.displays.push_back(std::move(dd));
        break;
      }
      case StmtKind::Finish:
        emit(Opc::Finish);
        break;
      case StmtKind::Null:
        break;
    }
}

Program
Lowerer::run()
{
    size_t n = design_.numSignals();
    prog_.sigOff.assign(n, 0);
    prog_.arrOff.assign(n, 0);
    for (size_t sig = 0; sig < n; ++sig)
        prog_.sigOff[sig] =
            allocWords(wordsFor(design_.info(static_cast<int>(sig))
                                    .width));
    for (size_t sig = 0; sig < n; ++sig) {
        const SignalInfo &info = design_.info(static_cast<int>(sig));
        if (info.arraySize != 0)
            prog_.arrOff[sig] =
                allocWords(wordsFor(info.width) * info.arraySize);
    }
    prog_.stateWords = slabTop_;

    for (const auto *assign : design_.assigns()) {
        Program::Chunk chunk{here(), 0};
        uint32_t lw = assign->lhs->width;
        uint32_t cw = std::max(lw, assign->rhs->width);
        Slot value = resizeTo(lowerExpr(assign->rhs, cw), lw);
        lowerStore(assign->lhs, value);
        chunk.end = here();
        prog_.assignChunks.push_back(chunk);
    }
    for (const auto *proc : design_.combProcs()) {
        Program::Chunk chunk{here(), 0};
        lowerStmt(proc->body, false);
        chunk.end = here();
        prog_.combChunks.push_back(chunk);
    }
    for (const auto *proc : design_.clockedProcs()) {
        Program::Chunk chunk{here(), 0};
        lowerStmt(proc->body, true);
        chunk.end = here();
        prog_.clockedChunks.push_back(chunk);
    }

    prog_.slabInit.assign(slabTop_, 0);
    for (const auto &[off, value] : constImage_) {
        size_t nw = wordsFor(value.width());
        for (size_t i = 0; i < nw; ++i)
            prog_.slabInit[off + i] =
                i < value.numWords() ? value.rawWords()[i] : 0;
    }
    return std::move(prog_);
}

} // namespace

Program
lowerProgram(const LoweredDesign &design, bool fold)
{
    return Lowerer(design, fold).run();
}

} // namespace hwdbg::compile
