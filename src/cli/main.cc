/**
 * @file
 * hwdbg command-line driver.
 *
 * Exposes the library's debugging tools over Verilog files:
 *
 *   hwdbg parse      <file> [--top M] [--define NAME]...
 *   hwdbg lint       <file> [--top M] [--format text|json]
 *                    [--rule ID]...
 *   hwdbg analyze    <file|--bug ID> [--pass LIST]
 *                    [--format text|json] [--out FILE]
 *   hwdbg fsm        <file> [--top M]
 *   hwdbg deps       <file> --var V [--cycles K] [--top M]
 *   hwdbg signalcat  <file> [--depth N] [--arm SIG] [--stop SIG]
 *                    [--pre-trigger] [--top M]
 *   hwdbg losscheck  <file> --source S --valid V --sink K [--top M]
 *   hwdbg resources  <file> [--platform HARP|KC705] [--top M]
 *   hwdbg timing     <file> [--target MHZ] [--top M]
 *   hwdbg testbed    list | emit <bug-id> [--fixed]
 *   hwdbg profile    <file> [--cycles N] [--seed S] [--rank time|evals]
 *   hwdbg cover      <file|--bug ID> [--out F] | cover merge <f>...
 *   hwdbg trace      <file|--bug ID> [--signals G] [--trigger E]
 *                    [--budget N] [--vcd F] [--out F]
 *   hwdbg obscheck   <file>...
 *   hwdbg debug      <file|--bug ID> [--machine] [--script FILE] ...
 *   hwdbg serve      [--port N | --connect N] [--script FILE]
 *   hwdbg version    (also --version)
 *   hwdbg help       [command]
 *
 * The command table below (kCommands) is the single source of truth for
 * the top-level usage() listing and for `hwdbg help <command>`, so the
 * help text can no longer drift from the dispatch table.
 *
 * Instrumentation commands print the instrumented Verilog on stdout so
 * it can be fed to a simulator or synthesis flow.
 *
 * Global options, valid with every command: --trace FILE records a
 * Chrome trace of the run, --metrics FILE snapshots the metrics
 * registry, --quiet silences warn()/inform().
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/fsm_detect.hh"
#include "analyze/analyze.hh"
#include "bugbase/designs.hh"
#include "bugbase/testbed.hh"
#include "common/logging.hh"
#include "compile/backend.hh"
#include "core/dep_monitor.hh"
#include "core/fsm_monitor.hh"
#include "core/losscheck.hh"
#include "core/signalcat.hh"
#include "bugbase/workloads.hh"
#include "cover/report.hh"
#include "cover/run.hh"
#include "cover/snapshot.hh"
#include "debug/engine.hh"
#include "debug/protocol.hh"
#include "debug/repl.hh"
#include "elab/elaborate.hh"
#include "hdl/parser.hh"
#include "hdl/preproc.hh"
#include "fuzz/runner.hh"
#include "hdl/printer.hh"
#include "lint/lint.hh"
#include "obs/json.hh"
#include "obs/jsoncheck.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "serve/monitor.hh"
#include "serve/server.hh"
#include "serve/stats.hh"
#include "sim/profiler.hh"
#include "synth/platform.hh"
#include "trace/json.hh"
#include "trace/run.hh"
#include "trace/vcd.hh"
#include "synth/resources.hh"
#include "synth/timing.hh"

using namespace hwdbg;

namespace
{

struct Args
{
    std::string command;
    std::string file;
    std::map<std::string, std::string> options;
    std::vector<std::string> positional;
    std::map<std::string, std::string> defines;
    std::vector<std::string> rules;
    std::vector<std::string> oracles;
    bool flag(const std::string &name) const
    {
        return options.count(name) != 0;
    }
    std::string
    opt(const std::string &name, const std::string &def = "") const
    {
        auto it = options.find(name);
        return it == options.end() ? def : it->second;
    }
};

/**
 * One row per CLI command: the usage()/`hwdbg help` text and the
 * handler live side by side so they cannot drift apart.
 */
struct Command
{
    const char *name;
    /** One-line synopsis shown in the top-level listing. */
    const char *synopsis;
    /** One-line description shown in the top-level listing. */
    const char *summary;
    /** Full option/semantics text for `hwdbg help <command>`. */
    const char *detail;
    int (*fn)(const Args &);
};

const std::vector<Command> &commands();

const Command *
findCommand(const std::string &name)
{
    for (const auto &cmd : commands())
        if (name == cmd.name)
            return &cmd;
    return nullptr;
}

[[noreturn]] void
usage()
{
    std::fprintf(stderr, "usage: hwdbg <command> [options]\n\n"
                         "commands:\n");
    for (const auto &cmd : commands())
        std::fprintf(stderr, "  %-34s %s\n", cmd.synopsis, cmd.summary);
    std::fprintf(stderr,
        "\n"
        "'hwdbg help <command>' shows every option of one command.\n"
        "\n"
        "common options (valid with every command):\n"
        "  --top M          top module (default: the only/first one)\n"
        "  --define NAME    preprocessor define (repeatable)\n"
        "  --trace FILE     write a Chrome/Perfetto trace of this run\n"
        "  --metrics FILE   write a metrics snapshot (.json or text)\n"
        "  --quiet          silence warn()/inform() messages\n");
    std::exit(2);
}

Args
parseArgs(int argc, char **argv)
{
    Args args;
    if (argc < 2)
        usage();
    args.command = argv[1];
    if (args.command == "--version")
        args.command = "version";
    for (int i = 2; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg.rfind("--", 0) == 0) {
            std::string name = arg.substr(2);
            bool takes_value =
                name == "top" || name == "var" || name == "cycles" ||
                name == "depth" || name == "arm" || name == "stop" ||
                name == "source" || name == "valid" || name == "sink" ||
                name == "platform" || name == "target" ||
                name == "define" || name == "format" ||
                name == "rule" || name == "seeds" ||
                name == "start" || name == "jobs" ||
                name == "oracle" || name == "replay" ||
                name == "trace" || name == "metrics" ||
                name == "seed" || name == "rank" ||
                name == "limit" || name == "signals" ||
                name == "bug" || name == "script" ||
                name == "stimulus" || name == "dep" ||
                name == "backend" ||
                name == "trigger" || name == "budget" ||
                name == "pre" || name == "vcd" ||
                name == "loss" || name == "checkpoint-interval" ||
                name == "checkpoint-capacity" || name == "out" ||
                name == "cover-plateau" || name == "pass" ||
                name == "race-chance" || name == "port" ||
                name == "connect" || name == "slow-us" ||
                name == "reqlog" || name == "interval" ||
                name == "iterations";
            std::string value;
            if (takes_value) {
                if (i + 1 >= argc)
                    fatal("option --%s needs a value", name.c_str());
                value = argv[++i];
            }
            if (name == "define")
                args.defines[value] = "";
            else if (name == "rule")
                args.rules.push_back(value);
            else if (name == "oracle")
                args.oracles.push_back(value);
            else
                args.options[name] = value;
        } else if (args.file.empty() && args.command != "testbed" &&
                   args.command != "fuzz" &&
                   args.command != "obscheck" &&
                   args.command != "help") {
            args.file = arg;
        } else {
            args.positional.push_back(arg);
        }
    }
    return args;
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        fatal("cannot open '%s'", path.c_str());
    std::ostringstream text;
    text << in.rdbuf();
    return text.str();
}

elab::ElabResult
load(const Args &args)
{
    if (args.file.empty())
        fatal("no input file (see 'hwdbg' for usage)");
    hdl::Design design = hdl::parseWithDefines(readFile(args.file),
                                               args.defines, args.file);
    if (design.modules.empty())
        fatal("'%s' contains no modules", args.file.c_str());
    std::string top = args.opt("top", design.modules.back()->name);
    return elab::elaborate(design, top);
}

int
cmdParse(const Args &args)
{
    hdl::Design design = hdl::parseWithDefines(readFile(args.file),
                                               args.defines, args.file);
    std::fputs(hdl::printDesign(design).c_str(), stdout);
    return 0;
}

int
cmdLint(const Args &args)
{
    auto elaborated = load(args);
    lint::LintOptions opts;
    opts.rules.insert(args.rules.begin(), args.rules.end());
    auto diags = lint::runLint(*elaborated.mod, opts);
    std::string format = args.opt("format", "text");
    if (format == "json")
        std::fputs(lint::renderJson(diags).c_str(), stdout);
    else if (format == "text")
        std::fputs(lint::renderText(diags).c_str(), stdout);
    else
        fatal("unknown lint output format '%s'", format.c_str());
    if (format == "text")
        std::fprintf(stderr, "lint: %zu diagnostic%s\n", diags.size(),
                     diags.size() == 1 ? "" : "s");
    return lint::hasErrors(diags) ? 1 : 0;
}

int
cmdAnalyze(const Args &args)
{
    hdl::ModulePtr mod;
    std::string bugId = args.opt("bug");
    if (!bugId.empty()) {
        const auto &bug = bugs::bugById(bugId);
        mod = bugs::buildDesign(bug, !args.flag("fixed")).mod;
    } else {
        mod = load(args).mod;
    }

    analyze::AnalyzeOptions opts;
    std::string passList = args.opt("pass");
    if (!passList.empty()) {
        std::stringstream split(passList);
        std::string id;
        while (std::getline(split, id, ',')) {
            if (id.empty())
                continue;
            if (!analyze::passById(id)) {
                std::string known;
                for (const auto &pass : analyze::analyzePasses())
                    known += (known.empty() ? "" : ", ") + pass.id;
                fatal("unknown analyze pass '%s' (%s)", id.c_str(),
                      known.c_str());
            }
            opts.passes.insert(id);
        }
    }
    // Registry order, so the report's pass list is deterministic no
    // matter how --pass was spelled.
    std::vector<std::string> ran;
    for (const auto &pass : analyze::analyzePasses())
        if (opts.passes.empty() || opts.passes.count(pass.id))
            ran.push_back(pass.id);

    auto diags = analyze::runAnalyze(*mod, opts);
    std::string out = args.opt("out");
    if (!out.empty()) {
        std::ofstream file(out);
        if (!file)
            fatal("cannot write '%s'", out.c_str());
        file << analyze::renderAnalyzeJson(ran, diags);
    }
    std::string format = args.opt("format", "text");
    if (format == "json") {
        std::fputs(analyze::renderAnalyzeJson(ran, diags).c_str(),
                   stdout);
    } else if (format == "text") {
        std::fputs(lint::renderText(diags).c_str(), stdout);
        std::fprintf(stderr, "analyze: %zu diagnostic%s\n",
                     diags.size(), diags.size() == 1 ? "" : "s");
    } else {
        fatal("unknown format '%s' (expected text or json)",
              format.c_str());
    }
    return lint::hasErrors(diags) ? 1 : 0;
}

int
cmdFsm(const Args &args)
{
    auto elaborated = load(args);
    auto fsms = analysis::detectFsms(*elaborated.mod);
    if (fsms.empty()) {
        std::printf("no state machines detected\n");
        return 0;
    }
    for (const auto &fsm : fsms) {
        std::printf("FSM %s (clock %s, %zu states)\n",
                    fsm.stateVar.c_str(), fsm.clock.c_str(),
                    fsm.states.size());
        for (const auto &trans : fsm.transitions) {
            std::string from =
                trans.fromState
                    ? core::stateName(fsm.stateVar,
                                      trans.fromState->toU64(),
                                      elaborated.constants)
                    : std::string("*");
            std::printf("  %s -> %s when %s\n", from.c_str(),
                        core::stateName(fsm.stateVar,
                                        trans.toState.toU64(),
                                        elaborated.constants).c_str(),
                        hdl::printExpr(trans.cond).c_str());
        }
    }
    return 0;
}

int
cmdDeps(const Args &args)
{
    auto elaborated = load(args);
    core::DepMonitorOptions opts;
    opts.variable = args.opt("var");
    if (opts.variable.empty())
        fatal("deps requires --var");
    opts.cycles = std::atoi(args.opt("cycles", "4").c_str());
    auto result = core::applyDepMonitor(*elaborated.mod, opts);
    std::printf("dependency chain of %s (within %d cycles):\n",
                opts.variable.c_str(), opts.cycles);
    for (const auto &[reg, dist] : result.chain)
        std::printf("  %-24s %d cycle%s away\n", reg.c_str(), dist,
                    dist == 1 ? "" : "s");
    std::printf("\n// instrumented design (%d generated lines):\n",
                result.generatedLines);
    std::fputs(hdl::printModule(*result.module).c_str(), stdout);
    return 0;
}

int
cmdSignalcat(const Args &args)
{
    auto elaborated = load(args);
    core::SignalCatOptions opts;
    opts.bufferDepth = static_cast<uint32_t>(
        std::atoi(args.opt("depth", "8192").c_str()));
    opts.armSignal = args.opt("arm");
    opts.stopSignal = args.opt("stop");
    opts.preTrigger = args.flag("pre-trigger");
    auto result = core::applySignalCat(*elaborated.mod, opts);
    std::fprintf(stderr,
                 "signalcat: %zu statements, %u-bit entries, %d "
                 "generated lines\n",
                 result.plan.statements.size(), result.plan.entryWidth,
                 result.generatedLines);
    std::fputs(hdl::printModule(*result.module).c_str(), stdout);
    return 0;
}

int
cmdLosscheck(const Args &args)
{
    auto elaborated = load(args);
    core::LossCheckOptions opts;
    opts.source = args.opt("source");
    opts.sourceValid = args.opt("valid");
    opts.sink = args.opt("sink");
    if (opts.source.empty() || opts.sourceValid.empty() ||
        opts.sink.empty())
        fatal("losscheck requires --source, --valid, and --sink");
    auto result = core::applyLossCheck(*elaborated.mod, opts);
    std::fprintf(stderr, "losscheck: path {");
    for (const auto &name : result.onPath)
        std::fprintf(stderr, " %s", name.c_str());
    std::fprintf(stderr, " }, %zu instrumented registers, %d "
                 "generated lines\n",
                 result.instrumented.size(), result.generatedLines);
    std::fputs(hdl::printModule(*result.module).c_str(), stdout);
    return 0;
}

int
cmdResources(const Args &args)
{
    auto elaborated = load(args);
    synth::ResourceUsage usage =
        synth::estimateResources(*elaborated.mod);
    const synth::Platform &platform =
        synth::platformByName(args.opt("platform", "KC705"));
    synth::NormalizedUsage pct = synth::normalize(usage, platform);
    std::printf("block RAM : %.0f bits (%.4f%% of %s)\n",
                usage.bramBits, pct.bramPct, platform.name.c_str());
    std::printf("registers : %llu (%.4f%%)\n",
                (unsigned long long)usage.registers, pct.registersPct);
    std::printf("logic     : %llu (%.4f%%)\n",
                (unsigned long long)usage.logic, pct.logicPct);
    return 0;
}

int
cmdTiming(const Args &args)
{
    auto elaborated = load(args);
    synth::TimingReport report =
        synth::estimateTiming(*elaborated.mod);
    std::printf("critical path : %.3f ns (through %s)\n",
                report.criticalPathNs, report.criticalSignal.c_str());
    std::printf("Fmax          : %.1f MHz\n", report.fmaxMhz);
    std::string target = args.opt("target");
    if (!target.empty()) {
        double mhz = std::atof(target.c_str());
        std::printf("target %.0f MHz : %s\n", mhz,
                    synth::meetsTarget(report, mhz) ? "met" : "MISSED");
        return synth::meetsTarget(report, mhz) ? 0 : 1;
    }
    return 0;
}

int
cmdTestbed(const Args &args)
{
    if (args.positional.empty())
        fatal("testbed requires 'list' or 'emit <id>'");
    if (args.positional[0] == "list") {
        for (const auto &bug : bugs::testbedBugs())
            std::printf("%-4s %-27s %-22s %-8s %s\n", bug.id.c_str(),
                        bug.subclass.c_str(), bug.application.c_str(),
                        bug.platform.c_str(),
                        bug.rootCauseNote.c_str());
        return 0;
    }
    if (args.positional[0] == "emit") {
        if (args.positional.size() < 2)
            fatal("testbed emit requires a bug id");
        const auto &bug = bugs::bugById(args.positional[1]);
        std::map<std::string, std::string> defines;
        if (!args.flag("fixed"))
            defines[bug.bugDefine] = "";
        std::fputs(hdl::preprocess(bugs::designSource(bug.designName),
                                   defines, bug.designName + ".v")
                       .c_str(),
                   stdout);
        return 0;
    }
    fatal("unknown testbed subcommand '%s'",
          args.positional[0].c_str());
}

uint64_t
parseU64(const std::string &text, const char *what)
{
    char *end = nullptr;
    uint64_t value = std::strtoull(text.c_str(), &end, 10);
    if (end == text.c_str() || *end != '\0')
        fatal("invalid %s '%s'", what, text.c_str());
    return value;
}

/** Parse --backend for the commands that run a simulator; an empty
 *  factory means the default interpreter. */
sim::BackendFactory
backendFromArgs(const Args &args)
{
    std::string name = args.opt("backend", "interp");
    if (name == "interp")
        return {};
    if (name == "bytecode")
        return compile::makeBytecodeBackend();
    fatal("unknown backend '%s' (expected interp or bytecode)",
          name.c_str());
    return {};
}

int
cmdFuzz(const Args &args)
{
    fuzz::FuzzConfig config;
    config.seeds = parseU64(args.opt("seeds", "100"), "--seeds");
    config.start = parseU64(args.opt("start", "0"), "--start");
    config.jobs = static_cast<uint32_t>(
        parseU64(args.opt("jobs", "1"), "--jobs"));
    config.cycles = static_cast<uint32_t>(
        parseU64(args.opt("cycles", "24"), "--cycles"));
    config.raceChance = static_cast<uint32_t>(
        parseU64(args.opt("race-chance", "0"), "--race-chance"));
    if (config.raceChance > 100)
        fatal("--race-chance is a percentage (0-100)");
    if (!args.oracles.empty()) {
        config.mask = 0;
        for (const auto &name : args.oracles) {
            if (name == "all") {
                config.mask |= (1u << fuzz::kOracleCount) - 1;
                continue;
            }
            fuzz::Oracle oracle;
            if (!fuzz::oracleFromName(name, &oracle))
                fatal("unknown oracle '%s' (roundtrip, differential, "
                      "lint, instrument, order, xbackend, xtrace, or "
                      "all)",
                      name.c_str());
            config.mask |= fuzz::oracleBit(oracle);
        }
    }
    config.backend = backendFromArgs(args);
    std::string format = args.opt("format", "text");
    if (format != "text" && format != "json")
        fatal("unknown format '%s' (expected text or json)",
              format.c_str());
    config.json = format == "json";
    config.selfCheck = args.flag("self-check");
    config.cover = args.flag("cover");
    config.coverPlateau = static_cast<uint32_t>(parseU64(
        args.opt("cover-plateau", "32"), "--cover-plateau"));
    if (config.cover && config.selfCheck)
        fatal("--cover applies to campaigns, not --self-check");
    if (args.options.count("replay")) {
        config.replay = true;
        config.replaySeed = parseU64(args.opt("replay"), "--replay");
    }
    return fuzz::fuzzMain(config);
}

int
cmdProfile(const Args &args)
{
    auto elaborated = load(args);
    sim::ProfileOptions opts;
    opts.cycles = static_cast<uint32_t>(
        parseU64(args.opt("cycles", "2000"), "--cycles"));
    opts.seed = parseU64(args.opt("seed", "1"), "--seed");
    std::string rank = args.opt("rank", "time");
    if (rank == "time")
        opts.rank = sim::ProfileOptions::Rank::Time;
    else if (rank == "evals")
        opts.rank = sim::ProfileOptions::Rank::Evals;
    else
        fatal("unknown rank '%s' (expected time or evals)",
              rank.c_str());
    opts.limit = static_cast<uint32_t>(
        parseU64(args.opt("limit", "20"), "--limit"));
    opts.signalLimit = static_cast<uint32_t>(
        parseU64(args.opt("signals", "10"), "--signals"));
    opts.backend = backendFromArgs(args);
    sim::ProfileReport report =
        sim::profileDesign(elaborated.mod, opts);
    std::string format = args.opt("format", "text");
    if (format == "json")
        std::fputs(sim::renderProfileJson(report, opts).c_str(),
                   stdout);
    else if (format == "text")
        std::fputs(sim::renderProfileText(report, opts).c_str(),
                   stdout);
    else
        fatal("unknown format '%s' (expected text or json)",
              format.c_str());
    return 0;
}

int
cmdDebug(const Args &args)
{
    debug::InstrumentConfig icfg;
    hdl::ModulePtr base;
    std::map<std::string, Bits> constants;
    std::string bugId = args.opt("bug");

    if (!bugId.empty()) {
        const auto &bug = bugs::bugById(bugId);
        auto elaborated = bugs::buildDesign(bug, !args.flag("fixed"));
        base = elaborated.mod;
        constants = elaborated.constants;
        // Default to the bug's Fig. 2 monitor setup so the paper-tool
        // events nearest the root cause are on by default.
        icfg.fsm = bug.monitors.fsm;
        icfg.depVariable = bug.monitors.depVariable;
        icfg.depCycles = bug.monitors.depCycles;
        icfg.lossCheck = bug.lossCheck;
    } else {
        auto elaborated = load(args);
        base = elaborated.mod;
        constants = elaborated.constants;
    }

    if (args.flag("fsm"))
        icfg.fsm = true;
    if (args.options.count("dep")) {
        std::string spec = args.opt("dep");
        auto colon = spec.rfind(':');
        if (colon != std::string::npos) {
            icfg.depCycles = static_cast<int>(
                parseU64(spec.substr(colon + 1), "--dep cycle count"));
            spec = spec.substr(0, colon);
        }
        icfg.depVariable = spec;
    }
    if (args.options.count("loss")) {
        std::string spec = args.opt("loss");
        auto c1 = spec.find(':');
        auto c2 = c1 == std::string::npos ? c1 : spec.find(':', c1 + 1);
        if (c1 == std::string::npos || c2 == std::string::npos)
            fatal("--loss expects SOURCE:VALID:SINK");
        core::LossCheckOptions lc;
        lc.source = spec.substr(0, c1);
        lc.sourceValid = spec.substr(c1 + 1, c2 - c1 - 1);
        lc.sink = spec.substr(c2 + 1);
        icfg.lossCheck = lc;
    }
    icfg.constants = constants;
    auto instr = debug::instrumentForDebug(*base, icfg);

    sim::StimulusTape tape;
    if (args.options.count("stimulus")) {
        tape = debug::loadStimulusFile(args.opt("stimulus"));
    } else if (!bugId.empty()) {
        // Record the bug's trigger workload against the instrumented
        // design; the engine replays it deterministically.
        const auto &bug = bugs::bugById(bugId);
        sim::Simulator recorder(instr.module);
        recorder.recordStimulus(&tape);
        bugs::runWorkload(bug, recorder);
        recorder.recordStimulus(nullptr);
    } else {
        fatal("debug requires --bug ID or --stimulus FILE "
              "(the replayable input source)");
    }

    debug::EngineOptions eopts;
    eopts.checkpointInterval =
        parseU64(args.opt("checkpoint-interval", "128"),
                 "--checkpoint-interval");
    eopts.checkpointCapacity = static_cast<size_t>(
        parseU64(args.opt("checkpoint-capacity", "64"),
                 "--checkpoint-capacity"));
    eopts.constants = constants;
    eopts.backend = backendFromArgs(args);
    debug::Engine engine(instr.module, std::move(tape), eopts);

    debug::SessionOptions sopts;
    sopts.machine = args.flag("machine");
    std::string script = args.opt("script");
    if (!script.empty()) {
        std::ifstream in(script);
        if (!in)
            fatal("cannot open script '%s'", script.c_str());
        sopts.echo = !sopts.machine;
        return debug::runSession(engine, in, std::cout, sopts) ? 1 : 0;
    }
    debug::runSession(engine, std::cin, std::cout, sopts);
    return 0;
}

int
cmdServe(const Args &args)
{
    std::string script = args.opt("script");

    if (args.options.count("connect")) {
        uint16_t port = static_cast<uint16_t>(
            parseU64(args.opt("connect"), "--connect"));
        if (args.flag("monitor")) {
            serve::TopOptions topts;
            topts.intervalMs =
                parseU64(args.opt("interval", "1000"), "--interval");
            topts.iterations =
                parseU64(args.opt("iterations", "0"), "--iterations");
            topts.clear = !args.flag("no-clear");
            return serve::runTop(port, topts, std::cout);
        }
        if (script.empty())
            return serve::runClient(port, std::cin, std::cout) ? 1 : 0;
        std::ifstream in(script);
        if (!in)
            fatal("cannot open script '%s'", script.c_str());
        return serve::runClient(port, in, std::cout) ? 1 : 0;
    }

    serve::ServerOptions sopts;
    sopts.checkpointInterval =
        parseU64(args.opt("checkpoint-interval", "128"),
                 "--checkpoint-interval");
    sopts.checkpointCapacity = static_cast<size_t>(
        parseU64(args.opt("checkpoint-capacity", "64"),
                 "--checkpoint-capacity"));
    sopts.telemetry = !args.flag("no-telemetry");
    sopts.slowThresholdUs =
        parseU64(args.opt("slow-us", "100000"), "--slow-us");
    sopts.reqlogPath = args.opt("reqlog");
    serve::Server server(sopts);

    if (args.options.count("port")) {
        uint16_t port = static_cast<uint16_t>(
            parseU64(args.opt("port"), "--port"));
        uint16_t bound = server.listenTcp(port);
        // Announce on stderr so per-channel stdout stays clean.
        std::fprintf(stderr, "hwdbg serve: listening on 127.0.0.1:%u\n",
                     unsigned(bound));
        return server.acceptLoop() ? 1 : 0;
    }
    if (!script.empty()) {
        std::ifstream in(script);
        if (!in)
            fatal("cannot open script '%s'", script.c_str());
        return server.runChannel(in, std::cout) ? 1 : 0;
    }
    return server.runChannel(std::cin, std::cout) ? 1 : 0;
}

cover::Snapshot
parseCoverageFile(const std::string &path)
{
    cover::Snapshot snap;
    std::string error;
    if (!cover::parseSnapshot(readFile(path), &snap, &error))
        fatal("%s: not a coverage file: %s", path.c_str(),
              error.c_str());
    return snap;
}

int
cmdCoverMerge(const Args &args)
{
    if (args.positional.empty())
        fatal("cover merge requires at least one coverage file");
    cover::Snapshot merged = parseCoverageFile(args.positional[0]);
    for (size_t i = 1; i < args.positional.size(); ++i) {
        cover::Snapshot next = parseCoverageFile(args.positional[i]);
        std::string error = cover::mergeInto(merged, next);
        if (!error.empty())
            fatal("cannot merge '%s': %s",
                  args.positional[i].c_str(), error.c_str());
    }
    std::string json = cover::toJson(merged);
    std::string out = args.opt("out");
    if (out.empty()) {
        std::fputs(json.c_str(), stdout);
        return 0;
    }
    std::ofstream file(out);
    if (!file)
        fatal("cannot write '%s'", out.c_str());
    file << json;
    std::fprintf(stderr, "cover: merged %zu file%s into %s\n",
                 args.positional.size(),
                 args.positional.size() == 1 ? "" : "s", out.c_str());
    return 0;
}

int
cmdCover(const Args &args)
{
    if (args.file == "merge")
        return cmdCoverMerge(args);

    cover::Snapshot snap;
    sim::BackendFactory backend = backendFromArgs(args);
    std::string bugId = args.opt("bug");
    if (!bugId.empty()) {
        const auto &bug = bugs::bugById(bugId);
        snap = cover::coverBugWorkload(bug, !args.flag("fixed"),
                                       backend);
    } else if (args.options.count("stimulus")) {
        auto elaborated = load(args);
        std::string path = args.opt("stimulus");
        sim::StimulusTape tape = debug::loadStimulusFile(path);
        // Label by basename so reports stay machine-independent.
        auto slash = path.find_last_of('/');
        std::string base =
            slash == std::string::npos ? path : path.substr(slash + 1);
        snap = cover::coverWithTape(elaborated.mod,
                                    "stimulus:" + base, tape, backend);
    } else {
        auto elaborated = load(args);
        uint64_t seed = parseU64(args.opt("seed", "1"), "--seed");
        auto cycles = static_cast<uint32_t>(
            parseU64(args.opt("cycles", "2000"), "--cycles"));
        snap = cover::coverRandom(elaborated.mod,
                                  "seed:" + std::to_string(seed),
                                  seed, cycles, backend);
    }

    std::string out = args.opt("out");
    if (!out.empty()) {
        std::ofstream file(out);
        if (!file)
            fatal("cannot write '%s'", out.c_str());
        file << cover::toJson(snap);
    }
    std::string format = args.opt("format", "text");
    if (format == "json")
        std::fputs(cover::toJson(snap).c_str(), stdout);
    else if (format == "text")
        std::fputs(cover::renderCoverText(snap).c_str(), stdout);
    else
        fatal("unknown format '%s' (expected text or json)",
              format.c_str());
    return 0;
}

std::string
renderTraceText(const trace::TraceDump &dump)
{
    std::ostringstream out;
    out << "trace of " << dump.top << " (" << dump.workload << ", "
        << dump.backend << ")\n";
    out << "  signals:  " << dump.signals.size() << " traced, "
        << dump.rowBytes << " bytes/row\n";
    out << "  window:   " << dump.rows.size() << "/" << dump.depth
        << " rows";
    if (dump.armed)
        out << " (" << dump.preDepth << " pre + " << dump.postDepth
            << " post)";
    out << "\n";
    if (dump.armed) {
        if (dump.fired)
            out << "  trigger:  fired at cycle " << dump.triggerCycle
                << " (eval " << dump.triggerSeq << ", "
                << dump.triggerFires << " fire"
                << (dump.triggerFires == 1 ? "" : "s") << " total)\n";
        else
            out << "  trigger:  armed, never fired\n";
    }
    out << "  capture:  " << dump.samples << " change rows, "
        << dump.drops << " dropped\n";
    if (!dump.rows.empty())
        out << "  span:     cycle " << dump.rows.front().cycle << " .. "
            << dump.rows.back().cycle << "\n";
    return out.str();
}

int
cmdTrace(const Args &args)
{
    trace::TraceConfig cfg;
    std::string signals = args.opt("signals");
    for (size_t pos = 0; pos < signals.size();) {
        size_t comma = signals.find(',', pos);
        if (comma == std::string::npos)
            comma = signals.size();
        if (comma > pos)
            cfg.signals.push_back(signals.substr(pos, comma - pos));
        pos = comma + 1;
    }
    cfg.trigger = args.opt("trigger");
    cfg.budgetBytes = parseU64(args.opt("budget", "4096"), "--budget");
    cfg.prePct = static_cast<uint32_t>(
        parseU64(args.opt("pre", "50"), "--pre"));
    if (cfg.prePct > 100)
        fatal("--pre is a percentage (0-100)");

    trace::TraceDump dump;
    sim::BackendFactory backend = backendFromArgs(args);
    std::string bugId = args.opt("bug");
    if (!bugId.empty()) {
        const auto &bug = bugs::bugById(bugId);
        dump = trace::traceBugWorkload(bug, !args.flag("fixed"), cfg,
                                       backend);
    } else if (args.options.count("stimulus")) {
        auto elaborated = load(args);
        std::string path = args.opt("stimulus");
        sim::StimulusTape tape = debug::loadStimulusFile(path);
        auto slash = path.find_last_of('/');
        std::string base =
            slash == std::string::npos ? path : path.substr(slash + 1);
        dump = trace::traceWithTape(elaborated.mod, "stimulus:" + base,
                                    tape, cfg, backend);
    } else {
        auto elaborated = load(args);
        uint64_t seed = parseU64(args.opt("seed", "1"), "--seed");
        auto cycles = static_cast<uint32_t>(
            parseU64(args.opt("cycles", "2000"), "--cycles"));
        dump = trace::traceRandom(elaborated.mod,
                                  "seed:" + std::to_string(seed), seed,
                                  cycles, cfg, backend);
    }

    std::string out = args.opt("out");
    if (!out.empty()) {
        std::ofstream file(out);
        if (!file)
            fatal("cannot write '%s'", out.c_str());
        file << trace::toJson(dump);
    }
    std::string vcd = args.opt("vcd");
    if (!vcd.empty()) {
        std::ofstream file(vcd);
        if (!file)
            fatal("cannot write '%s'", vcd.c_str());
        file << trace::renderVcd(dump);
    }
    std::string format = args.opt("format", "text");
    if (format == "json")
        std::fputs(trace::toJson(dump).c_str(), stdout);
    else if (format == "text")
        std::fputs(renderTraceText(dump).c_str(), stdout);
    else
        fatal("unknown format '%s' (expected text or json)",
              format.c_str());
    return 0;
}

int
cmdVersion(const Args &)
{
    const obs::BuildInfo &build = obs::buildInfo();
    std::printf("hwdbg %s (%s, %s)\n", build.version.c_str(),
                build.git.c_str(), build.buildType.c_str());
    return 0;
}

int
cmdHelp(const Args &args)
{
    const std::vector<std::string> &names = args.positional;
    if (names.empty())
        usage();
    const Command *cmd = findCommand(names[0]);
    if (!cmd)
        fatal("unknown command '%s' (run 'hwdbg' for the list)",
              names[0].c_str());
    std::printf("usage: hwdbg %s\n\n%s\n\n%s", cmd->synopsis,
                cmd->summary, cmd->detail);
    return 0;
}

int
cmdObscheck(const Args &args)
{
    std::vector<std::string> files = args.positional;
    if (!args.file.empty())
        files.insert(files.begin(), args.file);
    if (files.empty())
        fatal("obscheck requires at least one file");
    int rc = 0;
    for (const auto &path : files) {
        std::string text = readFile(path);
        // Sniff the snapshot kind from the content so one command
        // covers --trace, --metrics, and debug --machine output.
        // Debug transcripts are JSON-lines: detect them by the hello
        // object on the first line before whole-file parsing.
        std::string firstLine = text.substr(0, text.find('\n'));
        std::string error;
        std::string verdict;
        const char *kind = "metrics";
        obs::JsonPtr hello = obs::parseJson(firstLine, &error);
        std::string proto;
        if (hello && hello->isObject() && hello->get("proto") &&
            hello->get("proto")->isString())
            proto = hello->get("proto")->text;
        if (proto == "hwdbg-debug" || proto == "hwdbg-serve") {
            if (proto == "hwdbg-debug") {
                kind = "debug transcript";
                verdict = debug::checkDebugTranscript(text);
            } else {
                kind = "serve transcript";
                verdict = serve::checkServeTranscript(text);
            }
            if (verdict.empty()) {
                std::printf("%s: ok (%s)\n", path.c_str(), kind);
            } else {
                std::printf("%s: INVALID: %s\n", path.c_str(),
                            verdict.c_str());
                rc = 1;
            }
            continue;
        }
        obs::JsonPtr root = obs::parseJson(text, &error);
        if (!root) {
            verdict = error;
        } else if (root->isObject() && root->get("traceEvents")) {
            kind = "trace";
            verdict = obs::checkTraceJson(text);
        } else if (root->isObject() && root->get("format") &&
                   root->get("format")->isString() &&
                   root->get("format")->text == "hwdbg-cover") {
            kind = "coverage";
            verdict = cover::checkCoverageJson(text);
        } else if (root->isObject() && root->get("format") &&
                   root->get("format")->isString() &&
                   root->get("format")->text == "hwdbg-analyze") {
            kind = "analyze report";
            verdict = analyze::checkAnalyzeJson(text);
        } else if (root->isObject() && root->get("format") &&
                   root->get("format")->isString() &&
                   root->get("format")->text == "hwdbg-trace") {
            kind = "signal trace";
            verdict = trace::checkTraceDumpJson(text);
        } else if (root->isObject() && root->get("format") &&
                   root->get("format")->isString() &&
                   root->get("format")->text == "hwdbg-serve-stats") {
            kind = "serve stats";
            verdict = serve::checkServeStatsJson(text);
        } else {
            verdict = obs::checkMetricsJson(text);
        }
        if (verdict.empty()) {
            std::printf("%s: ok (%s)\n", path.c_str(), kind);
        } else {
            std::printf("%s: INVALID: %s\n", path.c_str(),
                        verdict.c_str());
            rc = 1;
        }
    }
    return rc;
}

const std::vector<Command> &
commands()
{
    static const std::vector<Command> table = {
        {"parse", "parse <file>", "check and pretty-print a design",
         "options:\n"
         "  --top M          top module (default: the only/first one)\n"
         "  --define NAME    preprocessor define (repeatable)\n",
         cmdParse},
        {"lint", "lint <file> [--format F] [--rule ID]...",
         "static bug-pattern check (exit 1 when errors)",
         "options:\n"
         "  --format text|json   diagnostic output format\n"
         "  --rule ID            only run the named rule (repeatable)\n",
         cmdLint},
        {"analyze",
         "analyze <file|--bug ID> [--pass LIST] [--format F]",
         "dataflow static analysis (exit 1 when errors)",
         "Computes whole-design dataflow facts (known-bits constant\n"
         "fixpoint, per-process must-assign CFG solutions, the signal\n"
         "dependency graph) and reports what they prove:\n"
         "  const   dead/constant guards, stuck outputs and bits,\n"
         "          dead signals\n"
         "  xinit   reads before any reachable assignment\n"
         "  race    scheduler-order-dependent blocking writes,\n"
         "          mixed and multi-process drivers\n"
         "  cdc     unsynchronized clock-domain crossings\n"
         "  loop    combinational loops (shared with lint)\n"
         "options:\n"
         "  --bug ID             analyze a testbed bug's design\n"
         "                       (--fixed for the fixed variant)\n"
         "  --pass LIST          comma-separated pass ids (default:\n"
         "                       all of const,xinit,race,cdc,loop)\n"
         "  --format text|json   output format (json is the versioned\n"
         "                       hwdbg-analyze report obscheck accepts)\n"
         "  --out FILE           also write the JSON report to FILE\n",
         cmdAnalyze},
        {"fsm", "fsm <file>", "detect state machines",
         "Prints each detected FSM with its clock, states, and guarded\n"
         "transitions (symbolic state names where parameters allow).\n",
         cmdFsm},
        {"deps", "deps <file> --var V [--cycles K]",
         "dependency chain of a variable",
         "options:\n"
         "  --var V       variable whose provenance is wanted\n"
         "  --cycles K    cycle horizon (default 4)\n"
         "Prints the chain, then the instrumented design on stdout.\n",
         cmdDeps},
        {"signalcat",
         "signalcat <file> [--depth N] [--arm S] [--stop S]",
         "convert $display to a recording IP",
         "options:\n"
         "  --depth N        recorder buffer depth (default 8192)\n"
         "  --arm SIG        start-event signal\n"
         "  --stop SIG       stop-event signal\n"
         "  --pre-trigger    ring buffer holding the last N entries\n",
         cmdSignalcat},
        {"losscheck", "losscheck <file> --source S --valid V --sink K",
         "instrument for data-loss localization",
         "options:\n"
         "  --source S    register/input carrying the tracked data\n"
         "  --valid V     valid signal qualifying the source\n"
         "  --sink K      register the data should reach\n",
         cmdLosscheck},
        {"resources", "resources <file> [--platform P]",
         "estimate FPGA resources",
         "options:\n"
         "  --platform HARP|KC705    normalization target (KC705)\n",
         cmdResources},
        {"timing", "timing <file> [--target MHZ]", "estimate Fmax",
         "options:\n"
         "  --target MHZ    exit 1 when the estimate misses it\n",
         cmdTiming},
        {"testbed", "testbed list | emit <id> [--fixed]",
         "the 20-bug reproduction testbed",
         "subcommands:\n"
         "  list         one line per bug with subclass and root cause\n"
         "  emit <id>    print the bug's design (--fixed for the fix)\n",
         cmdTestbed},
        {"fuzz", "fuzz [--seeds N] [--oracle NAME]...",
         "randomized differential testing (exit 1 on failure)",
         "options:\n"
         "  --seeds N / --start S    seed count and first seed\n"
         "  --jobs J                 worker threads\n"
         "  --cycles C               simulated cycles per seed\n"
         "  --oracle NAME            roundtrip, differential, lint,\n"
         "                           instrument, order, xbackend,\n"
         "                           xtrace, or all (repeatable; order,\n"
         "                           xbackend, and xtrace are opt-in:\n"
         "                           order re-runs each seed with\n"
         "                           reversed clocked-process order and\n"
         "                           cross-checks the analyze race\n"
         "                           pass, xbackend runs each seed on\n"
         "                           the interpreter and the compiled\n"
         "                           bytecode backend and diffs\n"
         "                           outputs, logs, and final state,\n"
         "                           xtrace attaches a trace recorder\n"
         "                           to both backends and diffs the\n"
         "                           rendered JSON and VCD dumps)\n"
         "  --backend B              interp or bytecode: execution\n"
         "                           backend for the campaign's own\n"
         "                           simulators (default interp)\n"
         "  --race-chance P          percent chance of the generator's\n"
         "                           scheduler-race template (default 0)\n"
         "  --replay SEED            re-run one seed verbosely\n"
         "  --self-check             corrupt a known design first\n"
         "  --cover                  track structural coverage keys\n"
         "                           per seed and report novelty\n"
         "  --cover-plateau K        declare a plateau after K seeds\n"
         "                           without new coverage (default 32)\n"
         "  --format text|json       report format\n",
         cmdFuzz},
        {"profile", "profile <file> [--cycles N] [--rank R]",
         "rank hot processes and signals under random stimulus",
         "options:\n"
         "  --cycles N           simulated cycles (default 2000)\n"
         "  --seed S             stimulus seed\n"
         "  --rank time|evals    ordering for the process table\n"
         "  --limit N            processes shown (default 20)\n"
         "  --signals N          signals shown (default 10)\n"
         "  --backend B          interp or bytecode (default interp);\n"
         "                       eval/toggle ranks are backend-\n"
         "                       independent, times are not\n"
         "  --format text|json   report format\n",
         cmdProfile},
        {"cover", "cover <file|--bug ID> | cover merge <f>...",
         "statement/branch/toggle/FSM coverage",
         "stimulus source (exactly one):\n"
         "  --bug ID             run the testbed bug's trigger workload\n"
         "                       (--fixed for the fixed design)\n"
         "  --stimulus FILE      replay a stimulus vector file\n"
         "  <file> alone         seeded random inputs (--cycles N,\n"
         "                       --seed S; defaults 2000 / 1)\n"
         "output:\n"
         "  --format text|json   report format (default text)\n"
         "  --out FILE           also write the coverage JSON to FILE\n"
         "  --backend B          interp or bytecode (default interp);\n"
         "                       coverage snapshots are identical\n"
         "merging:\n"
         "  cover merge <a.json> <b.json>... [--out FILE]\n"
         "                       union runs of the same design; the\n"
         "                       merge is associative and idempotent\n"
         "FSM state/arc coverage uses the detected state machines.\n",
         cmdCover},
        {"trace",
         "trace <file|--bug ID> [--signals G] [--trigger E] ...",
         "trigger-armed budgeted signal recording (ILA-style)",
         "stimulus source (exactly one):\n"
         "  --bug ID             run the testbed bug's trigger workload\n"
         "                       (--fixed for the fixed design)\n"
         "  --stimulus FILE      replay a stimulus vector file\n"
         "  <file> alone         seeded random inputs (--cycles N,\n"
         "                       --seed S; defaults 2000 / 1)\n"
         "recording:\n"
         "  --signals G1,G2      signal globs over the elaborated\n"
         "                       design ('*'/'?'; memories expand to\n"
         "                       name[i] words; default: everything)\n"
         "  --trigger EXPR       arm on a Verilog condition; fires on\n"
         "                       its rising edge, or on any change\n"
         "                       with a 'change:' prefix. Without a\n"
         "                       trigger the ring free-runs and keeps\n"
         "                       the last rows\n"
         "  --budget N           capture budget in bytes (default\n"
         "                       4096); ring depth = budget / row size\n"
         "  --pre P              percent of the ring kept as\n"
         "                       pre-trigger history (default 50)\n"
         "output:\n"
         "  --format text|json   report format (default text; json is\n"
         "                       the versioned hwdbg-trace dump\n"
         "                       obscheck accepts)\n"
         "  --out FILE           write the hwdbg-trace JSON to FILE\n"
         "  --vcd FILE           write the captured window as VCD\n"
         "  --backend B          interp or bytecode (default interp);\n"
         "                       dumps are byte-identical\n",
         cmdTrace},
        {"obscheck", "obscheck <file>...",
         "validate trace/metrics/coverage/analyze/debug files",
         "Sniffs each file's kind (Chrome trace, metrics snapshot,\n"
         "hwdbg-cover coverage file, hwdbg-analyze report, hwdbg-trace\n"
         "signal trace, hwdbg-serve-stats document, hwdbg-debug\n"
         "machine transcript, or hwdbg-serve server transcript) and\n"
         "checks it against the schema; exit 1 on the first violation\n"
         "per file.\n",
         cmdObscheck},
        {"debug", "debug <file|--bug ID> [--machine] [--script F]",
         "interactive time-travel debugger",
         "stimulus source (exactly one):\n"
         "  --bug ID             record the testbed bug's trigger\n"
         "                       workload (--fixed for the fixed design)\n"
         "  --stimulus FILE      replay a stimulus vector file: one\n"
         "                       line per eval step of signal=value\n"
         "                       tokens ('-' = empty step, '#' comment)\n"
         "monitors (default: the bug's own configuration):\n"
         "  --fsm                FSM Monitor events (fsm:<var>)\n"
         "  --dep VAR[:K]        Dependency Monitor events (dep:<var>)\n"
         "  --loss SRC:VALID:SINK   LossCheck events (loss:<reg>)\n"
         "session:\n"
         "  --machine            JSON-lines protocol on stdout\n"
         "  --script FILE        run commands from FILE, then exit\n"
         "                       (exit 1 when any command failed)\n"
         "  --backend B          interp or bytecode (default interp);\n"
         "                       sessions are transcript-identical\n"
         "  --checkpoint-interval N   steps between snapshots (128)\n"
         "  --checkpoint-capacity N   ring size (64)\n"
         "Inside the session, 'help' lists the debugger commands.\n",
         cmdDebug},
        {"serve", "serve [--port N | --connect N] [--script F]",
         "multi-session debug/analysis server (JSON-lines)",
         "Hosts many simultaneous sessions (debug, cover, trace,\n"
         "analyze) over the JSON-lines protocol, multiplexed by\n"
         "session id. Sessions attach through a shared design cache\n"
         "(parse + elaborate + instrument + record once per\n"
         "design/variant/backend) and dedupe checkpoint snapshots\n"
         "content-addressed across sessions.\n"
         "transports:\n"
         "  (default)            one channel on stdin/stdout\n"
         "  --script FILE        drive the stdio channel from FILE\n"
         "                       (exit 1 when any command failed)\n"
         "  --port N             TCP listener on 127.0.0.1:N (0 picks\n"
         "                       a free port, printed on stderr); one\n"
         "                       concurrent channel per connection\n"
         "  --connect N          client mode: drive a running server\n"
         "                       at 127.0.0.1:N from --script/stdin\n"
         "server commands (one per line; 'help' lists them):\n"
         "  open <kind> bug=ID|file=PATH [fixed] [backend=B]\n"
         "       [stimulus=FILE] [out=FILE] [vcd=FILE] [signals=G]\n"
         "       [trigger=E] [budget=N] [passes=A,B] [top=M]\n"
         "  close <sid> | sessions | help | quit | shutdown\n"
         "  stats [out=FILE]     hwdbg-serve-stats v1 document: global\n"
         "                       request/error/slow counters, cache\n"
         "                       hit/miss/build-time, snapshot dedup,\n"
         "                       per-command latency p50/p95/p99, one\n"
         "                       row per session (obscheck validates)\n"
         "  health               liveness probe (status, sessions,\n"
         "                       requests, errors, uptime)\n"
         "  slow                 ring of requests at/over --slow-us\n"
         "session routing: JSON {\"session\":N,...} or a '@N' prefix\n"
         "sends a debugger command to session N (e.g. '@2 step 5');\n"
         "in client mode '@_' routes to the session this client most\n"
         "recently opened, so one script fits concurrent clients.\n"
         "telemetry: every request is logged (id, session, command,\n"
         "outcome, latency); with --trace each session gets a named\n"
         "Perfetto track with attach/build/command/snapshot spans.\n"
         "options:\n"
         "  --checkpoint-interval N   per-session snapshot cadence (128)\n"
         "  --checkpoint-capacity N   per-session ring size (64)\n"
         "  --slow-us N          slow-request threshold in µs (100000)\n"
         "  --reqlog FILE        spill every request event as one JSON\n"
         "                       line to FILE\n"
         "  --no-telemetry       disable the per-request log entirely\n"
         "client monitor (with --connect):\n"
         "  --monitor            poll `stats` and render a refreshing\n"
         "                       top-style table\n"
         "  --interval MS        poll period (default 1000)\n"
         "  --iterations N       frames to render (default 0 = run\n"
         "                       until the server exits)\n"
         "  --no-clear           do not clear the screen per frame\n",
         cmdServe},
        {"version", "version", "print build provenance",
         "Prints the hwdbg version, git hash, and build type — the\n"
         "same provenance stamped into every trace/metrics/coverage\n"
         "file. '--version' is an alias.\n",
         cmdVersion},
        {"help", "help [command]", "show command documentation",
         "Without arguments, prints the top-level usage; with a\n"
         "command name, prints that command's full option list.\n",
         cmdHelp},
    };
    return table;
}

int
dispatch(const Args &args)
{
    const Command *cmd = findCommand(args.command);
    if (!cmd)
        usage();
    return cmd->fn(args);
}

} // namespace

int
main(int argc, char **argv)
{
    std::string trace_path;
    std::string metrics_path;
    int rc;
    try {
        Args args = parseArgs(argc, argv);
        if (args.flag("quiet"))
            setQuiet(true);
        trace_path = args.opt("trace");
        metrics_path = args.opt("metrics");
        if (!trace_path.empty())
            obs::startTrace();
        if (!metrics_path.empty())
            obs::enableMetrics(true);
        rc = dispatch(args);
    } catch (const HdlError &err) {
        std::fprintf(stderr, "hwdbg: %s\n", err.what());
        rc = 1;
    }
    // Snapshots are written even when the command failed: the trace of
    // a failing run is exactly the one worth looking at.
    if (!trace_path.empty() && !obs::writeTrace(trace_path))
        rc = rc ? rc : 1;
    if (!metrics_path.empty() && !obs::writeMetrics(metrics_path))
        rc = rc ? rc : 1;
    return rc;
}
