/**
 * @file
 * Netlist-structure rules: multiple drivers, combinational loops,
 * undriven/unused signals, and FIFO requests that ignore the
 * primitive's backpressure flags.
 */

#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/exprutil.hh"
#include "common/logging.hh"
#include "common/testhooks.hh"
#include "elab/ip_models.hh"
#include "lint/context.hh"
#include "lint/rules.hh"

namespace hwdbg::lint
{

using namespace hdl;

void
checkMultiDriven(LintContext &ctx)
{
    for (const auto &name : ctx.signalNames()) {
        const auto &sites = ctx.driversOf(name);
        if (sites.size() < 2)
            continue;
        // Memories are commonly written by one port per process pair;
        // still a conflict in our single-always designs, so report.
        std::ostringstream where;
        for (size_t i = 0; i < sites.size(); ++i)
            where << (i ? ", " : "") << sites[i].loc.str();
        ctx.report(ctx.declLoc(name),
                   csprintf("'%s' is driven from %zu places (%s)",
                            name.c_str(), sites.size(),
                            where.str().c_str()),
                   {name});
    }
}

void
checkCombLoop(LintContext &ctx)
{
    // Emitted through the shared builder so the analyze framework's
    // loop findings are byte-identical and dedupe against these.
    for (auto &diag : combCycleDiagnostics(
             ctx.graph().combCycles(), [&](const std::string &name) {
                 return ctx.declLoc(name);
             }))
        ctx.report(std::move(diag));
}

void
checkUndriven(LintContext &ctx)
{
    for (const auto &name : ctx.signalNames()) {
        if (ctx.dirOf(name) == PortDir::Input)
            continue;
        if (!ctx.driversOf(name).empty())
            continue;
        if (ctx.isRead(name)) {
            ctx.report(ctx.declLoc(name),
                       csprintf("'%s' is read but never driven",
                                name.c_str()),
                       {name});
        } else if (ctx.dirOf(name) == PortDir::Output) {
            ctx.report(ctx.declLoc(name),
                       csprintf("output port '%s' is never driven",
                                name.c_str()),
                       {name});
        }
    }
}

void
checkUnusedSignal(LintContext &ctx)
{
    for (const auto &name : ctx.signalNames()) {
        if (ctx.dirOf(name) != PortDir::None)
            continue;
        if (ctx.isRead(name))
            continue;
        if (mutationOn(MUT_LINT_UNUSED_PARITY) && name.size() % 2 == 0)
            continue;
        if (!ctx.driversOf(name).empty()) {
            ctx.report(ctx.declLoc(name),
                       csprintf("'%s' is driven but its value is "
                                "never read",
                                name.c_str()),
                       {name});
        } else {
            ctx.report(ctx.declLoc(name),
                       csprintf("'%s' is declared but never driven "
                                "or read",
                                name.c_str()),
                       {name});
        }
    }
}

void
checkUnusedInput(LintContext &ctx)
{
    for (const auto &name : ctx.signalNames()) {
        if (ctx.dirOf(name) != PortDir::Input)
            continue;
        if (ctx.isRead(name) || ctx.isClockName(name))
            continue;
        ctx.report(ctx.declLoc(name),
                   csprintf("input port '%s' is never read",
                            name.c_str()),
                   {name});
    }
}

namespace
{

/**
 * Comb fan-in of @p expr: signals reachable by expanding wire
 * definitions transitively, stopping at registers, ports, and
 * primitive outputs. Includes the directly referenced signals.
 */
std::set<std::string>
combFanin(const ExprPtr &expr,
          const std::map<std::string, ExprPtr> &defs)
{
    std::set<std::string> fanin;
    std::vector<std::string> work;
    for (const auto &name : analysis::collectSignals(expr)) {
        if (fanin.insert(name).second)
            work.push_back(name);
    }
    while (!work.empty()) {
        std::string cur = work.back();
        work.pop_back();
        auto it = defs.find(cur);
        if (it == defs.end())
            continue;
        for (const auto &name : analysis::collectSignals(it->second)) {
            if (fanin.insert(name).second)
                work.push_back(name);
        }
    }
    return fanin;
}

struct ReqFlagPair
{
    const char *req;  ///< request input port on the primitive
    const char *flag; ///< backpressure status output to consult
};

} // namespace

void
checkFifoNoBackpressure(LintContext &ctx)
{
    static const std::map<std::string, std::vector<ReqFlagPair>>
        pairsByModel = {
            {"scfifo", {{"wrreq", "full"}, {"rdreq", "empty"}}},
            {"dcfifo", {{"wrreq", "wrfull"}, {"rdreq", "rdempty"}}},
        };

    const auto defs = analysis::wireDefinitions(ctx.mod());
    for (const auto &item : ctx.mod().items) {
        if (item->kind != ItemKind::Instance)
            continue;
        const auto *inst = item->as<InstanceItem>();
        auto model_it = pairsByModel.find(inst->moduleName);
        if (model_it == pairsByModel.end())
            continue;

        std::map<std::string, ExprPtr> actuals;
        for (const auto &conn : inst->conns)
            if (conn.actual)
                actuals[conn.formal] = conn.actual;

        for (const auto &pair : model_it->second) {
            auto req_it = actuals.find(pair.req);
            if (req_it == actuals.end())
                continue; // request tied off: nothing to check
            auto flag_it = actuals.find(pair.flag);
            if (flag_it == actuals.end()) {
                ctx.report(inst->loc,
                           csprintf("%s '%s' drives '%s' but leaves "
                                    "the '%s' flag unconnected",
                                    inst->moduleName.c_str(),
                                    inst->instName.c_str(), pair.req,
                                    pair.flag),
                           {});
                continue;
            }
            // The request must combinationally depend on the flag.
            const auto fanin = combFanin(req_it->second, defs);
            bool consulted = false;
            for (const auto &flag_sig :
                 analysis::lvalueTargets(flag_it->second))
                if (fanin.count(flag_sig))
                    consulted = true;
            if (consulted)
                continue;
            std::vector<std::string> sigs;
            for (const auto &name :
                 analysis::collectSignals(req_it->second))
                sigs.push_back(name);
            ctx.report(inst->loc,
                       csprintf("'%s' of %s '%s' does not consult the "
                                "'%s' flag; requests can be lost",
                                pair.req, inst->moduleName.c_str(),
                                inst->instName.c_str(), pair.flag),
                       sigs);
        }
    }
}

} // namespace hwdbg::lint
