/**
 * @file
 * Lint diagnostics: the result record every rule emits, plus the text
 * and JSON renderers the CLI exposes.
 *
 * Each diagnostic carries the rule id, the Table 1 bug subclass the rule
 * is keyed to (the paper's bug-study taxonomy), a severity, the source
 * location of the offending construct, and the signal names involved so
 * downstream tooling (or a developer grepping a report) can jump from a
 * finding straight to a SignalCat/LossCheck deployment on those signals.
 */

#ifndef HWDBG_LINT_DIAGNOSTIC_HH
#define HWDBG_LINT_DIAGNOSTIC_HH

#include <functional>
#include <string>
#include <vector>

#include "hdl/ast.hh"

namespace hwdbg::lint
{

enum class Severity { Info, Warning, Error };

const char *severityName(Severity severity);

struct Diagnostic
{
    /** Rule id, e.g. "sticky-flag". */
    std::string rule;
    Severity severity = Severity::Warning;
    /** Table 1 subclass the rule targets, e.g. "Failure-to-Update". */
    std::string subclass;
    hdl::SourceLoc loc;
    std::string message;
    /** Signals involved, most relevant first. */
    std::vector<std::string> signals;
};

/** Stable presentation order: location, then rule id. */
void sortDiagnostics(std::vector<Diagnostic> &diags);

/**
 * Compiler-style text rendering, one line per diagnostic:
 *   file:line:col: severity: message [rule] {signals}
 */
std::string renderText(const std::vector<Diagnostic> &diags);

/** JSON array rendering (one object per diagnostic). */
std::string renderJson(const std::vector<Diagnostic> &diags);

/**
 * Shared combinational-loop diagnostics over DepGraph::combCycles()
 * output. Both `hwdbg lint` and `hwdbg analyze` emit loop findings
 * through this one builder, so the two reports produce byte-identical
 * diagnostics that dedupeDiagnostics() can collapse. @p loc_of maps a
 * signal name to its declaration location.
 */
std::vector<Diagnostic> combCycleDiagnostics(
    const std::vector<std::vector<std::string>> &cycles,
    const std::function<hdl::SourceLoc(const std::string &)> &loc_of);

/**
 * Drop diagnostics identical in every field to an earlier one,
 * preserving order. Used when combining lint and analyze reports so a
 * finding both tools emit appears once.
 */
std::vector<Diagnostic> dedupeDiagnostics(std::vector<Diagnostic> diags);

} // namespace hwdbg::lint

#endif // HWDBG_LINT_DIAGNOSTIC_HH
