#include "lint/context.hh"

#include <algorithm>
#include <cctype>
#include <functional>
#include <optional>

#include "analysis/exprutil.hh"
#include "common/logging.hh"
#include "elab/ip_models.hh"
#include "sim/design.hh"

namespace hwdbg::lint
{

using namespace hdl;

namespace
{

std::string
lowered(const std::string &name)
{
    std::string out = name;
    std::transform(out.begin(), out.end(), out.begin(),
                   [](unsigned char c) { return std::tolower(c); });
    return out;
}

bool
nameContains(const std::string &name, const char *needle)
{
    return lowered(name).find(needle) != std::string::npos;
}

/** Constant value of @p expr, or nullopt for non-constant trees. */
std::optional<uint64_t>
tryConstU64(const ExprPtr &expr)
{
    if (!expr)
        return std::nullopt;
    try {
        return sim::constU64(expr);
    } catch (const HdlError &) {
        return std::nullopt;
    }
}

/** Signals whose values an lvalue reads (dynamic indices, bounds). */
void
collectLvalueReads(const ExprPtr &lhs, std::set<std::string> &reads)
{
    if (!lhs)
        return;
    switch (lhs->kind) {
      case ExprKind::Index:
        for (const auto &name :
             analysis::collectSignals(lhs->as<IndexExpr>()->index))
            reads.insert(name);
        break;
      case ExprKind::Range:
        for (const auto &part : {lhs->as<RangeExpr>()->msb,
                                 lhs->as<RangeExpr>()->lsb})
            for (const auto &name : analysis::collectSignals(part))
                reads.insert(name);
        break;
      case ExprKind::Concat:
        for (const auto &part : lhs->as<ConcatExpr>()->parts)
            collectLvalueReads(part, reads);
        break;
      default:
        break;
    }
}

void
collectStmtReads(const StmtPtr &stmt, std::set<std::string> &reads)
{
    if (!stmt)
        return;
    switch (stmt->kind) {
      case StmtKind::Block:
        for (const auto &sub : stmt->as<BlockStmt>()->stmts)
            collectStmtReads(sub, reads);
        break;
      case StmtKind::If: {
        const auto *branch = stmt->as<IfStmt>();
        for (const auto &name : analysis::collectSignals(branch->cond))
            reads.insert(name);
        collectStmtReads(branch->thenStmt, reads);
        collectStmtReads(branch->elseStmt, reads);
        break;
      }
      case StmtKind::Case: {
        const auto *sel = stmt->as<CaseStmt>();
        for (const auto &name :
             analysis::collectSignals(sel->selector))
            reads.insert(name);
        for (const auto &item : sel->items) {
            for (const auto &label : item.labels)
                for (const auto &name :
                     analysis::collectSignals(label))
                    reads.insert(name);
            collectStmtReads(item.body, reads);
        }
        break;
      }
      case StmtKind::Assign: {
        const auto *assign = stmt->as<AssignStmt>();
        for (const auto &name : analysis::collectSignals(assign->rhs))
            reads.insert(name);
        collectLvalueReads(assign->lhs, reads);
        break;
      }
      case StmtKind::Display:
        for (const auto &arg : stmt->as<DisplayStmt>()->args)
            for (const auto &name : analysis::collectSignals(arg))
                reads.insert(name);
        break;
      default:
        break;
    }
}

} // namespace

LintContext::LintContext(const Module &mod) : mod_(&mod)
{
    scanDecls();
    scanReadsAndDrivers();
    graph_ = std::make_unique<analysis::DepGraph>(mod);
    assigns_ = analysis::collectAssigns(mod);
    fsms_ = analysis::detectFsms(mod);
    scanResetPolarity();
}

void
LintContext::scanResetPolarity()
{
    // A reset is active-high when some guard asserts it as a bare
    // positive conjunct (the `if (rst)` branch); otherwise every
    // reset branch must test it inverted, i.e. active-low.
    for (const auto &ga : assigns_) {
        for (const auto &conj : conjuncts(ga.guard)) {
            if (conj->kind == ExprKind::Id &&
                resets_.count(conj->as<IdExpr>()->name))
                activeHighResets_.insert(conj->as<IdExpr>()->name);
        }
    }
}

void
LintContext::scanDecls()
{
    for (const auto &item : mod_->items) {
        if (item->kind != ItemKind::Net)
            continue;
        const auto *net = item->as<NetItem>();
        NetFacts facts;
        facts.dir = net->dir;
        facts.kind = net->net;
        facts.memory = net->array.has_value();
        facts.loc = net->loc;
        if (net->range) {
            auto msb = tryConstU64(net->range->msb);
            auto lsb = tryConstU64(net->range->lsb);
            if (msb && lsb && *msb >= *lsb)
                facts.width = static_cast<uint32_t>(*msb - *lsb + 1);
        }
        if (!nets_.count(net->name))
            order_.push_back(net->name);
        nets_[net->name] = facts;
        if (net->dir == PortDir::Input &&
            (nameContains(net->name, "rst") ||
             nameContains(net->name, "reset")))
            resets_.insert(net->name);
        if (nameContains(net->name, "clk") ||
            nameContains(net->name, "clock"))
            clocks_.insert(net->name);
    }
}

void
LintContext::scanReadsAndDrivers()
{
    auto add_driver = [&](const ExprPtr &lhs, const Item *item) {
        for (const auto &target : analysis::lvalueTargets(lhs)) {
            auto &sites = drivers_[target];
            if (!sites.empty() && sites.back().item == item)
                continue; // one site per (signal, item)
            sites.push_back(DriverSite{item, item->loc});
        }
    };

    for (const auto &item : mod_->items) {
        switch (item->kind) {
          case ItemKind::ContAssign: {
            const auto *cont = item->as<ContAssignItem>();
            add_driver(cont->lhs, item.get());
            for (const auto &name :
                 analysis::collectSignals(cont->rhs))
                reads_.insert(name);
            collectLvalueReads(cont->lhs, reads_);
            break;
          }
          case ItemKind::Always: {
            const auto *proc = item->as<AlwaysItem>();
            for (const auto &sens : proc->sens) {
                reads_.insert(sens.signal);
                clocks_.insert(sens.signal);
            }
            collectStmtReads(proc->body, reads_);
            // Drivers: every assignment target in this process.
            std::function<void(const StmtPtr &)> scan =
                [&](const StmtPtr &stmt) {
                    if (!stmt)
                        return;
                    switch (stmt->kind) {
                      case StmtKind::Block:
                        for (const auto &sub :
                             stmt->as<BlockStmt>()->stmts)
                            scan(sub);
                        break;
                      case StmtKind::If:
                        scan(stmt->as<IfStmt>()->thenStmt);
                        scan(stmt->as<IfStmt>()->elseStmt);
                        break;
                      case StmtKind::Case:
                        for (const auto &ci :
                             stmt->as<CaseStmt>()->items)
                            scan(ci.body);
                        break;
                      case StmtKind::Assign:
                        add_driver(stmt->as<AssignStmt>()->lhs,
                                   item.get());
                        break;
                      default:
                        break;
                    }
                };
            scan(proc->body);
            break;
          }
          case ItemKind::Instance: {
            const auto *inst = item->as<InstanceItem>();
            const elab::IpModel *model =
                elab::lookupIpModel(inst->moduleName);
            for (const auto &conn : inst->conns) {
                if (!conn.actual)
                    continue;
                bool is_output =
                    model && model->outputs.count(conn.formal);
                if (is_output) {
                    add_driver(conn.actual, item.get());
                    collectLvalueReads(conn.actual, reads_);
                } else {
                    for (const auto &name :
                         analysis::collectSignals(conn.actual))
                        reads_.insert(name);
                }
            }
            break;
          }
          default:
            break;
        }
    }
}

uint32_t
LintContext::widthOf(const std::string &name) const
{
    auto it = nets_.find(name);
    return it == nets_.end() ? 0 : it->second.width;
}

bool
LintContext::isMemory(const std::string &name) const
{
    auto it = nets_.find(name);
    return it != nets_.end() && it->second.memory;
}

bool
LintContext::isDeclared(const std::string &name) const
{
    return nets_.count(name) != 0;
}

PortDir
LintContext::dirOf(const std::string &name) const
{
    auto it = nets_.find(name);
    return it == nets_.end() ? PortDir::None : it->second.dir;
}

bool
LintContext::isReg(const std::string &name) const
{
    auto it = nets_.find(name);
    return it != nets_.end() && it->second.kind == NetKind::Reg;
}

const SourceLoc &
LintContext::declLoc(const std::string &name) const
{
    static const SourceLoc none;
    auto it = nets_.find(name);
    return it == nets_.end() ? none : it->second.loc;
}

bool
LintContext::isRead(const std::string &name) const
{
    return reads_.count(name) != 0;
}

const std::vector<DriverSite> &
LintContext::driversOf(const std::string &name) const
{
    static const std::vector<DriverSite> none;
    auto it = drivers_.find(name);
    return it == drivers_.end() ? none : it->second;
}

bool
LintContext::isResetName(const std::string &name) const
{
    return resets_.count(name) != 0;
}

bool
LintContext::isClockName(const std::string &name) const
{
    return clocks_.count(name) != 0;
}

bool
LintContext::mentionsReset(const ExprPtr &expr) const
{
    bool found = false;
    forEachIdent(expr, [&](const std::string &name) {
        if (resets_.count(name))
            found = true;
    });
    return found;
}

bool
LintContext::isResetBranchGuard(const ExprPtr &guard) const
{
    for (const auto &conj : conjuncts(guard)) {
        if (conj->kind == ExprKind::Id) {
            const auto &name = conj->as<IdExpr>()->name;
            if (resets_.count(name) && activeHighResets_.count(name))
                return true;
        } else if (conj->kind == ExprKind::Unary) {
            const auto *inv = conj->as<UnaryExpr>();
            if ((inv->op == UnaryOp::LogNot ||
                 inv->op == UnaryOp::BitNot) &&
                inv->arg->kind == ExprKind::Id) {
                const auto &name = inv->arg->as<IdExpr>()->name;
                if (resets_.count(name) &&
                    !activeHighResets_.count(name))
                    return true;
            }
        }
    }
    return false;
}

bool
LintContext::mentions(const ExprPtr &expr, const std::string &name)
{
    bool found = false;
    forEachIdent(expr, [&](const std::string &id) {
        if (id == name)
            found = true;
    });
    return found;
}

std::vector<ExprPtr>
LintContext::conjuncts(const ExprPtr &expr)
{
    std::vector<ExprPtr> out;
    std::vector<ExprPtr> work{expr};
    while (!work.empty()) {
        ExprPtr cur = work.back();
        work.pop_back();
        if (cur && cur->kind == ExprKind::Binary &&
            cur->as<BinaryExpr>()->op == BinaryOp::LogAnd) {
            work.push_back(cur->as<BinaryExpr>()->lhs);
            work.push_back(cur->as<BinaryExpr>()->rhs);
        } else if (cur) {
            out.push_back(cur);
        }
    }
    return out;
}

uint32_t
LintContext::explicitWidth(const ExprPtr &expr) const
{
    if (!expr)
        return 0;
    switch (expr->kind) {
      case ExprKind::Number: {
        const auto *num = expr->as<NumberExpr>();
        return num->sized ? num->value.width() : 0;
      }
      case ExprKind::Id: {
        const auto &name = expr->as<IdExpr>()->name;
        return isMemory(name) ? 0 : widthOf(name);
      }
      case ExprKind::Index: {
        const auto *idx = expr->as<IndexExpr>();
        return isMemory(idx->base) ? widthOf(idx->base) : 1;
      }
      case ExprKind::Range: {
        const auto *range = expr->as<RangeExpr>();
        auto msb = tryConstU64(range->msb);
        auto lsb = tryConstU64(range->lsb);
        if (msb && lsb && *msb >= *lsb)
            return static_cast<uint32_t>(*msb - *lsb + 1);
        return 0;
      }
      case ExprKind::Concat: {
        uint32_t total = 0;
        for (const auto &part : expr->as<ConcatExpr>()->parts) {
            uint32_t w = explicitWidth(part);
            if (w == 0)
                return 0;
            total += w;
        }
        return total;
      }
      case ExprKind::Repeat: {
        const auto *rep = expr->as<RepeatExpr>();
        auto count = tryConstU64(rep->count);
        uint32_t inner = explicitWidth(rep->inner);
        if (!count || inner == 0)
            return 0;
        return static_cast<uint32_t>(*count) * inner;
      }
      default:
        return 0;
    }
}

uint32_t
LintContext::lvalueWidth(const ExprPtr &lhs) const
{
    if (!lhs)
        return 0;
    switch (lhs->kind) {
      case ExprKind::Id: {
        const auto &name = lhs->as<IdExpr>()->name;
        return isMemory(name) ? 0 : widthOf(name);
      }
      case ExprKind::Index:
      case ExprKind::Range:
      case ExprKind::Concat:
        return explicitWidth(lhs);
      default:
        return 0;
    }
}

void
LintContext::report(const SourceLoc &loc, std::string message,
                    std::vector<std::string> signals)
{
    Diagnostic diag;
    if (currentRule_) {
        diag.rule = currentRule_->id;
        diag.severity = currentRule_->severity;
        diag.subclass = currentRule_->subclass;
    }
    diag.loc = loc;
    diag.message = std::move(message);
    diag.signals = std::move(signals);
    diags_.push_back(std::move(diag));
}

std::vector<Diagnostic>
LintContext::takeDiagnostics()
{
    sortDiagnostics(diags_);
    return std::move(diags_);
}

} // namespace hwdbg::lint
