#include "lint/lint.hh"

#include "common/logging.hh"
#include "lint/context.hh"
#include "lint/rules.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"

namespace hwdbg::lint
{

const std::vector<LintRule> &
lintRules()
{
    // Each rule targets one Table 1 bug subclass from the paper's bug
    // study; the DESIGN.md lint section documents the mapping.
    static const std::vector<LintRule> rules = {
        {"incomplete-case", Severity::Warning,
         "Incomplete Implementation",
         "case in a combinational process covers neither all selector "
         "values nor a default",
         checkIncompleteCase},
        {"inferred-latch", Severity::Warning,
         "Failure-to-Update",
         "combinational process leaves a target unassigned on some "
         "path, inferring a latch",
         checkInferredLatch},
        {"blocking-in-seq", Severity::Warning, "Signal Asynchrony",
         "blocking assignment inside a clocked process",
         checkBlockingInSeq},
        {"nonblocking-in-comb", Severity::Warning, "Signal Asynchrony",
         "nonblocking assignment inside a combinational process",
         checkNonblockingInComb},
        {"width-trunc", Severity::Warning, "Bit Truncation",
         "assignment silently truncates a wider value",
         checkWidthTruncation},
        {"multi-driven", Severity::Error, "Signal Asynchrony",
         "signal driven from more than one process or assignment",
         checkMultiDriven},
        {"comb-loop", Severity::Error, "Deadlock",
         "zero-delay combinational feedback loop", checkCombLoop},
        {"undriven", Severity::Error, "Failure-to-Update",
         "signal is read (or exported) but nothing ever drives it",
         checkUndriven},
        {"unused-signal", Severity::Warning,
         "Incomplete Implementation",
         "internal signal is driven but its value is never read",
         checkUnusedSignal},
        {"unused-input", Severity::Warning,
         "Incomplete Implementation",
         "input port is never read", checkUnusedInput},
        {"fifo-no-backpressure", Severity::Error, "Buffer Overflow",
         "FIFO request ignores the primitive's full/empty flag",
         checkFifoNoBackpressure},
        {"fsm-unreachable", Severity::Warning,
         "Incomplete Implementation",
         "FSM state is unreachable from the reset state",
         checkFsmUnreachable},
        {"fsm-no-exit", Severity::Warning, "Deadlock",
         "FSM state has no outgoing transition", checkFsmNoExit},
        {"sticky-flag", Severity::Warning, "Failure-to-Update",
         "flag set during operation is only ever cleared by reset",
         checkStickyFlag},
        {"enable-deadlock", Severity::Error, "Deadlock",
         "flags that reset to 0 require each other to ever assert",
         checkEnableDeadlock},
        {"handshake-drop", Severity::Error, "Protocol Violation",
         "valid deasserted without consulting ready",
         checkHandshakeDrop},
        {"handshake-unstable", Severity::Error, "Protocol Violation",
         "data changes while valid is high and ready is low",
         checkHandshakeUnstable},
    };
    return rules;
}

const LintRule *
ruleById(const std::string &id)
{
    for (const auto &rule : lintRules())
        if (rule.id == id)
            return &rule;
    return nullptr;
}

std::vector<Diagnostic>
runLint(const hdl::Module &mod, const LintOptions &opts)
{
    for (const auto &id : opts.rules)
        if (!ruleById(id))
            fatal("unknown lint rule '%s'", id.c_str());

    obs::ObsSpan span("lint");
    LintContext ctx(mod);
    for (const auto &rule : lintRules()) {
        if (!opts.rules.empty() && !opts.rules.count(rule.id))
            continue;
        ctx.beginRule(rule);
        rule.check(ctx);
    }
    std::vector<Diagnostic> diags = ctx.takeDiagnostics();
    HWDBG_STAT_INC("lint.runs", 1);
    HWDBG_STAT_INC("lint.diagnostics", diags.size());
    if (obs::metricsEnabled()) {
        // Per-rule hit counters need dynamic names, so they bypass the
        // cached-site macro and pay the registry lookup per diagnostic.
        for (const auto &diag : diags)
            obs::counter("lint.hits." + diag.rule).inc();
    }
    return diags;
}

bool
hasErrors(const std::vector<Diagnostic> &diags)
{
    for (const auto &diag : diags)
        if (diag.severity == Severity::Error)
            return true;
    return false;
}

} // namespace hwdbg::lint
