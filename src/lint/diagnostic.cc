#include "lint/diagnostic.hh"

#include <algorithm>
#include <sstream>

#include "common/logging.hh"
#include "obs/json.hh"

namespace hwdbg::lint
{

const char *
severityName(Severity severity)
{
    switch (severity) {
      case Severity::Info: return "info";
      case Severity::Warning: return "warning";
      case Severity::Error: return "error";
    }
    return "?";
}

void
sortDiagnostics(std::vector<Diagnostic> &diags)
{
    std::stable_sort(diags.begin(), diags.end(),
                     [](const Diagnostic &a, const Diagnostic &b) {
                         if (a.loc.file != b.loc.file)
                             return a.loc.file < b.loc.file;
                         if (a.loc.line != b.loc.line)
                             return a.loc.line < b.loc.line;
                         if (a.loc.col != b.loc.col)
                             return a.loc.col < b.loc.col;
                         return a.rule < b.rule;
                     });
}

std::string
renderText(const std::vector<Diagnostic> &diags)
{
    std::ostringstream out;
    for (const auto &diag : diags) {
        out << diag.loc.str() << ": " << severityName(diag.severity)
            << ": " << diag.message << " [" << diag.rule << "]";
        if (!diag.signals.empty()) {
            out << " {";
            for (size_t i = 0; i < diag.signals.size(); ++i)
                out << (i ? ", " : "") << diag.signals[i];
            out << "}";
        }
        out << "\n";
    }
    return out.str();
}

namespace
{

std::string
jsonEscape(const std::string &text)
{
    return obs::jsonEscape(text);
}

} // namespace

std::string
renderJson(const std::vector<Diagnostic> &diags)
{
    std::ostringstream out;
    out << "[\n";
    for (size_t i = 0; i < diags.size(); ++i) {
        const auto &diag = diags[i];
        out << "  {\"rule\": \"" << jsonEscape(diag.rule)
            << "\", \"severity\": \"" << severityName(diag.severity)
            << "\", \"subclass\": \"" << jsonEscape(diag.subclass)
            << "\", \"file\": \"" << jsonEscape(diag.loc.file)
            << "\", \"line\": " << diag.loc.line
            << ", \"col\": " << diag.loc.col << ", \"message\": \""
            << jsonEscape(diag.message) << "\", \"signals\": [";
        for (size_t j = 0; j < diag.signals.size(); ++j)
            out << (j ? ", " : "") << "\""
                << jsonEscape(diag.signals[j]) << "\"";
        out << "]}" << (i + 1 < diags.size() ? "," : "") << "\n";
    }
    out << "]\n";
    return out.str();
}

std::vector<Diagnostic>
combCycleDiagnostics(
    const std::vector<std::vector<std::string>> &cycles,
    const std::function<hdl::SourceLoc(const std::string &)> &loc_of)
{
    std::vector<Diagnostic> out;
    for (const auto &cycle : cycles) {
        std::ostringstream path;
        for (const auto &name : cycle)
            path << name << " -> ";
        path << cycle.front();
        Diagnostic diag;
        diag.rule = "comb-loop";
        diag.severity = Severity::Error;
        diag.subclass = "Deadlock";
        diag.loc = loc_of(cycle.front());
        diag.message = csprintf("combinational loop: %s",
                                path.str().c_str());
        diag.signals = cycle;
        out.push_back(std::move(diag));
    }
    return out;
}

std::vector<Diagnostic>
dedupeDiagnostics(std::vector<Diagnostic> diags)
{
    std::vector<Diagnostic> out;
    auto same = [](const Diagnostic &a, const Diagnostic &b) {
        return a.rule == b.rule && a.severity == b.severity &&
               a.subclass == b.subclass && a.loc.file == b.loc.file &&
               a.loc.line == b.loc.line && a.loc.col == b.loc.col &&
               a.message == b.message && a.signals == b.signals;
    };
    for (auto &diag : diags) {
        bool dup = false;
        for (const auto &kept : out)
            if (same(kept, diag)) {
                dup = true;
                break;
            }
        if (!dup)
            out.push_back(std::move(diag));
    }
    return out;
}

} // namespace hwdbg::lint
