/**
 * @file
 * Coding-style rules over process bodies: incomplete case statements,
 * latch inference in combinational processes, assignment-operator
 * misuse, and width truncation.
 */

#include <algorithm>
#include <cstdint>
#include <functional>
#include <set>
#include <string>

#include "analysis/exprutil.hh"
#include "common/logging.hh"
#include "common/testhooks.hh"
#include "lint/context.hh"
#include "lint/rules.hh"

namespace hwdbg::lint
{

using namespace hdl;

namespace
{

/** Walk every statement of @p stmt, leaves included. */
void
forEachStmt(const StmtPtr &stmt,
            const std::function<void(const Stmt &)> &fn)
{
    if (!stmt)
        return;
    fn(*stmt);
    switch (stmt->kind) {
      case StmtKind::Block:
        for (const auto &sub : stmt->as<BlockStmt>()->stmts)
            forEachStmt(sub, fn);
        break;
      case StmtKind::If:
        forEachStmt(stmt->as<IfStmt>()->thenStmt, fn);
        forEachStmt(stmt->as<IfStmt>()->elseStmt, fn);
        break;
      case StmtKind::Case:
        for (const auto &item : stmt->as<CaseStmt>()->items)
            forEachStmt(item.body, fn);
        break;
      default:
        break;
    }
}

/** True when @p stmt assigns @p name on every execution path. */
bool
assignsOnAllPaths(const StmtPtr &stmt, const std::string &name)
{
    if (!stmt)
        return false;
    switch (stmt->kind) {
      case StmtKind::Block:
        for (const auto &sub : stmt->as<BlockStmt>()->stmts)
            if (assignsOnAllPaths(sub, name))
                return true;
        return false;
      case StmtKind::If: {
        const auto *branch = stmt->as<IfStmt>();
        return assignsOnAllPaths(branch->thenStmt, name) &&
               assignsOnAllPaths(branch->elseStmt, name);
      }
      case StmtKind::Case: {
        const auto *sel = stmt->as<CaseStmt>();
        bool has_default = false;
        for (const auto &item : sel->items) {
            if (item.labels.empty())
                has_default = true;
            if (!assignsOnAllPaths(item.body, name))
                return false;
        }
        return has_default && !sel->items.empty();
      }
      case StmtKind::Assign:
        return analysis::lvalueTargets(stmt->as<AssignStmt>()->lhs)
            .count(name) != 0;
      default:
        return false;
    }
}

} // namespace

void
checkIncompleteCase(LintContext &ctx)
{
    for (const auto &item : ctx.mod().items) {
        if (item->kind != ItemKind::Always ||
            !item->as<AlwaysItem>()->isComb)
            continue;
        forEachStmt(item->as<AlwaysItem>()->body, [&](const Stmt &stmt) {
            if (stmt.kind != StmtKind::Case)
                return;
            const auto *sel = stmt.as<CaseStmt>();
            uint64_t labels = 0;
            for (const auto &ci : sel->items) {
                if (ci.labels.empty())
                    return; // default item: complete
                labels += ci.labels.size();
            }
            uint32_t width = ctx.explicitWidth(sel->selector);
            // Coverage is decidable only for narrow selectors; wider
            // ones can't enumerate 2^w labels anyway.
            if (width > 0 && width < 16 &&
                labels >= (uint64_t{1} << width))
                return;
            std::string msg;
            if (width > 0 && width < 16)
                msg = csprintf("case statement in combinational "
                               "process covers %llu of %llu selector "
                               "values and has no default",
                               (unsigned long long)labels,
                               (unsigned long long)(uint64_t{1}
                                                    << width));
            else
                msg = "case statement in combinational process has "
                      "no default";
            ctx.report(stmt.loc, std::move(msg));
        });
    }
}

void
checkInferredLatch(LintContext &ctx)
{
    for (const auto &item : ctx.mod().items) {
        if (item->kind != ItemKind::Always ||
            !item->as<AlwaysItem>()->isComb)
            continue;
        const auto *proc = item->as<AlwaysItem>();
        std::set<std::string> targets;
        forEachStmt(proc->body, [&](const Stmt &stmt) {
            if (stmt.kind != StmtKind::Assign)
                return;
            for (const auto &t :
                 analysis::lvalueTargets(stmt.as<AssignStmt>()->lhs))
                targets.insert(t);
        });
        for (const auto &target : targets) {
            if (assignsOnAllPaths(proc->body, target))
                continue;
            ctx.report(proc->loc,
                       csprintf("'%s' is not assigned on every path "
                                "of this combinational process; a "
                                "latch is inferred",
                                target.c_str()),
                       {target});
        }
    }
}

void
checkBlockingInSeq(LintContext &ctx)
{
    for (const auto &ga : ctx.assigns()) {
        if (!ga.proc || ga.proc->isComb || !ga.stmt)
            continue;
        if (ga.stmt->nonblocking)
            continue;
        const auto targets = analysis::lvalueTargets(ga.stmt->lhs);
        ctx.report(ga.stmt->loc,
                   "blocking assignment in clocked process "
                   "(use '<=')",
                   {targets.begin(), targets.end()});
    }
}

void
checkNonblockingInComb(LintContext &ctx)
{
    for (const auto &ga : ctx.assigns()) {
        if (!ga.proc || !ga.proc->isComb || !ga.stmt)
            continue;
        if (!ga.stmt->nonblocking)
            continue;
        const auto targets = analysis::lvalueTargets(ga.stmt->lhs);
        ctx.report(ga.stmt->loc,
                   "nonblocking assignment in combinational process "
                   "(use '=')",
                   {targets.begin(), targets.end()});
    }
}

void
checkWidthTruncation(LintContext &ctx)
{
    size_t assign_idx = 0;
    for (const auto &ga : ctx.assigns()) {
        size_t idx = assign_idx++;
        if (mutationOn(MUT_LINT_TRUNC_INDEX) && idx % 2 == 0)
            continue;
        uint32_t lhs_w = ctx.lvalueWidth(ga.lhs);
        uint32_t rhs_w = ctx.explicitWidth(ga.rhs);
        if (lhs_w == 0 || rhs_w == 0 || rhs_w <= lhs_w)
            continue;
        SourceLoc loc = ga.stmt ? ga.stmt->loc
                                : (ga.cont ? ga.cont->loc : SourceLoc{});
        const auto targets = analysis::lvalueTargets(ga.lhs);
        ctx.report(loc,
                   csprintf("assignment truncates a %u-bit value to "
                            "%u bits",
                            rhs_w, lhs_w),
                   {targets.begin(), targets.end()});
    }
}

} // namespace hwdbg::lint
