/**
 * @file
 * State-machine and state-flag rules: unreachable FSM states, FSM
 * states with no way out, sticky flags that only reset can clear, and
 * circular enable dependencies between go/busy flags.
 */

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "lint/context.hh"
#include "lint/rules.hh"
#include "sim/design.hh"

namespace hwdbg::lint
{

using namespace hdl;

namespace
{

std::string
stateName(const Bits &bits)
{
    return csprintf("%u'd%llu", bits.width(),
                    (unsigned long long)bits.toU64());
}

/** One classified assignment to a one-bit flag register. */
struct FlagAssign
{
    const analysis::GuardedAssign *ga = nullptr;
    /** Constant RHS value; nullopt when not constant. */
    std::optional<uint64_t> value;
    bool resetBranch = false;
};

/**
 * Clocked whole-register assignments to @p name, classified by RHS
 * constness and reset-branch membership. Returns nullopt when the
 * flag is also written combinationally or through a part select (the
 * classification would be unsound).
 */
std::optional<std::vector<FlagAssign>>
flagAssigns(LintContext &ctx, const std::string &name)
{
    std::vector<FlagAssign> out;
    for (const auto &ga : ctx.assigns()) {
        if (!ga.lhs || ga.lhs->kind != ExprKind::Id ||
            ga.lhs->as<IdExpr>()->name != name)
            continue;
        if (!ga.proc || ga.proc->isComb)
            return std::nullopt;
        FlagAssign fa;
        fa.ga = &ga;
        try {
            fa.value = sim::constU64(ga.rhs);
        } catch (const HdlError &) {
            fa.value = std::nullopt;
        }
        fa.resetBranch = ctx.isResetBranchGuard(ga.guard);
        out.push_back(fa);
    }
    return out;
}

} // namespace

void
checkFsmUnreachable(LintContext &ctx)
{
    for (const auto &fsm : ctx.fsms()) {
        // Entry states: targets of reset-branch transitions; fall back
        // to from-any-state transitions when no reset is recognized.
        std::set<uint64_t> reached;
        for (const auto &t : fsm.transitions)
            if (ctx.isResetBranchGuard(t.cond))
                reached.insert(t.toState.toU64());
        if (reached.empty())
            for (const auto &t : fsm.transitions)
                if (!t.fromState)
                    reached.insert(t.toState.toU64());
        if (reached.empty())
            continue; // no recognizable entry point: stay silent

        // Fixed-point over non-reset transitions. A transition with no
        // fromState fires from any state, so its target is reachable
        // as soon as anything is.
        bool changed = true;
        while (changed) {
            changed = false;
            for (const auto &t : fsm.transitions) {
                if (ctx.isResetBranchGuard(t.cond))
                    continue;
                bool from_ok =
                    !t.fromState ||
                    reached.count(t.fromState->toU64());
                if (from_ok &&
                    reached.insert(t.toState.toU64()).second)
                    changed = true;
            }
        }

        for (const auto &state : fsm.states) {
            if (reached.count(state.toU64()))
                continue;
            ctx.report(ctx.declLoc(fsm.stateVar),
                       csprintf("FSM state %s of '%s' is unreachable "
                                "from the reset state",
                                stateName(state).c_str(),
                                fsm.stateVar.c_str()),
                       {fsm.stateVar});
        }
    }
}

void
checkFsmNoExit(LintContext &ctx)
{
    for (const auto &fsm : ctx.fsms()) {
        if (fsm.transitions.empty())
            continue;
        for (const auto &state : fsm.states) {
            bool has_exit = false;
            for (const auto &t : fsm.transitions) {
                if (ctx.isResetBranchGuard(t.cond))
                    continue;
                if (t.fromState &&
                    t.fromState->compare(state) != 0)
                    continue;
                if (t.toState.compare(state) == 0)
                    continue;
                has_exit = true;
                break;
            }
            if (has_exit)
                continue;
            ctx.report(ctx.declLoc(fsm.stateVar),
                       csprintf("FSM state %s of '%s' has no outgoing "
                                "transition; once entered the machine "
                                "is stuck",
                                stateName(state).c_str(),
                                fsm.stateVar.c_str()),
                       {fsm.stateVar});
        }
    }
}

void
checkStickyFlag(LintContext &ctx)
{
    for (const auto &name : ctx.signalNames()) {
        if (!ctx.isReg(name) || ctx.isMemory(name) ||
            ctx.widthOf(name) != 1)
            continue;
        if (!ctx.isRead(name) || ctx.isClockName(name) ||
            ctx.isResetName(name))
            continue;
        auto fas = flagAssigns(ctx, name);
        if (!fas || fas->empty())
            continue;
        bool all_const = true;
        bool nonreset_set = false;
        size_t clears = 0, nonreset_clears = 0;
        for (const auto &fa : *fas) {
            if (!fa.value) {
                all_const = false;
                break;
            }
            if (*fa.value != 0 && !fa.resetBranch)
                nonreset_set = true;
            if (*fa.value == 0) {
                ++clears;
                if (!fa.resetBranch)
                    ++nonreset_clears;
            }
        }
        if (!all_const || !nonreset_set || clears == 0 ||
            nonreset_clears > 0)
            continue;
        ctx.report(ctx.declLoc(name),
                   csprintf("flag '%s' is set during operation but "
                            "only reset ever clears it",
                            name.c_str()),
                   {name});
    }
}

void
checkEnableDeadlock(LintContext &ctx)
{
    // Candidate flags: one-bit registers that reset to 0 and are only
    // ever set to constant 1 outside reset.
    struct Candidate
    {
        std::vector<const analysis::GuardedAssign *> sets;
    };
    std::map<std::string, Candidate> candidates;
    for (const auto &name : ctx.signalNames()) {
        if (!ctx.isReg(name) || ctx.isMemory(name) ||
            ctx.widthOf(name) != 1)
            continue;
        auto fas = flagAssigns(ctx, name);
        if (!fas || fas->empty())
            continue;
        bool ok = true, resets_to_zero = false;
        Candidate cand;
        for (const auto &fa : *fas) {
            if (!fa.value) {
                ok = false;
                break;
            }
            if (fa.resetBranch) {
                if (*fa.value == 0)
                    resets_to_zero = true;
                else
                    ok = false; // reset asserts it: not gated on reset
            } else if (*fa.value != 0) {
                cand.sets.push_back(fa.ga);
            }
        }
        if (ok && resets_to_zero && !cand.sets.empty())
            candidates[name] = std::move(cand);
    }

    // R -> E when every path that sets R requires E to already be
    // high (E appears as a bare positive conjunct of every set guard).
    std::map<std::string, std::set<std::string>> requires_;
    for (const auto &[name, cand] : candidates) {
        std::set<std::string> common;
        bool first = true;
        for (const auto *ga : cand.sets) {
            std::set<std::string> here;
            for (const auto &conj : LintContext::conjuncts(ga->guard))
                if (conj->kind == ExprKind::Id &&
                    candidates.count(conj->as<IdExpr>()->name) &&
                    conj->as<IdExpr>()->name != name)
                    here.insert(conj->as<IdExpr>()->name);
            if (first) {
                common = std::move(here);
                first = false;
            } else {
                std::set<std::string> both;
                for (const auto &e : common)
                    if (here.count(e))
                        both.insert(e);
                common = std::move(both);
            }
        }
        if (!common.empty())
            requires_[name] = std::move(common);
    }

    // Cycles among required enablers: none of the members can ever
    // become 1 (all start at 0 after reset; every set needs another
    // member already high).
    std::set<std::string> reported;
    std::function<bool(const std::string &, std::vector<std::string> &,
                       std::set<std::string> &)>
        dfs = [&](const std::string &node,
                  std::vector<std::string> &path,
                  std::set<std::string> &onPath) -> bool {
        path.push_back(node);
        onPath.insert(node);
        auto it = requires_.find(node);
        if (it != requires_.end()) {
            for (const auto &next : it->second) {
                if (onPath.count(next)) {
                    // Found a cycle: slice it out of the path.
                    std::vector<std::string> cycle;
                    bool in = false;
                    for (const auto &n : path) {
                        if (n == next)
                            in = true;
                        if (in)
                            cycle.push_back(n);
                    }
                    std::set<std::string> key(cycle.begin(),
                                              cycle.end());
                    std::string keyStr;
                    for (const auto &n : key)
                        keyStr += n + ",";
                    if (reported.insert(keyStr).second) {
                        std::ostringstream text;
                        for (const auto &n : cycle)
                            text << n << " -> ";
                        text << next;
                        ctx.report(
                            ctx.declLoc(cycle.front()),
                            csprintf("circular enable dependency: "
                                     "%s; all reset to 0, so none "
                                     "can ever assert",
                                     text.str().c_str()),
                            cycle);
                    }
                    path.pop_back();
                    onPath.erase(node);
                    return true;
                }
                if (dfs(next, path, onPath)) {
                    path.pop_back();
                    onPath.erase(node);
                    return true;
                }
            }
        }
        path.pop_back();
        onPath.erase(node);
        return false;
    };
    for (const auto &[name, req] : requires_) {
        (void)req;
        std::vector<std::string> path;
        std::set<std::string> onPath;
        dfs(name, path, onPath);
    }
}

} // namespace hwdbg::lint
