/**
 * @file
 * Shared per-module facts the lint rules consume.
 *
 * The context is built once per runLint() call from the elaborated
 * module: declaration facts (widths, directions, memories), a read/drive
 * census, the guarded-assignment list, the dependency graph, and the
 * detected FSMs. Rules stay cheap because everything expensive is
 * computed here exactly once.
 */

#ifndef HWDBG_LINT_CONTEXT_HH
#define HWDBG_LINT_CONTEXT_HH

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "analysis/depgraph.hh"
#include "analysis/fsm_detect.hh"
#include "analysis/guards.hh"
#include "lint/diagnostic.hh"
#include "lint/lint.hh"

namespace hwdbg::lint
{

/** One driving site of a signal, for multi-drive reporting. */
struct DriverSite
{
    /** The always block, continuous assign, or instance. */
    const hdl::Item *item = nullptr;
    hdl::SourceLoc loc;
};

class LintContext
{
  public:
    explicit LintContext(const hdl::Module &mod);

    const hdl::Module &mod() const { return *mod_; }
    const analysis::DepGraph &graph() const { return *graph_; }
    const std::vector<analysis::GuardedAssign> &assigns() const
    {
        return assigns_;
    }
    const std::vector<analysis::FsmInfo> &fsms() const { return fsms_; }

    /** Declared signal names, in declaration order. */
    const std::vector<std::string> &signalNames() const
    {
        return order_;
    }

    /** Vector width of a declared signal (memories: element width). */
    uint32_t widthOf(const std::string &name) const;
    bool isMemory(const std::string &name) const;
    bool isDeclared(const std::string &name) const;
    hdl::PortDir dirOf(const std::string &name) const;
    bool isReg(const std::string &name) const;
    const hdl::SourceLoc &declLoc(const std::string &name) const;

    /** True when the signal's value is read anywhere in the module
     *  (expressions, guards, lvalue indices, instance inputs, or a
     *  sensitivity list). Output ports are not implicitly "read". */
    bool isRead(const std::string &name) const;

    /** Driving sites (always blocks, assigns, instance outputs). */
    const std::vector<DriverSite> &driversOf(const std::string &name) const;

    /** Inputs that look like reset/clock infrastructure. */
    bool isResetName(const std::string &name) const;
    bool isClockName(const std::string &name) const;
    /** True when @p expr references a reset signal anywhere. */
    bool mentionsReset(const hdl::ExprPtr &expr) const;
    /**
     * True when the guard selects the reset branch of a process: it
     * has a conjunct asserting a reset signal with the polarity the
     * design actually resets on (a bare `rst` conjunct for active-high
     * designs, `!rst_n` for active-low ones). Guards that merely carry
     * the negated reset (every non-reset branch does) return false.
     */
    bool isResetBranchGuard(const hdl::ExprPtr &guard) const;
    /** True when @p expr references @p name anywhere. */
    static bool mentions(const hdl::ExprPtr &expr,
                         const std::string &name);

    /** Flatten a guard's && tree into its conjuncts. */
    static std::vector<hdl::ExprPtr> conjuncts(const hdl::ExprPtr &expr);

    /**
     * Self-determined width of an explicit-width expression: sized
     * literals, identifiers, part/bit selects, and concats/repeats of
     * those. 0 when the width is context-determined or unknown
     * (arithmetic, comparisons, unsized literals).
     */
    uint32_t explicitWidth(const hdl::ExprPtr &expr) const;
    /** Width of an assignment target; 0 when unknown. */
    uint32_t lvalueWidth(const hdl::ExprPtr &lhs) const;

    /** Set the rule whose metadata report() stamps on diagnostics. */
    void beginRule(const LintRule &rule) { currentRule_ = &rule; }

    /** Append a diagnostic under the current rule. */
    void report(const hdl::SourceLoc &loc, std::string message,
                std::vector<std::string> signals = {});
    /** Append a fully-formed diagnostic (shared emitters). */
    void report(Diagnostic diag) { diags_.push_back(std::move(diag)); }
    std::vector<Diagnostic> takeDiagnostics();

  private:
    void scanDecls();
    void scanReadsAndDrivers();
    void scanResetPolarity();

    const hdl::Module *mod_;
    std::unique_ptr<analysis::DepGraph> graph_;
    std::vector<analysis::GuardedAssign> assigns_;
    std::vector<analysis::FsmInfo> fsms_;

    struct NetFacts
    {
        uint32_t width = 1;
        bool memory = false;
        hdl::PortDir dir = hdl::PortDir::None;
        hdl::NetKind kind = hdl::NetKind::Wire;
        hdl::SourceLoc loc;
    };
    std::map<std::string, NetFacts> nets_;
    std::vector<std::string> order_;
    std::set<std::string> reads_;
    std::map<std::string, std::vector<DriverSite>> drivers_;
    std::set<std::string> resets_;
    /** Resets observed asserted as a bare positive guard conjunct. */
    std::set<std::string> activeHighResets_;
    std::set<std::string> clocks_;
    const LintRule *currentRule_ = nullptr;
    std::vector<Diagnostic> diags_;
};

} // namespace hwdbg::lint

#endif // HWDBG_LINT_CONTEXT_HH
