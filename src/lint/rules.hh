/**
 * @file
 * Rule check entry points, grouped by the module file implementing them.
 * Each function scans the LintContext and reports any findings; the
 * registry in lint.cc stamps rule id/severity/subclass metadata.
 */

#ifndef HWDBG_LINT_RULES_HH
#define HWDBG_LINT_RULES_HH

namespace hwdbg::lint
{

class LintContext;

// rules_style.cc — coding-style rules over process bodies.
void checkIncompleteCase(LintContext &ctx);
void checkInferredLatch(LintContext &ctx);
void checkBlockingInSeq(LintContext &ctx);
void checkNonblockingInComb(LintContext &ctx);
void checkWidthTruncation(LintContext &ctx);

// rules_structure.cc — netlist-structure rules.
void checkMultiDriven(LintContext &ctx);
void checkCombLoop(LintContext &ctx);
void checkUndriven(LintContext &ctx);
void checkUnusedSignal(LintContext &ctx);
void checkUnusedInput(LintContext &ctx);
void checkFifoNoBackpressure(LintContext &ctx);

// rules_state.cc — FSM and state-flag rules.
void checkFsmUnreachable(LintContext &ctx);
void checkFsmNoExit(LintContext &ctx);
void checkStickyFlag(LintContext &ctx);
void checkEnableDeadlock(LintContext &ctx);

// rules_handshake.cc — valid/ready protocol rules.
void checkHandshakeDrop(LintContext &ctx);
void checkHandshakeUnstable(LintContext &ctx);

} // namespace hwdbg::lint

#endif // HWDBG_LINT_RULES_HH
