/**
 * @file
 * Static lint over the elaborated Verilog AST.
 *
 * The linter is a registry of rules keyed to the paper's Table 1 bug
 * subclasses: each rule statically matches one of the code patterns the
 * bug study found in real FPGA projects (inferred latches, multiple
 * drivers, combinational loops, dead FSM states, bit truncation,
 * sticky flags, circular enables, FIFO pushes without backpressure,
 * and valid/ready handshake violations). Running the linter before
 * simulation complements the dynamic tools (SignalCat, the monitors,
 * LossCheck): the rules flag the bug pattern, the dynamic tools then
 * localize the failing instance.
 */

#ifndef HWDBG_LINT_LINT_HH
#define HWDBG_LINT_LINT_HH

#include <set>
#include <string>
#include <vector>

#include "hdl/ast.hh"
#include "lint/diagnostic.hh"

namespace hwdbg::lint
{

class LintContext;

struct LintRule
{
    std::string id;
    Severity severity = Severity::Warning;
    /** Table 1 subclass the rule targets. */
    std::string subclass;
    std::string description;
    void (*check)(LintContext &ctx) = nullptr;
};

/** The full rule registry, in presentation order. */
const std::vector<LintRule> &lintRules();

/** Registry entry for @p id, or nullptr. */
const LintRule *ruleById(const std::string &id);

struct LintOptions
{
    /** Rule ids to run; empty means every registered rule. */
    std::set<std::string> rules;
};

/**
 * Run the (selected) rules over an elaborated module and return the
 * diagnostics in stable (location, rule) order.
 */
std::vector<Diagnostic> runLint(const hdl::Module &mod,
                                const LintOptions &opts = {});

/** True when any diagnostic has Error severity (CLI exit status). */
bool hasErrors(const std::vector<Diagnostic> &diags);

} // namespace hwdbg::lint

#endif // HWDBG_LINT_LINT_HH
