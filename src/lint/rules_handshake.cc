/**
 * @file
 * valid/ready handshake rules. Pairs and triples are matched by the
 * conventional naming scheme: a driven `<p>valid` register pairs with
 * a declared `<p>ready`, and `<p>data` completes the triple.
 */

#include <optional>
#include <string>
#include <vector>

#include "analysis/exprutil.hh"
#include "common/logging.hh"
#include "lint/context.hh"
#include "lint/rules.hh"
#include "sim/design.hh"

namespace hwdbg::lint
{

using namespace hdl;

namespace
{

/** Prefix of @p name when it ends in @p suffix, else nullopt. */
std::optional<std::string>
prefixOf(const std::string &name, const std::string &suffix)
{
    if (name.size() < suffix.size() ||
        name.compare(name.size() - suffix.size(), suffix.size(),
                     suffix) != 0)
        return std::nullopt;
    return name.substr(0, name.size() - suffix.size());
}

/** True when @p expr has @p name as a bare positive conjunct. */
bool
hasPositiveConjunct(const ExprPtr &guard, const std::string &name)
{
    for (const auto &conj : LintContext::conjuncts(guard))
        if (conj->kind == ExprKind::Id &&
            conj->as<IdExpr>()->name == name)
            return true;
    return false;
}

} // namespace

void
checkHandshakeDrop(LintContext &ctx)
{
    for (const auto &valid : ctx.signalNames()) {
        auto prefix = prefixOf(valid, "valid");
        if (!prefix)
            continue;
        std::string ready = *prefix + "ready";
        if (!ctx.isDeclared(ready) || !ctx.isReg(valid) ||
            ctx.dirOf(valid) == PortDir::Input ||
            ctx.driversOf(valid).empty())
            continue;

        // Pulse-style producers that only assert valid when ready is
        // already high may deassert freely.
        bool sets_gated_on_ready = true;
        bool any_set = false;
        for (const auto &ga : ctx.assigns()) {
            if (!ga.lhs || ga.lhs->kind != ExprKind::Id ||
                ga.lhs->as<IdExpr>()->name != valid)
                continue;
            std::optional<uint64_t> value;
            try {
                value = sim::constU64(ga.rhs);
            } catch (const HdlError &) {
                value = std::nullopt;
            }
            bool is_clear = value && *value == 0;
            if (is_clear || ctx.isResetBranchGuard(ga.guard))
                continue;
            any_set = true;
            if (!LintContext::mentions(ga.guard, ready))
                sets_gated_on_ready = false;
        }
        if (any_set && sets_gated_on_ready)
            continue;

        for (const auto &ga : ctx.assigns()) {
            if (!ga.lhs || ga.lhs->kind != ExprKind::Id ||
                ga.lhs->as<IdExpr>()->name != valid)
                continue;
            if (!ga.proc || ga.proc->isComb || !ga.stmt)
                continue;
            std::optional<uint64_t> value;
            try {
                value = sim::constU64(ga.rhs);
            } catch (const HdlError &) {
                continue;
            }
            if (*value != 0)
                continue;
            if (ctx.isResetBranchGuard(ga.guard))
                continue;
            if (LintContext::mentions(ga.guard, ready))
                continue;
            ctx.report(ga.stmt->loc,
                       csprintf("'%s' is deasserted without checking "
                                "'%s'; an accepted-but-unseen beat "
                                "is dropped",
                                valid.c_str(), ready.c_str()),
                       {valid, ready});
        }
    }
}

void
checkHandshakeUnstable(LintContext &ctx)
{
    for (const auto &data : ctx.signalNames()) {
        auto prefix = prefixOf(data, "data");
        if (!prefix)
            continue;
        std::string valid = *prefix + "valid";
        std::string ready = *prefix + "ready";
        if (!ctx.isDeclared(valid) || !ctx.isDeclared(ready))
            continue;
        if (!ctx.isReg(data) || ctx.driversOf(data).empty())
            continue;

        for (const auto &ga : ctx.assigns()) {
            if (!ga.lhs || ga.lhs->kind != ExprKind::Id ||
                ga.lhs->as<IdExpr>()->name != data)
                continue;
            if (!ga.proc || ga.proc->isComb || !ga.stmt)
                continue;
            if (ctx.isResetBranchGuard(ga.guard))
                continue;
            if (!hasPositiveConjunct(ga.guard, valid))
                continue;
            if (LintContext::mentions(ga.guard, ready))
                continue;
            ctx.report(ga.stmt->loc,
                       csprintf("'%s' changes while '%s' is high "
                                "without waiting for '%s'; the "
                                "consumer sees torn data",
                                data.c_str(), valid.c_str(),
                                ready.c_str()),
                       {data, valid, ready});
        }
    }
}

} // namespace hwdbg::lint
