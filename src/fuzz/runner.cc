#include "fuzz/runner.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <mutex>
#include <set>
#include <sstream>
#include <thread>

#include "common/logging.hh"
#include "common/testhooks.hh"
#include "cover/run.hh"
#include "cover/signature.hh"
#include "elab/elaborate.hh"
#include "fuzz/generator.hh"
#include "fuzz/shrink.hh"
#include "hdl/printer.hh"
#include "obs/json.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"

namespace hwdbg::fuzz
{

namespace
{

OracleOptions
oracleOptions(const FuzzConfig &config)
{
    OracleOptions opts;
    opts.cycles = config.cycles;
    opts.mask = config.mask;
    opts.backend = config.backend;
    return opts;
}

GeneratorOptions
generatorOptions(const FuzzConfig &config)
{
    GeneratorOptions opts;
    opts.raceChance = config.raceChance;
    return opts;
}

/** Run one seed end to end; returns all failures, first one shrunk. */
std::vector<SeedFailure>
runSeed(uint64_t seed, const FuzzConfig &config, OrderStats *stats)
{
    OracleOptions opts = oracleOptions(config);
    GeneratedDesign gd = generateDesign(seed, generatorOptions(config));
    std::vector<Failure> failures = runOracles(gd, seed, opts, stats);
    std::vector<SeedFailure> out;
    for (size_t i = 0; i < failures.size(); ++i) {
        SeedFailure sf;
        sf.seed = seed;
        sf.oracle = failures[i].oracle;
        sf.detail = failures[i].detail;
        if (i == 0) {
            ShrinkResult shrunk =
                shrinkDesign(gd, seed, failures[i].oracle, opts,
                             config.shrinkBudget);
            sf.reproducer = hdl::printDesign(shrunk.design.design);
            sf.itemsBefore = shrunk.itemsBefore;
            sf.itemsAfter = shrunk.itemsAfter;
            sf.shrinkAttempts = shrunk.attempts;
        }
        out.push_back(std::move(sf));
    }
    return out;
}

/**
 * Signature keys covered by @p seed's design under the campaign's
 * random stimulus. A second pass, fully separate from the oracle run:
 * it regenerates the design and simulates it with coverage attached,
 * so the oracle verdicts cannot be perturbed by --cover.
 */
std::vector<std::string>
seedCoverKeys(uint64_t seed, const FuzzConfig &config)
{
    GeneratedDesign gd = generateDesign(seed, generatorOptions(config));
    auto flat = elab::elaborate(gd.design, gd.top).mod;
    cover::Snapshot snap =
        cover::coverRandom(std::move(flat),
                           "seed:" + std::to_string(seed), seed,
                           config.cycles);
    return cover::signatureKeys(snap);
}

FuzzReport
runCampaign(const FuzzConfig &config)
{
    FuzzReport report;
    uint64_t first = config.replay ? config.replaySeed : config.start;
    uint64_t count = config.replay ? 1 : config.seeds;
    report.seedsRun = count;

    // One slot per seed index; each worker writes only its own slots,
    // so the pool needs no lock here and the fold below sees seed
    // order regardless of scheduling.
    std::vector<std::vector<std::string>> coverKeys(
        config.cover ? count : 0);

    std::atomic<uint64_t> next{0};
    std::mutex collect;
    auto worker = [&] {
        for (;;) {
            uint64_t idx = next.fetch_add(1);
            if (idx >= count)
                return;
            uint64_t seed = first + idx;
            auto t0 = std::chrono::steady_clock::now();
            std::vector<SeedFailure> failures;
            OrderStats orderStats;
            {
                obs::ObsSpan span("seed " + std::to_string(seed));
                failures = runSeed(seed, config, &orderStats);
            }
            if (config.cover) {
                obs::ObsSpan span("cover seed " +
                                  std::to_string(seed));
                coverKeys[idx] = seedCoverKeys(seed, config);
            }
            auto t1 = std::chrono::steady_clock::now();
            HWDBG_STAT_INC("fuzz.seeds", 1);
            HWDBG_STAT_INC("fuzz.failures", failures.size());
            std::lock_guard<std::mutex> lock(collect);
            report.seedLatenciesMs.push_back(
                std::chrono::duration<double, std::milli>(t1 - t0)
                    .count());
            report.order.flagged += orderStats.flagged;
            report.order.confirmed += orderStats.confirmed;
            report.order.unrefuted += orderStats.unrefuted;
            for (auto &failure : failures)
                report.failures.push_back(std::move(failure));
        }
    };

    uint32_t jobs = std::max<uint32_t>(1, config.jobs);
    if (jobs == 1 || count <= 1) {
        worker();
    } else {
        std::vector<std::thread> pool;
        for (uint32_t i = 0; i < jobs; ++i)
            pool.emplace_back([&worker, i] {
                obs::setTraceThreadName("fuzz-worker-" +
                                        std::to_string(i));
                worker();
            });
        for (auto &thread : pool)
            thread.join();
    }

    std::sort(report.failures.begin(), report.failures.end(),
              [](const SeedFailure &a, const SeedFailure &b) {
                  if (a.seed != b.seed)
                      return a.seed < b.seed;
                  return static_cast<uint32_t>(a.oracle) <
                         static_cast<uint32_t>(b.oracle);
              });

    if (config.cover) {
        // Fold novelty in seed order so the result is independent of
        // worker interleaving (and hence of --jobs).
        std::set<std::string> campaign;
        uint32_t dry = 0;
        uint32_t window = std::max<uint32_t>(1, config.coverPlateau);
        for (uint64_t idx = 0; idx < count; ++idx) {
            SeedCoverage sc;
            sc.seed = first + idx;
            sc.keys = static_cast<uint32_t>(coverKeys[idx].size());
            for (const auto &key : coverKeys[idx])
                if (campaign.insert(key).second)
                    ++sc.newKeys;
            dry = sc.newKeys ? 0 : dry + 1;
            if (dry >= window && !report.coverPlateaued) {
                report.coverPlateaued = true;
                report.coverPlateauSeed = sc.seed;
                inform("fuzz: coverage plateau at seed %llu (%u "
                     "consecutive seed(s) added no new coverage)",
                     static_cast<unsigned long long>(sc.seed),
                     window);
            }
            report.coverage.push_back(sc);
        }
        report.coverKeys = campaign.size();
    }
    return report;
}

FuzzReport
runSelfCheck(const FuzzConfig &config)
{
    FuzzReport report;
    report.selfCheck = true;
    OracleOptions opts = oracleOptions(config);

    // Single-threaded on purpose: activeMutation is a process global.
    for (const auto &info : mutationCatalog()) {
        MutationOutcome outcome;
        outcome.id = info.id;
        outcome.description = info.description;
        outcome.expectedOracle = info.oracle;

        activeMutation = info.id;
        for (uint64_t i = 0; i < config.seeds; ++i) {
            uint64_t seed = config.start + i;
            GeneratedDesign gd = generateDesign(seed);
            auto failures = runOracles(gd, seed, opts);
            outcome.seedsTried = i + 1;
            if (failures.empty())
                continue;
            outcome.caught = true;
            outcome.seed = seed;
            outcome.caughtBy = oracleName(failures.front().oracle);
            outcome.detail = failures.front().detail;
            ShrinkResult shrunk =
                shrinkDesign(gd, seed, failures.front().oracle, opts,
                             std::min<uint32_t>(config.shrinkBudget,
                                                300));
            outcome.reproducer =
                hdl::printDesign(shrunk.design.design);
            break;
        }
        activeMutation = MUT_NONE;

        report.seedsRun += outcome.seedsTried;
        report.mutations.push_back(std::move(outcome));
    }
    return report;
}

using obs::jsonEscape;

std::string
indented(const std::string &text, const std::string &pad)
{
    std::string out;
    std::istringstream stream(text);
    std::string line;
    while (std::getline(stream, line)) {
        out += pad;
        out += line;
        out += '\n';
    }
    return out;
}

std::string
oracleListText(uint32_t mask)
{
    std::string out;
    for (uint32_t i = 0; i < kOracleCount; ++i) {
        if (!(mask & (1u << i)))
            continue;
        if (!out.empty())
            out += ",";
        out += oracleName(static_cast<Oracle>(i));
    }
    return out;
}

} // namespace

bool
reportOk(const FuzzReport &report)
{
    if (!report.selfCheck)
        return report.failures.empty();
    uint64_t caught = 0;
    for (const auto &outcome : report.mutations)
        if (outcome.caught)
            ++caught;
    uint64_t total = report.mutations.size();
    // The acceptance bar: at least 80% of the injected mutations must
    // be caught, out of a catalog of at least 10.
    return total >= 10 && caught * 10 >= total * 8;
}

FuzzReport
runFuzz(const FuzzConfig &config)
{
    return config.selfCheck ? runSelfCheck(config)
                            : runCampaign(config);
}

std::string
renderReport(const FuzzReport &report, const FuzzConfig &config)
{
    std::ostringstream out;
    if (config.json) {
        out << "{\n";
        out << "  \"mode\": \""
            << (report.selfCheck ? "self-check"
                                 : (config.replay ? "replay" : "fuzz"))
            << "\",\n";
        out << "  \"build\": " << obs::buildInfoJson() << ",\n";
        out << "  \"start\": "
            << (config.replay ? config.replaySeed : config.start)
            << ",\n";
        out << "  \"seeds\": " << report.seedsRun << ",\n";
        out << "  \"cycles\": " << config.cycles << ",\n";
        out << "  \"oracles\": [";
        bool firstOracle = true;
        for (uint32_t i = 0; i < kOracleCount; ++i) {
            if (!(config.mask & (1u << i)))
                continue;
            if (!firstOracle)
                out << ", ";
            firstOracle = false;
            out << '"' << oracleName(static_cast<Oracle>(i)) << '"';
        }
        out << "],\n";
        if (report.selfCheck) {
            uint64_t caught = 0;
            for (const auto &outcome : report.mutations)
                if (outcome.caught)
                    ++caught;
            out << "  \"mutations\": [\n";
            for (size_t i = 0; i < report.mutations.size(); ++i) {
                const auto &outcome = report.mutations[i];
                out << "    {\"id\": " << outcome.id
                    << ", \"description\": \""
                    << jsonEscape(outcome.description)
                    << "\", \"expected_oracle\": \""
                    << jsonEscape(outcome.expectedOracle)
                    << "\", \"caught\": "
                    << (outcome.caught ? "true" : "false");
                if (outcome.caught) {
                    out << ", \"seed\": " << outcome.seed
                        << ", \"caught_by\": \""
                        << jsonEscape(outcome.caughtBy)
                        << "\", \"detail\": \""
                        << jsonEscape(outcome.detail)
                        << "\", \"reproducer\": \""
                        << jsonEscape(outcome.reproducer) << '"';
                }
                out << ", \"seeds_tried\": " << outcome.seedsTried
                    << "}"
                    << (i + 1 < report.mutations.size() ? "," : "")
                    << "\n";
            }
            out << "  ],\n";
            out << "  \"caught\": " << caught << ",\n";
            out << "  \"total\": " << report.mutations.size() << ",\n";
        } else {
            out << "  \"failures\": [\n";
            for (size_t i = 0; i < report.failures.size(); ++i) {
                const auto &failure = report.failures[i];
                out << "    {\"seed\": " << failure.seed
                    << ", \"oracle\": \"" << oracleName(failure.oracle)
                    << "\", \"detail\": \"" << jsonEscape(failure.detail)
                    << '"';
                if (!failure.reproducer.empty()) {
                    out << ", \"items_before\": " << failure.itemsBefore
                        << ", \"items_after\": " << failure.itemsAfter
                        << ", \"shrink_attempts\": "
                        << failure.shrinkAttempts
                        << ", \"reproducer\": \""
                        << jsonEscape(failure.reproducer) << '"';
                }
                out << "}"
                    << (i + 1 < report.failures.size() ? "," : "")
                    << "\n";
            }
            out << "  ],\n";
            if (config.mask & oracleBit(Oracle::Order)) {
                out << "  \"order\": {\"flagged\": "
                    << report.order.flagged
                    << ", \"confirmed\": " << report.order.confirmed
                    << ", \"unrefuted\": " << report.order.unrefuted
                    << "},\n";
            }
            if (config.cover) {
                out << "  \"coverage\": {\n";
                out << "    \"keys\": " << report.coverKeys << ",\n";
                out << "    \"plateau_window\": "
                    << config.coverPlateau << ",\n";
                out << "    \"plateaued\": "
                    << (report.coverPlateaued ? "true" : "false")
                    << ",\n";
                if (report.coverPlateaued)
                    out << "    \"plateau_seed\": "
                        << report.coverPlateauSeed << ",\n";
                out << "    \"seeds\": [\n";
                for (size_t i = 0; i < report.coverage.size(); ++i) {
                    const auto &sc = report.coverage[i];
                    out << "      {\"seed\": " << sc.seed
                        << ", \"keys\": " << sc.keys
                        << ", \"new\": " << sc.newKeys << "}"
                        << (i + 1 < report.coverage.size() ? ","
                                                           : "")
                        << "\n";
                }
                out << "    ]\n";
                out << "  },\n";
            }
        }
        out << "  \"ok\": " << (reportOk(report) ? "true" : "false")
            << "\n";
        out << "}\n";
        return out.str();
    }

    if (report.selfCheck) {
        out << "hwdbg fuzz --self-check: " << report.mutations.size()
            << " mutations, up to " << config.seeds
            << " seed(s) each, oracles: "
            << oracleListText(config.mask) << "\n";
        uint64_t caught = 0;
        for (const auto &outcome : report.mutations) {
            out << "mutation " << outcome.id << " ("
                << outcome.description << "): ";
            if (outcome.caught) {
                ++caught;
                out << "CAUGHT by " << outcome.caughtBy << " at seed "
                    << outcome.seed << " (expected "
                    << outcome.expectedOracle << ")\n";
                out << "  " << outcome.detail << "\n";
                out << "  reproducer:\n"
                    << indented(outcome.reproducer, "    ");
            } else {
                out << "MISSED after " << outcome.seedsTried
                    << " seed(s)\n";
            }
        }
        out << "self-check: " << caught << "/"
            << report.mutations.size() << " mutations caught: "
            << (reportOk(report) ? "PASS" : "FAIL (need >= 80%)")
            << "\n";
        return out.str();
    }

    uint64_t first = config.replay ? config.replaySeed : config.start;
    out << "hwdbg fuzz: " << report.seedsRun << " seed(s) from "
        << first << ", " << config.cycles
        << " cycles, oracles: " << oracleListText(config.mask) << "\n";
    for (const auto &failure : report.failures) {
        out << "seed " << failure.seed << ": FAIL ["
            << oracleName(failure.oracle) << "] " << failure.detail
            << "\n";
        if (!failure.reproducer.empty()) {
            out << "  shrunk reproducer (" << failure.itemsBefore
                << " -> " << failure.itemsAfter << " items, "
                << failure.shrinkAttempts << " attempts):\n"
                << indented(failure.reproducer, "    ");
        }
    }
    if (config.mask & oracleBit(Oracle::Order)) {
        out << "order oracle: " << report.order.flagged
            << " design(s) flagged by analyze, "
            << report.order.confirmed << " confirmed by divergence, "
            << report.order.unrefuted << " unrefuted\n";
    }
    if (config.cover) {
        // Only seeds that advanced coverage get a line: the key space
        // is finite, so the list is short even for huge campaigns.
        for (const auto &sc : report.coverage)
            if (sc.newKeys)
                out << "seed " << sc.seed << ": +" << sc.newKeys
                    << " new coverage key(s) (" << sc.keys
                    << " covered)\n";
        out << "coverage: " << report.coverKeys
            << " distinct key(s) across " << report.coverage.size()
            << " seed(s)\n";
        if (report.coverPlateaued)
            out << "coverage plateau: reached at seed "
                << report.coverPlateauSeed << " ("
                << config.coverPlateau
                << " consecutive seed(s) added nothing)\n";
        else
            out << "coverage plateau: not reached (window "
                << config.coverPlateau << ")\n";
    }
    std::set<uint64_t> failingSeeds;
    for (const auto &failure : report.failures)
        failingSeeds.insert(failure.seed);
    if (report.failures.empty())
        out << "result: PASS (" << report.seedsRun
            << " seed(s) clean)\n";
    else
        out << "result: FAIL (" << failingSeeds.size() << " of "
            << report.seedsRun << " seed(s) failing)\n";
    return out.str();
}

int
fuzzMain(const FuzzConfig &config)
{
    auto begin = std::chrono::steady_clock::now();
    FuzzReport report = runFuzz(config);
    auto end = std::chrono::steady_clock::now();

    std::fputs(renderReport(report, config).c_str(), stdout);

    // Timing is real-world noise: stderr only, so stdout stays
    // deterministic for --replay and the golden CLI tests.
    double ms = std::chrono::duration<double, std::milli>(end - begin)
                    .count();
    double rate = ms > 0 ? 1000.0 * static_cast<double>(report.seedsRun)
                               / ms
                         : 0;
    std::fprintf(stderr,
                 "[fuzz] %llu seed(s) in %.1f ms (%.1f seeds/s, jobs=%u)\n",
                 static_cast<unsigned long long>(report.seedsRun), ms,
                 rate, std::max<uint32_t>(1, config.jobs));
    if (!report.seedLatenciesMs.empty()) {
        std::vector<double> sorted = report.seedLatenciesMs;
        std::sort(sorted.begin(), sorted.end());
        auto pct = [&](double p) {
            size_t idx = static_cast<size_t>(p * (sorted.size() - 1));
            return sorted[idx];
        };
        std::fprintf(stderr,
                     "[fuzz] seed latency p50=%.2f ms p95=%.2f ms "
                     "max=%.2f ms\n",
                     pct(0.50), pct(0.95), sorted.back());
    }
    return reportOk(report) ? 0 : 1;
}

} // namespace hwdbg::fuzz
