/**
 * @file
 * Reference evaluator: an independent big-int AST-walking simulator.
 *
 * RefEval implements the documented semantics of the cycle simulator
 * (sim/simulator.hh) from scratch: two-state logic, zero-initialized
 * registers, bounded-fixpoint combinational settling with assigns
 * before comb processes in item order, pre-edge execution of clocked
 * processes, buffered nonblocking assignments, self-determined and
 * context width rules, and hardware-overflow memory addressing.
 *
 * It deliberately shares no evaluation code with src/sim — widths,
 * expression evaluation, and lvalue stores are all reimplemented — so
 * the differential oracle compares two independent interpretations of
 * the same spec. The only shared substrate is Bits (arbitrary-width
 * arithmetic) and formatDisplay (printf-style formatting), which the
 * Bits width-boundary tests and the printer tests cover separately.
 *
 * Unlike the simulator it has no primitive models and no VCD hook; it
 * raises HdlError on instances, which the oracles treat as
 * "inapplicable" rather than as a failure.
 */

#ifndef HWDBG_FUZZ_REFEVAL_HH
#define HWDBG_FUZZ_REFEVAL_HH

#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/bits.hh"
#include "hdl/ast.hh"

namespace hwdbg::fuzz
{

class RefEval
{
  public:
    /** Build over an elaborated (flat) module; settles comb logic. */
    explicit RefEval(hdl::ModulePtr flat);

    void poke(const std::string &signal, const Bits &value);
    Bits peek(const std::string &signal) const;

    /** Settle logic and process any clock edges since the last eval. */
    void eval();

    uint64_t cycle() const { return cycle_; }
    bool finished() const { return finished_; }

    struct LogLine
    {
        uint64_t cycle;
        std::string text;
    };
    const std::vector<LogLine> &log() const { return log_; }

  private:
    struct Sig
    {
        std::string name;
        uint32_t width = 1;
        uint32_t arraySize = 0;
        bool isReg = false;
        hdl::PortDir dir = hdl::PortDir::None;
    };

    /** Resolved store destination (mirror of the spec, not the code). */
    struct Target
    {
        int sig = -1;
        bool whole = true;
        bool dropped = false;
        int64_t element = -1;
        uint32_t msb = 0;
        uint32_t lsb = 0;
    };

    int idOf(const std::string &name) const;
    int requireId(const std::string &name) const;

    Bits constEval(const hdl::ExprPtr &expr) const;
    uint32_t selfWidth(const hdl::ExprPtr &expr);
    Bits evalE(const hdl::ExprPtr &expr, uint32_t ctx_width);
    bool evalB(const hdl::ExprPtr &expr);

    Target resolveSimple(const hdl::ExprPtr &lhs);
    void applyTarget(const Target &target, const Bits &value);
    void store(const hdl::ExprPtr &lhs, const Bits &value);
    void assignInto(const hdl::ExprPtr &lhs, const Bits &value,
                    bool buffer_nba);

    void settle();
    void exec(const hdl::StmtPtr &stmt, bool clocked);

    hdl::ModulePtr mod_;
    std::vector<Sig> sigs_;
    std::map<std::string, int> byName_;
    std::map<std::string, Bits> params_;

    std::vector<const hdl::ContAssignItem *> assigns_;
    std::vector<const hdl::AlwaysItem *> combProcs_;
    std::vector<const hdl::AlwaysItem *> clockedProcs_;

    std::vector<Bits> values_;
    std::vector<std::vector<Bits>> arrays_;
    std::unordered_map<const hdl::Expr *, uint32_t> widths_;

    struct Pending
    {
        Target target;
        Bits value;
    };
    std::vector<Pending> nba_;

    std::map<std::string, bool> prevClocks_;
    bool primaryRaw_ = false;
    bool changed_ = false;
    bool finished_ = false;
    uint64_t cycle_ = 0;
    std::vector<LogLine> log_;
};

} // namespace hwdbg::fuzz

#endif // HWDBG_FUZZ_REFEVAL_HH
