/**
 * @file
 * Fuzzing campaign driver: seed scheduling, the worker pool, report
 * rendering, and the mutation self-check.
 *
 * Seeds are independent, so the driver fans them out over a pool of
 * worker threads pulling from an atomic counter. All results are
 * collected and sorted by seed before rendering: the report for a given
 * configuration is byte-identical no matter how many workers ran it or
 * how they interleaved (timing goes to stderr, never into the report).
 *
 * --self-check mode validates the harness itself: it activates the
 * known mutations from common/testhooks.hh one at a time (sequentially,
 * single-threaded — the mutation switch is a global) and sweeps seeds
 * until an oracle catches each one, then reports the catch rate. The
 * build is considered sound when at least 80% of mutations are caught.
 */

#ifndef HWDBG_FUZZ_RUNNER_HH
#define HWDBG_FUZZ_RUNNER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "fuzz/oracles.hh"

namespace hwdbg::fuzz
{

struct FuzzConfig
{
    uint64_t seeds = 100;
    uint64_t start = 0;
    uint32_t jobs = 1;
    uint32_t cycles = 24;
    /** Oracle bitmask (oracleBit). */
    uint32_t mask = 0xF;
    bool json = false;
    /** Run exactly one seed (reports it even when clean). */
    bool replay = false;
    uint64_t replaySeed = 0;
    /** Validate the harness against the mutation catalog instead of
     *  hunting for new bugs. */
    bool selfCheck = false;
    uint32_t shrinkBudget = 600;
    /**
     * Track structural coverage signatures per seed (a second,
     * oracle-independent pass over each generated design). Never
     * changes verdicts: coverage is reported alongside them.
     */
    bool cover = false;
    /** Consecutive no-new-coverage seeds that declare a plateau. */
    uint32_t coverPlateau = 32;
    /**
     * Percent chance of the generator's scheduler-race template
     * (GeneratorOptions::raceChance). Useful together with the Order
     * oracle: it plants blocking-write races for the analyze race pass
     * to flag and the permutation run to confirm.
     */
    uint32_t raceChance = 0;
    /** Execution backend for the campaign's simulators (--backend);
     *  empty runs the interpreter. See OracleOptions::backend. */
    sim::BackendFactory backend;
};

/** One failing seed, with its shrunk reproducer. */
struct SeedFailure
{
    uint64_t seed = 0;
    Oracle oracle = Oracle::Roundtrip;
    std::string detail;
    /** Verilog text of the shrunk design. */
    std::string reproducer;
    uint32_t itemsBefore = 0;
    uint32_t itemsAfter = 0;
    uint32_t shrinkAttempts = 0;
};

/** Outcome of one injected mutation during --self-check. */
struct MutationOutcome
{
    int id = 0;
    std::string description;
    std::string expectedOracle;
    bool caught = false;
    uint64_t seed = 0;
    std::string caughtBy;
    std::string detail;
    std::string reproducer;
    /** Seeds tried before the catch (or the full budget). */
    uint64_t seedsTried = 0;
};

/** Coverage novelty of one seed (campaign --cover mode). */
struct SeedCoverage
{
    uint64_t seed = 0;
    /** Signature keys this seed's design+stimulus covered. */
    uint32_t keys = 0;
    /** Of those, keys no earlier seed had covered. */
    uint32_t newKeys = 0;
};

struct FuzzReport
{
    uint64_t seedsRun = 0;
    std::vector<SeedFailure> failures;
    bool selfCheck = false;
    std::vector<MutationOutcome> mutations;
    /**
     * --cover results, in seed order. Folded after the worker pool
     * joins (novelty depends on seed order, not completion order), so
     * the numbers are identical for any --jobs count.
     */
    std::vector<SeedCoverage> coverage;
    /** Distinct signature keys across the whole campaign. */
    uint64_t coverKeys = 0;
    /** coverPlateau consecutive seeds added nothing new. */
    bool coverPlateaued = false;
    /** Seed at which the plateau was declared (when plateaued). */
    uint64_t coverPlateauSeed = 0;
    /**
     * Order-oracle verdict tally across the campaign (all zero unless
     * the order oracle is in the mask). Divergence on an unflagged
     * design is a failure, never a stat, so every "confirmed" here is a
     * statically flagged race that really diverged under permutation.
     */
    OrderStats order;
    /**
     * Wall-clock latency of each completed seed, in completion order.
     * Timing is nondeterministic, so this never reaches the rendered
     * report: fuzzMain() summarizes it (p50/p95) on stderr only.
     */
    std::vector<double> seedLatenciesMs;
};

/** True when the report means exit code 0. */
bool reportOk(const FuzzReport &report);

/** Run the configured campaign. Pure: no output, deterministic. */
FuzzReport runFuzz(const FuzzConfig &config);

/** Deterministic report text (text or JSON per config.json). */
std::string renderReport(const FuzzReport &report,
                         const FuzzConfig &config);

/**
 * CLI entry: run, print the report to stdout and wall-clock/throughput
 * to stderr. Returns the process exit code (0 ok, 1 failures).
 */
int fuzzMain(const FuzzConfig &config);

} // namespace hwdbg::fuzz

#endif // HWDBG_FUZZ_RUNNER_HH
