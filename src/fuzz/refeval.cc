#include "fuzz/refeval.hh"

#include <algorithm>

#include "common/logging.hh"
#include "sim/eval.hh"

namespace hwdbg::fuzz
{

using namespace hdl;

namespace
{

/**
 * Hardware-overflow addressing: truncate the index to the physical
 * address width; accesses landing past a non-power-of-two memory are
 * dropped (-1).
 */
int64_t
refEffectiveIndex(uint64_t index, uint32_t size)
{
    uint32_t addr_bits = 0;
    while ((uint64_t(1) << addr_bits) < size)
        ++addr_bits;
    uint64_t masked = addr_bits >= 64
                          ? index
                          : index & ((uint64_t(1) << addr_bits) - 1);
    if (masked >= size)
        return -1;
    return static_cast<int64_t>(masked);
}

} // namespace

RefEval::RefEval(ModulePtr flat) : mod_(std::move(flat))
{
    for (const auto &item : mod_->items) {
        switch (item->kind) {
          case ItemKind::Param: {
            const auto *param = item->as<ParamItem>();
            params_[param->name] = constEval(param->value);
            break;
          }
          case ItemKind::Net: {
            const auto *net = item->as<NetItem>();
            if (byName_.count(net->name))
                fatal("refeval: duplicate declaration of '%s'",
                      net->name.c_str());
            Sig sig;
            sig.name = net->name;
            sig.isReg = net->net == NetKind::Reg;
            sig.dir = net->dir;
            if (net->range) {
                uint64_t msb = constEval(net->range->msb).toU64();
                uint64_t lsb = constEval(net->range->lsb).toU64();
                if (lsb != 0 || msb > 1u << 20)
                    fatal("refeval: unsupported range on '%s'",
                          net->name.c_str());
                sig.width = static_cast<uint32_t>(msb) + 1;
            }
            if (net->array) {
                uint64_t msb = constEval(net->array->msb).toU64();
                uint64_t lsb = constEval(net->array->lsb).toU64();
                if (lsb != 0 || !sig.isReg)
                    fatal("refeval: unsupported memory bounds on '%s'",
                          net->name.c_str());
                sig.arraySize = static_cast<uint32_t>(msb) + 1;
            }
            byName_[sig.name] = static_cast<int>(sigs_.size());
            sigs_.push_back(std::move(sig));
            break;
          }
          case ItemKind::ContAssign:
            assigns_.push_back(item->as<ContAssignItem>());
            break;
          case ItemKind::Always: {
            const auto *proc = item->as<AlwaysItem>();
            if (proc->isComb)
                combProcs_.push_back(proc);
            else
                clockedProcs_.push_back(proc);
            break;
          }
          case ItemKind::Instance:
            fatal("refeval: module instances are not supported");
        }
    }

    values_.reserve(sigs_.size());
    arrays_.resize(sigs_.size());
    for (size_t i = 0; i < sigs_.size(); ++i) {
        values_.emplace_back(sigs_[i].width, 0);
        if (sigs_[i].arraySize != 0)
            arrays_[i].assign(sigs_[i].arraySize,
                              Bits(sigs_[i].width, 0));
    }

    for (const auto *proc : clockedProcs_)
        for (const auto &sens : proc->sens) {
            int id = requireId(sens.signal);
            if (sigs_[id].width != 1 || sigs_[id].arraySize != 0)
                fatal("refeval: clock '%s' is not a 1-bit scalar",
                      sens.signal.c_str());
            prevClocks_[sens.signal] = false;
        }

    settle();
}

int
RefEval::idOf(const std::string &name) const
{
    auto it = byName_.find(name);
    return it == byName_.end() ? -1 : it->second;
}

int
RefEval::requireId(const std::string &name) const
{
    int id = idOf(name);
    if (id < 0)
        fatal("refeval: unknown signal '%s'", name.c_str());
    return id;
}

Bits
RefEval::constEval(const ExprPtr &expr) const
{
    if (!expr)
        fatal("refeval: null constant expression");
    switch (expr->kind) {
      case ExprKind::Number:
        return expr->as<NumberExpr>()->value;
      case ExprKind::Id: {
        auto it = params_.find(expr->as<IdExpr>()->name);
        if (it == params_.end())
            fatal("refeval: '%s' is not a constant",
                  expr->as<IdExpr>()->name.c_str());
        return it->second;
      }
      case ExprKind::Binary: {
        const auto *bin = expr->as<BinaryExpr>();
        Bits lhs = constEval(bin->lhs);
        Bits rhs = constEval(bin->rhs);
        switch (bin->op) {
          case BinaryOp::Add: return lhs.add(rhs);
          case BinaryOp::Sub: return lhs.sub(rhs);
          case BinaryOp::Mul: return lhs.mul(rhs);
          case BinaryOp::Shl: return lhs.shl(rhs.toU64());
          case BinaryOp::Shr: return lhs.shr(rhs.toU64());
          default:
            break;
        }
        fatal("refeval: unsupported constant operator");
      }
      default:
        fatal("refeval: expression is not constant");
    }
}

uint32_t
RefEval::selfWidth(const ExprPtr &expr)
{
    auto it = widths_.find(expr.get());
    if (it != widths_.end())
        return it->second;

    uint32_t width = 0;
    switch (expr->kind) {
      case ExprKind::Number: {
        const auto *num = expr->as<NumberExpr>();
        width = num->sized
                    ? num->value.width()
                    : std::max<uint32_t>(32, num->value.width());
        break;
      }
      case ExprKind::Id: {
        const auto *id = expr->as<IdExpr>();
        int sig = idOf(id->name);
        if (sig < 0) {
            auto param = params_.find(id->name);
            if (param == params_.end())
                fatal("refeval: unknown identifier '%s'",
                      id->name.c_str());
            width = param->second.width();
            break;
        }
        if (sigs_[sig].arraySize != 0)
            fatal("refeval: memory '%s' referenced without an index",
                  id->name.c_str());
        width = sigs_[sig].width;
        break;
      }
      case ExprKind::Unary: {
        const auto *un = expr->as<UnaryExpr>();
        uint32_t arg = selfWidth(un->arg);
        width = (un->op == UnaryOp::Neg || un->op == UnaryOp::BitNot)
                    ? arg
                    : 1;
        break;
      }
      case ExprKind::Binary: {
        const auto *bin = expr->as<BinaryExpr>();
        uint32_t lhs = selfWidth(bin->lhs);
        uint32_t rhs = selfWidth(bin->rhs);
        switch (bin->op) {
          case BinaryOp::Add:
          case BinaryOp::Sub:
          case BinaryOp::Mul:
          case BinaryOp::Div:
          case BinaryOp::Mod:
          case BinaryOp::BitAnd:
          case BinaryOp::BitOr:
          case BinaryOp::BitXor:
            width = std::max(lhs, rhs);
            break;
          case BinaryOp::Shl:
          case BinaryOp::Shr:
            width = lhs;
            break;
          default:
            width = 1;
            break;
        }
        break;
      }
      case ExprKind::Ternary: {
        const auto *tern = expr->as<TernaryExpr>();
        selfWidth(tern->cond);
        width = std::max(selfWidth(tern->thenExpr),
                         selfWidth(tern->elseExpr));
        break;
      }
      case ExprKind::Concat: {
        for (const auto &part : expr->as<ConcatExpr>()->parts)
            width += selfWidth(part);
        break;
      }
      case ExprKind::Repeat: {
        const auto *rep = expr->as<RepeatExpr>();
        uint64_t count = constEval(rep->count).toU64();
        width = selfWidth(rep->inner) *
                static_cast<uint32_t>(count);
        break;
      }
      case ExprKind::Index: {
        const auto *idx = expr->as<IndexExpr>();
        int sig = requireId(idx->base);
        selfWidth(idx->index);
        width = sigs_[sig].arraySize != 0 ? sigs_[sig].width : 1;
        break;
      }
      case ExprKind::Range: {
        const auto *range = expr->as<RangeExpr>();
        requireId(range->base);
        uint64_t msb = constEval(range->msb).toU64();
        uint64_t lsb = constEval(range->lsb).toU64();
        if (lsb > msb)
            fatal("refeval: reversed part select on '%s'",
                  range->base.c_str());
        width = static_cast<uint32_t>(msb - lsb) + 1;
        break;
      }
    }
    if (width == 0)
        fatal("refeval: zero-width expression");
    widths_[expr.get()] = width;
    return width;
}

Bits
RefEval::evalE(const ExprPtr &expr, uint32_t ctx_width)
{
    uint32_t self = selfWidth(expr);
    uint32_t w = std::max(ctx_width, self);

    switch (expr->kind) {
      case ExprKind::Number:
        return expr->as<NumberExpr>()->value.resized(w);
      case ExprKind::Id: {
        const auto *id = expr->as<IdExpr>();
        int sig = idOf(id->name);
        if (sig < 0)
            return params_.at(id->name).resized(w);
        return values_[sig].resized(w);
      }
      case ExprKind::Unary: {
        const auto *un = expr->as<UnaryExpr>();
        switch (un->op) {
          case UnaryOp::Neg:
            return evalE(un->arg, w).negate();
          case UnaryOp::BitNot:
            return evalE(un->arg, w).bitNot();
          case UnaryOp::LogNot:
            return Bits(w, evalE(un->arg, 0).isZero() ? 1 : 0);
          case UnaryOp::RedAnd:
            return Bits(w, evalE(un->arg, 0).redAnd() ? 1 : 0);
          case UnaryOp::RedOr:
            return Bits(w, evalE(un->arg, 0).redOr() ? 1 : 0);
          case UnaryOp::RedXor:
            return Bits(w, evalE(un->arg, 0).redXor() ? 1 : 0);
        }
        break;
      }
      case ExprKind::Binary: {
        const auto *bin = expr->as<BinaryExpr>();
        switch (bin->op) {
          case BinaryOp::Add:
            return evalE(bin->lhs, w).add(evalE(bin->rhs, w))
                .resized(w);
          case BinaryOp::Sub:
            return evalE(bin->lhs, w).sub(evalE(bin->rhs, w))
                .resized(w);
          case BinaryOp::Mul:
            return evalE(bin->lhs, w).mul(evalE(bin->rhs, w))
                .resized(w);
          case BinaryOp::Div:
            return evalE(bin->lhs, w).divu(evalE(bin->rhs, w))
                .resized(w);
          case BinaryOp::Mod:
            return evalE(bin->lhs, w).modu(evalE(bin->rhs, w))
                .resized(w);
          case BinaryOp::BitAnd:
            return evalE(bin->lhs, w).bitAnd(evalE(bin->rhs, w));
          case BinaryOp::BitOr:
            return evalE(bin->lhs, w).bitOr(evalE(bin->rhs, w));
          case BinaryOp::BitXor:
            return evalE(bin->lhs, w).bitXor(evalE(bin->rhs, w));
          case BinaryOp::Shl:
            return evalE(bin->lhs, w)
                .shl(evalE(bin->rhs, 0).toU64());
          case BinaryOp::Shr:
            return evalE(bin->lhs, w)
                .shr(evalE(bin->rhs, 0).toU64());
          case BinaryOp::LogAnd:
            return Bits(w, (!evalE(bin->lhs, 0).isZero() &&
                            !evalE(bin->rhs, 0).isZero())
                               ? 1 : 0);
          case BinaryOp::LogOr:
            return Bits(w, (!evalE(bin->lhs, 0).isZero() ||
                            !evalE(bin->rhs, 0).isZero())
                               ? 1 : 0);
          default: {
            uint32_t cmp_w = std::max(selfWidth(bin->lhs),
                                      selfWidth(bin->rhs));
            int cmp = evalE(bin->lhs, cmp_w)
                          .compare(evalE(bin->rhs, cmp_w));
            bool result = false;
            switch (bin->op) {
              case BinaryOp::Eq: result = cmp == 0; break;
              case BinaryOp::Ne: result = cmp != 0; break;
              case BinaryOp::Lt: result = cmp < 0; break;
              case BinaryOp::Le: result = cmp <= 0; break;
              case BinaryOp::Gt: result = cmp > 0; break;
              case BinaryOp::Ge: result = cmp >= 0; break;
              default:
                fatal("refeval: bad comparison operator");
            }
            return Bits(w, result ? 1 : 0);
          }
        }
        break;
      }
      case ExprKind::Ternary: {
        const auto *tern = expr->as<TernaryExpr>();
        bool cond = !evalE(tern->cond, 0).isZero();
        return evalE(cond ? tern->thenExpr : tern->elseExpr, w)
            .resized(w);
      }
      case ExprKind::Concat: {
        const auto *cat = expr->as<ConcatExpr>();
        Bits out(0);
        bool first = true;
        for (const auto &part : cat->parts) {
            Bits val = evalE(part, 0);
            out = first ? val : out.concat(val);
            first = false;
        }
        return out.resized(w);
      }
      case ExprKind::Repeat: {
        const auto *rep = expr->as<RepeatExpr>();
        uint32_t count = self / selfWidth(rep->inner);
        return evalE(rep->inner, 0).replicate(count).resized(w);
      }
      case ExprKind::Index: {
        const auto *idx = expr->as<IndexExpr>();
        int sig = requireId(idx->base);
        uint64_t index = evalE(idx->index, 0).toU64();
        if (sigs_[sig].arraySize != 0) {
            int64_t elem =
                refEffectiveIndex(index, sigs_[sig].arraySize);
            if (elem < 0)
                return Bits(w, 0);
            return arrays_[sig][static_cast<size_t>(elem)].resized(w);
        }
        return Bits(w, values_[sig].bit(
                           static_cast<uint32_t>(index)) ? 1 : 0);
      }
      case ExprKind::Range: {
        const auto *range = expr->as<RangeExpr>();
        int sig = requireId(range->base);
        uint32_t msb =
            static_cast<uint32_t>(constEval(range->msb).toU64());
        uint32_t lsb =
            static_cast<uint32_t>(constEval(range->lsb).toU64());
        return values_[sig].slice(msb, lsb).resized(w);
      }
    }
    fatal("refeval: unreachable expression kind");
}

bool
RefEval::evalB(const ExprPtr &expr)
{
    return !evalE(expr, 0).isZero();
}

RefEval::Target
RefEval::resolveSimple(const ExprPtr &lhs)
{
    Target target;
    switch (lhs->kind) {
      case ExprKind::Id: {
        const auto *id = lhs->as<IdExpr>();
        target.sig = requireId(id->name);
        target.whole = true;
        break;
      }
      case ExprKind::Index: {
        const auto *idx = lhs->as<IndexExpr>();
        target.sig = requireId(idx->base);
        const Sig &sig = sigs_[target.sig];
        uint64_t index = evalE(idx->index, 0).toU64();
        if (sig.arraySize != 0) {
            target.element = refEffectiveIndex(index, sig.arraySize);
            target.dropped = target.element < 0;
            target.whole = true;
        } else if (index >= sig.width) {
            target.dropped = true;
        } else {
            target.whole = false;
            target.msb = target.lsb = static_cast<uint32_t>(index);
        }
        break;
      }
      case ExprKind::Range: {
        const auto *range = lhs->as<RangeExpr>();
        target.sig = requireId(range->base);
        target.whole = false;
        target.msb =
            static_cast<uint32_t>(constEval(range->msb).toU64());
        target.lsb =
            static_cast<uint32_t>(constEval(range->lsb).toU64());
        break;
      }
      default:
        fatal("refeval: expression is not assignable");
    }
    return target;
}

void
RefEval::applyTarget(const Target &target, const Bits &value)
{
    if (target.dropped)
        return;
    const Sig &sig = sigs_[target.sig];
    if (target.element >= 0) {
        Bits &slot =
            arrays_[target.sig][static_cast<size_t>(target.element)];
        Bits next = value.resized(sig.width);
        if (slot != next) {
            slot = std::move(next);
            changed_ = true;
        }
        return;
    }
    if (target.whole) {
        Bits next = value.resized(sig.width);
        if (values_[target.sig] != next) {
            values_[target.sig] = std::move(next);
            changed_ = true;
        }
        return;
    }
    Bits before = values_[target.sig];
    values_[target.sig].setSlice(target.msb, target.lsb, value);
    if (values_[target.sig] != before)
        changed_ = true;
}

void
RefEval::assignInto(const ExprPtr &lhs, const Bits &value,
                    bool buffer_nba)
{
    uint32_t total = selfWidth(lhs);
    if (lhs->kind == ExprKind::Concat) {
        uint32_t consumed = 0;
        for (const auto &part : lhs->as<ConcatExpr>()->parts) {
            Target target = resolveSimple(part);
            uint32_t pw = selfWidth(part);
            Bits piece = value.slice(total - consumed - 1,
                                     total - consumed - pw);
            if (buffer_nba)
                nba_.push_back(Pending{target, std::move(piece)});
            else
                applyTarget(target, piece);
            consumed += pw;
        }
        return;
    }
    Target target = resolveSimple(lhs);
    Bits piece = value.slice(total - 1, 0);
    if (buffer_nba)
        nba_.push_back(Pending{target, std::move(piece)});
    else
        applyTarget(target, piece);
}

void
RefEval::store(const ExprPtr &lhs, const Bits &value)
{
    assignInto(lhs, value, false);
}

void
RefEval::settle()
{
    // A pass is stable when its end state equals its start state;
    // transient intra-pass toggles (default-then-override processes)
    // are not progress. Mirrors Simulator::settleComb.
    size_t max_iters = assigns_.size() + combProcs_.size() + 4;
    for (size_t iter = 0; iter < max_iters; ++iter) {
        std::vector<Bits> before_values = values_;
        std::vector<std::vector<Bits>> before_arrays = arrays_;
        changed_ = false;
        for (const auto *assign : assigns_) {
            uint32_t lw = selfWidth(assign->lhs);
            uint32_t cw = std::max(lw, selfWidth(assign->rhs));
            Bits value = evalE(assign->rhs, cw).resized(lw);
            store(assign->lhs, value);
        }
        for (const auto *proc : combProcs_)
            exec(proc->body, false);
        if (!changed_)
            return;
        auto same = [](const Bits &a, const Bits &b) {
            return a.width() == b.width() && a.compare(b) == 0;
        };
        bool stable = true;
        for (size_t i = 0; stable && i < values_.size(); ++i)
            stable = same(before_values[i], values_[i]);
        for (size_t i = 0; stable && i < arrays_.size(); ++i)
            for (size_t j = 0; stable && j < arrays_[i].size(); ++j)
                stable = same(before_arrays[i][j], arrays_[i][j]);
        if (stable)
            return;
    }
    fatal("refeval: combinational logic failed to settle");
}

void
RefEval::exec(const StmtPtr &stmt, bool clocked)
{
    if (!stmt)
        return;
    switch (stmt->kind) {
      case StmtKind::Block:
        for (const auto &sub : stmt->as<BlockStmt>()->stmts)
            exec(sub, clocked);
        break;
      case StmtKind::If: {
        const auto *branch = stmt->as<IfStmt>();
        if (evalB(branch->cond))
            exec(branch->thenStmt, clocked);
        else
            exec(branch->elseStmt, clocked);
        break;
      }
      case StmtKind::Case: {
        const auto *sel = stmt->as<CaseStmt>();
        Bits value = evalE(sel->selector, 0);
        uint32_t sel_w = selfWidth(sel->selector);
        const CaseItem *chosen = nullptr;
        const CaseItem *dflt = nullptr;
        for (const auto &item : sel->items) {
            if (item.labels.empty()) {
                dflt = &item;
                continue;
            }
            for (const auto &label : item.labels) {
                uint32_t cmp_w = std::max(sel_w, selfWidth(label));
                if (evalE(label, cmp_w) == value.resized(cmp_w)) {
                    chosen = &item;
                    break;
                }
            }
            if (chosen)
                break;
        }
        if (!chosen)
            chosen = dflt;
        if (chosen)
            exec(chosen->body, clocked);
        break;
      }
      case StmtKind::Assign: {
        const auto *assign = stmt->as<AssignStmt>();
        uint32_t lw = selfWidth(assign->lhs);
        uint32_t cw = std::max(lw, selfWidth(assign->rhs));
        Bits value = evalE(assign->rhs, cw).resized(lw);
        assignInto(assign->lhs, value,
                   clocked && assign->nonblocking);
        break;
      }
      case StmtKind::Display: {
        const auto *disp = stmt->as<DisplayStmt>();
        if (!clocked)
            break; // comb $display is ignored, matching the simulator
        std::vector<Bits> args;
        args.reserve(disp->args.size());
        for (const auto &arg : disp->args)
            args.push_back(evalE(arg, 0));
        log_.push_back(
            LogLine{cycle_, sim::formatDisplay(disp->format, args)});
        break;
      }
      case StmtKind::Finish:
        finished_ = true;
        break;
      case StmtKind::Null:
        break;
    }
}

void
RefEval::poke(const std::string &signal, const Bits &value)
{
    int id = requireId(signal);
    if (sigs_[id].dir != PortDir::Input)
        fatal("refeval poke: '%s' is not a top-level input",
              signal.c_str());
    values_[id] = value.resized(sigs_[id].width);
}

Bits
RefEval::peek(const std::string &signal) const
{
    return values_[requireId(signal)];
}

void
RefEval::eval()
{
    settle();

    std::map<std::string, std::pair<bool, bool>> edges;
    for (auto &[name, prev] : prevClocks_) {
        bool now = !values_[requireId(name)].isZero();
        edges[name] = {prev, now};
    }

    std::vector<const AlwaysItem *> triggered;
    for (const auto *proc : clockedProcs_) {
        for (const auto &sens : proc->sens) {
            auto [before, after] = edges[sens.signal];
            bool rising = !before && after;
            bool falling = before && !after;
            if ((sens.edge == EdgeKind::Posedge && rising) ||
                (sens.edge == EdgeKind::Negedge && falling)) {
                triggered.push_back(proc);
                break;
            }
        }
    }

    int clk_id = idOf("clk");
    bool primary_rose = false;
    if (clk_id >= 0) {
        auto it = prevClocks_.find("clk");
        bool now = !values_[clk_id].isZero();
        bool before =
            it != prevClocks_.end() ? it->second : primaryRaw_;
        primary_rose = !before && now;
        primaryRaw_ = now;
    }
    if (primary_rose)
        ++cycle_;

    for (auto &[name, prev] : prevClocks_)
        prev = edges[name].second;

    if (triggered.empty())
        return;

    for (const auto *proc : triggered)
        exec(proc->body, true);
    for (const auto &write : nba_)
        applyTarget(write.target, write.value);
    nba_.clear();

    settle();
}

} // namespace hwdbg::fuzz
