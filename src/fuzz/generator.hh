/**
 * @file
 * Seeded random generator of subset-Verilog designs.
 *
 * Each seed deterministically produces one synthesizable design drawn
 * from the constructs the testbed exercises: continuous assigns over
 * random expression trees, combinational and clocked always blocks,
 * if/case control flow, concat/range lvalues, memories with
 * hardware-overflow addressing, $display statements, and optional FSM-
 * and FIFO-shaped templates plus a parameterized submodule instance.
 *
 * Generated designs obey the simulator's structural rules by
 * construction (single 1-bit "clk" input, wires driven by assigns, regs
 * by processes, DAG-ordered combinational logic so settling is
 * guaranteed) and avoid the name substrings ("clk", "rst", "valid",
 * "ready", "data") that the lint heuristics key on, so the metamorphic
 * lint oracle can rename signals freely.
 */

#ifndef HWDBG_FUZZ_GENERATOR_HH
#define HWDBG_FUZZ_GENERATOR_HH

#include <cstdint>
#include <string>
#include <vector>

#include "hdl/ast.hh"

namespace hwdbg::fuzz
{

struct GeneratorOptions
{
    uint32_t maxExprDepth = 3;
    /** Percent chance of the optional templates. */
    uint32_t fsmChance = 40;
    uint32_t fifoChance = 30;
    uint32_t memChance = 35;
    uint32_t submoduleChance = 25;
    uint32_t displayChance = 60;
    /**
     * Percent chance of the scheduler-race template: a clocked process
     * writes a register with a blocking assignment while a sibling
     * process on the same clock consumes it into an output register.
     * Zero (the default) draws nothing from the RNG, so default-option
     * designs are byte-identical to earlier releases.
     */
    uint32_t raceChance = 0;
};

/** One top-level input the stimulus driver must toggle. */
struct StimulusPort
{
    std::string name;
    uint32_t width;
};

struct GeneratedDesign
{
    hdl::Design design;
    std::string top;

    /** Data inputs (excluding clk and rst). */
    std::vector<StimulusPort> inputs;
    /** Output ports compared by the differential oracle. */
    std::vector<std::string> outputs;
    bool hasRst = false;

    /** FSM template state register, empty when absent. */
    std::string fsmStateVar;
    /** 1-bit signals usable as stats-monitor events. */
    std::vector<std::string> eventSignals;
};

/** Generate the design for @p seed. Same seed, same design, always. */
GeneratedDesign generateDesign(uint64_t seed,
                               const GeneratorOptions &opts = {});

} // namespace hwdbg::fuzz

#endif // HWDBG_FUZZ_GENERATOR_HH
