/**
 * @file
 * Delta-debugging shrinker for failing fuzz designs.
 *
 * Given a design on which one oracle fails, the shrinker greedily
 * removes module items, simplifies statements (promoting if/case arms,
 * deleting block entries), and simplifies expressions (promoting
 * operands, substituting zero) while the SAME oracle kind keeps
 * failing and the candidate stays a valid design (it must still
 * elaborate and simulate). Port declarations are never touched: the
 * printer treats a port without a declaration as a fatal internal
 * error, and keeping the interface stable lets the stimulus replay
 * unchanged.
 *
 * The process is deterministic (fixed traversal order, no randomness)
 * and bounded by a predicate-evaluation budget, so a shrunk reproducer
 * for a seed is itself reproducible.
 */

#ifndef HWDBG_FUZZ_SHRINK_HH
#define HWDBG_FUZZ_SHRINK_HH

#include <cstdint>

#include "fuzz/generator.hh"
#include "fuzz/oracles.hh"

namespace hwdbg::fuzz
{

struct ShrinkResult
{
    GeneratedDesign design;
    /** Predicate evaluations spent. */
    uint32_t attempts = 0;
    /** Top-level items in the original / shrunk design. */
    uint32_t itemsBefore = 0;
    uint32_t itemsAfter = 0;
};

/**
 * Shrink @p gd with respect to the oracle @p kind (which must currently
 * fail on it). @p seed and @p opts must be the values the failure was
 * found with so the stimulus replays identically.
 */
ShrinkResult shrinkDesign(const GeneratedDesign &gd, uint64_t seed,
                          Oracle kind, const OracleOptions &opts,
                          uint32_t maxAttempts = 600);

} // namespace hwdbg::fuzz

#endif // HWDBG_FUZZ_SHRINK_HH
