#include "fuzz/oracles.hh"

#include <algorithm>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <utility>

#include "analyze/analyze.hh"
#include "common/logging.hh"
#include "compile/backend.hh"
#include "core/dep_monitor.hh"
#include "core/fsm_monitor.hh"
#include "core/losscheck.hh"
#include "core/signalcat.hh"
#include "core/stats_monitor.hh"
#include "core/validcheck.hh"
#include "elab/elaborate.hh"
#include "fuzz/refeval.hh"
#include "fuzz/rng.hh"
#include "hdl/parser.hh"
#include "hdl/printer.hh"
#include "lint/diagnostic.hh"
#include "lint/lint.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "sim/simulator.hh"
#include "trace/json.hh"
#include "trace/run.hh"
#include "trace/vcd.hh"

namespace hwdbg::fuzz
{

using namespace hdl;

const char *
oracleName(Oracle oracle)
{
    switch (oracle) {
      case Oracle::Roundtrip:
        return "roundtrip";
      case Oracle::Differential:
        return "differential";
      case Oracle::Lint:
        return "lint";
      case Oracle::Instrument:
        return "instrument";
      case Oracle::Order:
        return "order";
      case Oracle::Xbackend:
        return "xbackend";
      case Oracle::Xtrace:
        return "xtrace";
    }
    return "?";
}

bool
oracleFromName(const std::string &name, Oracle *out)
{
    for (uint32_t i = 0; i < kOracleCount; ++i) {
        Oracle oracle = static_cast<Oracle>(i);
        if (name == oracleName(oracle)) {
            *out = oracle;
            return true;
        }
    }
    return false;
}

namespace
{

bool
bitsEq(const Bits &a, const Bits &b)
{
    return a.width() == b.width() && a.compare(b) == 0;
}

std::string
hex(const Bits &value)
{
    return "0x" + value.toHexString();
}

// ---------------------------------------------------------------- stimulus

/** Pre-drawn input values: identical across every run of one seed. */
struct Stimulus
{
    struct CycleIn
    {
        bool rst;
        std::vector<Bits> inputs;
    };
    std::vector<CycleIn> cycles;
};

Stimulus
makeStimulus(const GeneratedDesign &gd, uint64_t seed, uint32_t cycles)
{
    // Distinct stream from the design's: xor with an arbitrary tag so
    // design shape and stimulus are independent draws of the same seed.
    Rng rng(seed ^ 0x5354494d554c5553ULL);
    Stimulus stim;
    stim.cycles.resize(cycles);
    for (uint32_t t = 0; t < cycles; ++t) {
        auto &in = stim.cycles[t];
        in.rst = t < 2 || rng.chance(3);
        for (const auto &port : gd.inputs)
            in.inputs.push_back(rng.bits(port.width));
    }
    return stim;
}

// ------------------------------------------------------------- run traces

using NormLog = std::vector<std::pair<uint64_t, std::string>>;

NormLog
normLog(const std::vector<sim::EvalContext::LogLine> &log)
{
    NormLog out;
    for (const auto &line : log)
        out.emplace_back(line.cycle, line.text);
    return out;
}

NormLog
normLog(const std::vector<RefEval::LogLine> &log)
{
    NormLog out;
    for (const auto &line : log)
        out.emplace_back(line.cycle, line.text);
    return out;
}

/** Everything user-visible one run produced, in comparison-ready form. */
struct RunTrace
{
    /** outputs[2 * t + phase][i]: output i after eval at clk=phase. */
    std::vector<std::vector<Bits>> outputs;
    /** Pre-edge value of the FSM state var, per clock cycle. */
    std::vector<Bits> preEdgeFsm;
    /** Pre-edge levels of the stat event signals, per clock cycle. */
    std::vector<std::vector<bool>> preEdgeEvents;
    NormLog log;
    uint64_t cycles = 0;
    bool finished = false;
};

/**
 * Drive @p sim with @p stim. Works on both Simulator and RefEval (they
 * expose the same poke/peek/eval surface). "Pre-edge" samples are taken
 * after the clk=0 eval: clk and rst never feed generated expressions,
 * so these equal the values the clocked processes will read at the
 * following posedge.
 */
template <typename SimT>
RunTrace
runTrace(SimT &sim, const GeneratedDesign &gd, const Stimulus &stim)
{
    RunTrace tr;
    tr.preEdgeEvents.resize(gd.eventSignals.size());
    for (const auto &in : stim.cycles) {
        if (gd.hasRst)
            sim.poke("rst", Bits(1, in.rst ? 1 : 0));
        for (size_t i = 0; i < gd.inputs.size(); ++i)
            sim.poke(gd.inputs[i].name, in.inputs[i]);

        sim.poke("clk", Bits(1, 0));
        sim.eval();
        tr.outputs.emplace_back();
        for (const auto &out : gd.outputs)
            tr.outputs.back().push_back(sim.peek(out));
        if (!gd.fsmStateVar.empty())
            tr.preEdgeFsm.push_back(sim.peek(gd.fsmStateVar));
        for (size_t i = 0; i < gd.eventSignals.size(); ++i)
            tr.preEdgeEvents[i].push_back(
                sim.peek(gd.eventSignals[i]).toU64() != 0);

        sim.poke("clk", Bits(1, 1));
        sim.eval();
        tr.outputs.emplace_back();
        for (const auto &out : gd.outputs)
            tr.outputs.back().push_back(sim.peek(out));

        if (sim.finished())
            break;
    }
    tr.cycles = sim.cycle();
    tr.finished = sim.finished();
    tr.log = normLog(sim.log());
    return tr;
}

std::optional<std::string>
diffOutputs(const RunTrace &a, const RunTrace &b,
            const GeneratedDesign &gd, const std::string &aName,
            const std::string &bName)
{
    size_t steps = std::min(a.outputs.size(), b.outputs.size());
    for (size_t s = 0; s < steps; ++s) {
        for (size_t i = 0; i < gd.outputs.size(); ++i) {
            if (!bitsEq(a.outputs[s][i], b.outputs[s][i]))
                return "output " + gd.outputs[i] + " differs at cycle " +
                       std::to_string(s / 2) +
                       (s % 2 ? " (after posedge): " : " (pre-edge): ") +
                       aName + "=" + hex(a.outputs[s][i]) + " " + bName +
                       "=" + hex(b.outputs[s][i]);
        }
    }
    if (a.outputs.size() != b.outputs.size())
        return "run length differs: " + aName + " stopped after " +
               std::to_string(a.outputs.size()) + " half-cycles, " +
               bName + " after " + std::to_string(b.outputs.size());
    if (a.cycles != b.cycles)
        return "cycle count differs: " + aName + "=" +
               std::to_string(a.cycles) + " " + bName + "=" +
               std::to_string(b.cycles);
    if (a.finished != b.finished)
        return "$finish state differs: " + aName + "=" +
               std::to_string(a.finished) + " " + bName + "=" +
               std::to_string(b.finished);
    return std::nullopt;
}

std::optional<std::string>
diffLogs(const NormLog &a, const NormLog &b, const std::string &aName,
         const std::string &bName)
{
    size_t n = std::min(a.size(), b.size());
    for (size_t i = 0; i < n; ++i) {
        if (a[i] != b[i])
            return "log line " + std::to_string(i) + " differs: " +
                   aName + "=[" + std::to_string(a[i].first) + "] \"" +
                   a[i].second + "\" " + bName + "=[" +
                   std::to_string(b[i].first) + "] \"" + b[i].second +
                   "\"";
    }
    if (a.size() != b.size())
        return "log length differs: " + aName + "=" +
               std::to_string(a.size()) + " lines, " + bName + "=" +
               std::to_string(b.size());
    return std::nullopt;
}

} // namespace

// ---------------------------------------------------------------- roundtrip

std::optional<Failure>
runRoundtrip(const GeneratedDesign &gd)
{
    std::string text1 = printDesign(gd.design);
    Design reparsed;
    try {
        reparsed = parse(text1, "<fuzz-roundtrip>");
    } catch (const HdlError &err) {
        return Failure{Oracle::Roundtrip,
                       std::string("printed design fails to reparse: ") +
                           err.what()};
    }
    if (!designEquals(gd.design, reparsed))
        return Failure{Oracle::Roundtrip,
                       "parse(print(ast)) is not structurally identical "
                       "to ast"};
    std::string text2 = printDesign(reparsed);
    if (text2 != text1)
        return Failure{Oracle::Roundtrip,
                       "printing is not a fixpoint: print(parse(print)) "
                       "differs from print"};
    return std::nullopt;
}

// -------------------------------------------------------------- differential

std::optional<Failure>
runDifferential(const GeneratedDesign &gd, uint64_t seed,
                uint32_t cycles, const sim::BackendFactory &backend)
{
    // The simulator consumes the design through the full front end
    // (print -> parse -> elaborate) while the reference evaluator works
    // on the original AST, so printer and parser bugs that change
    // semantics surface here even when the roundtrip stays structural.
    std::string text = printDesign(gd.design);
    Design reparsed = parse(text, "<fuzz-differential>");
    auto simFlat = elab::elaborate(reparsed, gd.top).mod;
    auto refFlat = elab::elaborate(gd.design, gd.top).mod;

    sim::Simulator sim(simFlat);
    if (backend)
        sim.setBackend(backend);
    RefEval ref(refFlat);

    Stimulus stim = makeStimulus(gd, seed, cycles);
    RunTrace simTr = runTrace(sim, gd, stim);
    RunTrace refTr = runTrace(ref, gd, stim);

    if (auto diff = diffOutputs(simTr, refTr, gd, "sim", "ref"))
        return Failure{Oracle::Differential, *diff};
    if (auto diff = diffLogs(simTr.log, refTr.log, "sim", "ref"))
        return Failure{Oracle::Differential, *diff};
    return std::nullopt;
}

// ---------------------------------------------------------------- lint meta

namespace
{

/** "mf_" flips name-length parity and contains no lint keyword; clk and
 *  rst keep their names so the clock/reset heuristics see the same
 *  design. */
std::string
renamed(const std::string &name)
{
    if (name == "clk" || name == "rst")
        return name;
    return "mf_" + name;
}

std::string
unrenamed(const std::string &name)
{
    if (name.rfind("mf_", 0) == 0)
        return name.substr(3);
    return name;
}

void
renameInExpr(const ExprPtr &expr)
{
    renameIdents(expr,
                 [](const std::string &name) { return renamed(name); });
}

ModulePtr
renameModule(const Module &mod)
{
    auto out = cloneModule(mod);
    for (auto &port : out->ports)
        port = renamed(port);
    for (auto &item : out->items) {
        switch (item->kind) {
          case ItemKind::Param: {
            auto *param = item->as<ParamItem>();
            param->name = renamed(param->name);
            renameInExpr(param->value);
            break;
          }
          case ItemKind::Net: {
            auto *net = item->as<NetItem>();
            net->name = renamed(net->name);
            if (net->range) {
                renameInExpr(net->range->msb);
                renameInExpr(net->range->lsb);
            }
            if (net->array) {
                renameInExpr(net->array->msb);
                renameInExpr(net->array->lsb);
            }
            break;
          }
          case ItemKind::ContAssign: {
            auto *assign = item->as<ContAssignItem>();
            renameInExpr(assign->lhs);
            renameInExpr(assign->rhs);
            break;
          }
          case ItemKind::Always: {
            auto *proc = item->as<AlwaysItem>();
            for (auto &sens : proc->sens)
                sens.signal = renamed(sens.signal);
            renameIdents(proc->body, [](const std::string &name) {
                return renamed(name);
            });
            break;
          }
          case ItemKind::Instance: {
            auto *inst = item->as<InstanceItem>();
            for (auto &conn : inst->conns)
                if (conn.actual)
                    renameInExpr(conn.actual);
            break;
          }
        }
    }
    return out;
}

/** Permute internal declarations among themselves and continuous
 *  assigns among themselves; everything else stays put. */
ModulePtr
reorderModule(const Module &mod, Rng &rng)
{
    auto out = cloneModule(mod);
    std::vector<size_t> declSlots;
    std::vector<size_t> assignSlots;
    for (size_t i = 0; i < out->items.size(); ++i) {
        const auto &item = out->items[i];
        if (item->kind == ItemKind::Net &&
            item->as<NetItem>()->dir == PortDir::None)
            declSlots.push_back(i);
        else if (item->kind == ItemKind::ContAssign)
            assignSlots.push_back(i);
    }
    auto shuffleSlots = [&](const std::vector<size_t> &slots) {
        for (size_t i = slots.size(); i > 1; --i) {
            size_t j = rng.below(i);
            std::swap(out->items[slots[i - 1]], out->items[slots[j]]);
        }
    };
    shuffleSlots(declSlots);
    shuffleSlots(assignSlots);
    return out;
}

/**
 * Canonical diagnostic key: everything a transform must preserve (rule,
 * severity, subclass, involved signals mapped back to their original
 * names, sorted) and nothing it may change (location, message text).
 */
std::multiset<std::string>
diagKeys(const std::vector<lint::Diagnostic> &diags, bool undoRename)
{
    std::multiset<std::string> keys;
    for (const auto &diag : diags) {
        std::vector<std::string> signals;
        for (const auto &sig : diag.signals)
            signals.push_back(undoRename ? unrenamed(sig) : sig);
        std::sort(signals.begin(), signals.end());
        std::string key = diag.rule;
        key += '|';
        key += lint::severityName(diag.severity);
        key += '|';
        key += diag.subclass;
        key += '|';
        for (const auto &sig : signals) {
            key += sig;
            key += ',';
        }
        keys.insert(key);
    }
    return keys;
}

std::optional<std::string>
diffKeys(const std::multiset<std::string> &base,
         const std::multiset<std::string> &variant,
         const std::string &transform)
{
    if (base == variant)
        return std::nullopt;
    for (const auto &key : base)
        if (variant.count(key) < base.count(key))
            return "lint diagnostics not invariant under " + transform +
                   ": lost \"" + key + "\"";
    for (const auto &key : variant)
        if (base.count(key) < variant.count(key))
            return "lint diagnostics not invariant under " + transform +
                   ": gained \"" + key + "\"";
    return "lint diagnostics not invariant under " + transform;
}

std::vector<lint::Diagnostic>
lintOf(const Module &mod)
{
    // Through print -> parse -> elaborate so the variant module gets
    // annotations by the same pipeline the CLI uses.
    Design design;
    design.modules.push_back(cloneModule(mod));
    Design reparsed = parse(printDesign(design), "<fuzz-lint>");
    auto flat = elab::elaborate(reparsed, mod.name).mod;
    return lint::runLint(*flat);
}

} // namespace

std::optional<Failure>
runLintMeta(const GeneratedDesign &gd, uint64_t seed)
{
    auto flat = elab::elaborate(gd.design, gd.top).mod;

    auto baseKeys = diagKeys(lintOf(*flat), false);

    auto renamedMod = renameModule(*flat);
    auto renKeys = diagKeys(lintOf(*renamedMod), true);
    if (auto diff = diffKeys(baseKeys, renKeys, "alpha-renaming"))
        return Failure{Oracle::Lint, *diff};

    Rng rng(seed ^ 0x5245524f52444552ULL);
    auto reordered = reorderModule(*flat, rng);
    auto reoKeys = diagKeys(lintOf(*reordered), false);
    if (auto diff =
            diffKeys(baseKeys, reoKeys, "declaration reordering"))
        return Failure{Oracle::Lint, *diff};
    return std::nullopt;
}

// --------------------------------------------------------------- instrument

namespace
{

const char *const kMonitorPrefixes[] = {
    "[FSMMonitor] ", "[Stat] ",      "[DepMonitor] ",
    "[LossCheck] ",  "[ValidCheck] ",
};

NormLog
withoutMonitorLines(const NormLog &log)
{
    NormLog out;
    for (const auto &line : log) {
        bool monitor = false;
        for (const char *prefix : kMonitorPrefixes)
            if (line.second.rfind(prefix, 0) == 0) {
                monitor = true;
                break;
            }
        if (!monitor)
            out.push_back(line);
    }
    return out;
}

bool
hasClockedDisplay(const Module &mod)
{
    bool found = false;
    std::function<void(const StmtPtr &)> scan =
        [&](const StmtPtr &stmt) {
            if (!stmt || found)
                return;
            switch (stmt->kind) {
              case StmtKind::Display:
                found = true;
                break;
              case StmtKind::Block:
                for (const auto &sub : stmt->as<BlockStmt>()->stmts)
                    scan(sub);
                break;
              case StmtKind::If: {
                const auto *branch = stmt->as<IfStmt>();
                scan(branch->thenStmt);
                scan(branch->elseStmt);
                break;
              }
              case StmtKind::Case:
                for (const auto &item : stmt->as<CaseStmt>()->items)
                    scan(item.body);
                break;
              default:
                break;
            }
        };
    for (const auto &item : mod.items) {
        if (item->kind != ItemKind::Always)
            continue;
        const auto *proc = item->as<AlwaysItem>();
        if (!proc->isComb)
            scan(proc->body);
    }
    return found;
}

} // namespace

std::optional<Failure>
runInstrument(const GeneratedDesign &gd, uint64_t seed, uint32_t cycles,
              const sim::BackendFactory &backend)
{
    auto flat = elab::elaborate(gd.design, gd.top).mod;
    Stimulus stim = makeStimulus(gd, seed, cycles);

    sim::Simulator base(flat);
    if (backend)
        base.setBackend(backend);
    RunTrace baseTr = runTrace(base, gd, stim);

    auto fail = [](std::string detail) {
        return Failure{Oracle::Instrument, std::move(detail)};
    };

    // Common check: an instrumented module must keep every user-visible
    // behaviour — outputs per half-cycle and the user's own $display
    // lines (the monitors' added lines are filtered out).
    auto checkPreserved =
        [&](ModulePtr instrumented, const std::string &pass,
            RunTrace *out_tr, sim::Simulator **out_sim,
            bool check_log = true) -> std::optional<std::string> {
        static thread_local std::unique_ptr<sim::Simulator> holder;
        holder = std::make_unique<sim::Simulator>(std::move(instrumented));
        if (backend)
            holder->setBackend(backend);
        RunTrace tr = runTrace(*holder, gd, stim);
        if (auto diff = diffOutputs(baseTr, tr, gd, "base", pass))
            return pass + ": " + *diff;
        // SignalCat legitimately empties the $display log (that is its
        // job); its log check is the reconstruction comparison instead.
        if (check_log) {
            if (auto diff = diffLogs(withoutMonitorLines(baseTr.log),
                                     withoutMonitorLines(tr.log),
                                     "base", pass))
                return pass + ": user log not preserved: " + *diff;
        }
        if (out_tr)
            *out_tr = std::move(tr);
        if (out_sim)
            *out_sim = holder.get();
        return std::nullopt;
    };

    // --- SignalCat: displays move into the recorder, log reconstructs.
    // Skipped when displays span multiple clock domains or edges: the
    // pass has a single recording clock by design and rejects such
    // modules up front.
    if (hasClockedDisplay(*flat) && core::signalCatSupported(*flat)) {
        core::SignalCatOptions opts;
        opts.bufferDepth = 8192;
        auto result = core::applySignalCat(*flat, opts);
        sim::Simulator *catSim = nullptr;
        RunTrace tr;
        if (auto diff = checkPreserved(result.module, "signalcat", &tr,
                                       &catSim, false))
            return fail(*diff);
        if (!tr.log.empty())
            return fail("signalcat: instrumented run still prints " +
                        std::to_string(tr.log.size()) +
                        " $display lines");
        auto *recorder = dynamic_cast<sim::SignalRecorder *>(
            catSim->primitive(result.plan.recorderInstance));
        if (!recorder)
            return fail("signalcat: recorder instance '" +
                        result.plan.recorderInstance + "' not found");
        NormLog rebuilt =
            normLog(core::reconstructLog(*recorder, result.plan));
        if (auto diff =
                diffLogs(baseTr.log, rebuilt, "base", "reconstructed"))
            return fail("signalcat: " + *diff);
    }

    // --- FSM monitor: reported transitions must match the state series
    // recorded from the uninstrumented run.
    if (!gd.fsmStateVar.empty()) {
        core::FsmMonitorOptions opts;
        opts.forceInclude.insert(gd.fsmStateVar);
        auto result = core::applyFsmMonitor(*flat, opts);
        sim::Simulator *fsmSim = nullptr;
        RunTrace tr;
        if (auto diff =
                checkPreserved(result.module, "fsm-monitor", &tr, &fsmSim))
            return fail(*diff);

        std::vector<core::FsmTraceEntry> got;
        for (const auto &entry : core::fsmTrace(fsmSim->log()))
            if (entry.stateVar == gd.fsmStateVar)
                got.push_back(entry);

        std::vector<core::FsmTraceEntry> want;
        uint64_t prev = 0;
        for (size_t t = 0; t < baseTr.preEdgeFsm.size(); ++t) {
            uint64_t cur = baseTr.preEdgeFsm[t].toU64();
            if (cur != prev) {
                want.push_back(core::FsmTraceEntry{t + 1, gd.fsmStateVar,
                                                   prev, cur});
                prev = cur;
            }
        }
        if (got.size() != want.size())
            return fail("fsm-monitor: trace has " +
                        std::to_string(got.size()) + " transitions of " +
                        gd.fsmStateVar + ", ground truth has " +
                        std::to_string(want.size()));
        for (size_t i = 0; i < got.size(); ++i) {
            if (got[i].cycle != want[i].cycle ||
                got[i].fromState != want[i].fromState ||
                got[i].toState != want[i].toState)
                return fail(
                    "fsm-monitor: transition " + std::to_string(i) +
                    " is cycle " + std::to_string(got[i].cycle) + ": " +
                    std::to_string(got[i].fromState) + " -> " +
                    std::to_string(got[i].toState) + ", expected cycle " +
                    std::to_string(want[i].cycle) + ": " +
                    std::to_string(want[i].fromState) + " -> " +
                    std::to_string(want[i].toState));
        }
    }

    // --- Stats monitor: final counters must equal the number of
    // posedges where the event was high, counted from the base run.
    if (!gd.eventSignals.empty()) {
        core::StatsMonitorOptions opts;
        for (size_t i = 0; i < gd.eventSignals.size() && i < 2; ++i)
            opts.events.push_back(core::statsEvent(
                "ev" + std::to_string(i), gd.eventSignals[i]));
        auto result = core::applyStatsMonitor(*flat, opts);
        sim::Simulator *statSim = nullptr;
        RunTrace tr;
        if (auto diff = checkPreserved(result.module, "stats-monitor",
                                       &tr, &statSim))
            return fail(*diff);
        auto counts = core::statCounts(statSim->log());
        for (size_t i = 0; i < opts.events.size(); ++i) {
            uint64_t want = 0;
            for (size_t t = 0; t < baseTr.outputs.size() / 2; ++t)
                if (t < baseTr.preEdgeEvents[i].size() &&
                    baseTr.preEdgeEvents[i][t])
                    ++want;
            auto it = counts.find(opts.events[i].name);
            uint64_t got = it == counts.end() ? 0 : it->second;
            if (got != want)
                return fail("stats-monitor: " + opts.events[i].name +
                            " (" + gd.eventSignals[i] + ") counted " +
                            std::to_string(got) + ", ground truth is " +
                            std::to_string(want));
        }
    }

    // --- DepMonitor / LossCheck / ValidCheck: configuration-dependent
    // passes; an HdlError means "inapplicable to this design", but when
    // they do apply the design's behaviour must be untouched.
    try {
        core::DepMonitorOptions opts;
        opts.variable = "q0";
        opts.cycles = 3;
        auto result = core::applyDepMonitor(*flat, opts);
        if (auto diff =
                checkPreserved(result.module, "dep-monitor", nullptr,
                               nullptr))
            return fail(*diff);
    } catch (const HdlError &) {
    }

    if (gd.eventSignals.size() >= 1) {
        try {
            core::LossCheckOptions opts;
            opts.source = "q0";
            opts.sourceValid = gd.eventSignals[0];
            opts.sink = "q1";
            auto result = core::applyLossCheck(*flat, opts);
            if (auto diff = checkPreserved(result.module, "losscheck",
                                           nullptr, nullptr))
                return fail(*diff);
        } catch (const HdlError &) {
        }
        try {
            core::ValidCheckOptions opts;
            opts.pairs.push_back(core::ValidPair{gd.inputs[0].name,
                                                 gd.eventSignals[0]});
            auto result = core::applyValidCheck(*flat, opts);
            if (auto diff = checkPreserved(result.module, "validcheck",
                                           nullptr, nullptr))
                return fail(*diff);
        } catch (const HdlError &) {
        }
    }

    return std::nullopt;
}

// -------------------------------------------------------------------- order

namespace
{

/** Lines sorted within each cycle: $display interleaving from sibling
 *  processes in one eval step is benign and must not count as
 *  divergence; everything else (content, cycle stamps, counts) must
 *  match. */
NormLog
sortedWithinCycle(NormLog log)
{
    std::sort(log.begin(), log.end());
    return log;
}

} // namespace

std::optional<Failure>
runOrder(const GeneratedDesign &gd, uint64_t seed, uint32_t cycles,
         OrderStats *stats, const sim::BackendFactory &backend)
{
    // Static verdict first: which signals does the analyze race pass
    // consider order-sensitive?
    auto flatA = elab::elaborate(gd.design, gd.top).mod;
    analyze::AnalyzeOptions aopts;
    aopts.passes = {"race"};
    std::vector<std::string> flaggedSignals;
    for (const auto &diag : analyze::runAnalyze(*flatA, aopts))
        if (diag.rule == "blocking-race" ||
            diag.rule == "multi-driver-nba")
            for (const auto &sig : diag.signals)
                flaggedSignals.push_back(sig);
    bool flagged = !flaggedSignals.empty();

    // Dynamic probe: identical stimulus, reversed clocked-process
    // execution order.
    auto flatB = elab::elaborate(gd.design, gd.top).mod;
    sim::Simulator simA(flatA);
    sim::Simulator simB(flatB);
    if (backend) {
        simA.setBackend(backend);
        simB.setBackend(backend);
    }
    size_t nprocs = simB.design().clockedProcs().size();
    if (nprocs >= 2) {
        std::vector<size_t> reversed(nprocs);
        for (size_t i = 0; i < nprocs; ++i)
            reversed[i] = nprocs - 1 - i;
        simB.setProcessOrder(std::move(reversed));
    }

    Stimulus stim = makeStimulus(gd, seed, cycles);
    RunTrace trA = runTrace(simA, gd, stim);
    RunTrace trB = runTrace(simB, gd, stim);

    std::optional<std::string> diff =
        diffOutputs(trA, trB, gd, "decl-order", "reversed");
    if (!diff)
        diff = diffLogs(sortedWithinCycle(trA.log),
                        sortedWithinCycle(trB.log), "decl-order",
                        "reversed");

    if (stats && flagged) {
        ++stats->flagged;
        ++(diff ? stats->confirmed : stats->unrefuted);
    }
    if (diff && !flagged)
        return Failure{
            Oracle::Order,
            "process-order divergence not flagged by the analyze race "
            "pass: " +
                *diff};
    return std::nullopt;
}

// ----------------------------------------------------------------- xbackend

std::optional<Failure>
runXbackend(const GeneratedDesign &gd, uint64_t seed, uint32_t cycles)
{
    // The interpreter is the semantics reference; the compiled bytecode
    // backend must be observationally indistinguishable from it on the
    // same elaborated design and stimulus. Beyond the per-half-cycle
    // output/log/finish comparison the dynamic oracles share, this one
    // also sweeps the complete final state — every signal and every
    // memory element — through the Simulator facade, which forces the
    // bytecode slab to flush into canonical Bits.
    auto flatA = elab::elaborate(gd.design, gd.top).mod;
    auto flatB = elab::elaborate(gd.design, gd.top).mod;
    sim::Simulator interp(flatA);
    sim::Simulator bytecode(flatB);
    bytecode.setBackend(compile::makeBytecodeBackend());

    Stimulus stim = makeStimulus(gd, seed, cycles);
    RunTrace trA = runTrace(interp, gd, stim);
    RunTrace trB = runTrace(bytecode, gd, stim);

    if (auto diff = diffOutputs(trA, trB, gd, "interp", "bytecode"))
        return Failure{Oracle::Xbackend, *diff};
    if (auto diff = diffLogs(trA.log, trB.log, "interp", "bytecode"))
        return Failure{Oracle::Xbackend, *diff};

    const sim::EvalContext &ca = interp.context();
    const sim::EvalContext &cb = bytecode.context();
    const sim::LoweredDesign &design = interp.design();
    for (size_t i = 0; i < design.numSignals(); ++i) {
        const sim::SignalInfo &info = design.info(static_cast<int>(i));
        if (!bitsEq(ca.values[i], cb.values[i]))
            return Failure{Oracle::Xbackend,
                           "final value of " + info.name +
                               " differs: interp=" + hex(ca.values[i]) +
                               " bytecode=" + hex(cb.values[i])};
        for (uint32_t e = 0; e < info.arraySize; ++e)
            if (!bitsEq(ca.arrays[i][e], cb.arrays[i][e]))
                return Failure{
                    Oracle::Xbackend,
                    "final value of " + info.name + "[" +
                        std::to_string(e) +
                        "] differs: interp=" + hex(ca.arrays[i][e]) +
                        " bytecode=" + hex(cb.arrays[i][e])};
    }
    return std::nullopt;
}

// ------------------------------------------------------------------- xtrace

std::optional<Failure>
runXtrace(const GeneratedDesign &gd, uint64_t seed, uint32_t cycles)
{
    // The trace recorder observes flushed simulator state through the
    // per-eval hook; both backends must present identical values to it
    // at every eval, so the rendered dumps must be byte-identical.
    // Tracing every signal makes the comparison maximally sensitive,
    // and arming a change trigger on rst (when present) walks the
    // Armed -> Triggered -> Done state machine under fuzz too.
    trace::TraceConfig cfg;
    cfg.budgetBytes = 1 << 16;
    if (gd.hasRst)
        cfg.trigger = "change:rst";

    auto flatA = elab::elaborate(gd.design, gd.top).mod;
    auto flatB = elab::elaborate(gd.design, gd.top).mod;
    sim::Simulator interp(flatA);
    sim::Simulator bytecode(flatB);
    bytecode.setBackend(compile::makeBytecodeBackend());

    trace::TraceRecorder recA(interp, cfg);
    trace::TraceRecorder recB(bytecode, cfg);
    recA.attach();
    recB.attach();

    Stimulus stim = makeStimulus(gd, seed, cycles);
    runTrace(interp, gd, stim);
    runTrace(bytecode, gd, stim);

    recA.detach();
    recB.detach();
    trace::TraceDump da = recA.dump("fuzz:" + std::to_string(seed));
    trace::TraceDump db = recB.dump("fuzz:" + std::to_string(seed));
    // The backend provenance label is the one intentional difference;
    // neutralize it so the byte comparison covers everything else.
    da.backend = "x";
    db.backend = "x";

    std::string ja = trace::toJson(da);
    std::string jb = trace::toJson(db);
    if (ja != jb)
        return Failure{Oracle::Xtrace,
                       "hwdbg-trace JSON dumps differ between interp "
                       "and bytecode (" +
                           std::to_string(da.rows.size()) + " vs " +
                           std::to_string(db.rows.size()) + " rows, " +
                           std::to_string(da.samples) + " vs " +
                           std::to_string(db.samples) + " samples)"};
    if (trace::renderVcd(da) != trace::renderVcd(db))
        return Failure{Oracle::Xtrace,
                       "VCD dumps differ between interp and bytecode "
                       "despite identical JSON dumps"};
    return std::nullopt;
}

// ----------------------------------------------------------------- dispatch

std::vector<Failure>
runOracles(const GeneratedDesign &gd, uint64_t seed,
           const OracleOptions &opts, OrderStats *stats)
{
    std::vector<Failure> failures;
    auto enabled = [&](Oracle oracle) {
        return (opts.mask & oracleBit(oracle)) != 0;
    };
    auto guard = [&](Oracle oracle, auto &&fn) {
        if (!enabled(oracle))
            return;
        obs::ObsSpan span(std::string("oracle.") + oracleName(oracle));
        size_t before = failures.size();
        try {
            if (auto failure = fn())
                failures.push_back(*failure);
        } catch (const HdlError &err) {
            failures.push_back(Failure{
                oracle, std::string("internal error: ") + err.what()});
        }
        if (obs::metricsEnabled()) {
            // Verdict counters have per-oracle names, so they skip the
            // cached-site macro and pay the registry lookup.
            bool failed = failures.size() != before;
            obs::counter(std::string("fuzz.oracle.") +
                         oracleName(oracle) +
                         (failed ? ".fail" : ".pass")).inc();
        }
    };
    guard(Oracle::Roundtrip, [&] { return runRoundtrip(gd); });
    guard(Oracle::Differential, [&] {
        return runDifferential(gd, seed, opts.cycles, opts.backend);
    });
    guard(Oracle::Lint, [&] { return runLintMeta(gd, seed); });
    guard(Oracle::Instrument, [&] {
        return runInstrument(gd, seed, opts.cycles, opts.backend);
    });
    guard(Oracle::Order, [&] {
        return runOrder(gd, seed, opts.cycles, stats, opts.backend);
    });
    guard(Oracle::Xbackend,
          [&] { return runXbackend(gd, seed, opts.cycles); });
    guard(Oracle::Xtrace,
          [&] { return runXtrace(gd, seed, opts.cycles); });
    return failures;
}

} // namespace hwdbg::fuzz
