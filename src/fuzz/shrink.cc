#include "fuzz/shrink.hh"

#include <functional>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "elab/elaborate.hh"
#include "sim/simulator.hh"

namespace hwdbg::fuzz
{

using namespace hdl;

namespace
{

/** Deep copy of the whole generated design, metadata included. */
GeneratedDesign
cloneGenerated(const GeneratedDesign &gd)
{
    GeneratedDesign out = gd;
    out.design.modules.clear();
    for (const auto &mod : gd.design.modules)
        out.design.modules.push_back(cloneModule(*mod));
    return out;
}

ModulePtr
topOf(GeneratedDesign &gd)
{
    for (const auto &mod : gd.design.modules)
        if (mod->name == gd.top)
            return mod;
    return nullptr;
}

/** Drop metadata referring to signals a reduction removed. */
void
refreshMeta(GeneratedDesign &gd)
{
    auto top = topOf(gd);
    if (!top)
        return;
    if (!gd.fsmStateVar.empty() && !top->findNet(gd.fsmStateVar))
        gd.fsmStateVar.clear();
    std::vector<std::string> kept;
    for (const auto &name : gd.eventSignals)
        if (top->findNet(name))
            kept.push_back(name);
    gd.eventSignals = kept;
}

// ------------------------------------------------------- statement edits

/**
 * Statement reductions are enumerated in a fixed pre-order walk; edit
 * @p target counts (slot, edit) pairs across that walk. Returns true
 * when the edit was applied, false when target is past the end.
 */
bool
applyStmtEdit(StmtPtr &slot, long &target)
{
    if (!slot)
        return false;
    switch (slot->kind) {
      case StmtKind::Block: {
        auto *block = slot->as<BlockStmt>();
        if (target < static_cast<long>(block->stmts.size())) {
            block->stmts.erase(block->stmts.begin() + target);
            return true;
        }
        target -= static_cast<long>(block->stmts.size());
        for (auto &sub : block->stmts)
            if (applyStmtEdit(sub, target))
                return true;
        return false;
      }
      case StmtKind::If: {
        auto *branch = slot->as<IfStmt>();
        if (target == 0) {
            slot = branch->thenStmt;
            return true;
        }
        --target;
        if (branch->elseStmt) {
            if (target == 0) {
                slot = branch->elseStmt;
                return true;
            }
            --target;
            if (target == 0) {
                branch->elseStmt = nullptr;
                return true;
            }
            --target;
        }
        if (applyStmtEdit(branch->thenStmt, target))
            return true;
        if (branch->elseStmt &&
            applyStmtEdit(branch->elseStmt, target))
            return true;
        return false;
      }
      case StmtKind::Case: {
        auto *sel = slot->as<CaseStmt>();
        if (target < static_cast<long>(sel->items.size())) {
            slot = sel->items[target].body;
            return true;
        }
        target -= static_cast<long>(sel->items.size());
        for (auto &item : sel->items)
            if (applyStmtEdit(item.body, target))
                return true;
        return false;
      }
      default:
        return false;
    }
}

// ------------------------------------------------------ expression edits

/**
 * Expression reductions per slot: promote each child, then replace the
 * slot with 1'h0 (unless it already is a literal). Same fixed-order
 * counting scheme as statements.
 */
bool
applyExprEdit(ExprPtr &slot, long &target)
{
    if (!slot)
        return false;
    std::vector<ExprPtr *> children;
    switch (slot->kind) {
      case ExprKind::Unary:
        children.push_back(&slot->as<UnaryExpr>()->arg);
        break;
      case ExprKind::Binary: {
        auto *bin = slot->as<BinaryExpr>();
        children.push_back(&bin->lhs);
        children.push_back(&bin->rhs);
        break;
      }
      case ExprKind::Ternary: {
        auto *ter = slot->as<TernaryExpr>();
        children.push_back(&ter->thenExpr);
        children.push_back(&ter->elseExpr);
        break;
      }
      case ExprKind::Concat: {
        auto *cat = slot->as<ConcatExpr>();
        for (auto &part : cat->parts)
            children.push_back(&part);
        break;
      }
      case ExprKind::Repeat:
        children.push_back(&slot->as<RepeatExpr>()->inner);
        break;
      default:
        break;
    }
    if (target < static_cast<long>(children.size())) {
        slot = *children[target];
        return true;
    }
    target -= static_cast<long>(children.size());
    if (slot->kind != ExprKind::Number) {
        if (target == 0) {
            slot = mkNum(Bits(1, 0));
            return true;
        }
        --target;
    }
    // Recurse into sub-expressions (skip index/range operands: they
    // must stay constant for the design to elaborate).
    switch (slot->kind) {
      case ExprKind::Unary:
        return applyExprEdit(slot->as<UnaryExpr>()->arg, target);
      case ExprKind::Binary: {
        auto *bin = slot->as<BinaryExpr>();
        return applyExprEdit(bin->lhs, target) ||
               applyExprEdit(bin->rhs, target);
      }
      case ExprKind::Ternary: {
        auto *ter = slot->as<TernaryExpr>();
        return applyExprEdit(ter->cond, target) ||
               applyExprEdit(ter->thenExpr, target) ||
               applyExprEdit(ter->elseExpr, target);
      }
      case ExprKind::Concat: {
        auto *cat = slot->as<ConcatExpr>();
        for (auto &part : cat->parts)
            if (applyExprEdit(part, target))
                return true;
        return false;
      }
      case ExprKind::Repeat:
        return applyExprEdit(slot->as<RepeatExpr>()->inner, target);
      default:
        return false;
    }
}

/** Walk rhs/cond/selector/display-arg slots of a statement tree. */
bool
applyStmtExprEdit(const StmtPtr &stmt, long &target)
{
    if (!stmt)
        return false;
    switch (stmt->kind) {
      case StmtKind::Block:
        for (auto &sub : stmt->as<BlockStmt>()->stmts)
            if (applyStmtExprEdit(sub, target))
                return true;
        return false;
      case StmtKind::If: {
        auto *branch = stmt->as<IfStmt>();
        return applyExprEdit(branch->cond, target) ||
               applyStmtExprEdit(branch->thenStmt, target) ||
               applyStmtExprEdit(branch->elseStmt, target);
      }
      case StmtKind::Case: {
        auto *sel = stmt->as<CaseStmt>();
        if (applyExprEdit(sel->selector, target))
            return true;
        for (auto &item : sel->items)
            if (applyStmtExprEdit(item.body, target))
                return true;
        return false;
      }
      case StmtKind::Assign:
        // Left-hand sides stay intact: most replacements would not be
        // valid assignment targets.
        return applyExprEdit(stmt->as<AssignStmt>()->rhs, target);
      case StmtKind::Display: {
        auto *disp = stmt->as<DisplayStmt>();
        for (auto &arg : disp->args)
            if (applyExprEdit(arg, target))
                return true;
        return false;
      }
      default:
        return false;
    }
}

/** Apply module-level edit @p target: statement edits of every always
 *  body first, then expression edits of assigns and bodies. */
bool
applyModuleEdit(Module &mod, long target)
{
    for (auto &item : mod.items)
        if (item->kind == ItemKind::Always)
            if (applyStmtEdit(item->as<AlwaysItem>()->body, target))
                return true;
    for (auto &item : mod.items) {
        if (item->kind == ItemKind::ContAssign) {
            if (applyExprEdit(item->as<ContAssignItem>()->rhs, target))
                return true;
        } else if (item->kind == ItemKind::Always) {
            if (applyStmtExprEdit(item->as<AlwaysItem>()->body, target))
                return true;
        }
    }
    return false;
}

} // namespace

ShrinkResult
shrinkDesign(const GeneratedDesign &gd, uint64_t seed, Oracle kind,
             const OracleOptions &opts, uint32_t maxAttempts)
{
    ShrinkResult result;
    result.design = cloneGenerated(gd);

    OracleOptions one = opts;
    one.mask = oracleBit(kind);

    bool origInternal = false;
    std::string origDetail;
    {
        auto failures = runOracles(result.design, seed, one);
        if (failures.empty())
            // Caller error: nothing to shrink. Return the input as-is.
            return result;
        origDetail = failures.front().detail;
        origInternal = origDetail.rfind("internal error:", 0) == 0;
    }

    auto stillFails = [&](const GeneratedDesign &cand) {
        if (result.attempts >= maxAttempts)
            return false;
        ++result.attempts;
        // A reduction must leave a well-formed design behind so the
        // reproducer is debuggable — unless the original failure was
        // itself an internal error, in which case candidates that
        // throw are exactly what we are chasing.
        if (!origInternal) {
            try {
                auto flat = elab::elaborate(cand.design, cand.top).mod;
                sim::Simulator probe(flat);
            } catch (const HdlError &) {
                return false;
            }
        }
        auto failures = runOracles(cand, seed, one);
        if (failures.empty())
            return false;
        // An internal-error failure must stay the SAME error: without
        // this, reductions drift into unrelated errors (e.g. from
        // "failed to settle" to "unknown signal" once a declaration is
        // gone) and the reproducer stops demonstrating the bug.
        if (origInternal)
            return failures.front().detail == origDetail;
        return failures.front().detail.rfind("internal error:", 0) != 0;
    };

    auto top = topOf(result.design);
    if (!top)
        return result;
    result.itemsBefore = static_cast<uint32_t>(top->items.size());

    bool changed = true;
    while (changed && result.attempts < maxAttempts) {
        changed = false;

        // Pass 1: drop whole items (never port declarations).
        for (size_t i = 0; i < top->items.size();) {
            const auto &item = top->items[i];
            bool isPort = item->kind == ItemKind::Net &&
                          item->as<NetItem>()->dir != PortDir::None;
            if (isPort) {
                ++i;
                continue;
            }
            GeneratedDesign cand = cloneGenerated(result.design);
            auto candTop = topOf(cand);
            candTop->items.erase(candTop->items.begin() +
                                 static_cast<long>(i));
            refreshMeta(cand);
            if (stillFails(cand)) {
                result.design = std::move(cand);
                top = topOf(result.design);
                changed = true;
            } else {
                ++i;
            }
            if (result.attempts >= maxAttempts)
                break;
        }

        // Pass 2: statement and expression reductions, fixed order.
        for (long target = 0; result.attempts < maxAttempts;) {
            GeneratedDesign cand = cloneGenerated(result.design);
            auto candTop = topOf(cand);
            if (!applyModuleEdit(*candTop, target))
                break;
            refreshMeta(cand);
            if (stillFails(cand)) {
                result.design = std::move(cand);
                top = topOf(result.design);
                changed = true;
                // Edits shifted; retry the same position.
            } else {
                ++target;
            }
        }
    }

    // Drop a submodule that no remaining instance references.
    if (result.design.design.modules.size() > 1) {
        bool instantiated = false;
        for (const auto &item : top->items)
            if (item->kind == ItemKind::Instance)
                instantiated = true;
        if (!instantiated) {
            GeneratedDesign cand = cloneGenerated(result.design);
            auto &mods = cand.design.modules;
            for (size_t i = 0; i < mods.size();) {
                if (mods[i]->name != cand.top)
                    mods.erase(mods.begin() + static_cast<long>(i));
                else
                    ++i;
            }
            if (stillFails(cand))
                result.design = std::move(cand);
        }
    }

    top = topOf(result.design);
    result.itemsAfter =
        top ? static_cast<uint32_t>(top->items.size()) : 0;
    return result;
}

} // namespace hwdbg::fuzz
