/**
 * @file
 * Deterministic pseudo-random source for the fuzzer.
 *
 * SplitMix64: tiny, fast, and — unlike <random> distributions — fully
 * specified, so a seed produces the identical design and stimulus on
 * every platform and standard library. Single-seed replay depends on
 * this.
 */

#ifndef HWDBG_FUZZ_RNG_HH
#define HWDBG_FUZZ_RNG_HH

#include <cstdint>
#include <vector>

#include "common/bits.hh"

namespace hwdbg::fuzz
{

class Rng
{
  public:
    explicit Rng(uint64_t seed) : state_(seed) {}

    uint64_t
    next()
    {
        uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    }

    /** Uniform in [0, n); returns 0 when n == 0. */
    uint64_t
    below(uint64_t n)
    {
        return n == 0 ? 0 : next() % n;
    }

    /** Uniform in [lo, hi] inclusive. */
    uint64_t
    range(uint64_t lo, uint64_t hi)
    {
        return lo + below(hi - lo + 1);
    }

    /** True with probability @p percent / 100. */
    bool
    chance(uint32_t percent)
    {
        return below(100) < percent;
    }

    /** A random element of @p pool (which must be non-empty). */
    template <typename T>
    const T &
    pick(const std::vector<T> &pool)
    {
        return pool[below(pool.size())];
    }

    /** A uniformly random value of the given bit width. */
    Bits
    bits(uint32_t width)
    {
        Bits out(width, 0);
        for (uint32_t lo = 0; lo < width; lo += 32) {
            Bits chunk(width, next() & 0xffffffffULL);
            out = out.shl(32).bitOr(chunk);
        }
        return out;
    }

  private:
    uint64_t state_;
};

} // namespace hwdbg::fuzz

#endif // HWDBG_FUZZ_RNG_HH
