/**
 * @file
 * The fuzzing oracles.
 *
 * Each oracle takes one generated design plus the seed that made it and
 * returns the first divergence it finds (or nothing). They are pure
 * functions of (design, seed): a failing seed replays byte-identically.
 *
 *  - Roundtrip: parse(print(ast)) must be structurally identical to ast
 *    and printing must be a fixpoint (print(parse(print(ast))) ==
 *    print(ast)).
 *  - Differential: the table-driven cycle simulator (fed through the
 *    printer and parser, so the whole front end is on the hook) must
 *    agree with the independent big-int reference evaluator on every
 *    output at every clock phase, plus logs, cycle counts, and $finish.
 *  - Lint: metamorphic invariance — alpha-renaming all signals and
 *    permuting independent declarations must not change the diagnostic
 *    set (modulo the renaming itself).
 *  - Instrument: applying SignalCat / FSM and stats monitors / DepMonitor
 *    / LossCheck / ValidCheck must preserve user-visible behaviour:
 *    outputs match cycle-for-cycle, the user's $display log is
 *    unchanged (SignalCat: reconstructable from the recorder), and the
 *    monitors' own reports match ground truth recorded from the
 *    uninstrumented run.
 *  - Order (opt-in, not in the default mask): process-permutation
 *    probe for the analyze race pass. The design runs twice — once in
 *    declaration order, once with the clocked-process execution order
 *    reversed — and any observable divergence (outputs, cycle count,
 *    $finish, or $display lines compared order-insensitively within
 *    each cycle) must have been statically flagged by `hwdbg analyze`
 *    as a blocking-race or multi-driver-nba. Divergence without a flag
 *    is an analyzer soundness failure; a flag without divergence is
 *    recorded as "unrefuted" (the stimulus simply never excited it).
 *  - Xbackend (opt-in, not in the default mask): cross-backend
 *    equivalence. The same elaborated design runs on the interpreter
 *    and on the compiled bytecode backend with identical stimulus;
 *    outputs per half-cycle, $display logs, cycle counts, $finish, and
 *    the final value of every signal and memory element must be
 *    byte-identical. This is the fuzzing arm of the backend
 *    equivalence proof (tests/compile covers the curated testbed).
 *  - Xtrace (opt-in, not in the default mask): cross-backend trace
 *    equivalence. The same design runs on the interpreter and the
 *    compiled bytecode backend with a TraceRecorder attached to each
 *    (every signal traced, trigger armed when the design has rst);
 *    the rendered hwdbg-trace JSON and VCD dumps must be
 *    byte-identical apart from the backend provenance label. This
 *    pins the per-eval hook seam: both backends must present
 *    identical flushed state to observers at every eval.
 */

#ifndef HWDBG_FUZZ_ORACLES_HH
#define HWDBG_FUZZ_ORACLES_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "fuzz/generator.hh"
#include "sim/backend.hh"

namespace hwdbg::fuzz
{

enum class Oracle : uint32_t
{
    Roundtrip = 0,
    Differential = 1,
    Lint = 2,
    Instrument = 3,
    Order = 4,
    Xbackend = 5,
    Xtrace = 6,
};

constexpr uint32_t kOracleCount = 7;

/** Stable short name ("roundtrip", "differential", "lint",
 *  "instrument", "order", "xbackend", "xtrace") used by --oracle and
 *  in reports. */
const char *oracleName(Oracle oracle);

/** Parse an --oracle argument; returns false for unknown names. */
bool oracleFromName(const std::string &name, Oracle *out);

/** One oracle violation. */
struct Failure
{
    Oracle oracle = Oracle::Roundtrip;
    /** Human-readable description of the first divergence. */
    std::string detail;
};

struct OracleOptions
{
    /** Clock cycles of random stimulus for the dynamic oracles. */
    uint32_t cycles = 24;
    /** Bitmask over Oracle values; bit (1 << oracle) enables it. The
     *  default enables everything except the opt-in Order and
     *  Xbackend oracles. */
    uint32_t mask = 0xF;
    /** When set (--backend bytecode), the simulators driven by the
     *  Differential, Instrument, and Order oracles run on this
     *  execution backend instead of the interpreter. The Xbackend
     *  oracle ignores it: comparing the backends is its whole job. */
    sim::BackendFactory backend;
};

/**
 * Per-design verdict tally of the Order oracle, cross-examining the
 * analyze race pass: flagged == confirmed + unrefuted. A divergence on
 * an unflagged design never lands here — that is a Failure.
 */
struct OrderStats
{
    /** Designs where analyze flagged a blocking-race/multi-driver-nba. */
    uint64_t flagged = 0;
    /** Of those, designs where permutation divergence was observed. */
    uint64_t confirmed = 0;
    /** Of those, designs where no divergence was observed. */
    uint64_t unrefuted = 0;
};

constexpr uint32_t
oracleBit(Oracle oracle)
{
    return 1u << static_cast<uint32_t>(oracle);
}

std::optional<Failure> runRoundtrip(const GeneratedDesign &gd);
std::optional<Failure>
runDifferential(const GeneratedDesign &gd, uint64_t seed,
                uint32_t cycles,
                const sim::BackendFactory &backend = {});
std::optional<Failure> runLintMeta(const GeneratedDesign &gd,
                                   uint64_t seed);
std::optional<Failure>
runInstrument(const GeneratedDesign &gd, uint64_t seed, uint32_t cycles,
              const sim::BackendFactory &backend = {});
std::optional<Failure>
runOrder(const GeneratedDesign &gd, uint64_t seed, uint32_t cycles,
         OrderStats *stats = nullptr,
         const sim::BackendFactory &backend = {});
std::optional<Failure> runXbackend(const GeneratedDesign &gd,
                                   uint64_t seed, uint32_t cycles);
std::optional<Failure> runXtrace(const GeneratedDesign &gd,
                                 uint64_t seed, uint32_t cycles);

/**
 * Run every enabled oracle in order; internal HdlErrors are reported as
 * failures of the oracle that raised them (generated designs are valid
 * by construction, so an elaboration or simulation error IS a bug).
 * @p stats, when non-null, accumulates the Order oracle's verdicts.
 */
std::vector<Failure> runOracles(const GeneratedDesign &gd, uint64_t seed,
                                const OracleOptions &opts,
                                OrderStats *stats = nullptr);

} // namespace hwdbg::fuzz

#endif // HWDBG_FUZZ_ORACLES_HH
