#include "fuzz/generator.hh"

#include <algorithm>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "fuzz/rng.hh"

namespace hwdbg::fuzz
{

using namespace hdl;

namespace
{

/** Vector widths, weighted toward the word-boundary cases. */
const uint32_t kWidths[] = {1,  2,  3,  4,  5,  8,  8,  12, 16, 16,
                            24, 31, 32, 33, 48, 63, 64, 65, 96, 128};

struct Sig
{
    std::string name;
    uint32_t width;
};

struct Mem
{
    std::string name;
    uint32_t width;
    uint32_t depth;
};

class Generator
{
  public:
    Generator(uint64_t seed, const GeneratorOptions &opts)
        : rng_(seed), opts_(opts)
    {
    }

    GeneratedDesign run();

  private:
    // -- declarations -------------------------------------------------
    NetItem *declare(const std::string &name, uint32_t width, NetKind net,
                     PortDir dir = PortDir::None);
    void declareMem(const std::string &name, uint32_t width,
                    uint32_t depth);
    ExprPtr lit(uint32_t width, const Bits &value);
    ExprPtr litU(uint32_t width, uint64_t value);

    // -- expression generation ---------------------------------------
    ExprPtr genLeaf();
    ExprPtr genNarrowLeaf();
    ExprPtr genExpr(uint32_t depth);
    ExprPtr genBool(uint32_t depth);

    // -- statement generation ----------------------------------------
    StmtPtr genDisplay();
    StmtPtr genSeqAssign(const Sig &target);
    StmtPtr genSeqTargets(std::vector<Sig> targets);
    StmtPtr wrapReset(const std::vector<Sig> &targets, StmtPtr body);

    // -- structure ---------------------------------------------------
    void genInputs();
    void genSeqRegDecls();
    void genMemory();
    void genCombChain();
    void genSubmodule();
    void genFifo();
    void genFsm();
    void genRace();
    void genClockedBlocks();
    void genOutputs();

    void addContAssign(ExprPtr lhs, ExprPtr rhs);
    void addAlways(std::vector<SensItem> sens, bool comb, StmtPtr body);

    Rng rng_;
    GeneratorOptions opts_;
    GeneratedDesign out_;

    ModulePtr top_ = std::make_shared<Module>();
    /** Declarations come first so reordering can permute them freely. */
    std::vector<ItemPtr> decls_;
    std::vector<ItemPtr> logic_;

    /** Value signals readable by newly generated expressions. */
    std::vector<Sig> pool_;
    std::vector<Mem> mems_;
    /** Clocked registers awaiting a driving block. */
    std::vector<Sig> seqRegs_;
    bool hasRst_ = false;
    int nameCounter_ = 0;
};

NetItem *
Generator::declare(const std::string &name, uint32_t width, NetKind net,
                   PortDir dir)
{
    auto item = std::make_shared<NetItem>();
    item->net = net;
    item->dir = dir;
    item->name = name;
    if (width > 1)
        item->range = AstRange{litU(32, width - 1), litU(32, 0)};
    decls_.push_back(item);
    if (dir != PortDir::None)
        top_->ports.push_back(name);
    return item.get();
}

void
Generator::declareMem(const std::string &name, uint32_t width,
                      uint32_t depth)
{
    auto item = std::make_shared<NetItem>();
    item->net = NetKind::Reg;
    item->name = name;
    if (width > 1)
        item->range = AstRange{litU(32, width - 1), litU(32, 0)};
    item->array = AstRange{litU(32, depth - 1), litU(32, 0)};
    decls_.push_back(item);
    mems_.push_back(Mem{name, width, depth});
}

ExprPtr
Generator::lit(uint32_t width, const Bits &value)
{
    return mkNum(value.resized(width), true);
}

ExprPtr
Generator::litU(uint32_t width, uint64_t value)
{
    return mkNum(Bits(width, value), true);
}

ExprPtr
Generator::genLeaf()
{
    uint64_t roll = rng_.below(100);
    if (!mems_.empty() && roll < 12) {
        // Memory element read.
        const Mem &mem = rng_.pick(mems_);
        auto idx = std::make_shared<IndexExpr>();
        idx->base = mem.name;
        idx->index = rng_.chance(60)
                         ? litU(8, rng_.below(mem.depth + 2))
                         : genExpr(0);
        return idx;
    }
    if (!pool_.empty() && roll < 30) {
        const Sig &sig = rng_.pick(pool_);
        if (sig.width >= 2 && rng_.chance(50)) {
            // Bit select, occasionally out of range on purpose.
            auto idx = std::make_shared<IndexExpr>();
            idx->base = sig.name;
            idx->index = rng_.chance(70)
                             ? litU(8, rng_.below(sig.width + 1))
                             : genExpr(0);
            return idx;
        }
        if (sig.width >= 2) {
            // Constant part select.
            uint32_t lsb =
                static_cast<uint32_t>(rng_.below(sig.width));
            uint32_t msb = lsb + static_cast<uint32_t>(rng_.below(
                                     sig.width - lsb));
            auto range = std::make_shared<RangeExpr>();
            range->base = sig.name;
            range->msb = litU(32, msb);
            range->lsb = litU(32, lsb);
            return range;
        }
    }
    if (!pool_.empty() && roll < 75)
        return mkId(rng_.pick(pool_).name);
    uint32_t width = kWidths[rng_.below(std::size(kWidths))];
    return lit(width, rng_.bits(width));
}

/**
 * A leaf at most 4 bits wide: a narrow signal, a low slice of a wide
 * one, or a small literal. Width-rule probes (comparison and case
 * widths) need operands strictly narrower than their context; leaves
 * drawn from the full pool are usually as wide as any target, which
 * turns those probes into no-ops.
 */
ExprPtr
Generator::genNarrowLeaf()
{
    if (!pool_.empty() && rng_.chance(80)) {
        const Sig &sig = rng_.pick(pool_);
        if (sig.width <= 4)
            return mkId(sig.name);
        auto range = std::make_shared<RangeExpr>();
        range->base = sig.name;
        range->msb = litU(32, static_cast<uint32_t>(rng_.below(4)));
        range->lsb = litU(32, 0);
        return range;
    }
    return litU(4, rng_.below(16));
}

ExprPtr
Generator::genExpr(uint32_t depth)
{
    if (depth == 0 || rng_.chance(20))
        return genLeaf();
    uint64_t roll = rng_.below(100);
    if (roll < 45) {
        static const BinaryOp kOps[] = {
            BinaryOp::Add,    BinaryOp::Add,    BinaryOp::Sub,
            BinaryOp::Mul,    BinaryOp::Div,    BinaryOp::Mod,
            BinaryOp::BitAnd, BinaryOp::BitOr,  BinaryOp::BitXor,
            BinaryOp::LogAnd, BinaryOp::LogOr,  BinaryOp::Eq,
            BinaryOp::Ne,     BinaryOp::Lt,     BinaryOp::Le,
            BinaryOp::Gt,     BinaryOp::Ge,     BinaryOp::Shl,
            BinaryOp::Shr,
        };
        BinaryOp op = kOps[rng_.below(std::size(kOps))];
        bool cmp = op == BinaryOp::Eq || op == BinaryOp::Ne ||
                   op == BinaryOp::Lt || op == BinaryOp::Le ||
                   op == BinaryOp::Gt || op == BinaryOp::Ge;
        ExprPtr lhs = genExpr(depth - 1);
        ExprPtr rhs;
        // Comparisons over wrap-sensitive NARROW operands: a - b wraps
        // at the evaluation width, so when both sides are narrower
        // than the surrounding context the comparison-width rules
        // actually matter (wide operands make any widening a no-op).
        if (cmp && rng_.chance(50)) {
            lhs = mkBinary(BinaryOp::Sub, genNarrowLeaf(),
                           genNarrowLeaf());
            rhs = genNarrowLeaf();
            return mkBinary(op, lhs, rhs);
        }
        if (op == BinaryOp::Shl || op == BinaryOp::Shr) {
            // Shift amounts near (and often below) typical operand
            // widths; amount 0 is included deliberately - it turns a
            // shift into the identity, the sharpest probe for
            // off-by-one shift bugs.
            rhs = rng_.chance(70) ? litU(7, rng_.below(9))
                                  : genExpr(0);
        } else {
            rhs = genExpr(depth - 1);
        }
        return mkBinary(op, lhs, rhs);
    }
    if (roll < 60) {
        static const UnaryOp kOps[] = {UnaryOp::Neg,    UnaryOp::LogNot,
                                       UnaryOp::BitNot, UnaryOp::RedAnd,
                                       UnaryOp::RedOr,  UnaryOp::RedXor};
        return mkUnary(kOps[rng_.below(std::size(kOps))],
                       genExpr(depth - 1));
    }
    if (roll < 72)
        return mkTernary(genBool(depth - 1), genExpr(depth - 1),
                         genExpr(depth - 1));
    if (roll < 86) {
        auto cat = std::make_shared<ConcatExpr>();
        size_t parts = 2 + rng_.below(2);
        for (size_t i = 0; i < parts; ++i)
            cat->parts.push_back(genExpr(depth - 1));
        return cat;
    }
    auto rep = std::make_shared<RepeatExpr>();
    rep->count = litU(32, 1 + rng_.below(3));
    rep->inner = genExpr(depth - 1);
    return rep;
}

ExprPtr
Generator::genBool(uint32_t depth)
{
    ExprPtr expr = genExpr(depth);
    switch (rng_.below(3)) {
      case 0:
        return mkUnary(UnaryOp::RedOr, expr);
      case 1:
        return mkBinary(rng_.chance(50) ? BinaryOp::Ne : BinaryOp::Gt,
                        expr, genExpr(0));
      default:
        return expr; // any nonzero value is true
    }
}

StmtPtr
Generator::genDisplay()
{
    auto disp = std::make_shared<DisplayStmt>();
    static const char *kSpecs[] = {"%d", "%h", "%b", "%0d", "%x"};
    size_t nargs = 1 + rng_.below(2);
    disp->format = "[fz]";
    for (size_t i = 0; i < nargs; ++i) {
        const Sig &sig = rng_.pick(pool_);
        disp->format += " " + sig.name + "=" +
                        kSpecs[rng_.below(std::size(kSpecs))];
        disp->args.push_back(mkId(sig.name));
    }
    return disp;
}

/** One driving statement for @p target inside a clocked block. */
StmtPtr
Generator::genSeqAssign(const Sig &target)
{
    uint64_t roll = rng_.below(100);
    auto assign = std::make_shared<AssignStmt>();
    assign->nonblocking = !rng_.chance(10);
    if (roll < 10 && target.width >= 2) {
        // Single-bit update, occasionally out of range.
        auto idx = std::make_shared<IndexExpr>();
        idx->base = target.name;
        idx->index = litU(8, rng_.below(target.width + 1));
        assign->lhs = idx;
        assign->rhs = genExpr(1);
        return assign;
    }
    if (roll < 18 && target.width >= 3) {
        uint32_t lsb = static_cast<uint32_t>(
            rng_.below(target.width - 1));
        uint32_t msb = lsb + 1 + static_cast<uint32_t>(rng_.below(
                                     target.width - lsb - 1));
        auto range = std::make_shared<RangeExpr>();
        range->base = target.name;
        range->msb = litU(32, msb);
        range->lsb = litU(32, lsb);
        assign->lhs = range;
        assign->rhs = genExpr(2);
        return assign;
    }
    assign->lhs = mkId(target.name);
    assign->rhs = genExpr(opts_.maxExprDepth);
    if (roll < 40) {
        auto branch = std::make_shared<IfStmt>();
        branch->cond = genBool(1);
        branch->thenStmt = assign;
        if (rng_.chance(70)) {
            auto other = std::make_shared<AssignStmt>();
            other->nonblocking = assign->nonblocking;
            other->lhs = mkId(target.name);
            other->rhs = genExpr(2);
            branch->elseStmt = other;
        }
        return branch;
    }
    if (roll < 55) {
        // case over a narrow selector.
        std::vector<const Sig *> narrow;
        for (const auto &sig : pool_)
            if (sig.width >= 2 && sig.width <= 6)
                narrow.push_back(&sig);
        if (!narrow.empty()) {
            const Sig *sel = narrow[rng_.below(narrow.size())];
            auto stmt = std::make_shared<CaseStmt>();
            stmt->selector = mkId(sel->name);
            // Decoy pair: an over-wide label whose LOW bits collide
            // with a later exact-width label. Correct max-width
            // matching never takes the decoy (its high bits are set);
            // a simulator that truncates labels to the selector width
            // takes it first and runs the wrong body.
            if (rng_.chance(40)) {
                uint64_t v = rng_.below(
                    std::min<uint64_t>(4, uint64_t(1) << sel->width));
                uint32_t lw = sel->width + 2;
                CaseItem decoy;
                decoy.labels.push_back(
                    litU(lw, (uint64_t(1) << sel->width) | v));
                auto dbody = std::make_shared<AssignStmt>();
                dbody->lhs = mkId(target.name);
                dbody->rhs = genExpr(1);
                decoy.body = dbody;
                stmt->items.push_back(std::move(decoy));
                CaseItem hit;
                hit.labels.push_back(litU(sel->width, v));
                auto hbody = std::make_shared<AssignStmt>();
                hbody->lhs = mkId(target.name);
                hbody->rhs = genExpr(1);
                hit.body = hbody;
                stmt->items.push_back(std::move(hit));
            }
            size_t nitems = 2 + rng_.below(3);
            for (size_t i = 0; i < nitems; ++i) {
                CaseItem item;
                // Label width sometimes exceeds the selector width,
                // exercising the max-width comparison rule.
                uint32_t lw = rng_.chance(75) ? sel->width
                                              : sel->width + 2;
                item.labels.push_back(lit(lw, rng_.bits(lw)));
                auto body = std::make_shared<AssignStmt>();
                body->lhs = mkId(target.name);
                body->rhs = genExpr(2);
                item.body = body;
                stmt->items.push_back(std::move(item));
            }
            if (rng_.chance(80)) {
                CaseItem dflt;
                auto body = std::make_shared<AssignStmt>();
                body->lhs = mkId(target.name);
                body->rhs = genExpr(1);
                dflt.body = body;
                stmt->items.push_back(std::move(dflt));
            }
            return stmt;
        }
    }
    return assign;
}

StmtPtr
Generator::genSeqTargets(std::vector<Sig> targets)
{
    auto block = std::make_shared<BlockStmt>();
    while (!targets.empty()) {
        if (targets.size() >= 2 && rng_.chance(15)) {
            // Concat lvalue consuming two targets.
            auto assign = std::make_shared<AssignStmt>();
            auto cat = std::make_shared<ConcatExpr>();
            cat->parts.push_back(mkId(targets[0].name));
            cat->parts.push_back(mkId(targets[1].name));
            assign->lhs = cat;
            assign->rhs = genExpr(opts_.maxExprDepth);
            assign->nonblocking = true;
            block->stmts.push_back(assign);
            targets.erase(targets.begin(), targets.begin() + 2);
            continue;
        }
        block->stmts.push_back(genSeqAssign(targets.front()));
        targets.erase(targets.begin());
    }
    if (!pool_.empty() && rng_.chance(opts_.displayChance))
        block->stmts.push_back(genDisplay());
    return block;
}

StmtPtr
Generator::wrapReset(const std::vector<Sig> &targets, StmtPtr body)
{
    if (!hasRst_ || !rng_.chance(60))
        return body;
    auto branch = std::make_shared<IfStmt>();
    branch->cond = mkId("rst");
    auto clear = std::make_shared<BlockStmt>();
    for (const auto &target : targets) {
        auto assign = std::make_shared<AssignStmt>();
        assign->lhs = mkId(target.name);
        assign->rhs = litU(target.width, 0);
        assign->nonblocking = true;
        clear->stmts.push_back(assign);
    }
    branch->thenStmt = clear;
    branch->elseStmt = std::move(body);
    return branch;
}

void
Generator::addContAssign(ExprPtr lhs, ExprPtr rhs)
{
    auto item = std::make_shared<ContAssignItem>();
    item->lhs = std::move(lhs);
    item->rhs = std::move(rhs);
    logic_.push_back(item);
}

void
Generator::addAlways(std::vector<SensItem> sens, bool comb, StmtPtr body)
{
    auto item = std::make_shared<AlwaysItem>();
    item->sens = std::move(sens);
    item->isComb = comb;
    item->body = std::move(body);
    logic_.push_back(item);
}

void
Generator::genInputs()
{
    declare("clk", 1, NetKind::Wire, PortDir::Input);
    hasRst_ = rng_.chance(70);
    if (hasRst_)
        declare("rst", 1, NetKind::Wire, PortDir::Input);
    out_.hasRst = hasRst_;

    size_t nin = 2 + rng_.below(3);
    for (size_t i = 0; i < nin; ++i) {
        uint32_t width = kWidths[rng_.below(std::size(kWidths))];
        std::string name = "in" + std::to_string(i);
        declare(name, width, NetKind::Wire, PortDir::Input);
        pool_.push_back(Sig{name, width});
        out_.inputs.push_back(StimulusPort{name, width});
    }
}

void
Generator::genSeqRegDecls()
{
    size_t nreg = 2 + rng_.below(4);
    for (size_t i = 0; i < nreg; ++i) {
        uint32_t width = kWidths[rng_.below(std::size(kWidths))];
        std::string name = "q" + std::to_string(i);
        declare(name, width, NetKind::Reg);
        pool_.push_back(Sig{name, width});
        seqRegs_.push_back(Sig{name, width});
    }
}

void
Generator::genMemory()
{
    if (!rng_.chance(opts_.memChance))
        return;
    static const uint32_t kDepths[] = {4, 5, 8, 12, 16};
    uint32_t depth = kDepths[rng_.below(std::size(kDepths))];
    uint32_t width = 2 + static_cast<uint32_t>(rng_.below(15));
    declareMem("mem0", width, depth);
}

void
Generator::genSubmodule()
{
    if (!rng_.chance(opts_.submoduleChance))
        return;
    uint32_t pw = 4 + static_cast<uint32_t>(rng_.below(13));

    auto sub = std::make_shared<Module>();
    sub->name = "fz_sub";
    sub->ports = {"sa", "sb", "sy"};
    auto param = std::make_shared<ParamItem>();
    param->name = "PW";
    param->value = litU(32, 8);
    param->inHeader = true;
    sub->items.push_back(param);
    auto mkPort = [&](const std::string &name, PortDir dir) {
        auto net = std::make_shared<NetItem>();
        net->name = name;
        net->dir = dir;
        net->range = AstRange{
            mkBinary(BinaryOp::Sub, mkId("PW"), litU(32, 1)),
            litU(32, 0)};
        sub->items.push_back(net);
    };
    mkPort("sa", PortDir::Input);
    mkPort("sb", PortDir::Input);
    mkPort("sy", PortDir::Output);
    auto body = std::make_shared<ContAssignItem>();
    body->lhs = mkId("sy");
    static const BinaryOp kSubOps[] = {BinaryOp::Add, BinaryOp::BitXor,
                                       BinaryOp::Sub, BinaryOp::BitAnd,
                                       BinaryOp::Mul};
    body->rhs = mkBinary(
        kSubOps[rng_.below(std::size(kSubOps))], mkId("sa"),
        mkBinary(kSubOps[rng_.below(std::size(kSubOps))], mkId("sb"),
                 lit(8, rng_.bits(8))));
    sub->items.push_back(body);
    out_.design.modules.push_back(sub);

    std::string wire = "sw0";
    declare(wire, pw, NetKind::Wire);
    auto inst = std::make_shared<InstanceItem>();
    inst->moduleName = "fz_sub";
    inst->instName = "u_sub0";
    inst->paramOverrides.emplace_back("PW", litU(32, pw));
    inst->conns.push_back(PortConn{"sa", genExpr(1)});
    inst->conns.push_back(PortConn{"sb", genExpr(1)});
    inst->conns.push_back(PortConn{"sy", mkId(wire)});
    logic_.push_back(inst);
    pool_.push_back(Sig{wire, pw});
}

void
Generator::genFifo()
{
    if (!rng_.chance(opts_.fifoChance))
        return;
    uint32_t pbits = 2 + static_cast<uint32_t>(rng_.below(2)); // 4 or 8
    uint32_t depth = 1u << pbits;
    uint32_t width = 4 + static_cast<uint32_t>(rng_.below(13));

    declareMem("fmem0", width, depth);
    declare("fwp0", pbits + 1, NetKind::Reg);
    declare("frp0", pbits + 1, NetKind::Reg);
    declare("fful0", 1, NetKind::Wire);
    declare("femp0", 1, NetKind::Wire);
    declare("fpsh0", 1, NetKind::Wire);
    declare("fpop0", 1, NetKind::Wire);
    declare("fq0", width, NetKind::Wire);

    addContAssign(mkId("femp0"),
                  mkEq(mkId("fwp0"), mkId("frp0")));
    addContAssign(mkId("fful0"),
                  mkEq(mkBinary(BinaryOp::Sub, mkId("fwp0"),
                                mkId("frp0")),
                       litU(pbits + 1, depth)));
    addContAssign(mkId("fpsh0"),
                  mkAnd(genBool(1), mkNot(mkId("fful0"))));
    addContAssign(mkId("fpop0"),
                  mkAnd(genBool(1), mkNot(mkId("femp0"))));

    auto ptrSlice = [&](const std::string &ptr) {
        auto range = std::make_shared<RangeExpr>();
        range->base = ptr;
        range->msb = litU(32, pbits - 1);
        range->lsb = litU(32, 0);
        return range;
    };

    auto body = std::make_shared<BlockStmt>();
    {
        auto push = std::make_shared<IfStmt>();
        push->cond = mkId("fpsh0");
        auto seq = std::make_shared<BlockStmt>();
        auto write = std::make_shared<AssignStmt>();
        auto slot = std::make_shared<IndexExpr>();
        slot->base = "fmem0";
        slot->index = ptrSlice("fwp0");
        write->lhs = slot;
        write->rhs = genExpr(2);
        seq->stmts.push_back(write);
        auto bump = std::make_shared<AssignStmt>();
        bump->lhs = mkId("fwp0");
        bump->rhs = mkBinary(BinaryOp::Add, mkId("fwp0"),
                             litU(1, 1));
        seq->stmts.push_back(bump);
        push->thenStmt = seq;
        body->stmts.push_back(push);
    }
    {
        auto pop = std::make_shared<IfStmt>();
        pop->cond = mkId("fpop0");
        auto bump = std::make_shared<AssignStmt>();
        bump->lhs = mkId("frp0");
        bump->rhs = mkBinary(BinaryOp::Add, mkId("frp0"),
                             litU(1, 1));
        pop->thenStmt = bump;
        body->stmts.push_back(pop);
    }
    std::vector<Sig> ptrs = {Sig{"fwp0", pbits + 1},
                             Sig{"frp0", pbits + 1}};
    StmtPtr wrapped =
        hasRst_ ? wrapReset(ptrs, body) : StmtPtr(body);
    addAlways({SensItem{EdgeKind::Posedge, "clk"}}, false, wrapped);

    auto read = std::make_shared<IndexExpr>();
    read->base = "fmem0";
    read->index = ptrSlice("frp0");
    addContAssign(mkId("fq0"), read);

    pool_.push_back(Sig{"fwp0", pbits + 1});
    pool_.push_back(Sig{"frp0", pbits + 1});
    pool_.push_back(Sig{"fful0", 1});
    pool_.push_back(Sig{"femp0", 1});
    pool_.push_back(Sig{"fpsh0", 1});
    pool_.push_back(Sig{"fpop0", 1});
    pool_.push_back(Sig{"fq0", width});
}

void
Generator::genFsm()
{
    if (!rng_.chance(opts_.fsmChance))
        return;
    uint32_t width = 2;
    uint64_t nstates = 3 + rng_.below(2);
    declare("st0", width, NetKind::Reg);
    out_.fsmStateVar = "st0";

    auto stmt = std::make_shared<CaseStmt>();
    stmt->selector = mkId("st0");
    for (uint64_t s = 0; s < nstates; ++s) {
        CaseItem item;
        item.labels.push_back(litU(width, s));
        uint64_t target = (s + 1) % nstates;
        auto go = std::make_shared<AssignStmt>();
        go->lhs = mkId("st0");
        go->rhs = litU(width, target);
        if (rng_.chance(70)) {
            auto branch = std::make_shared<IfStmt>();
            branch->cond = genBool(1);
            branch->thenStmt = go;
            if (rng_.chance(50)) {
                auto stay = std::make_shared<AssignStmt>();
                stay->lhs = mkId("st0");
                stay->rhs = litU(width, rng_.below(nstates));
                branch->elseStmt = stay;
            }
            item.body = branch;
        } else {
            item.body = go;
        }
        stmt->items.push_back(std::move(item));
    }
    CaseItem dflt;
    auto home = std::make_shared<AssignStmt>();
    home->lhs = mkId("st0");
    home->rhs = litU(width, 0);
    dflt.body = home;
    stmt->items.push_back(std::move(dflt));

    std::vector<Sig> st = {Sig{"st0", width}};
    StmtPtr body = stmt;
    if (hasRst_) {
        auto branch = std::make_shared<IfStmt>();
        branch->cond = mkId("rst");
        auto clear = std::make_shared<AssignStmt>();
        clear->lhs = mkId("st0");
        clear->rhs = litU(width, 0);
        branch->thenStmt = clear;
        branch->elseStmt = body;
        body = branch;
    }
    addAlways({SensItem{EdgeKind::Posedge, "clk"}}, false, body);
    // st0 is deliberately kept out of pool_: referencing it from
    // arithmetic would defeat the FSM detection heuristics.
}

void
Generator::genRace()
{
    // The zero-chance early-out must not touch the RNG: default-option
    // streams stay byte-identical with the template compiled in.
    if (opts_.raceChance == 0 || !rng_.chance(opts_.raceChance))
        return;
    uint32_t width = 2 + static_cast<uint32_t>(rng_.below(7));

    // Writer process: blocking assignment, immediately visible to any
    // process that runs later in the same time step.
    declare("rr0", width, NetKind::Reg);
    auto write = std::make_shared<AssignStmt>();
    write->nonblocking = false;
    write->lhs = mkId("rr0");
    write->rhs = genExpr(2);
    StmtPtr writer = write;
    if (rng_.chance(40)) {
        auto branch = std::make_shared<IfStmt>();
        branch->cond = genBool(1);
        branch->thenStmt = writer;
        writer = branch;
    }
    addAlways({SensItem{EdgeKind::Posedge, "clk"}}, false, writer);

    // Reader process: whether it samples the pre-edge or the freshly
    // blocking-written value of rr0 depends on execution order.
    declare("rq0", width, NetKind::Reg);
    auto read = std::make_shared<AssignStmt>();
    read->nonblocking = true;
    read->lhs = mkId("rq0");
    read->rhs = mkBinary(rng_.chance(50) ? BinaryOp::BitXor
                                         : BinaryOp::Add,
                         mkId("rr0"), genExpr(1));
    addAlways({SensItem{EdgeKind::Posedge, "clk"}}, false,
              StmtPtr(read));

    // Exported so the divergence is observable at an output port.
    declare("ro0", width, NetKind::Wire, PortDir::Output);
    addContAssign(mkId("ro0"), mkId("rq0"));
    out_.outputs.push_back("ro0");

    pool_.push_back(Sig{"rr0", width});
    pool_.push_back(Sig{"rq0", width});
}

void
Generator::genCombChain()
{
    size_t nwire = 1 + rng_.below(4);
    for (size_t i = 0; i < nwire; ++i) {
        uint32_t width = kWidths[rng_.below(std::size(kWidths))];
        std::string name = "w" + std::to_string(i);
        declare(name, width, NetKind::Wire);
        if (width >= 4 && rng_.chance(12)) {
            // Partial drive: only the low bits get a value.
            uint32_t split = 1 + static_cast<uint32_t>(
                                 rng_.below(width - 1));
            auto range = std::make_shared<RangeExpr>();
            range->base = name;
            range->msb = litU(32, split - 1);
            range->lsb = litU(32, 0);
            addContAssign(range, genExpr(opts_.maxExprDepth));
        } else {
            addContAssign(mkId(name), genExpr(opts_.maxExprDepth));
        }
        pool_.push_back(Sig{name, width});
    }

    size_t ncomb = rng_.below(3);
    for (size_t i = 0; i < ncomb; ++i) {
        uint32_t width = kWidths[rng_.below(std::size(kWidths))];
        std::string name = "cr" + std::to_string(i);
        declare(name, width, NetKind::Reg);
        auto body = std::make_shared<BlockStmt>();
        auto dflt = std::make_shared<AssignStmt>();
        dflt->nonblocking = false;
        dflt->lhs = mkId(name);
        dflt->rhs = genExpr(2);
        body->stmts.push_back(dflt);
        if (rng_.chance(60)) {
            auto branch = std::make_shared<IfStmt>();
            branch->cond = genBool(1);
            auto retake = std::make_shared<AssignStmt>();
            retake->nonblocking = false;
            retake->lhs = mkId(name);
            retake->rhs = genExpr(2);
            branch->thenStmt = retake;
            body->stmts.push_back(branch);
        }
        addAlways({}, true, body);
        pool_.push_back(Sig{name, width});
    }

    if (rng_.chance(30)) {
        // A driven-but-never-read wire; keeps the unused-signal lint
        // rule active on generated designs.
        std::string name = "dw" + std::to_string(rng_.below(20));
        uint32_t width = kWidths[rng_.below(std::size(kWidths))];
        declare(name, width, NetKind::Wire);
        addContAssign(mkId(name), genExpr(2));
    }
}

void
Generator::genClockedBlocks()
{
    // Memory write port (when a plain memory exists).
    for (const auto &mem : mems_) {
        if (mem.name != "mem0")
            continue;
        auto write = std::make_shared<AssignStmt>();
        auto slot = std::make_shared<IndexExpr>();
        slot->base = mem.name;
        slot->index = genExpr(1);
        write->lhs = slot;
        write->rhs = genExpr(2);
        auto branch = std::make_shared<IfStmt>();
        branch->cond = genBool(1);
        branch->thenStmt = write;
        addAlways({SensItem{EdgeKind::Posedge, "clk"}}, false, branch);
    }

    // Split the plain registers over one or two clocked blocks.
    std::vector<Sig> first = seqRegs_;
    std::vector<Sig> second;
    if (first.size() >= 3 && rng_.chance(50)) {
        size_t cut = 1 + rng_.below(first.size() - 2);
        second.assign(first.begin() + static_cast<long>(cut),
                      first.end());
        first.resize(cut);
    }
    EdgeKind second_edge = rng_.chance(15) ? EdgeKind::Negedge
                                           : EdgeKind::Posedge;
    addAlways({SensItem{EdgeKind::Posedge, "clk"}}, false,
              wrapReset(first, genSeqTargets(first)));
    if (!second.empty())
        addAlways({SensItem{second_edge, "clk"}}, false,
                  wrapReset(second, genSeqTargets(second)));
}

void
Generator::genOutputs()
{
    size_t nout = 1 + rng_.below(3);
    for (size_t i = 0; i < nout; ++i) {
        uint32_t width = kWidths[rng_.below(std::size(kWidths))];
        std::string name = "out" + std::to_string(i);
        declare(name, width, NetKind::Wire, PortDir::Output);
        addContAssign(mkId(name), genExpr(opts_.maxExprDepth));
        out_.outputs.push_back(name);
    }
}

GeneratedDesign
Generator::run()
{
    top_->name = "fz_top";
    genInputs();
    genSeqRegDecls();
    genMemory();
    genSubmodule();
    genCombChain();
    genFifo();
    genFsm();
    genRace();
    genClockedBlocks();
    genOutputs();

    // Parser-normal item order: port declarations first, in header
    // order, then internal declarations, then logic. This makes
    // parse(print(ast)) structurally identical to ast, which the
    // roundtrip oracle relies on. Declaration order is semantically
    // neutral, so the simulator and reference evaluator don't care.
    top_->items.reserve(decls_.size() + logic_.size());
    for (const auto &pname : top_->ports) {
        for (auto &item : decls_) {
            if (!item)
                continue;
            const auto *net = item->as<NetItem>();
            if (net && net->name == pname) {
                top_->items.push_back(std::move(item));
                item = nullptr;
                break;
            }
        }
    }
    for (auto &item : decls_)
        if (item)
            top_->items.push_back(std::move(item));
    for (auto &item : logic_)
        top_->items.push_back(std::move(item));
    out_.design.modules.push_back(top_);
    out_.top = top_->name;

    for (const auto &sig : pool_)
        if (sig.width == 1 && out_.eventSignals.size() < 4)
            out_.eventSignals.push_back(sig.name);
    return out_;
}

} // namespace

GeneratedDesign
generateDesign(uint64_t seed, const GeneratorOptions &opts)
{
    Generator gen(seed, opts);
    return gen.run();
}

} // namespace hwdbg::fuzz
