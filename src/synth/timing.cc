#include "synth/timing.hh"

#include <algorithm>
#include <cmath>
#include <map>

#include "analysis/exprutil.hh"
#include "analysis/guards.hh"
#include "common/logging.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "sim/design.hh"

namespace hwdbg::synth
{

using namespace hdl;

namespace
{

/** Fixed clk-to-out + setup + base routing overhead, ns. */
constexpr double fixedOverheadNs = 1.0;

double
log2d(double value)
{
    return value <= 2 ? 1.0 : std::log2(value);
}

uint32_t
widthOfNet(const Module &mod, const std::string &name)
{
    const NetItem *net = mod.findNet(name);
    if (!net || !net->range)
        return 1;
    return static_cast<uint32_t>(sim::constU64(net->range->msb)) + 1;
}

struct DelayModel
{
    const Module &mod;
    std::map<std::string, double> wireDelay;
    /** Reader counts per signal: instrumentation that taps a signal
     *  adds load (and thus routing delay) to its existing paths. */
    std::map<std::string, int> fanout;

    double
    loadPenalty(const std::string &name) const
    {
        auto it = fanout.find(name);
        int readers = it == fanout.end() ? 1 : it->second;
        if (readers <= 2)
            return 0.0;
        return 0.06 * std::log2(static_cast<double>(readers));
    }

    uint32_t
    width(const ExprPtr &expr) const
    {
        // Rough width reconstruction for delay scaling.
        switch (expr->kind) {
          case ExprKind::Number: {
            const auto *num = expr->as<NumberExpr>();
            return num->sized ? num->value.width() : 32;
          }
          case ExprKind::Id:
            return widthOfNet(mod, expr->as<IdExpr>()->name);
          case ExprKind::Unary:
            return width(expr->as<UnaryExpr>()->arg);
          case ExprKind::Binary:
            return std::max(width(expr->as<BinaryExpr>()->lhs),
                            width(expr->as<BinaryExpr>()->rhs));
          case ExprKind::Ternary:
            return std::max(width(expr->as<TernaryExpr>()->thenExpr),
                            width(expr->as<TernaryExpr>()->elseExpr));
          case ExprKind::Range: {
            const auto *range = expr->as<RangeExpr>();
            try {
                return static_cast<uint32_t>(
                    sim::constU64(range->msb) - sim::constU64(range->lsb) +
                    1);
            } catch (const HdlError &) {
                return 1;
            }
          }
          default:
            return 8;
        }
    }

    double
    delay(const ExprPtr &expr) const
    {
        if (!expr)
            return 0;
        double w = width(expr);
        switch (expr->kind) {
          case ExprKind::Number:
            return 0;
          case ExprKind::Id: {
            const std::string &name = expr->as<IdExpr>()->name;
            auto it = wireDelay.find(name);
            double base = it == wireDelay.end() ? 0 : it->second;
            return base + loadPenalty(name);
          }
          case ExprKind::Unary: {
            const auto *un = expr->as<UnaryExpr>();
            double child = delay(un->arg);
            switch (un->op) {
              case UnaryOp::Neg: return child + 0.30 + 0.012 * w;
              case UnaryOp::BitNot: return child + 0.05;
              case UnaryOp::LogNot: return child + 0.05;
              default:
                return child + 0.10 + 0.12 * log2d(width(un->arg));
            }
          }
          case ExprKind::Binary: {
            const auto *bin = expr->as<BinaryExpr>();
            double child = std::max(delay(bin->lhs), delay(bin->rhs));
            double ow = std::max(width(bin->lhs), width(bin->rhs));
            switch (bin->op) {
              case BinaryOp::Add:
              case BinaryOp::Sub:
                return child + 0.30 + 0.012 * ow;
              case BinaryOp::Mul:
                return child + 0.80 + 0.025 * ow;
              case BinaryOp::Div:
              case BinaryOp::Mod:
                return child + 1.50 + 0.050 * ow;
              case BinaryOp::BitAnd:
              case BinaryOp::BitOr:
              case BinaryOp::BitXor:
                return child + 0.15;
              case BinaryOp::LogAnd:
              case BinaryOp::LogOr:
                return child + 0.12;
              case BinaryOp::Eq:
              case BinaryOp::Ne:
                return child + 0.20 + 0.008 * ow;
              case BinaryOp::Lt:
              case BinaryOp::Le:
              case BinaryOp::Gt:
              case BinaryOp::Ge:
                return child + 0.25 + 0.012 * ow;
              case BinaryOp::Shl:
              case BinaryOp::Shr:
                if (bin->rhs->kind == ExprKind::Number)
                    return delay(bin->lhs) + 0.05;
                return child + 0.25 + 0.08 * log2d(w);
            }
            return child;
          }
          case ExprKind::Ternary: {
            const auto *tern = expr->as<TernaryExpr>();
            double sel = delay(tern->cond);
            double data = std::max(delay(tern->thenExpr),
                                   delay(tern->elseExpr));
            return std::max(sel, data) + 0.15;
          }
          case ExprKind::Concat: {
            double worst = 0;
            for (const auto &part : expr->as<ConcatExpr>()->parts)
                worst = std::max(worst, delay(part));
            return worst;
          }
          case ExprKind::Repeat:
            return delay(expr->as<RepeatExpr>()->inner);
          case ExprKind::Index: {
            const auto *idx = expr->as<IndexExpr>();
            auto it = wireDelay.find(idx->base);
            double base = (it == wireDelay.end() ? 0 : it->second) +
                          loadPenalty(idx->base);
            if (idx->index->kind == ExprKind::Number)
                return base;
            return std::max(base, delay(idx->index)) + 0.20;
          }
          case ExprKind::Range: {
            const auto *range = expr->as<RangeExpr>();
            auto it = wireDelay.find(range->base);
            return (it == wireDelay.end() ? 0 : it->second) +
                   loadPenalty(range->base);
          }
        }
        return 0;
    }
};

} // namespace

TimingReport
estimateTiming(const Module &mod)
{
    obs::ObsSpan span("synth.timing");
    HWDBG_STAT_INC("synth.timing_estimates", 1);
    DelayModel model{mod, {}, {}};

    // Fanout census: every identifier occurrence in an expression is a
    // reader of that signal.
    for (const auto &ga : analysis::collectAssigns(mod)) {
        forEachIdent(ga.rhs, [&](const std::string &name) {
            ++model.fanout[name];
        });
        forEachIdent(ga.guard, [&](const std::string &name) {
            ++model.fanout[name];
        });
    }
    for (const auto &item : mod.items) {
        if (item->kind != ItemKind::Instance)
            continue;
        for (const auto &conn : item->as<InstanceItem>()->conns)
            if (conn.actual)
                forEachIdent(conn.actual, [&](const std::string &name) {
                    ++model.fanout[name];
                });
    }

    // Settle wire arrival times by fixpoint over continuous assigns
    // (combinational loops stop improving and are truncated).
    auto defs = analysis::wireDefinitions(mod);
    for (int iter = 0; iter < 64; ++iter) {
        bool changed = false;
        for (const auto &[name, def] : defs) {
            double arrival = model.delay(def);
            auto it = model.wireDelay.find(name);
            if (it == model.wireDelay.end() ||
                arrival > it->second + 1e-9) {
                if (it != model.wireDelay.end() && iter > 48)
                    continue; // loop guard
                model.wireDelay[name] = arrival;
                changed = true;
            }
        }
        if (!changed)
            break;
    }

    TimingReport report;
    auto consider = [&](double path, const std::string &signal) {
        if (path > report.criticalPathNs) {
            report.criticalPathNs = path;
            report.criticalSignal = signal;
        }
    };

    for (const auto &ga : analysis::collectAssigns(mod)) {
        std::string target = "?";
        auto targets = analysis::lvalueTargets(ga.lhs);
        if (!targets.empty())
            target = *targets.begin();
        double data = model.delay(ga.rhs);
        double guard = model.delay(ga.guard);
        bool guarded = ga.guard->kind != ExprKind::Number;
        // The guard selects between new and held value: one mux level.
        double path = std::max(data, guard) + (guarded ? 0.15 : 0.0);
        consider(path, target);
    }

    report.fmaxMhz = 1000.0 / (fixedOverheadNs + report.criticalPathNs);
    return report;
}

bool
meetsTarget(const TimingReport &report, double target_mhz)
{
    return report.fmaxMhz + 1e-9 >= target_mhz;
}

} // namespace hwdbg::synth
