/**
 * @file
 * FPGA platform capacity tables used to normalize resource overheads.
 *
 * The paper synthesizes HARP-specific designs to the Intel HARP platform
 * (Arria 10 GX1150 FPGA, Quartus 17.0) and the remaining designs to the
 * Xilinx KC705 board (Kintex-7 325T, Vivado 2020.2). hwdbg replaces the
 * vendor synthesizers with an analytic model; these tables hold the
 * device totals used to turn absolute estimates into the normalized
 * percentages of Figures 2 and 3.
 */

#ifndef HWDBG_SYNTH_PLATFORM_HH
#define HWDBG_SYNTH_PLATFORM_HH

#include <cstdint>
#include <string>

namespace hwdbg::synth
{

struct Platform
{
    std::string name;
    /** Total block RAM capacity in bits. */
    double bramBits;
    /** Total flip-flops. */
    uint64_t registers;
    /** Total logic elements (ALMs on Intel, LUTs on Xilinx). */
    uint64_t logic;
};

/** Intel HARP (Arria 10 GX1150-class device). */
const Platform &harpPlatform();

/** Xilinx KC705 (Kintex-7 325T). */
const Platform &kc705Platform();

/** Look up by name ("HARP", "KC705", "Xilinx", "Generic"). */
const Platform &platformByName(const std::string &name);

} // namespace hwdbg::synth

#endif // HWDBG_SYNTH_PLATFORM_HH
