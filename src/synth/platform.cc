#include "synth/platform.hh"

#include "common/logging.hh"

namespace hwdbg::synth
{

const Platform &
harpPlatform()
{
    // Arria 10 GX1150: 2,713 M20K blocks (~54 Mbit), 1,708,800 ALM
    // registers, 427,200 ALMs.
    static const Platform platform{"HARP", 54.26e6, 1708800, 427200};
    return platform;
}

const Platform &
kc705Platform()
{
    // Kintex-7 325T: 445 36-Kbit block RAMs (~16 Mbit), 407,600 FFs,
    // 203,800 LUTs.
    static const Platform platform{"KC705", 16.02e6, 407600, 203800};
    return platform;
}

const Platform &
platformByName(const std::string &name)
{
    if (name == "HARP")
        return harpPlatform();
    if (name == "KC705" || name == "Xilinx" || name == "Generic")
        return kc705Platform();
    fatal("unknown platform '%s'", name.c_str());
}

} // namespace hwdbg::synth
