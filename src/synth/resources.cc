#include "synth/resources.hh"

#include <algorithm>
#include <cmath>

#include "analysis/guards.hh"
#include "common/logging.hh"
#include "elab/elaborate.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "sim/design.hh"

namespace hwdbg::synth
{

using namespace hdl;

namespace
{

/** Memories at or above this many bits are mapped to block RAM. */
constexpr uint64_t bramThreshold = 2048;

uint32_t
log2ceil(uint64_t value)
{
    uint32_t bits = 0;
    while ((uint64_t(1) << bits) < value)
        ++bits;
    return bits;
}

/** Self-determined width of an expression without simulator lowering. */
uint32_t
exprWidth(const ExprPtr &expr,
          const std::map<std::string, uint32_t> &widths)
{
    if (!expr)
        return 1;
    switch (expr->kind) {
      case ExprKind::Number: {
        const auto *num = expr->as<NumberExpr>();
        return num->sized ? num->value.width()
                          : std::max<uint32_t>(32, num->value.width());
      }
      case ExprKind::Id: {
        auto it = widths.find(expr->as<IdExpr>()->name);
        return it == widths.end() ? 1 : it->second;
      }
      case ExprKind::Unary: {
        const auto *un = expr->as<UnaryExpr>();
        if (un->op == UnaryOp::Neg || un->op == UnaryOp::BitNot)
            return exprWidth(un->arg, widths);
        return 1;
      }
      case ExprKind::Binary: {
        const auto *bin = expr->as<BinaryExpr>();
        switch (bin->op) {
          case BinaryOp::Shl:
          case BinaryOp::Shr:
            return exprWidth(bin->lhs, widths);
          case BinaryOp::LogAnd:
          case BinaryOp::LogOr:
          case BinaryOp::Eq:
          case BinaryOp::Ne:
          case BinaryOp::Lt:
          case BinaryOp::Le:
          case BinaryOp::Gt:
          case BinaryOp::Ge:
            return 1;
          default:
            return std::max(exprWidth(bin->lhs, widths),
                            exprWidth(bin->rhs, widths));
        }
      }
      case ExprKind::Ternary:
        return std::max(exprWidth(expr->as<TernaryExpr>()->thenExpr,
                                  widths),
                        exprWidth(expr->as<TernaryExpr>()->elseExpr,
                                  widths));
      case ExprKind::Concat: {
        uint32_t total = 0;
        for (const auto &part : expr->as<ConcatExpr>()->parts)
            total += exprWidth(part, widths);
        return total;
      }
      case ExprKind::Repeat: {
        const auto *rep = expr->as<RepeatExpr>();
        uint64_t count = 1;
        try {
            count = sim::constU64(rep->count);
        } catch (const HdlError &) {
        }
        return static_cast<uint32_t>(count) *
               exprWidth(rep->inner, widths);
      }
      case ExprKind::Index:
        return 1; // bit select (element select handled by caller width)
      case ExprKind::Range: {
        const auto *range = expr->as<RangeExpr>();
        try {
            uint64_t msb = sim::constU64(range->msb);
            uint64_t lsb = sim::constU64(range->lsb);
            return static_cast<uint32_t>(msb - lsb + 1);
        } catch (const HdlError &) {
            return 1;
        }
      }
    }
    return 1;
}

/** LUT-equivalent cost of evaluating an expression tree. */
uint64_t
logicCost(const ExprPtr &expr,
          const std::map<std::string, uint32_t> &widths)
{
    if (!expr)
        return 0;
    uint32_t w = exprWidth(expr, widths);
    switch (expr->kind) {
      case ExprKind::Number:
      case ExprKind::Id:
        return 0;
      case ExprKind::Unary: {
        const auto *un = expr->as<UnaryExpr>();
        uint64_t child = logicCost(un->arg, widths);
        uint32_t aw = exprWidth(un->arg, widths);
        switch (un->op) {
          case UnaryOp::Neg: return child + aw;
          case UnaryOp::BitNot: return child; // folds into downstream LUTs
          case UnaryOp::LogNot: return child + 1;
          default: return child + (aw + 3) / 4; // reduction tree
        }
      }
      case ExprKind::Binary: {
        const auto *bin = expr->as<BinaryExpr>();
        uint64_t children =
            logicCost(bin->lhs, widths) + logicCost(bin->rhs, widths);
        uint32_t ow = std::max(exprWidth(bin->lhs, widths),
                               exprWidth(bin->rhs, widths));
        switch (bin->op) {
          case BinaryOp::Add:
          case BinaryOp::Sub:
            return children + ow;
          case BinaryOp::Mul:
            return children + uint64_t(2) * ow;
          case BinaryOp::Div:
          case BinaryOp::Mod:
            return children + uint64_t(4) * ow;
          case BinaryOp::BitAnd:
          case BinaryOp::BitOr:
          case BinaryOp::BitXor:
            return children + (ow + 1) / 2;
          case BinaryOp::LogAnd:
          case BinaryOp::LogOr:
            return children + 1;
          case BinaryOp::Eq:
          case BinaryOp::Ne:
            return children + (ow + 1) / 2;
          case BinaryOp::Lt:
          case BinaryOp::Le:
          case BinaryOp::Gt:
          case BinaryOp::Ge:
            return children + ow;
          case BinaryOp::Shl:
          case BinaryOp::Shr: {
            bool constant_shift =
                bin->rhs->kind == ExprKind::Number;
            if (constant_shift)
                return children; // pure wiring
            return children +
                   uint64_t(w) * std::max(1u, log2ceil(w)) / 2;
          }
        }
        return children;
      }
      case ExprKind::Ternary: {
        const auto *tern = expr->as<TernaryExpr>();
        return logicCost(tern->cond, widths) +
               logicCost(tern->thenExpr, widths) +
               logicCost(tern->elseExpr, widths) + w; // 2:1 mux
      }
      case ExprKind::Concat: {
        uint64_t total = 0;
        for (const auto &part : expr->as<ConcatExpr>()->parts)
            total += logicCost(part, widths);
        return total; // wiring only
      }
      case ExprKind::Repeat:
        return logicCost(expr->as<RepeatExpr>()->inner, widths);
      case ExprKind::Index: {
        const auto *idx = expr->as<IndexExpr>();
        uint64_t child = logicCost(idx->index, widths);
        if (idx->index->kind == ExprKind::Number)
            return child; // static select: wiring
        auto it = widths.find(idx->base);
        uint32_t bw = it == widths.end() ? 1 : it->second;
        return child + std::max(1u, log2ceil(std::max(2u, bw)));
      }
      case ExprKind::Range:
        return 0; // static select: wiring
    }
    return 0;
}

} // namespace

ResourceUsage &
ResourceUsage::operator+=(const ResourceUsage &rhs)
{
    bramBits += rhs.bramBits;
    registers += rhs.registers;
    logic += rhs.logic;
    return *this;
}

ResourceUsage
ResourceUsage::overheadVs(const ResourceUsage &base) const
{
    ResourceUsage out;
    out.bramBits = std::max(0.0, bramBits - base.bramBits);
    out.registers =
        registers > base.registers ? registers - base.registers : 0;
    out.logic = logic > base.logic ? logic - base.logic : 0;
    return out;
}

NormalizedUsage
normalize(const ResourceUsage &usage, const Platform &platform)
{
    NormalizedUsage out;
    out.bramPct = 100.0 * usage.bramBits / platform.bramBits;
    out.registersPct =
        100.0 * static_cast<double>(usage.registers) /
        static_cast<double>(platform.registers);
    out.logicPct = 100.0 * static_cast<double>(usage.logic) /
                   static_cast<double>(platform.logic);
    return out;
}

ResourceUsage
estimateResources(const Module &mod)
{
    obs::ObsSpan span("synth.resources");
    HWDBG_STAT_INC("synth.resource_estimates", 1);
    ResourceUsage usage;
    std::map<std::string, uint32_t> widths;

    // Declarations: flip-flops and memories.
    for (const auto &item : mod.items) {
        if (item->kind != ItemKind::Net)
            continue;
        const auto *net = item->as<NetItem>();
        uint32_t width = 1;
        if (net->range)
            width = static_cast<uint32_t>(sim::constU64(net->range->msb)) +
                    1;
        widths[net->name] = width;
        if (net->net != NetKind::Reg)
            continue;
        if (net->array) {
            uint64_t size = sim::constU64(net->array->msb) + 1;
            uint64_t bits = size * width;
            if (bits >= bramThreshold) {
                usage.bramBits += static_cast<double>(bits);
                usage.logic += width / 2 + log2ceil(size);
            } else {
                usage.registers += bits;
                // Register-file read mux.
                usage.logic += width * std::max<uint32_t>(1,
                    log2ceil(std::max<uint64_t>(2, size)));
            }
        } else {
            usage.registers += width;
        }
    }

    // Logic: continuous assigns and processes.
    for (const auto &ga : analysis::collectAssigns(mod)) {
        usage.logic += logicCost(ga.rhs, widths);
        // Write-enable / priority mux on the target for guarded
        // procedural assignments.
        if (ga.stmt) {
            uint32_t lw = exprWidth(ga.lhs, widths);
            if (ga.lhs->kind == ExprKind::Id) {
                auto it = widths.find(ga.lhs->as<IdExpr>()->name);
                if (it != widths.end())
                    lw = it->second;
            }
            bool guarded = !(ga.guard->kind == ExprKind::Number);
            if (guarded)
                usage.logic += lw;
            // Guard evaluation cost, shared across assignments under the
            // same branch; halve to avoid double counting.
            usage.logic += logicCost(ga.guard, widths) / 2;
        }
    }

    // Blackbox IPs.
    for (const auto &item : mod.items) {
        if (item->kind != ItemKind::Instance)
            continue;
        const auto *inst = item->as<InstanceItem>();
        std::map<std::string, uint64_t> params;
        for (const auto &[name, value] : inst->paramOverrides)
            params[name] = sim::constU64(value);
        auto param = [&](const char *name, uint64_t def) {
            auto it = params.find(name);
            return it == params.end() ? def : it->second;
        };
        if (inst->moduleName == "scfifo" || inst->moduleName == "dcfifo") {
            uint64_t width = param("WIDTH", 8);
            uint64_t depth = param("DEPTH", 16);
            uint64_t bits = width * depth;
            if (bits >= bramThreshold)
                usage.bramBits += static_cast<double>(bits);
            else
                usage.registers += bits;
            usage.registers += width + 2 * log2ceil(depth) + 4;
            usage.logic += width / 2 + 2 * log2ceil(depth) + 12;
        } else if (inst->moduleName == "altsyncram") {
            uint64_t bits = param("WIDTH", 8) * param("NUMWORDS", 16);
            usage.bramBits += static_cast<double>(bits);
            usage.registers += param("WIDTH", 8);
            usage.logic += 8;
        } else if (inst->moduleName == "signal_recorder") {
            // The recording IP stores {32-bit timestamp, data} per entry
            // and keeps a write pointer, trigger, and compare logic.
            uint64_t width = param("WIDTH", 8);
            uint64_t depth = param("DEPTH", 8192);
            usage.bramBits += static_cast<double>((width + 32) * depth);
            usage.registers += log2ceil(depth) + 34;
            usage.logic += width / 4 + 24;
        }
    }

    return usage;
}

} // namespace hwdbg::synth
