/**
 * @file
 * Analytic FPGA resource estimator (Quartus/Vivado substitute).
 *
 * The estimator maps an elaborated module onto the three resource types
 * of Figure 2 — block RAM bits, registers (flip-flops), and logic
 * (LUT/ALM equivalents) — using a documented structural cost model:
 *
 *  - every scalar reg bit costs one flip-flop;
 *  - memories of >= bramThreshold bits map to block RAM (plus read-mux
 *    logic), smaller ones to registers;
 *  - each operator costs LUTs as a function of its width (see
 *    logicCost() in resources.cc);
 *  - each guarded procedural assignment costs a write-enable mux of the
 *    target width;
 *  - blackbox IPs (FIFOs, RAMs, recorders) use their parameterized
 *    buffer sizes for BRAM and fixed control overheads.
 *
 * Absolute numbers are calibrated, not measured; what the model
 * preserves from the paper's evaluation is the *structure*: recording
 * buffer BRAM grows linearly with depth while register/logic overhead of
 * the instrumentation stays flat (Fig. 2), and LossCheck's shadow state
 * costs registers/logic proportional to the number of on-path registers
 * (Fig. 3).
 */

#ifndef HWDBG_SYNTH_RESOURCES_HH
#define HWDBG_SYNTH_RESOURCES_HH

#include <cstdint>

#include "hdl/ast.hh"
#include "synth/platform.hh"

namespace hwdbg::synth
{

struct ResourceUsage
{
    double bramBits = 0;
    uint64_t registers = 0;
    uint64_t logic = 0;

    ResourceUsage &operator+=(const ResourceUsage &rhs);
    /** Overhead of this usage relative to @p base (clamped at zero). */
    ResourceUsage overheadVs(const ResourceUsage &base) const;
};

/** Normalized percentages against a platform's totals. */
struct NormalizedUsage
{
    double bramPct = 0;
    double registersPct = 0;
    double logicPct = 0;
};

NormalizedUsage normalize(const ResourceUsage &usage,
                          const Platform &platform);

/** Estimate the resources of an elaborated (flat) module. */
ResourceUsage estimateResources(const hdl::Module &mod);

} // namespace hwdbg::synth

#endif // HWDBG_SYNTH_RESOURCES_HH
