/**
 * @file
 * Static timing model (the synthesizer's Fmax report substitute).
 *
 * Estimates the longest register-to-register combinational path with a
 * per-operator delay table (delays grow with operand width), then
 * converts to an achievable clock frequency. §6.4 of the paper reports
 * that 18 of the 20 instrumented designs keep their target frequency
 * while Optimus (400 MHz) degrades to 200 MHz; the timing_closure bench
 * reproduces that comparison with this model.
 */

#ifndef HWDBG_SYNTH_TIMING_HH
#define HWDBG_SYNTH_TIMING_HH

#include <string>

#include "hdl/ast.hh"

namespace hwdbg::synth
{

struct TimingReport
{
    /** Longest combinational path, ns (excluding clk-to-out/setup). */
    double criticalPathNs = 0;
    /** Achievable frequency in MHz including fixed clocking overhead. */
    double fmaxMhz = 0;
    /** Signal whose assignment closes the critical path. */
    std::string criticalSignal;
};

TimingReport estimateTiming(const hdl::Module &mod);

/** True when the design closes timing at @p target_mhz. */
bool meetsTarget(const TimingReport &report, double target_mhz);

} // namespace hwdbg::synth

#endif // HWDBG_SYNTH_TIMING_HH
