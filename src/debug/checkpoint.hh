/**
 * @file
 * Periodic checkpoint ring for time-travel debugging.
 *
 * The engine snapshots the simulator every N stimulus steps into a
 * bounded ring. Travelling backwards restores the nearest checkpoint at
 * or before the target position and deterministically replays the
 * recorded stimulus from there — the classic checkpoint-and-replay
 * scheme (gdb process record, Mozilla rr) applied to cycle simulation.
 *
 * The snapshot of position 0 (the freshly-constructed simulator) is
 * pinned outside the ring so any position stays reachable even after
 * eviction, at the cost of a longer replay.
 */

#ifndef HWDBG_DEBUG_CHECKPOINT_HH
#define HWDBG_DEBUG_CHECKPOINT_HH

#include <cstdint>
#include <deque>
#include <memory>

#include "sim/simulator.hh"

namespace hwdbg::debug
{

/**
 * Content-addressing seam for checkpoint snapshots. The serve layer's
 * SnapshotStore implements this over snapshotFingerprint() so sessions
 * replaying the same stimulus prefix share one immutable copy of each
 * identical snapshot instead of each holding its own.
 */
class SnapshotInterner
{
  public:
    virtual ~SnapshotInterner() = default;
    /** Return a shared immutable snapshot equal to @p snap, reusing a
     *  previously-interned copy when the content matches. */
    virtual std::shared_ptr<const sim::SimSnapshot>
    intern(sim::SimSnapshot &&snap) = 0;
};

struct Checkpoint
{
    /** Stimulus steps applied when the snapshot was taken. */
    uint64_t position = 0;
    uint64_t cycle = 0;
    /** Immutable, possibly shared across sessions via an interner. */
    std::shared_ptr<const sim::SimSnapshot> snap;
};

class CheckpointRing
{
  public:
    /**
     * @param interval Steps between periodic snapshots (0 disables
     *                 periodic checkpoints; only position 0 is kept).
     * @param capacity Max periodic snapshots retained (oldest evicted).
     * @param interner Optional content-addressed snapshot store; null
     *                 keeps every snapshot privately.
     */
    CheckpointRing(uint64_t interval, size_t capacity,
                   SnapshotInterner *interner = nullptr);

    /** Pin the position-0 snapshot (call once, before any step). */
    void saveInitial(const sim::Simulator &sim);

    /**
     * Snapshot @p sim if @p position is on the periodic grid and not
     * already present. Safe to call during replay: revisited positions
     * are only re-saved after their checkpoint was evicted.
     */
    void maybeSave(uint64_t position, const sim::Simulator &sim);

    /** Best restore point for travelling to @p position (never null
     *  once saveInitial() ran). */
    const Checkpoint *nearestAtOrBefore(uint64_t position) const;

    uint64_t interval() const { return interval_; }
    /** Periodic checkpoints currently held (excludes the pinned one). */
    size_t count() const { return ring_.size(); }
    /** Total footprint of every held snapshot, pinned one included. */
    size_t totalBytes() const;

  private:
    std::shared_ptr<const sim::SimSnapshot> intern(sim::SimSnapshot &&snap);

    uint64_t interval_;
    size_t capacity_;
    SnapshotInterner *interner_ = nullptr;
    bool haveInitial_ = false;
    Checkpoint initial_;
    /** Sorted by position (saves always happen at increasing positions
     *  within one forward pass; replay re-saves fill gaps in order). */
    std::deque<Checkpoint> ring_;
};

} // namespace hwdbg::debug

#endif // HWDBG_DEBUG_CHECKPOINT_HH
