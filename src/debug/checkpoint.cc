#include "debug/checkpoint.hh"

#include <algorithm>

#include "obs/metrics.hh"

namespace hwdbg::debug
{

CheckpointRing::CheckpointRing(uint64_t interval, size_t capacity,
                               SnapshotInterner *interner)
    : interval_(interval), capacity_(capacity ? capacity : 1),
      interner_(interner)
{
}

std::shared_ptr<const sim::SimSnapshot>
CheckpointRing::intern(sim::SimSnapshot &&snap)
{
    if (interner_)
        return interner_->intern(std::move(snap));
    return std::make_shared<const sim::SimSnapshot>(std::move(snap));
}

void
CheckpointRing::saveInitial(const sim::Simulator &sim)
{
    initial_.position = 0;
    initial_.cycle = sim.cycle();
    initial_.snap = intern(sim.saveState());
    haveInitial_ = true;
    HWDBG_STAT_MAX("debug.checkpoint_bytes", totalBytes());
}

void
CheckpointRing::maybeSave(uint64_t position, const sim::Simulator &sim)
{
    if (interval_ == 0 || position == 0 || position % interval_ != 0)
        return;
    for (const auto &cp : ring_) {
        if (cp.position == position)
            return;
    }
    Checkpoint cp;
    cp.position = position;
    cp.cycle = sim.cycle();
    cp.snap = intern(sim.saveState());
    // Keep the deque sorted: replay re-saves arrive out of order
    // relative to positions already present.
    auto it = std::upper_bound(ring_.begin(), ring_.end(), position,
                               [](uint64_t pos, const Checkpoint &c) {
                                   return pos < c.position;
                               });
    ring_.insert(it, std::move(cp));
    if (ring_.size() > capacity_)
        ring_.pop_front();
    HWDBG_STAT_INC("debug.checkpoints_saved", 1);
    HWDBG_STAT_MAX("debug.checkpoint_bytes", totalBytes());
}

const Checkpoint *
CheckpointRing::nearestAtOrBefore(uint64_t position) const
{
    const Checkpoint *best = haveInitial_ ? &initial_ : nullptr;
    for (const auto &cp : ring_) {
        if (cp.position > position)
            break;
        best = &cp;
    }
    return best;
}

size_t
CheckpointRing::totalBytes() const
{
    size_t total = haveInitial_ ? initial_.snap->sizeBytes() : 0;
    for (const auto &cp : ring_)
        total += cp.snap->sizeBytes();
    return total;
}

} // namespace hwdbg::debug
