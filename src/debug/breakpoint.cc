#include "debug/breakpoint.hh"

#include <algorithm>

#include "sim/coverage.hh"

namespace hwdbg::debug
{

const char *
breakpointKindName(Breakpoint::Kind kind)
{
    switch (kind) {
      case Breakpoint::Kind::Expr:
        return "break";
      case Breakpoint::Kind::Watch:
        return "watch";
      case Breakpoint::Kind::Event:
        return "event";
      case Breakpoint::Kind::Line:
        return "line";
    }
    return "?";
}

namespace
{

/** File component after the last path separator. */
std::string
basenameOf(const std::string &path)
{
    size_t slash = path.find_last_of("/\\");
    return slash == std::string::npos ? path : path.substr(slash + 1);
}

/** Sum of the resolved statements' execution counters. */
uint64_t
execSum(const Breakpoint &bp, const sim::CoverageCollector &cover)
{
    uint64_t sum = 0;
    for (uint32_t id : bp.stmtIds)
        sum += cover.stmtExecCount(id);
    return sum;
}

} // namespace

std::vector<uint32_t>
resolveLineStmts(const sim::CoverageItems &items, const std::string &file,
                 uint32_t line)
{
    bool bareName = file.find_first_of("/\\") == std::string::npos;
    std::vector<uint32_t> ids;
    for (size_t i = 0; i < items.statements.size(); ++i) {
        const auto &loc = items.statements[i].loc;
        if (loc.line != static_cast<int>(line))
            continue;
        if (loc.file == file || (bareName && basenameOf(loc.file) == file))
            ids.push_back(static_cast<uint32_t>(i));
    }
    return ids;
}

int
BreakpointSet::add(Breakpoint::Kind kind, const std::string &spec,
                   hdl::ExprPtr expr, sim::EvalContext &ctx)
{
    Breakpoint bp;
    bp.id = nextId_++;
    bp.kind = kind;
    bp.spec = spec;
    bp.expr = std::move(expr);
    if (bp.kind == Breakpoint::Kind::Expr)
        bp.lastBool = sim::evalBool(bp.expr, ctx);
    else if (bp.kind == Breakpoint::Kind::Watch)
        bp.lastValue = sim::evalExpr(bp.expr, ctx);
    bps_.push_back(std::move(bp));
    return bps_.back().id;
}

int
BreakpointSet::addLine(const std::string &spec,
                       std::vector<uint32_t> stmt_ids, hdl::ExprPtr cond,
                       const sim::CoverageCollector &cover)
{
    Breakpoint bp;
    bp.id = nextId_++;
    bp.kind = Breakpoint::Kind::Line;
    bp.spec = spec;
    bp.expr = std::move(cond);
    bp.stmtIds = std::move(stmt_ids);
    bp.lastExec = execSum(bp, cover);
    bps_.push_back(std::move(bp));
    return bps_.back().id;
}

bool
BreakpointSet::remove(int id)
{
    auto it = std::find_if(bps_.begin(), bps_.end(),
                           [&](const Breakpoint &bp) { return bp.id == id; });
    if (it == bps_.end())
        return false;
    bps_.erase(it);
    return true;
}

bool
BreakpointSet::setEnabled(int id, bool enabled)
{
    for (auto &bp : bps_) {
        if (bp.id == id) {
            bp.enabled = enabled;
            return true;
        }
    }
    return false;
}

bool
BreakpointSet::eventMatches(const std::string &spec, const std::string &key)
{
    if (spec == key)
        return true;
    // Bare category ("fsm") matches "fsm:<anything>".
    return spec.find(':') == std::string::npos &&
           key.size() > spec.size() && key[spec.size()] == ':' &&
           key.compare(0, spec.size(), spec) == 0;
}

std::vector<int>
BreakpointSet::check(sim::EvalContext &ctx,
                     const std::vector<DebugEvent> &events,
                     const sim::CoverageCollector *cover)
{
    std::vector<int> fired;
    for (auto &bp : bps_) {
        bool hit = false;
        switch (bp.kind) {
          case Breakpoint::Kind::Expr: {
            bool now = sim::evalBool(bp.expr, ctx);
            hit = now && !bp.lastBool;
            bp.lastBool = now;
            break;
          }
          case Breakpoint::Kind::Watch: {
            Bits now = sim::evalExpr(bp.expr, ctx);
            hit = now != bp.lastValue;
            bp.lastValue = now;
            break;
          }
          case Breakpoint::Kind::Event:
            for (const auto &ev : events) {
                if (eventMatches(bp.spec, ev.key)) {
                    hit = true;
                    break;
                }
            }
            break;
          case Breakpoint::Kind::Line: {
            if (!cover)
                break;
            uint64_t now = execSum(bp, *cover);
            hit = now > bp.lastExec &&
                  (!bp.expr || sim::evalBool(bp.expr, ctx));
            bp.lastExec = now;
            break;
          }
        }
        if (hit && bp.enabled) {
            ++bp.hits;
            fired.push_back(bp.id);
        }
    }
    return fired;
}

void
BreakpointSet::rebase(sim::EvalContext &ctx,
                      const sim::CoverageCollector *cover)
{
    for (auto &bp : bps_) {
        if (bp.kind == Breakpoint::Kind::Expr)
            bp.lastBool = sim::evalBool(bp.expr, ctx);
        else if (bp.kind == Breakpoint::Kind::Watch)
            bp.lastValue = sim::evalExpr(bp.expr, ctx);
        else if (bp.kind == Breakpoint::Kind::Line && cover)
            bp.lastExec = execSum(bp, *cover);
    }
}

const Breakpoint *
BreakpointSet::find(int id) const
{
    for (const auto &bp : bps_) {
        if (bp.id == id)
            return &bp;
    }
    return nullptr;
}

} // namespace hwdbg::debug
