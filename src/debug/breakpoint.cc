#include "debug/breakpoint.hh"

#include <algorithm>

namespace hwdbg::debug
{

const char *
breakpointKindName(Breakpoint::Kind kind)
{
    switch (kind) {
      case Breakpoint::Kind::Expr:
        return "break";
      case Breakpoint::Kind::Watch:
        return "watch";
      case Breakpoint::Kind::Event:
        return "event";
    }
    return "?";
}

int
BreakpointSet::add(Breakpoint::Kind kind, const std::string &spec,
                   hdl::ExprPtr expr, sim::EvalContext &ctx)
{
    Breakpoint bp;
    bp.id = nextId_++;
    bp.kind = kind;
    bp.spec = spec;
    bp.expr = std::move(expr);
    if (bp.kind == Breakpoint::Kind::Expr)
        bp.lastBool = sim::evalBool(bp.expr, ctx);
    else if (bp.kind == Breakpoint::Kind::Watch)
        bp.lastValue = sim::evalExpr(bp.expr, ctx);
    bps_.push_back(std::move(bp));
    return bps_.back().id;
}

bool
BreakpointSet::remove(int id)
{
    auto it = std::find_if(bps_.begin(), bps_.end(),
                           [&](const Breakpoint &bp) { return bp.id == id; });
    if (it == bps_.end())
        return false;
    bps_.erase(it);
    return true;
}

bool
BreakpointSet::setEnabled(int id, bool enabled)
{
    for (auto &bp : bps_) {
        if (bp.id == id) {
            bp.enabled = enabled;
            return true;
        }
    }
    return false;
}

bool
BreakpointSet::eventMatches(const std::string &spec, const std::string &key)
{
    if (spec == key)
        return true;
    // Bare category ("fsm") matches "fsm:<anything>".
    return spec.find(':') == std::string::npos &&
           key.size() > spec.size() && key[spec.size()] == ':' &&
           key.compare(0, spec.size(), spec) == 0;
}

std::vector<int>
BreakpointSet::check(sim::EvalContext &ctx,
                     const std::vector<DebugEvent> &events)
{
    std::vector<int> fired;
    for (auto &bp : bps_) {
        bool hit = false;
        switch (bp.kind) {
          case Breakpoint::Kind::Expr: {
            bool now = sim::evalBool(bp.expr, ctx);
            hit = now && !bp.lastBool;
            bp.lastBool = now;
            break;
          }
          case Breakpoint::Kind::Watch: {
            Bits now = sim::evalExpr(bp.expr, ctx);
            hit = now != bp.lastValue;
            bp.lastValue = now;
            break;
          }
          case Breakpoint::Kind::Event:
            for (const auto &ev : events) {
                if (eventMatches(bp.spec, ev.key)) {
                    hit = true;
                    break;
                }
            }
            break;
        }
        if (hit && bp.enabled) {
            ++bp.hits;
            fired.push_back(bp.id);
        }
    }
    return fired;
}

void
BreakpointSet::rebase(sim::EvalContext &ctx)
{
    for (auto &bp : bps_) {
        if (bp.kind == Breakpoint::Kind::Expr)
            bp.lastBool = sim::evalBool(bp.expr, ctx);
        else if (bp.kind == Breakpoint::Kind::Watch)
            bp.lastValue = sim::evalExpr(bp.expr, ctx);
    }
}

const Breakpoint *
BreakpointSet::find(int id) const
{
    for (const auto &bp : bps_) {
        if (bp.id == id)
            return &bp;
    }
    return nullptr;
}

} // namespace hwdbg::debug
