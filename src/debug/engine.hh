/**
 * @file
 * The time-travel debugger engine: deterministic replay + checkpoints
 * over sim::Simulator, with the paper's monitors surfaced as events.
 *
 * The engine owns a simulator over an (optionally instrumented) flat
 * module and a recorded stimulus tape. Execution only ever moves
 * forward by applying tape steps; "backwards" motion restores the
 * nearest checkpoint at or before the target and quietly replays up to
 * it. Because the design is deterministic and the tape captures every
 * poke, a position's state is a pure function of the tape prefix —
 * travelling to the same position always lands in the bit-identical
 * state (the property tests/sim/test_snapshot.cc pins down).
 *
 * Paper-tool integration: instrumentForDebug() chains the FSM Monitor,
 * Dependency Monitor, and LossCheck passes over the design before the
 * engine is built; at run time the engine parses the monitors'
 * $display markers appended by each step into DebugEvents
 * ("fsm:<var>", "dep:<var>", "loss:<reg>") that breakpoints can match
 * (`break event fsm:bus_state`) — the interactive loop the paper's
 * batch tools feed.
 */

#ifndef HWDBG_DEBUG_ENGINE_HH
#define HWDBG_DEBUG_ENGINE_HH

#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "core/losscheck.hh"
#include "debug/breakpoint.hh"
#include "debug/checkpoint.hh"
#include "sim/coverage.hh"
#include "sim/simulator.hh"
#include "trace/trace.hh"

namespace hwdbg::analysis
{
class DepGraph;
}

namespace hwdbg::debug
{

/** Which paper tools to weave into the debugged design. */
struct InstrumentConfig
{
    bool fsm = false;
    /** Variable for Dependency Monitor (empty = off). */
    std::string depVariable;
    int depCycles = 4;
    std::optional<core::LossCheckOptions> lossCheck;
    /** Elaborated constants; used for symbolic FSM state names. */
    std::map<std::string, Bits> constants;
};

struct InstrumentResult
{
    hdl::ModulePtr module;
    std::vector<std::string> fsmMonitored;
    std::map<std::string, int> depChain;
    std::set<std::string> lossInstrumented;
    int generatedLines = 0;
};

/** Apply the configured monitors to @p mod (behavior-preserving). */
InstrumentResult instrumentForDebug(const hdl::Module &mod,
                                    const InstrumentConfig &cfg);

/**
 * Parse a stimulus vector file into a tape. Format (documented in
 * DESIGN.md §11): one line per eval step; `#` starts a comment; a lone
 * `-` is a step with no pokes; otherwise whitespace-separated
 * `signal=value` tokens (value is a Verilog literal like 8'hff or a
 * decimal), applied in order before the step's eval.
 */
sim::StimulusTape loadStimulusFile(const std::string &path);

struct EngineOptions
{
    /** Stimulus steps between periodic checkpoints (0 = only the
     *  initial snapshot). */
    uint64_t checkpointInterval = 128;
    size_t checkpointCapacity = 64;
    /** Constants for symbolic state names in event details. */
    std::map<std::string, Bits> constants;
    /** Execution backend (--backend); empty runs the interpreter.
     *  Installed before the initial checkpoint so the whole session —
     *  including time travel — replays on the chosen backend. */
    sim::BackendFactory backend;
    /** Content-addressed checkpoint store shared across sessions (the
     *  serve layer's SnapshotStore); null keeps snapshots private. The
     *  pointee must outlive the engine. */
    SnapshotInterner *snapshots = nullptr;
};

class Engine
{
  public:
    enum class StopReason
    {
        None,       ///< landed exactly where asked
        Breakpoint, ///< a breakpoint/watchpoint/event break fired
        UntilTrue,  ///< run-until condition became true
        EndOfTape,  ///< recorded stimulus exhausted
        Finished,   ///< design executed $finish
    };

    struct StopInfo
    {
        StopReason reason = StopReason::None;
        /** Breakpoint ids that fired on the stopping step. */
        std::vector<int> breakpoints;
        /** Events emitted by the stopping step. */
        std::vector<DebugEvent> events;
    };

    /** Shared-tape form: many sessions replaying the same recorded
     *  stimulus reference one immutable tape (the serve layer's design
     *  cache hands every session the same pointer). */
    Engine(hdl::ModulePtr module,
           std::shared_ptr<const sim::StimulusTape> tape,
           EngineOptions opts = {});
    /** Owning convenience form for single-session use. */
    Engine(hdl::ModulePtr module, sim::StimulusTape tape,
           EngineOptions opts = {});
    ~Engine();

    // ---- execution control -------------------------------------------
    /** Advance @p n primary-clock cycles (breakpoints can stop early). */
    StopInfo stepCycles(uint64_t n);
    /** Run until a breakpoint, $finish, or the end of the tape. */
    StopInfo run();
    /** Run until @p expr_text evaluates true (raises HdlError on a
     *  malformed or unresolvable expression). */
    StopInfo runUntil(const std::string &expr_text);

    // ---- time travel -------------------------------------------------
    /** Travel so the cycle counter reads @p target (restore + replay
     *  when backwards, quiet advance when forwards). */
    StopInfo gotoCycle(uint64_t target);
    /** Travel @p n cycles backwards (clamped at cycle 0). */
    StopInfo reverseStep(uint64_t n);

    // ---- inspection --------------------------------------------------
    uint64_t cycle() const;
    /** Stimulus steps applied so far (the tape position). */
    uint64_t position() const { return pos_; }
    /** Total steps on the recorded stimulus tape. */
    uint64_t tapeSize() const { return tape_->steps.size(); }
    bool atEnd() const { return pos_ >= tape_->steps.size(); }
    bool finished() const;

    /** Evaluate a Verilog expression against current state. */
    Bits evalNow(const std::string &expr_text);

    /** k-cycle dependency chain of @p reg with current values,
     *  sorted by (distance, name) — the `backtrace` command. */
    struct BacktraceEntry
    {
        std::string reg;
        int distance = 0;
        Bits value;
    };
    std::vector<BacktraceEntry> backtrace(const std::string &reg, int k);

    /** Every paper-tool event in the log up to the current position. */
    std::vector<DebugEvent> allEvents() const;
    /** Last @p n $display lines up to the current position. */
    std::vector<sim::EvalContext::LogLine> recentLog(size_t n) const;

    // ---- coverage ----------------------------------------------------
    /**
     * Structural coverage accumulated over the session. Always on:
     * the collector's hooks are cheap, time travel re-marks
     * idempotently (replayed goals are already set), and restoreState
     * re-seeds FSM sampling without fabricating transitions — so the
     * totals are monotone no matter how the user moves through time.
     */
    const sim::CoverageItems &coverageItems() const
    {
        return coverItems_;
    }
    const sim::CoverageCollector &coverage() const { return *cover_; }

    /** Totals now, plus the goals newly covered since the previous
     *  call — the live delta behind the REPL's `cover` command. */
    struct CoverageSummary
    {
        sim::CoverageTotals totals;
        uint64_t newlyCovered = 0;
    };
    CoverageSummary coverageSummary();

    // ---- recording ---------------------------------------------------
    /**
     * Live trace recording over the session's simulator (the REPL's
     * `record` command). Safe under time travel: rows are keyed on the
     * simulator's eval sequence number, so checkpoint restore + replay
     * neither fabricates nor drops a change. recordStop() keeps the
     * capture for recordDump(); recordStart() replaces it.
     */
    void recordStart(const trace::TraceConfig &cfg);
    void recordStop();
    /** Assemble the capture (attached or stopped). */
    trace::TraceDump recordDump() const;
    /** The live/stopped recorder, or null before any record start. */
    const trace::TraceRecorder *recorder() const
    {
        return recorder_.get();
    }
    bool recording() const
    {
        return recorder_ && recorder_->attached();
    }

    BreakpointSet &breakpoints() { return bps_; }
    sim::Simulator &sim() { return sim_; }
    const sim::Simulator &sim() const { return sim_; }
    const CheckpointRing &checkpoints() const { return ring_; }
    /** Steps re-executed by time travel (replay cost so far). */
    uint64_t replayedSteps() const { return replayedSteps_; }

    /** Parse + annotate an expression against this design. */
    hdl::ExprPtr parseExpr(const std::string &expr_text) const;

    /**
     * Add an hgdb-style virtual breakpoint at a source location, with
     * an optional enable condition (empty = unconditional). Resolves
     * (@p file, @p line) against the elaborated design's statement
     * locations; raises HdlError when no executable statement matches.
     * Returns the breakpoint id.
     */
    int addLineBreakpoint(const std::string &file, uint32_t line,
                          const std::string &cond_text);

  private:
    /** Apply the next tape step; returns the events it emitted. */
    std::vector<DebugEvent> stepOnce(bool quiet);
    /** Restore to tape position @p target (< pos_) via checkpoints. */
    void restoreTo(uint64_t target);
    /** Cycle count after @p position steps. */
    uint64_t cycleAtPos(uint64_t position) const;
    std::vector<DebugEvent> eventsFromLog(size_t log_from) const;

    sim::Simulator sim_;
    std::shared_ptr<const sim::StimulusTape> tape_;
    EngineOptions opts_;
    BreakpointSet bps_;
    CheckpointRing ring_;
    sim::CoverageItems coverItems_;
    std::unique_ptr<sim::CoverageCollector> cover_;
    std::unique_ptr<trace::TraceRecorder> recorder_;
    /** covered() at the last coverageSummary() call. */
    uint64_t lastCovered_ = 0;

    /** Tape position: steps applied so far. */
    uint64_t pos_ = 0;
    /** cycleAt_[i] = cycle counter after applying step i (grows on
     *  first visit; replay revisits reproduce the same values). */
    std::vector<uint64_t> cycleAt_;
    uint64_t replayedSteps_ = 0;

    /** Lazily-built dependency graph for backtrace. */
    std::unique_ptr<analysis::DepGraph> depGraph_;
};

const char *stopReasonName(Engine::StopReason reason);

} // namespace hwdbg::debug

#endif // HWDBG_DEBUG_ENGINE_HH
