/**
 * @file
 * Conditional breakpoints, watchpoints, and paper-tool event breaks.
 *
 * Three kinds, all checked after every stimulus step (sub-cycle
 * granularity — both clock phases are visible):
 *
 *  - Expr: a Verilog boolean expression over design signals
 *    (`state == 3 && fifo_full`); fires on the false -> true edge so a
 *    condition that stays true does not re-trigger every step.
 *  - Watch: any expression; fires whenever its value changes.
 *  - Event: a named debugger event produced by the paper's monitors
 *    (`fsm:ctrl_state`, `dep:req_data`, `loss:vm0_stage`); fires when
 *    the step emits a matching event. The bare category (`fsm`, `dep`,
 *    `loss`) matches every event of that kind.
 *
 * Edge/change baselines are rebased after time travel so a breakpoint
 * never fires "on arrival" at a restored state.
 */

#ifndef HWDBG_DEBUG_BREAKPOINT_HH
#define HWDBG_DEBUG_BREAKPOINT_HH

#include <string>
#include <vector>

#include "hdl/ast.hh"
#include "sim/eval.hh"

namespace hwdbg::debug
{

/** A named occurrence surfaced from the paper's instrumentation. */
struct DebugEvent
{
    /** "fsm:<var>", "dep:<var>", or "loss:<reg>". */
    std::string key;
    uint64_t cycle = 0;
    /** Human-readable payload (transition, new value, ...). */
    std::string detail;
};

struct Breakpoint
{
    enum class Kind { Expr, Watch, Event };

    int id = 0;
    Kind kind = Kind::Expr;
    /** Source text of the condition / watched expr / event key. */
    std::string spec;
    /** Parsed + annotated expression (null for Event). */
    hdl::ExprPtr expr;
    bool enabled = true;
    uint64_t hits = 0;

    /** Edge baseline (Expr). */
    bool lastBool = false;
    /** Change baseline (Watch). */
    Bits lastValue;
};

const char *breakpointKindName(Breakpoint::Kind kind);

class BreakpointSet
{
  public:
    /** Add a parsed breakpoint/watchpoint; baseline is taken from
     *  @p ctx immediately. Returns the assigned id. */
    int add(Breakpoint::Kind kind, const std::string &spec,
            hdl::ExprPtr expr, sim::EvalContext &ctx);

    bool remove(int id);
    bool setEnabled(int id, bool enabled);

    /**
     * Evaluate every enabled breakpoint against post-step state and
     * the step's events; returns the ids that fired (baselines
     * updated). Disabled breakpoints still track baselines so enabling
     * them later behaves like a fresh add.
     */
    std::vector<int> check(sim::EvalContext &ctx,
                           const std::vector<DebugEvent> &events);

    /** Re-take every baseline from @p ctx (after restore/goto). */
    void rebase(sim::EvalContext &ctx);

    const std::vector<Breakpoint> &all() const { return bps_; }
    const Breakpoint *find(int id) const;

  private:
    static bool eventMatches(const std::string &spec,
                             const std::string &key);

    std::vector<Breakpoint> bps_;
    int nextId_ = 1;
};

} // namespace hwdbg::debug

#endif // HWDBG_DEBUG_BREAKPOINT_HH
