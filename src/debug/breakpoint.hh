/**
 * @file
 * Conditional breakpoints, watchpoints, and paper-tool event breaks.
 *
 * Four kinds, all checked after every stimulus step (sub-cycle
 * granularity — both clock phases are visible):
 *
 *  - Expr: a Verilog boolean expression over design signals
 *    (`state == 3 && fifo_full`); fires on the false -> true edge so a
 *    condition that stays true does not re-trigger every step.
 *  - Watch: any expression; fires whenever its value changes.
 *  - Event: a named debugger event produced by the paper's monitors
 *    (`fsm:ctrl_state`, `dep:req_data`, `loss:vm0_stage`); fires when
 *    the step emits a matching event. The bare category (`fsm`, `dep`,
 *    `loss`) matches every event of that kind.
 *  - Line: an hgdb-style virtual breakpoint `at <file>:<line>
 *    [if <expr>]` resolved against the elaborated design's statement
 *    source locations. Fires on any step whose eval executed one of
 *    the resolved statements (detected via the coverage collector's
 *    per-statement execution counters), gated by the optional enable
 *    condition evaluated post-step.
 *
 * Edge/change/execution baselines are rebased after time travel so a
 * breakpoint never fires "on arrival" at a restored state.
 */

#ifndef HWDBG_DEBUG_BREAKPOINT_HH
#define HWDBG_DEBUG_BREAKPOINT_HH

#include <string>
#include <vector>

#include "hdl/ast.hh"
#include "sim/eval.hh"

namespace hwdbg::sim
{
class CoverageCollector;
struct CoverageItems;
} // namespace hwdbg::sim

namespace hwdbg::debug
{

/** A named occurrence surfaced from the paper's instrumentation. */
struct DebugEvent
{
    /** "fsm:<var>", "dep:<var>", or "loss:<reg>". */
    std::string key;
    uint64_t cycle = 0;
    /** Human-readable payload (transition, new value, ...). */
    std::string detail;
};

struct Breakpoint
{
    enum class Kind { Expr, Watch, Event, Line };

    int id = 0;
    Kind kind = Kind::Expr;
    /** Source text of the condition / watched expr / event key /
     *  "<file>:<line>[ if <cond>]" location. */
    std::string spec;
    /** Parsed + annotated expression (null for Event; the optional
     *  enable condition for Line). */
    hdl::ExprPtr expr;
    bool enabled = true;
    uint64_t hits = 0;

    /** Edge baseline (Expr). */
    bool lastBool = false;
    /** Change baseline (Watch). */
    Bits lastValue;
    /** Coverage statement ids resolved from the source location
     *  (Line). */
    std::vector<uint32_t> stmtIds;
    /** Execution-count baseline: sum of stmtIds' exec counters at the
     *  last check/rebase (Line). */
    uint64_t lastExec = 0;
};

const char *breakpointKindName(Breakpoint::Kind kind);

/**
 * Resolve a virtual-breakpoint location against the elaborated
 * design's statement source locations: every coverage statement id
 * whose loc matches (@p file, @p line). @p file matches exactly, or by
 * basename when it carries no path separator (so `break at fifo.v:12`
 * works regardless of how the design was loaded).
 */
std::vector<uint32_t> resolveLineStmts(const sim::CoverageItems &items,
                                       const std::string &file,
                                       uint32_t line);

class BreakpointSet
{
  public:
    /** Add a parsed breakpoint/watchpoint; baseline is taken from
     *  @p ctx immediately. Returns the assigned id. */
    int add(Breakpoint::Kind kind, const std::string &spec,
            hdl::ExprPtr expr, sim::EvalContext &ctx);

    /** Add a virtual line breakpoint over resolved statement ids with
     *  an optional enable condition; the execution baseline is taken
     *  from @p cover immediately. Returns the assigned id. */
    int addLine(const std::string &spec, std::vector<uint32_t> stmt_ids,
                hdl::ExprPtr cond, const sim::CoverageCollector &cover);

    bool remove(int id);
    bool setEnabled(int id, bool enabled);

    /**
     * Evaluate every enabled breakpoint against post-step state and
     * the step's events; returns the ids that fired (baselines
     * updated). Disabled breakpoints still track baselines so enabling
     * them later behaves like a fresh add. @p cover feeds Line
     * breakpoints' execution counters (null when none exist).
     */
    std::vector<int> check(sim::EvalContext &ctx,
                           const std::vector<DebugEvent> &events,
                           const sim::CoverageCollector *cover = nullptr);

    /** Re-take every baseline from @p ctx / @p cover (after
     *  restore/goto). */
    void rebase(sim::EvalContext &ctx,
                const sim::CoverageCollector *cover = nullptr);

    const std::vector<Breakpoint> &all() const { return bps_; }
    const Breakpoint *find(int id) const;

  private:
    static bool eventMatches(const std::string &spec,
                             const std::string &key);

    std::vector<Breakpoint> bps_;
    int nextId_ = 1;
};

} // namespace hwdbg::debug

#endif // HWDBG_DEBUG_BREAKPOINT_HH
