/**
 * @file
 * Transport-agnostic debugger command dispatch.
 *
 * ProtocolHandler owns everything between "a parsed Request" and "the
 * bytes of a response": the command table, dispatch, machine-protocol
 * field rendering, and the per-command observability (span + latency
 * histogram + error counters). Transports stay thin — the single-user
 * REPL (repl.cc) reads lines from a stream, the multi-session server
 * (src/serve) routes requests by session id; both produce byte-
 * identical responses for the same engine state and request because
 * all rendering lives here.
 */

#ifndef HWDBG_DEBUG_HANDLER_HH
#define HWDBG_DEBUG_HANDLER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "debug/engine.hh"
#include "debug/protocol.hh"

namespace hwdbg::debug
{

class ProtocolHandler
{
  public:
    explicit ProtocolHandler(Engine &engine) : engine_(engine) {}

    /** One command's outcome, rendered for both frontends. */
    struct Result
    {
        bool ok = true;
        std::string error;
        /** Pre-rendered payload object ("" = no payload field). */
        std::string payloadJson;
        std::vector<std::string> humanLines;
        bool quit = false;
    };

    /** The machine-mode hello line (without trailing newline). */
    std::string helloJson() const;

    /**
     * Dispatch one request: obs span + latency/error metrics around
     * the command, HdlError mapped to a failed Result. Never throws on
     * malformed commands — res.ok carries the verdict.
     */
    Result handle(const Request &req);

    /**
     * Append the machine-protocol response fields — id/ok/[error]/cmd/
     * [payload]/state, exactly in that order — onto @p resp. The
     * object may already carry leading transport fields (the serve
     * multiplexer's "session"); with none it renders the byte-exact
     * `hwdbg debug --machine` response line.
     */
    void responseFields(const Request &req, const Result &res,
                        JsonObject &resp) const;

    Engine &engine() { return engine_; }

    /**
     * Route this handler's command spans onto an obs virtual track
     * (serve sets the owning session's track so a loaded server's
     * --trace file reads as one timeline lane per session). 0 keeps
     * spans on the calling thread's track.
     */
    void setTraceTrack(uint32_t track) { track_ = track; }

  private:
    Engine &engine_;
    uint32_t track_ = 0;
};

} // namespace hwdbg::debug

#endif // HWDBG_DEBUG_HANDLER_HH
