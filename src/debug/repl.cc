#include "debug/repl.hh"

#include <istream>
#include <ostream>

#include "debug/handler.hh"
#include "debug/protocol.hh"

namespace hwdbg::debug
{

int
runSession(Engine &engine, std::istream &in, std::ostream &out,
           const SessionOptions &opts)
{
    ProtocolHandler handler(engine);
    const auto &design = engine.sim().design();
    if (opts.machine) {
        out << handler.helloJson() << "\n" << std::flush;
    } else {
        out << "hwdbg debug: " << design.module().name << ", "
            << engine.tapeSize() << " stimulus steps, "
            << design.numSignals() << " signals\n"
            << "Type 'help' for commands.\n";
    }

    int failures = 0;
    std::string line;
    while (true) {
        if (!opts.machine && !opts.echo)
            out << "(hwdbg) " << std::flush;
        if (!std::getline(in, line))
            break;
        Request req = parseRequestLine(line);
        if (req.cmd.empty() && req.error.empty()) {
            // Blank or comment line: no response, keeps scripts
            // commentable without perturbing transcripts.
            continue;
        }

        ProtocolHandler::Result res = handler.handle(req);
        if (!res.ok)
            ++failures;

        if (opts.machine) {
            JsonObject resp;
            handler.responseFields(req, res, resp);
            out << resp.str() << "\n" << std::flush;
        } else {
            if (opts.echo)
                out << "(hwdbg) " << line << "\n";
            if (!res.ok)
                out << "error: " << res.error << "\n";
            for (const auto &text : res.humanLines)
                out << text << "\n";
        }
        if (res.quit)
            break;
    }
    return failures;
}

} // namespace hwdbg::debug
