#include "debug/protocol.hh"

#include <sstream>

#include "common/logging.hh"
#include "obs/json.hh"
#include "obs/jsoncheck.hh"

namespace hwdbg::debug
{

using obs::jsonEscape;

void
JsonObject::key(const std::string &k)
{
    if (!body_.empty())
        body_ += ',';
    body_ += '"';
    body_ += jsonEscape(k);
    body_ += "\":";
}

JsonObject &
JsonObject::field(const std::string &k, const std::string &value)
{
    key(k);
    body_ += '"';
    body_ += jsonEscape(value);
    body_ += '"';
    return *this;
}

JsonObject &
JsonObject::field(const std::string &k, int64_t value)
{
    key(k);
    body_ += std::to_string(value);
    return *this;
}

JsonObject &
JsonObject::field(const std::string &k, uint64_t value)
{
    key(k);
    body_ += std::to_string(value);
    return *this;
}

JsonObject &
JsonObject::field(const std::string &k, bool value)
{
    key(k);
    body_ += value ? "true" : "false";
    return *this;
}

JsonObject &
JsonObject::raw(const std::string &k, const std::string &json)
{
    key(k);
    body_ += json;
    return *this;
}

std::string
jsonArray(const std::vector<std::string> &elems)
{
    std::string out = "[";
    for (size_t i = 0; i < elems.size(); ++i) {
        if (i)
            out += ",";
        out += elems[i];
    }
    return out + "]";
}

Request
parseRequestLine(const std::string &line)
{
    Request req;

    size_t first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos)
        return req; // empty; caller skips empty cmd

    if (line[first] == '{') {
        std::string error;
        obs::JsonPtr root = obs::parseJson(line, &error);
        if (!root || !root->isObject()) {
            req.error = "bad JSON request: " + error;
            return req;
        }
        if (const auto *id = root->get("id"); id && id->isNumber()) {
            req.hasId = true;
            req.id = static_cast<int64_t>(id->number);
        }
        if (const auto *sess = root->get("session");
            sess && sess->isNumber()) {
            req.hasSession = true;
            req.session = static_cast<int64_t>(sess->number);
        }
        const auto *cmd = root->get("cmd");
        if (!cmd || !cmd->isString()) {
            req.error = "request is missing a string \"cmd\"";
            return req;
        }
        req.cmd = cmd->text;
        if (const auto *args = root->get("args")) {
            if (!args->isArray()) {
                req.error = "\"args\" must be an array of strings";
                return req;
            }
            for (const auto &elem : args->elems) {
                if (!elem->isString()) {
                    req.error = "\"args\" must be an array of strings";
                    return req;
                }
                // Multi-word argument strings normalize to the same
                // token stream a bare command line produces.
                std::istringstream toks(elem->text);
                std::string tok;
                while (toks >> tok)
                    req.args.push_back(tok);
            }
        }
        return req;
    }

    if (line[first] == '#')
        return req; // comment line

    std::istringstream toks(line);
    toks >> req.cmd;
    // Bare-text session routing: "@2 step 5" targets session 2.
    if (req.cmd.size() > 1 && req.cmd[0] == '@') {
        bool digits = true;
        for (size_t i = 1; i < req.cmd.size(); ++i)
            digits = digits && req.cmd[i] >= '0' && req.cmd[i] <= '9';
        if (!digits) {
            req.error = "bad session prefix '" + req.cmd + "'";
            req.cmd.clear();
            return req;
        }
        req.hasSession = true;
        req.session = std::stoll(req.cmd.substr(1));
        req.cmd.clear();
        toks >> req.cmd;
        if (req.cmd.empty()) {
            req.error = "session prefix without a command";
            return req;
        }
    }
    std::string tok;
    while (toks >> tok)
        req.args.push_back(tok);
    return req;
}

namespace
{

std::string
checkStateObject(const obs::JsonValue &state)
{
    if (state.kind != obs::JsonValue::Kind::Object)
        return "\"state\" is not an object";
    static const char *keys[] = {"cycle", "step", "finished", "end"};
    if (state.members.size() != 4)
        return "\"state\" must have exactly cycle/step/finished/end";
    for (size_t i = 0; i < 4; ++i) {
        if (state.members[i].first != keys[i])
            return csprintf("state field %zu must be \"%s\"", i, keys[i]);
        const auto &val = *state.members[i].second;
        bool wantBool = i >= 2;
        if (wantBool && val.kind != obs::JsonValue::Kind::Bool)
            return csprintf("state.%s must be a boolean", keys[i]);
        if (!wantBool && !val.isNumber())
            return csprintf("state.%s must be a number", keys[i]);
    }
    return "";
}

} // namespace

std::string
checkResponseMembers(const obs::JsonValue &obj, size_t from,
                     bool stateOptional)
{
    const auto &m = obj.members;
    size_t i = from;
    auto has = [&](const char *k) {
        return i < m.size() && m[i].first == k;
    };

    if (!has("id"))
        return "first field must be \"id\"";
    if (!m[i].second->isNumber() &&
        m[i].second->kind != obs::JsonValue::Kind::Null)
        return "\"id\" must be a number or null";
    ++i;

    if (!has("ok"))
        return "second field must be \"ok\"";
    if (m[i].second->kind != obs::JsonValue::Kind::Bool)
        return "\"ok\" must be a boolean";
    bool ok = m[i].second->boolean;
    ++i;

    if (has("error")) {
        if (ok)
            return "\"error\" is only allowed when ok is false";
        if (!m[i].second->isString())
            return "\"error\" must be a string";
        ++i;
    } else if (!ok) {
        return "failed responses must carry \"error\"";
    }

    if (!has("cmd"))
        return "expected \"cmd\" after ok/error";
    if (!m[i].second->isString())
        return "\"cmd\" must be a string";
    ++i;

    if (has("payload")) {
        if (m[i].second->kind != obs::JsonValue::Kind::Object)
            return "\"payload\" must be an object";
        ++i;
    }

    if (has("state")) {
        std::string err = checkStateObject(*m[i].second);
        if (!err.empty())
            return err;
        ++i;
    } else if (!stateOptional) {
        return "expected \"state\" as the final field";
    }

    if (i != m.size())
        return "unexpected field \"" + m[i].first + "\" after state";
    return "";
}

std::string
checkDebugTranscript(const std::string &text)
{
    std::istringstream in(text);
    std::string line;
    int lineno = 0;
    bool sawHello = false;
    while (std::getline(in, line)) {
        ++lineno;
        if (line.empty())
            return csprintf("line %d: empty line", lineno);
        std::string error;
        obs::JsonPtr root = obs::parseJson(line, &error);
        if (!root)
            return csprintf("line %d: %s", lineno, error.c_str());
        if (root->kind != obs::JsonValue::Kind::Object)
            return csprintf("line %d: not a JSON object", lineno);
        if (!sawHello) {
            const auto &m = root->members;
            if (m.size() < 2 || m[0].first != "proto" ||
                !m[0].second->isString() ||
                m[0].second->text != "hwdbg-debug")
                return csprintf(
                    "line %d: first line must be the hwdbg-debug hello",
                    lineno);
            if (m[1].first != "version" || !m[1].second->isNumber())
                return csprintf("line %d: hello must carry a version",
                                lineno);
            sawHello = true;
            continue;
        }
        std::string err =
            checkResponseMembers(*root, 0, /*stateOptional=*/false);
        if (!err.empty())
            return csprintf("line %d: %s", lineno, err.c_str());
    }
    if (!sawHello)
        return "transcript is empty";
    return "";
}

} // namespace hwdbg::debug
