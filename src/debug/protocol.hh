/**
 * @file
 * The hwdbg debug machine protocol: JSON-lines request/response.
 *
 * Machine mode (`hwdbg debug --machine`) speaks one JSON object per
 * line, synchronously: every request line yields exactly one response
 * line, in order. The first output line is the hello object; no output
 * is produced unprompted after it, so a transcript is a deterministic
 * function of the session script (the golden-diff property
 * tests/cli_debug.cmake relies on).
 *
 *   hello     {"proto":"hwdbg-debug","version":1,"design":...,
 *              "steps":N,"signals":N}
 *   response  {"id":<n|null>,"ok":true,["error":...,]"cmd":...,
 *              ["payload":{...},]
 *              "state":{"cycle":N,"step":N,"finished":b,"end":b}}
 *
 * Field order is fixed exactly as above; checkDebugTranscript()
 * enforces it (the obscheck-style schema validation for this format).
 * Requests are either JSON objects {"id":1,"cmd":"break",
 * "args":["state == 3"]} or bare REPL command lines ("break state ==
 * 3") — both forms normalize to the same Request, so the same script
 * file drives human and machine sessions.
 */

#ifndef HWDBG_DEBUG_PROTOCOL_HH
#define HWDBG_DEBUG_PROTOCOL_HH

#include <cstdint>
#include <string>
#include <vector>

namespace hwdbg::obs
{
struct JsonValue;
}

namespace hwdbg::debug
{

/** A normalized request: a command word plus argument tokens. */
struct Request
{
    bool hasId = false;
    int64_t id = 0;
    /** Serve-mode session routing: JSON `"session":N` or a bare-text
     *  `@N ` prefix. Absent (hasSession false) in plain debug mode and
     *  for serve's own server-level commands. */
    bool hasSession = false;
    int64_t session = 0;
    std::string cmd;
    std::vector<std::string> args;
    /** Non-empty when the line could not be parsed. */
    std::string error;
};

/** Parse one input line (JSON object or bare command text). */
Request parseRequestLine(const std::string &line);

/**
 * Ordered JSON object writer: fields appear exactly in call order,
 * which is what gives machine transcripts their byte determinism.
 */
class JsonObject
{
  public:
    JsonObject &field(const std::string &key, const std::string &value);
    JsonObject &field(const std::string &key, int64_t value);
    JsonObject &field(const std::string &key, uint64_t value);
    JsonObject &field(const std::string &key, bool value);
    /** Pre-rendered JSON (nested object/array/null). */
    JsonObject &raw(const std::string &key, const std::string &json);

    std::string str() const { return "{" + body_ + "}"; }

  private:
    void key(const std::string &k);
    std::string body_;
};

/** Render a JSON array from pre-rendered element strings. */
std::string jsonArray(const std::vector<std::string> &elems);

/**
 * Validate a machine-mode transcript: hello line first, then response
 * objects with the exact field order and state shape documented above.
 * Returns "" when valid, else "line N: reason".
 */
std::string checkDebugTranscript(const std::string &text);

/**
 * Validate response members of a parsed JSON object starting at member
 * index @p from: id/ok/[error]/cmd/[payload]/state in exactly that
 * order. With @p stateOptional the trailing state object may be absent
 * (serve's server-level responses); when present it is still fully
 * validated. Returns "" when valid, else a reason. Serve prepends a
 * "session" member and validates the rest with from = 1.
 */
std::string checkResponseMembers(const obs::JsonValue &obj, size_t from,
                                 bool stateOptional);

} // namespace hwdbg::debug

#endif // HWDBG_DEBUG_PROTOCOL_HH
