/**
 * @file
 * The hwdbg debug machine protocol: JSON-lines request/response.
 *
 * Machine mode (`hwdbg debug --machine`) speaks one JSON object per
 * line, synchronously: every request line yields exactly one response
 * line, in order. The first output line is the hello object; no output
 * is produced unprompted after it, so a transcript is a deterministic
 * function of the session script (the golden-diff property
 * tests/cli_debug.cmake relies on).
 *
 *   hello     {"proto":"hwdbg-debug","version":1,"design":...,
 *              "steps":N,"signals":N}
 *   response  {"id":<n|null>,"ok":true,["error":...,]"cmd":...,
 *              ["payload":{...},]
 *              "state":{"cycle":N,"step":N,"finished":b,"end":b}}
 *
 * Field order is fixed exactly as above; checkDebugTranscript()
 * enforces it (the obscheck-style schema validation for this format).
 * Requests are either JSON objects {"id":1,"cmd":"break",
 * "args":["state == 3"]} or bare REPL command lines ("break state ==
 * 3") — both forms normalize to the same Request, so the same script
 * file drives human and machine sessions.
 */

#ifndef HWDBG_DEBUG_PROTOCOL_HH
#define HWDBG_DEBUG_PROTOCOL_HH

#include <cstdint>
#include <string>
#include <vector>

namespace hwdbg::debug
{

/** A normalized request: a command word plus argument tokens. */
struct Request
{
    bool hasId = false;
    int64_t id = 0;
    std::string cmd;
    std::vector<std::string> args;
    /** Non-empty when the line could not be parsed. */
    std::string error;
};

/** Parse one input line (JSON object or bare command text). */
Request parseRequestLine(const std::string &line);

/**
 * Ordered JSON object writer: fields appear exactly in call order,
 * which is what gives machine transcripts their byte determinism.
 */
class JsonObject
{
  public:
    JsonObject &field(const std::string &key, const std::string &value);
    JsonObject &field(const std::string &key, int64_t value);
    JsonObject &field(const std::string &key, uint64_t value);
    JsonObject &field(const std::string &key, bool value);
    /** Pre-rendered JSON (nested object/array/null). */
    JsonObject &raw(const std::string &key, const std::string &json);

    std::string str() const { return "{" + body_ + "}"; }

  private:
    void key(const std::string &k);
    std::string body_;
};

/** Render a JSON array from pre-rendered element strings. */
std::string jsonArray(const std::vector<std::string> &elems);

/**
 * Validate a machine-mode transcript: hello line first, then response
 * objects with the exact field order and state shape documented above.
 * Returns "" when valid, else "line N: reason".
 */
std::string checkDebugTranscript(const std::string &text);

} // namespace hwdbg::debug

#endif // HWDBG_DEBUG_PROTOCOL_HH
