/**
 * @file
 * Debugger session driver: command dispatch plus the two frontends.
 *
 * One command set, two renderings: the human REPL prints gdb-flavored
 * text, machine mode prints the protocol.hh JSON-lines format. Both
 * read the same command language, so a --script file authored against
 * the REPL drives machine-mode goldens unchanged.
 *
 * Commands (also printed by `help`):
 *   run                      run until a breakpoint / $finish / tape end
 *   step [n]                 advance n clock cycles (default 1)
 *   run-until <expr>         run until the expression becomes true
 *   break <expr>             conditional breakpoint (false -> true edge)
 *   break event <key>        break on a paper-tool event (fsm:/dep:/loss:)
 *   break at <file>:<line> [if <expr>]
 *                            virtual breakpoint on a source line
 *                            with an optional enable condition
 *   watch <expr>             stop whenever the expression changes value
 *   delete <id>              remove a breakpoint
 *   enable <id> | disable <id>
 *   info breakpoints         list breakpoints with hit counts
 *   info checkpoints         checkpoint ring and replay statistics
 *   print <expr>             evaluate an expression against current state
 *   backtrace <reg> [k]      k-cycle dependency chain with current values
 *   reverse-step [n]         travel n cycles backwards (default 1)
 *   goto-cycle <n>           travel to an absolute cycle
 *   events                   paper-tool events seen up to this point
 *   cover                    live coverage totals + newly covered goals
 *   log [n]                  last n $display lines (default 10)
 *   help [command]           command list / one command's usage
 *   quit                     end the session
 */

#ifndef HWDBG_DEBUG_REPL_HH
#define HWDBG_DEBUG_REPL_HH

#include <iosfwd>

#include "debug/engine.hh"

namespace hwdbg::debug
{

struct SessionOptions
{
    /** Emit the JSON-lines protocol instead of human text. */
    bool machine = false;
    /** Echo each command before its output (script-driven human
     *  sessions; machine responses carry the command instead). */
    bool echo = false;
};

/**
 * Drive a debugger session: read commands from @p in until EOF or
 * `quit`, writing responses to @p out. Returns the number of commands
 * that failed (0 for a clean session).
 */
int runSession(Engine &engine, std::istream &in, std::ostream &out,
               const SessionOptions &opts);

} // namespace hwdbg::debug

#endif // HWDBG_DEBUG_REPL_HH
