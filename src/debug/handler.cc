#include "debug/handler.hh"

#include <chrono>
#include <fstream>

#include "common/logging.hh"
#include "cover/snapshot.hh"
#include "obs/json.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "trace/json.hh"
#include "trace/vcd.hh"

namespace hwdbg::debug
{

namespace
{

using CmdResult = ProtocolHandler::Result;

struct CmdHelp
{
    const char *name;
    const char *usage;
    const char *summary;
};

const CmdHelp kCommands[] = {
    {"run", "run", "run until a breakpoint, $finish, or the tape ends"},
    {"step", "step [n]", "advance n clock cycles (default 1)"},
    {"run-until", "run-until <expr>",
     "run until the Verilog expression becomes true"},
    {"break",
     "break <expr> | break event <key> | "
     "break at <file>:<line> [if <expr>]",
     "breakpoint on an expression edge, a fsm:/dep:/loss: event, or a "
     "source line"},
    {"watch", "watch <expr>", "stop whenever the expression changes value"},
    {"delete", "delete <id>", "remove a breakpoint"},
    {"enable", "enable <id>", "re-arm a disabled breakpoint"},
    {"disable", "disable <id>", "keep a breakpoint but stop firing it"},
    {"info", "info breakpoints | info checkpoints",
     "list breakpoints / checkpoint + replay statistics"},
    {"print", "print <expr>",
     "evaluate an expression against current state"},
    {"backtrace", "backtrace <reg> [k]",
     "k-cycle dependency chain of a register with current values"},
    {"reverse-step", "reverse-step [n]",
     "travel n cycles backwards (default 1)"},
    {"goto-cycle", "goto-cycle <n>", "travel to an absolute cycle"},
    {"events", "events", "paper-tool events observed up to this point"},
    {"cover", "cover",
     "live coverage totals and goals newly covered since last check"},
    {"record",
     "record start [signals=G] [trigger=E] [budget=N] [pre=P] | "
     "record stop | record status | record dump <file> [vcd=F]",
     "trigger-armed signal recording over the live session"},
    {"log", "log [n]", "last n $display lines (default 10)"},
    {"help", "help [command]", "this list / one command's usage"},
    {"quit", "quit", "end the session"},
};

std::string
joinArgs(const std::vector<std::string> &args, size_t from)
{
    std::string out;
    for (size_t i = from; i < args.size(); ++i) {
        if (i > from)
            out += " ";
        out += args[i];
    }
    return out;
}

bool
parseU64(const std::string &text, uint64_t *out)
{
    if (text.empty())
        return false;
    uint64_t value = 0;
    for (char c : text) {
        if (c < '0' || c > '9')
            return false;
        value = value * 10 + uint64_t(c - '0');
    }
    *out = value;
    return true;
}

std::string
eventJson(const DebugEvent &ev)
{
    return JsonObject()
        .field("key", ev.key)
        .field("cycle", ev.cycle)
        .field("detail", ev.detail)
        .str();
}

std::string
eventHuman(const DebugEvent &ev)
{
    return csprintf("  event %s %s (cycle %llu)", ev.key.c_str(),
                    ev.detail.c_str(),
                    static_cast<unsigned long long>(ev.cycle));
}

CmdResult
renderStop(Engine &engine, const Engine::StopInfo &stop)
{
    CmdResult res;

    JsonObject payload;
    payload.field("stop", std::string(stopReasonName(stop.reason)));
    std::vector<std::string> bps;
    for (int id : stop.breakpoints)
        bps.push_back(std::to_string(id));
    payload.raw("breakpoints", jsonArray(bps));
    std::vector<std::string> evs;
    for (const auto &ev : stop.events)
        evs.push_back(eventJson(ev));
    payload.raw("events", jsonArray(evs));
    res.payloadJson = payload.str();

    auto cyc = static_cast<unsigned long long>(engine.cycle());
    switch (stop.reason) {
      case Engine::StopReason::None:
        res.humanLines.push_back(csprintf("cycle %llu", cyc));
        break;
      case Engine::StopReason::Breakpoint:
        for (int id : stop.breakpoints) {
            const Breakpoint *bp = engine.breakpoints().find(id);
            res.humanLines.push_back(csprintf(
                "breakpoint %d: %s %s, cycle %llu", id,
                bp ? breakpointKindName(bp->kind) : "?",
                bp ? bp->spec.c_str() : "?", cyc));
        }
        break;
      case Engine::StopReason::UntilTrue:
        res.humanLines.push_back(
            csprintf("condition true at cycle %llu", cyc));
        break;
      case Engine::StopReason::EndOfTape:
        res.humanLines.push_back(
            csprintf("end of recorded stimulus at cycle %llu", cyc));
        break;
      case Engine::StopReason::Finished:
        res.humanLines.push_back(csprintf("$finish at cycle %llu", cyc));
        break;
    }
    for (const auto &ev : stop.events)
        res.humanLines.push_back(eventHuman(ev));
    return res;
}

CmdResult
cmdBreakAt(Engine &engine, const Request &req)
{
    CmdResult res;
    const char *usage = "usage: break at <file>:<line> [if <expr>]";
    if (req.args.size() < 2) {
        res.ok = false;
        res.error = usage;
        return res;
    }
    const std::string &loc = req.args[1];
    size_t colon = loc.rfind(':');
    uint64_t line = 0;
    if (colon == std::string::npos || colon == 0 ||
        !parseU64(loc.substr(colon + 1), &line) || line == 0) {
        res.ok = false;
        res.error = usage;
        return res;
    }
    std::string cond;
    if (req.args.size() > 2) {
        if (req.args[2] != "if" || req.args.size() < 4) {
            res.ok = false;
            res.error = usage;
            return res;
        }
        cond = joinArgs(req.args, 3);
    }
    int id = engine.addLineBreakpoint(loc.substr(0, colon),
                                      uint32_t(line), cond);
    const Breakpoint *bp = engine.breakpoints().find(id);
    res.payloadJson = JsonObject()
                          .field("id", int64_t(id))
                          .field("kind", std::string("line"))
                          .field("spec", bp->spec)
                          .field("stmts", uint64_t(bp->stmtIds.size()))
                          .str();
    res.humanLines.push_back(csprintf("breakpoint %d: at %s (%zu "
                                      "statement%s)",
                                      id, bp->spec.c_str(),
                                      bp->stmtIds.size(),
                                      bp->stmtIds.size() == 1 ? "" : "s"));
    return res;
}

CmdResult
cmdBreakOrWatch(Engine &engine, const Request &req)
{
    CmdResult res;
    if (req.cmd == "break" && !req.args.empty() &&
        req.args[0] == "event") {
        if (req.args.size() != 2) {
            res.ok = false;
            res.error = "usage: break event <key> (e.g. fsm:ctrl_state)";
            return res;
        }
        int id = engine.breakpoints().add(Breakpoint::Kind::Event,
                                          req.args[1], nullptr,
                                          engine.sim().context());
        res.payloadJson = JsonObject()
                              .field("id", int64_t(id))
                              .field("kind", std::string("event"))
                              .field("spec", req.args[1])
                              .str();
        res.humanLines.push_back(csprintf("breakpoint %d: event %s", id,
                                          req.args[1].c_str()));
        return res;
    }
    if (req.cmd == "break" && !req.args.empty() && req.args[0] == "at")
        return cmdBreakAt(engine, req);

    std::string expr_text = joinArgs(req.args, 0);
    if (expr_text.empty()) {
        res.ok = false;
        res.error = "usage: " + req.cmd + " <expr>";
        return res;
    }
    bool watch = req.cmd == "watch";
    hdl::ExprPtr expr = engine.parseExpr(expr_text);
    int id = engine.breakpoints().add(watch ? Breakpoint::Kind::Watch
                                            : Breakpoint::Kind::Expr,
                                      expr_text, expr,
                                      engine.sim().context());
    res.payloadJson = JsonObject()
                          .field("id", int64_t(id))
                          .field("kind", std::string(watch ? "watch"
                                                           : "break"))
                          .field("spec", expr_text)
                          .str();
    res.humanLines.push_back(csprintf("%s %d: %s",
                                      watch ? "watchpoint" : "breakpoint",
                                      id, expr_text.c_str()));
    return res;
}

CmdResult
cmdInfo(Engine &engine, const Request &req)
{
    CmdResult res;
    std::string topic = req.args.empty() ? "" : req.args[0];
    if (topic == "breakpoints") {
        std::vector<std::string> rows;
        for (const auto &bp : engine.breakpoints().all()) {
            rows.push_back(JsonObject()
                               .field("id", int64_t(bp.id))
                               .field("kind", std::string(
                                                  breakpointKindName(
                                                      bp.kind)))
                               .field("spec", bp.spec)
                               .field("enabled", bp.enabled)
                               .field("hits", bp.hits)
                               .str());
            res.humanLines.push_back(csprintf(
                "%d\t%s\t%s\t%s\thits %llu", bp.id,
                breakpointKindName(bp.kind), bp.spec.c_str(),
                bp.enabled ? "enabled" : "disabled",
                static_cast<unsigned long long>(bp.hits)));
        }
        if (res.humanLines.empty())
            res.humanLines.push_back("no breakpoints");
        res.payloadJson =
            JsonObject().raw("breakpoints", jsonArray(rows)).str();
        return res;
    }
    if (topic == "checkpoints") {
        const auto &ring = engine.checkpoints();
        res.payloadJson =
            JsonObject()
                .field("count", uint64_t(ring.count()))
                .field("bytes", uint64_t(ring.totalBytes()))
                .field("interval", ring.interval())
                .field("replayed_steps", engine.replayedSteps())
                .str();
        res.humanLines.push_back(csprintf(
            "%zu periodic checkpoints (+1 pinned), %zu bytes, "
            "interval %llu steps, %llu steps replayed",
            ring.count(), ring.totalBytes(),
            static_cast<unsigned long long>(ring.interval()),
            static_cast<unsigned long long>(engine.replayedSteps())));
        return res;
    }
    res.ok = false;
    res.error = "usage: info breakpoints | info checkpoints";
    return res;
}

CmdResult
cmdRecord(Engine &engine, const Request &req)
{
    CmdResult res;
    std::string sub = req.args.empty() ? "" : req.args[0];

    if (sub == "start") {
        trace::TraceConfig cfg;
        for (size_t i = 1; i < req.args.size(); ++i) {
            const std::string &arg = req.args[i];
            size_t eq = arg.find('=');
            std::string key =
                eq == std::string::npos ? arg : arg.substr(0, eq);
            std::string value =
                eq == std::string::npos ? "" : arg.substr(eq + 1);
            bool bad = false;
            if (key == "signals") {
                for (size_t pos = 0; pos < value.size();) {
                    size_t comma = value.find(',', pos);
                    if (comma == std::string::npos)
                        comma = value.size();
                    if (comma > pos)
                        cfg.signals.push_back(
                            value.substr(pos, comma - pos));
                    pos = comma + 1;
                }
            } else if (key == "trigger") {
                cfg.trigger = value;
            } else if (key == "budget") {
                bad = !parseU64(value, &cfg.budgetBytes);
            } else if (key == "pre") {
                uint64_t pct = 0;
                bad = !parseU64(value, &pct) || pct > 100;
                cfg.prePct = static_cast<uint32_t>(pct);
            } else {
                bad = true;
            }
            if (bad) {
                res.ok = false;
                res.error = "usage: record start [signals=G1,G2] "
                            "[trigger=EXPR] [budget=BYTES] [pre=PCT]";
                return res;
            }
        }
        engine.recordStart(cfg);
        const trace::TraceRecorder &rec = *engine.recorder();
        res.payloadJson =
            JsonObject()
                .field("signals", uint64_t(rec.signals().size()))
                .field("row_bytes", rec.rowBytes())
                .field("depth", rec.depth())
                .field("armed", !cfg.trigger.empty())
                .str();
        res.humanLines.push_back(csprintf(
            "recording %zu signals (%llu bytes/row, depth %llu%s)",
            rec.signals().size(),
            static_cast<unsigned long long>(rec.rowBytes()),
            static_cast<unsigned long long>(rec.depth()),
            cfg.trigger.empty() ? "" : ", trigger armed"));
        return res;
    }

    if (sub == "stop") {
        engine.recordStop();
        const trace::TraceRecorder &rec = *engine.recorder();
        res.payloadJson =
            JsonObject()
                .field("samples", rec.samples())
                .field("drops", rec.drops())
                .field("trigger_fires", rec.triggerFires())
                .str();
        res.humanLines.push_back(csprintf(
            "recording stopped: %llu change rows, %llu dropped",
            static_cast<unsigned long long>(rec.samples()),
            static_cast<unsigned long long>(rec.drops())));
        return res;
    }

    if (sub == "status") {
        const trace::TraceRecorder *rec = engine.recorder();
        if (!rec) {
            res.payloadJson =
                JsonObject().field("recording", false).str();
            res.humanLines.push_back("not recording");
            return res;
        }
        res.payloadJson =
            JsonObject()
                .field("recording", engine.recording())
                .field("signals", uint64_t(rec->signals().size()))
                .field("depth", rec->depth())
                .field("samples", rec->samples())
                .field("drops", rec->drops())
                .field("triggered", rec->triggered())
                .field("trigger_fires", rec->triggerFires())
                .str();
        res.humanLines.push_back(csprintf(
            "%s: %llu change rows, %llu dropped, %s",
            engine.recording() ? "recording" : "stopped",
            static_cast<unsigned long long>(rec->samples()),
            static_cast<unsigned long long>(rec->drops()),
            rec->triggered() ? "trigger fired" : "trigger not fired"));
        return res;
    }

    if (sub == "dump") {
        if (req.args.size() < 2) {
            res.ok = false;
            res.error = "usage: record dump <file> [vcd=FILE]";
            return res;
        }
        trace::TraceDump dump = engine.recordDump();
        const std::string &path = req.args[1];
        std::ofstream file(path);
        if (!file) {
            res.ok = false;
            res.error = "cannot write '" + path + "'";
            return res;
        }
        file << trace::toJson(dump);
        std::string vcdPath;
        for (size_t i = 2; i < req.args.size(); ++i)
            if (req.args[i].rfind("vcd=", 0) == 0)
                vcdPath = req.args[i].substr(4);
        if (!vcdPath.empty()) {
            std::ofstream vcdFile(vcdPath);
            if (!vcdFile) {
                res.ok = false;
                res.error = "cannot write '" + vcdPath + "'";
                return res;
            }
            vcdFile << trace::renderVcd(dump);
        }
        res.payloadJson = JsonObject()
                              .field("rows", uint64_t(dump.rows.size()))
                              .field("samples", dump.samples)
                              .field("drops", dump.drops)
                              .field("fired", dump.fired)
                              .str();
        res.humanLines.push_back(csprintf(
            "wrote %zu rows to %s%s%s", dump.rows.size(), path.c_str(),
            vcdPath.empty() ? "" : " and ", vcdPath.c_str()));
        return res;
    }

    res.ok = false;
    res.error =
        "usage: record start|stop|status|dump <file> (try 'help "
        "record')";
    return res;
}

CmdResult
cmdHelp(const Request &req)
{
    CmdResult res;
    if (!req.args.empty()) {
        for (const auto &cmd : kCommands) {
            if (req.args[0] == cmd.name) {
                res.payloadJson =
                    JsonObject()
                        .field("name", std::string(cmd.name))
                        .field("usage", std::string(cmd.usage))
                        .field("summary", std::string(cmd.summary))
                        .str();
                res.humanLines.push_back(csprintf("%s -- %s", cmd.usage,
                                                  cmd.summary));
                return res;
            }
        }
        res.ok = false;
        res.error = "unknown command '" + req.args[0] + "'";
        return res;
    }
    std::vector<std::string> rows;
    for (const auto &cmd : kCommands) {
        rows.push_back(JsonObject()
                           .field("name", std::string(cmd.name))
                           .field("usage", std::string(cmd.usage))
                           .field("summary", std::string(cmd.summary))
                           .str());
        res.humanLines.push_back(
            csprintf("  %-28s %s", cmd.usage, cmd.summary));
    }
    res.payloadJson = JsonObject().raw("commands", jsonArray(rows)).str();
    return res;
}

CmdResult
dispatch(Engine &engine, const Request &req)
{
    CmdResult res;

    if (req.cmd == "run")
        return renderStop(engine, engine.run());

    if (req.cmd == "step") {
        uint64_t n = 1;
        if (!req.args.empty() && !parseU64(req.args[0], &n)) {
            res.ok = false;
            res.error = "usage: step [n]";
            return res;
        }
        return renderStop(engine, engine.stepCycles(n));
    }

    if (req.cmd == "run-until") {
        std::string expr = joinArgs(req.args, 0);
        if (expr.empty()) {
            res.ok = false;
            res.error = "usage: run-until <expr>";
            return res;
        }
        return renderStop(engine, engine.runUntil(expr));
    }

    if (req.cmd == "break" || req.cmd == "watch")
        return cmdBreakOrWatch(engine, req);

    if (req.cmd == "delete" || req.cmd == "enable" ||
        req.cmd == "disable") {
        uint64_t id = 0;
        if (req.args.size() != 1 || !parseU64(req.args[0], &id)) {
            res.ok = false;
            res.error = "usage: " + req.cmd + " <id>";
            return res;
        }
        bool found = req.cmd == "delete"
                         ? engine.breakpoints().remove(int(id))
                         : engine.breakpoints().setEnabled(
                               int(id), req.cmd == "enable");
        if (!found) {
            res.ok = false;
            res.error = csprintf("no breakpoint %llu",
                                 static_cast<unsigned long long>(id));
            return res;
        }
        res.payloadJson =
            JsonObject().field("id", int64_t(id)).str();
        res.humanLines.push_back(csprintf(
            "breakpoint %llu %sd", static_cast<unsigned long long>(id),
            req.cmd.c_str()));
        return res;
    }

    if (req.cmd == "info")
        return cmdInfo(engine, req);

    if (req.cmd == "print") {
        std::string expr = joinArgs(req.args, 0);
        if (expr.empty()) {
            res.ok = false;
            res.error = "usage: print <expr>";
            return res;
        }
        Bits value = engine.evalNow(expr);
        res.payloadJson = JsonObject()
                              .field("expr", expr)
                              .field("width", uint64_t(value.width()))
                              .field("hex", value.toVerilog())
                              .field("dec", value.toDecString())
                              .str();
        res.humanLines.push_back(csprintf("%s = %s (%s)", expr.c_str(),
                                          value.toVerilog().c_str(),
                                          value.toDecString().c_str()));
        return res;
    }

    if (req.cmd == "backtrace") {
        if (req.args.empty()) {
            res.ok = false;
            res.error = "usage: backtrace <reg> [k]";
            return res;
        }
        uint64_t k = 4;
        if (req.args.size() > 1 && !parseU64(req.args[1], &k)) {
            res.ok = false;
            res.error = "usage: backtrace <reg> [k]";
            return res;
        }
        auto chain = engine.backtrace(req.args[0], int(k));
        std::vector<std::string> rows;
        for (const auto &entry : chain) {
            rows.push_back(JsonObject()
                               .field("reg", entry.reg)
                               .field("distance",
                                      int64_t(entry.distance))
                               .field("value", entry.value.toVerilog())
                               .str());
            res.humanLines.push_back(csprintf(
                "  [-%d] %s = %s", entry.distance, entry.reg.c_str(),
                entry.value.toVerilog().c_str()));
        }
        if (res.humanLines.empty())
            res.humanLines.push_back("no dependencies in range");
        res.payloadJson = JsonObject()
                              .field("reg", req.args[0])
                              .field("cycles", k)
                              .raw("chain", jsonArray(rows))
                              .str();
        return res;
    }

    if (req.cmd == "reverse-step") {
        uint64_t n = 1;
        if (!req.args.empty() && !parseU64(req.args[0], &n)) {
            res.ok = false;
            res.error = "usage: reverse-step [n]";
            return res;
        }
        return renderStop(engine, engine.reverseStep(n));
    }

    if (req.cmd == "goto-cycle") {
        uint64_t target = 0;
        if (req.args.size() != 1 || !parseU64(req.args[0], &target)) {
            res.ok = false;
            res.error = "usage: goto-cycle <n>";
            return res;
        }
        return renderStop(engine, engine.gotoCycle(target));
    }

    if (req.cmd == "events") {
        std::vector<std::string> rows;
        for (const auto &ev : engine.allEvents()) {
            rows.push_back(eventJson(ev));
            res.humanLines.push_back(eventHuman(ev));
        }
        if (res.humanLines.empty())
            res.humanLines.push_back("no events");
        res.payloadJson =
            JsonObject().raw("events", jsonArray(rows)).str();
        return res;
    }

    if (req.cmd == "cover") {
        auto summary = engine.coverageSummary();
        const auto &t = summary.totals;
        res.payloadJson =
            JsonObject()
                .field("statements_hit", t.stmtHit)
                .field("statements", t.stmtTotal)
                .field("branches_taken", t.armTaken)
                .field("branches", t.armTotal)
                .field("toggles_hit", t.toggleHit)
                .field("toggles", t.toggleTotal)
                .field("fsm_states_hit", t.fsmStateHit)
                .field("fsm_states", t.fsmStateTotal)
                .field("fsm_arcs_hit", t.fsmTransHit)
                .field("fsm_arcs", t.fsmTransTotal)
                .field("covered", t.covered())
                .field("total", t.total())
                .field("pct", cover::coverPct(t.covered(), t.total()))
                .field("new", summary.newlyCovered)
                .str();
        res.humanLines.push_back(csprintf(
            "coverage: %s%% (%llu/%llu goals), +%llu since last check",
            cover::coverPct(t.covered(), t.total()).c_str(),
            static_cast<unsigned long long>(t.covered()),
            static_cast<unsigned long long>(t.total()),
            static_cast<unsigned long long>(summary.newlyCovered)));
        res.humanLines.push_back(csprintf(
            "  statements %llu/%llu  branches %llu/%llu  toggles "
            "%llu/%llu",
            static_cast<unsigned long long>(t.stmtHit),
            static_cast<unsigned long long>(t.stmtTotal),
            static_cast<unsigned long long>(t.armTaken),
            static_cast<unsigned long long>(t.armTotal),
            static_cast<unsigned long long>(t.toggleHit),
            static_cast<unsigned long long>(t.toggleTotal)));
        if (t.fsmStateTotal)
            res.humanLines.push_back(csprintf(
                "  fsm states %llu/%llu  arcs %llu/%llu",
                static_cast<unsigned long long>(t.fsmStateHit),
                static_cast<unsigned long long>(t.fsmStateTotal),
                static_cast<unsigned long long>(t.fsmTransHit),
                static_cast<unsigned long long>(t.fsmTransTotal)));
        return res;
    }

    if (req.cmd == "record")
        return cmdRecord(engine, req);

    if (req.cmd == "log") {
        uint64_t n = 10;
        if (!req.args.empty() && !parseU64(req.args[0], &n)) {
            res.ok = false;
            res.error = "usage: log [n]";
            return res;
        }
        std::vector<std::string> rows;
        for (const auto &line : engine.recentLog(n)) {
            rows.push_back(JsonObject()
                               .field("cycle", line.cycle)
                               .field("text", line.text)
                               .str());
            res.humanLines.push_back(csprintf(
                "  [%llu] %s",
                static_cast<unsigned long long>(line.cycle),
                line.text.c_str()));
        }
        if (res.humanLines.empty())
            res.humanLines.push_back("log is empty");
        res.payloadJson =
            JsonObject().raw("lines", jsonArray(rows)).str();
        return res;
    }

    if (req.cmd == "help")
        return cmdHelp(req);

    if (req.cmd == "quit") {
        res.quit = true;
        return res;
    }

    res.ok = false;
    res.error = "unknown command '" + req.cmd + "' (try 'help')";
    return res;
}

} // namespace

std::string
ProtocolHandler::helloJson() const
{
    const auto &design = engine_.sim().design();
    return JsonObject()
        .field("proto", std::string("hwdbg-debug"))
        .field("version", int64_t(1))
        .field("design", design.module().name)
        .field("steps", engine_.tapeSize())
        .field("signals", uint64_t(design.numSignals()))
        .raw("build", obs::buildInfoJson())
        .str();
}

ProtocolHandler::Result
ProtocolHandler::handle(const Request &req)
{
    auto t0 = std::chrono::steady_clock::now();
    Result res;
    if (!req.error.empty()) {
        res.ok = false;
        res.error = req.error;
    } else {
        obs::ObsSpan span("debug.cmd:" + req.cmd, track_);
        try {
            res = dispatch(engine_, req);
        } catch (const HdlError &err) {
            res = Result();
            res.ok = false;
            res.error = err.what();
        }
    }
    auto us = std::chrono::duration_cast<std::chrono::microseconds>(
                  std::chrono::steady_clock::now() - t0)
                  .count();
    HWDBG_STAT_HIST("debug.cmd_latency_us", uint64_t(us));
    HWDBG_STAT_INC("debug.session.cmds", 1);
    if (!res.ok)
        HWDBG_STAT_INC("debug.session.errors", 1);
    return res;
}

void
ProtocolHandler::responseFields(const Request &req, const Result &res,
                                JsonObject &resp) const
{
    if (req.hasId)
        resp.field("id", req.id);
    else
        resp.raw("id", "null");
    resp.field("ok", res.ok);
    if (!res.ok)
        resp.field("error", res.error);
    resp.field("cmd", req.cmd.empty() ? std::string("?") : req.cmd);
    if (!res.payloadJson.empty())
        resp.raw("payload", res.payloadJson);
    resp.raw("state",
             JsonObject()
                 .field("cycle", engine_.cycle())
                 .field("step", engine_.position())
                 .field("finished", engine_.finished())
                 .field("end", engine_.atEnd())
                 .str());
}

} // namespace hwdbg::debug
