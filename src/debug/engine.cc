#include "debug/engine.hh"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "analysis/depgraph.hh"
#include "common/logging.hh"
#include "core/dep_monitor.hh"
#include "core/fsm_monitor.hh"
#include "cover/snapshot.hh"
#include "hdl/parser.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"

namespace hwdbg::debug
{

InstrumentResult
instrumentForDebug(const hdl::Module &mod, const InstrumentConfig &cfg)
{
    obs::ObsSpan span("debug.instrument");
    InstrumentResult result;
    const hdl::Module *cur = &mod;
    hdl::ModulePtr owned;

    if (cfg.fsm) {
        core::FsmMonitorOptions opts;
        opts.constants = cfg.constants;
        auto fsm = core::applyFsmMonitor(*cur, opts);
        result.fsmMonitored = fsm.monitored;
        result.generatedLines += fsm.generatedLines;
        owned = fsm.module;
        cur = owned.get();
    }
    if (!cfg.depVariable.empty()) {
        core::DepMonitorOptions opts;
        opts.variable = cfg.depVariable;
        opts.cycles = cfg.depCycles;
        auto dep = core::applyDepMonitor(*cur, opts);
        result.depChain = dep.chain;
        result.generatedLines += dep.generatedLines;
        owned = dep.module;
        cur = owned.get();
    }
    if (cfg.lossCheck) {
        auto lc = core::applyLossCheck(*cur, *cfg.lossCheck);
        result.lossInstrumented = lc.instrumented;
        result.generatedLines += lc.generatedLines;
        owned = lc.module;
        cur = owned.get();
    }
    if (!owned)
        owned = hdl::cloneModule(mod);
    result.module = owned;
    return result;
}

sim::StimulusTape
loadStimulusFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        fatal("cannot open stimulus file '%s'", path.c_str());

    sim::StimulusTape tape;
    std::string line;
    int lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        auto hash = line.find('#');
        if (hash != std::string::npos)
            line = line.substr(0, hash);
        std::istringstream toks(line);
        std::string tok;
        sim::StimulusStep step;
        bool any = false;
        while (toks >> tok) {
            any = true;
            if (tok == "-")
                continue;
            auto eq = tok.find('=');
            if (eq == std::string::npos || eq == 0)
                fatal("%s:%d: expected signal=value, got '%s'",
                      path.c_str(), lineno, tok.c_str());
            Bits value;
            try {
                value = Bits::parseVerilog(tok.substr(eq + 1));
            } catch (const HdlError &err) {
                fatal("%s:%d: bad value in '%s': %s", path.c_str(), lineno,
                      tok.c_str(), err.what());
            }
            step.pokes.emplace_back(tok.substr(0, eq), value);
        }
        if (any)
            tape.steps.push_back(std::move(step));
    }
    return tape;
}

Engine::Engine(hdl::ModulePtr module,
               std::shared_ptr<const sim::StimulusTape> tape,
               EngineOptions opts)
    : sim_(std::move(module)), tape_(std::move(tape)),
      opts_(std::move(opts)),
      ring_(opts_.checkpointInterval, opts_.checkpointCapacity,
            opts_.snapshots)
{
    if (!tape_)
        tape_ = std::make_shared<const sim::StimulusTape>();
    if (opts_.backend)
        sim_.setBackend(opts_.backend);
    ring_.saveInitial(sim_);
    coverItems_ = sim::buildCoverageItems(
        sim_.design(), cover::fsmSpecsFor(sim_.design().module()));
    cover_ = std::make_unique<sim::CoverageCollector>(coverItems_);
    sim_.enableCoverage(cover_.get());
}

Engine::Engine(hdl::ModulePtr module, sim::StimulusTape tape,
               EngineOptions opts)
    : Engine(std::move(module),
             std::make_shared<const sim::StimulusTape>(std::move(tape)),
             std::move(opts))
{
}

Engine::~Engine() = default;

void
Engine::recordStart(const trace::TraceConfig &cfg)
{
    if (recording())
        fatal("record: already recording (record stop first)");
    recorder_ = std::make_unique<trace::TraceRecorder>(sim_, cfg);
    recorder_->attach();
    HWDBG_STAT_INC("debug.record.starts", 1);
}

void
Engine::recordStop()
{
    if (!recording())
        fatal("record: not recording");
    recorder_->detach();
}

trace::TraceDump
Engine::recordDump() const
{
    if (!recorder_)
        fatal("record: nothing recorded (record start first)");
    return recorder_->dump("debug:" + sim_.design().module().name);
}

Engine::CoverageSummary
Engine::coverageSummary()
{
    CoverageSummary summary;
    summary.totals = cover_->totals();
    uint64_t covered = summary.totals.covered();
    summary.newlyCovered = covered - lastCovered_;
    lastCovered_ = covered;
    return summary;
}

uint64_t
Engine::cycle() const
{
    return sim_.cycle();
}

bool
Engine::finished() const
{
    return sim_.finished();
}

uint64_t
Engine::cycleAtPos(uint64_t position) const
{
    return position == 0 ? 0 : cycleAt_[position - 1];
}

std::vector<DebugEvent>
Engine::eventsFromLog(size_t log_from) const
{
    const auto &log = sim_.log();
    std::vector<sim::EvalContext::LogLine> delta(log.begin() + log_from,
                                                 log.end());
    std::vector<DebugEvent> events;

    for (const auto &tr : core::fsmTrace(delta)) {
        DebugEvent ev;
        ev.key = "fsm:" + tr.stateVar;
        ev.cycle = tr.cycle;
        ev.detail =
            core::stateName(tr.stateVar, tr.fromState, opts_.constants) +
            " -> " +
            core::stateName(tr.stateVar, tr.toState, opts_.constants);
        events.push_back(std::move(ev));
    }
    for (const auto &up : core::depUpdates(delta)) {
        DebugEvent ev;
        ev.key = "dep:" + up.variable;
        ev.cycle = up.cycle;
        ev.detail = "= " + up.value;
        events.push_back(std::move(ev));
    }
    for (const auto &line : delta) {
        for (const auto &reg : core::lossRegisters({line})) {
            DebugEvent ev;
            ev.key = "loss:" + reg;
            ev.cycle = line.cycle;
            ev.detail = "potential data loss";
            events.push_back(std::move(ev));
        }
    }
    return events;
}

std::vector<DebugEvent>
Engine::stepOnce(bool quiet)
{
    size_t logBefore = sim_.log().size();
    sim_.applyStep(tape_->steps[pos_]);
    ++pos_;
    if (cycleAt_.size() < pos_)
        cycleAt_.push_back(sim_.cycle());
    ring_.maybeSave(pos_, sim_);
    HWDBG_STAT_INC("debug.steps", 1);
    if (quiet)
        return {};
    return eventsFromLog(logBefore);
}

void
Engine::restoreTo(uint64_t target)
{
    const Checkpoint *cp = ring_.nearestAtOrBefore(target);
    sim_.restoreState(*cp->snap);
    pos_ = cp->position;
    while (pos_ < target)
        stepOnce(true);
    replayedSteps_ += target - cp->position;
    HWDBG_STAT_INC("debug.restores", 1);
    HWDBG_STAT_INC("debug.replay_steps", target - cp->position);
}

Engine::StopInfo
Engine::run()
{
    obs::ObsSpan span("debug.run");
    while (!atEnd() && !finished()) {
        auto events = stepOnce(false);
        auto hits = bps_.check(sim_.context(), events, cover_.get());
        if (!hits.empty())
            return {StopReason::Breakpoint, std::move(hits),
                    std::move(events)};
        if (finished())
            return {StopReason::Finished, {}, std::move(events)};
    }
    return {finished() ? StopReason::Finished : StopReason::EndOfTape,
            {},
            {}};
}

Engine::StopInfo
Engine::stepCycles(uint64_t n)
{
    uint64_t target = cycle() + n;
    while (cycle() < target && !atEnd() && !finished()) {
        auto events = stepOnce(false);
        auto hits = bps_.check(sim_.context(), events, cover_.get());
        if (!hits.empty())
            return {StopReason::Breakpoint, std::move(hits),
                    std::move(events)};
        if (finished())
            return {StopReason::Finished, {}, std::move(events)};
    }
    if (cycle() >= target)
        return {StopReason::None, {}, {}};
    return {finished() ? StopReason::Finished : StopReason::EndOfTape,
            {},
            {}};
}

Engine::StopInfo
Engine::runUntil(const std::string &expr_text)
{
    hdl::ExprPtr expr = parseExpr(expr_text);
    while (!atEnd() && !finished()) {
        auto events = stepOnce(false);
        auto hits = bps_.check(sim_.context(), events, cover_.get());
        if (!hits.empty())
            return {StopReason::Breakpoint, std::move(hits),
                    std::move(events)};
        if (sim::evalBool(expr, sim_.context()))
            return {StopReason::UntilTrue, {}, std::move(events)};
        if (finished())
            return {StopReason::Finished, {}, std::move(events)};
    }
    return {finished() ? StopReason::Finished : StopReason::EndOfTape,
            {},
            {}};
}

Engine::StopInfo
Engine::gotoCycle(uint64_t target)
{
    obs::ObsSpan span("debug.goto");
    // Earliest explored position whose cycle counter reads target:
    // cycleAt_ is non-decreasing (one posedge at most per eval).
    uint64_t landing = UINT64_MAX;
    if (target == 0) {
        landing = 0;
    } else {
        auto it = std::lower_bound(cycleAt_.begin(), cycleAt_.end(), target);
        if (it != cycleAt_.end() && *it == target)
            landing = uint64_t(it - cycleAt_.begin()) + 1;
    }

    if (landing != UINT64_MAX) {
        if (landing < pos_)
            restoreTo(landing);
        else
            while (pos_ < landing)
                stepOnce(true);
    } else {
        // Beyond the explored frontier: advance quietly until the
        // counter reaches the target (or the tape/design gives out).
        while (!atEnd() && !finished() && cycle() < target)
            stepOnce(true);
    }
    bps_.rebase(sim_.context(), cover_.get());
    if (cycle() == target)
        return {StopReason::None, {}, {}};
    return {finished() ? StopReason::Finished : StopReason::EndOfTape,
            {},
            {}};
}

Engine::StopInfo
Engine::reverseStep(uint64_t n)
{
    uint64_t target = cycle() > n ? cycle() - n : 0;
    return gotoCycle(target);
}

hdl::ExprPtr
Engine::parseExpr(const std::string &expr_text) const
{
    hdl::ExprPtr expr = hdl::parseExprText(expr_text);
    sim_.design().annotateExpr(expr);
    return expr;
}

Bits
Engine::evalNow(const std::string &expr_text)
{
    hdl::ExprPtr expr = parseExpr(expr_text);
    return sim::evalExpr(expr, sim_.context());
}

int
Engine::addLineBreakpoint(const std::string &file, uint32_t line,
                          const std::string &cond_text)
{
    auto ids = resolveLineStmts(coverItems_, file, line);
    if (ids.empty())
        fatal("no executable statement at %s:%u", file.c_str(),
              unsigned(line));
    hdl::ExprPtr cond;
    if (!cond_text.empty())
        cond = parseExpr(cond_text);
    cover_->enableStmtCounts();
    std::string spec = file + ":" + std::to_string(line);
    if (!cond_text.empty())
        spec += " if " + cond_text;
    int id = bps_.addLine(spec, std::move(ids), std::move(cond), *cover_);
    HWDBG_STAT_INC("debug.breakpoints.line", 1);
    return id;
}

std::vector<Engine::BacktraceEntry>
Engine::backtrace(const std::string &reg, int k)
{
    sim_.design().requireSignal(reg);
    if (!depGraph_)
        depGraph_ =
            std::make_unique<analysis::DepGraph>(sim_.design().module());
    auto slice = depGraph_->backwardSlice(reg, k, true, true);
    std::vector<BacktraceEntry> entries;
    for (const auto &[name, dist] : slice) {
        BacktraceEntry e;
        e.reg = name;
        e.distance = dist;
        e.value = sim_.peek(name);
        entries.push_back(std::move(e));
    }
    std::stable_sort(entries.begin(), entries.end(),
                     [](const BacktraceEntry &a, const BacktraceEntry &b) {
                         return a.distance < b.distance;
                     });
    return entries;
}

std::vector<DebugEvent>
Engine::allEvents() const
{
    return eventsFromLog(0);
}

std::vector<sim::EvalContext::LogLine>
Engine::recentLog(size_t n) const
{
    const auto &log = sim_.log();
    size_t from = log.size() > n ? log.size() - n : 0;
    return {log.begin() + from, log.end()};
}

const char *
stopReasonName(Engine::StopReason reason)
{
    switch (reason) {
      case Engine::StopReason::None:
        return "ok";
      case Engine::StopReason::Breakpoint:
        return "breakpoint";
      case Engine::StopReason::UntilTrue:
        return "until";
      case Engine::StopReason::EndOfTape:
        return "end-of-tape";
      case Engine::StopReason::Finished:
        return "finished";
    }
    return "?";
}

} // namespace hwdbg::debug
