file(REMOVE_RECURSE
  "CMakeFiles/losscheck_framefifo.dir/losscheck_framefifo.cpp.o"
  "CMakeFiles/losscheck_framefifo.dir/losscheck_framefifo.cpp.o.d"
  "losscheck_framefifo"
  "losscheck_framefifo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/losscheck_framefifo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
