# Empty dependencies file for losscheck_framefifo.
# This may be replaced when dependencies are built.
