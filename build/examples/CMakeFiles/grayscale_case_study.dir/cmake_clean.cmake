file(REMOVE_RECURSE
  "CMakeFiles/grayscale_case_study.dir/grayscale_case_study.cpp.o"
  "CMakeFiles/grayscale_case_study.dir/grayscale_case_study.cpp.o.d"
  "grayscale_case_study"
  "grayscale_case_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grayscale_case_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
