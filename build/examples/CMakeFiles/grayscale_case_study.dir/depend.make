# Empty dependencies file for grayscale_case_study.
# This may be replaced when dependencies are built.
