# Empty dependencies file for deadlock_sdspi.
# This may be replaced when dependencies are built.
