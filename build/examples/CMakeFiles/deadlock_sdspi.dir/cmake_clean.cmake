file(REMOVE_RECURSE
  "CMakeFiles/deadlock_sdspi.dir/deadlock_sdspi.cpp.o"
  "CMakeFiles/deadlock_sdspi.dir/deadlock_sdspi.cpp.o.d"
  "deadlock_sdspi"
  "deadlock_sdspi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deadlock_sdspi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
