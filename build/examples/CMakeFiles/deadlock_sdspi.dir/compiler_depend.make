# Empty compiler generated dependencies file for deadlock_sdspi.
# This may be replaced when dependencies are built.
