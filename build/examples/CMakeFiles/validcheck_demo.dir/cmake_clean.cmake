file(REMOVE_RECURSE
  "CMakeFiles/validcheck_demo.dir/validcheck_demo.cpp.o"
  "CMakeFiles/validcheck_demo.dir/validcheck_demo.cpp.o.d"
  "validcheck_demo"
  "validcheck_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/validcheck_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
