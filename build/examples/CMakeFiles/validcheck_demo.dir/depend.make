# Empty dependencies file for validcheck_demo.
# This may be replaced when dependencies are built.
