# Empty compiler generated dependencies file for test_printer.
# This may be replaced when dependencies are built.
