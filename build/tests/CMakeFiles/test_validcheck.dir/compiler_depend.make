# Empty compiler generated dependencies file for test_validcheck.
# This may be replaced when dependencies are built.
