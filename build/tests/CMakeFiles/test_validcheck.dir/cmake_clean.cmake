file(REMOVE_RECURSE
  "CMakeFiles/test_validcheck.dir/core/test_validcheck.cc.o"
  "CMakeFiles/test_validcheck.dir/core/test_validcheck.cc.o.d"
  "test_validcheck"
  "test_validcheck.pdb"
  "test_validcheck[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_validcheck.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
