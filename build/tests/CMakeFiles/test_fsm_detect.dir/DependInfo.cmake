
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/analysis/test_fsm_detect.cc" "tests/CMakeFiles/test_fsm_detect.dir/analysis/test_fsm_detect.cc.o" "gcc" "tests/CMakeFiles/test_fsm_detect.dir/analysis/test_fsm_detect.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/hwdbg_bugbase.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hwdbg_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hwdbg_synth.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hwdbg_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hwdbg_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hwdbg_hdl.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hwdbg_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
