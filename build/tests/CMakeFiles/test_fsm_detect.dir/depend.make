# Empty dependencies file for test_fsm_detect.
# This may be replaced when dependencies are built.
