file(REMOVE_RECURSE
  "CMakeFiles/test_fsm_detect.dir/analysis/test_fsm_detect.cc.o"
  "CMakeFiles/test_fsm_detect.dir/analysis/test_fsm_detect.cc.o.d"
  "test_fsm_detect"
  "test_fsm_detect.pdb"
  "test_fsm_detect[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fsm_detect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
