# Empty compiler generated dependencies file for test_losscheck.
# This may be replaced when dependencies are built.
