file(REMOVE_RECURSE
  "CMakeFiles/test_losscheck.dir/core/test_losscheck.cc.o"
  "CMakeFiles/test_losscheck.dir/core/test_losscheck.cc.o.d"
  "test_losscheck"
  "test_losscheck.pdb"
  "test_losscheck[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_losscheck.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
