file(REMOVE_RECURSE
  "CMakeFiles/test_signalcat.dir/core/test_signalcat.cc.o"
  "CMakeFiles/test_signalcat.dir/core/test_signalcat.cc.o.d"
  "test_signalcat"
  "test_signalcat.pdb"
  "test_signalcat[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_signalcat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
