# Empty compiler generated dependencies file for test_signalcat.
# This may be replaced when dependencies are built.
