file(REMOVE_RECURSE
  "CMakeFiles/test_elaborate.dir/elab/test_elaborate.cc.o"
  "CMakeFiles/test_elaborate.dir/elab/test_elaborate.cc.o.d"
  "test_elaborate"
  "test_elaborate.pdb"
  "test_elaborate[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_elaborate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
