# Empty dependencies file for test_elaborate.
# This may be replaced when dependencies are built.
