file(REMOVE_RECURSE
  "CMakeFiles/test_losscheck_property.dir/core/test_losscheck_property.cc.o"
  "CMakeFiles/test_losscheck_property.dir/core/test_losscheck_property.cc.o.d"
  "test_losscheck_property"
  "test_losscheck_property.pdb"
  "test_losscheck_property[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_losscheck_property.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
