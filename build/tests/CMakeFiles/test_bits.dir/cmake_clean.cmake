file(REMOVE_RECURSE
  "CMakeFiles/test_bits.dir/common/test_bits.cc.o"
  "CMakeFiles/test_bits.dir/common/test_bits.cc.o.d"
  "test_bits"
  "test_bits.pdb"
  "test_bits[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bits.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
