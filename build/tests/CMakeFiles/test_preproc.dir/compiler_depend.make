# Empty compiler generated dependencies file for test_preproc.
# This may be replaced when dependencies are built.
