file(REMOVE_RECURSE
  "CMakeFiles/test_preproc.dir/hdl/test_preproc.cc.o"
  "CMakeFiles/test_preproc.dir/hdl/test_preproc.cc.o.d"
  "test_preproc"
  "test_preproc.pdb"
  "test_preproc[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_preproc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
