file(REMOVE_RECURSE
  "CMakeFiles/test_tools_on_bugs.dir/bugbase/test_tools_on_bugs.cc.o"
  "CMakeFiles/test_tools_on_bugs.dir/bugbase/test_tools_on_bugs.cc.o.d"
  "test_tools_on_bugs"
  "test_tools_on_bugs.pdb"
  "test_tools_on_bugs[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tools_on_bugs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
