# Empty compiler generated dependencies file for test_tools_on_bugs.
# This may be replaced when dependencies are built.
