# Empty dependencies file for test_guards.
# This may be replaced when dependencies are built.
