file(REMOVE_RECURSE
  "CMakeFiles/test_guards.dir/analysis/test_guards.cc.o"
  "CMakeFiles/test_guards.dir/analysis/test_guards.cc.o.d"
  "test_guards"
  "test_guards.pdb"
  "test_guards[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_guards.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
