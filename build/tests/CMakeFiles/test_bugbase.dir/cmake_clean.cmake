file(REMOVE_RECURSE
  "CMakeFiles/test_bugbase.dir/bugbase/test_bugbase.cc.o"
  "CMakeFiles/test_bugbase.dir/bugbase/test_bugbase.cc.o.d"
  "test_bugbase"
  "test_bugbase.pdb"
  "test_bugbase[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bugbase.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
