# Empty compiler generated dependencies file for test_bugbase.
# This may be replaced when dependencies are built.
