# Empty compiler generated dependencies file for test_primitives.
# This may be replaced when dependencies are built.
