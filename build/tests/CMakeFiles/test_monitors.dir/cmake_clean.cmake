file(REMOVE_RECURSE
  "CMakeFiles/test_monitors.dir/core/test_monitors.cc.o"
  "CMakeFiles/test_monitors.dir/core/test_monitors.cc.o.d"
  "test_monitors"
  "test_monitors.pdb"
  "test_monitors[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_monitors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
