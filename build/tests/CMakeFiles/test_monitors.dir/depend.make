# Empty dependencies file for test_monitors.
# This may be replaced when dependencies are built.
