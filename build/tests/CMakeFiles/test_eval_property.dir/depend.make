# Empty dependencies file for test_eval_property.
# This may be replaced when dependencies are built.
