file(REMOVE_RECURSE
  "CMakeFiles/test_eval_property.dir/sim/test_eval_property.cc.o"
  "CMakeFiles/test_eval_property.dir/sim/test_eval_property.cc.o.d"
  "test_eval_property"
  "test_eval_property.pdb"
  "test_eval_property[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_eval_property.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
