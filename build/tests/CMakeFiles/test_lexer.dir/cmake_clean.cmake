file(REMOVE_RECURSE
  "CMakeFiles/test_lexer.dir/hdl/test_lexer.cc.o"
  "CMakeFiles/test_lexer.dir/hdl/test_lexer.cc.o.d"
  "test_lexer"
  "test_lexer.pdb"
  "test_lexer[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lexer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
