file(REMOVE_RECURSE
  "CMakeFiles/test_fsm_zoo.dir/bugbase/test_fsm_zoo.cc.o"
  "CMakeFiles/test_fsm_zoo.dir/bugbase/test_fsm_zoo.cc.o.d"
  "test_fsm_zoo"
  "test_fsm_zoo.pdb"
  "test_fsm_zoo[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fsm_zoo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
