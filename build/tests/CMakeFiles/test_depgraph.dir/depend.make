# Empty dependencies file for test_depgraph.
# This may be replaced when dependencies are built.
