file(REMOVE_RECURSE
  "CMakeFiles/test_depgraph.dir/analysis/test_depgraph.cc.o"
  "CMakeFiles/test_depgraph.dir/analysis/test_depgraph.cc.o.d"
  "test_depgraph"
  "test_depgraph.pdb"
  "test_depgraph[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_depgraph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
