
module frame_fifo (
    input wire clk,
    input wire rst,
    input wire s_valid,
    input wire [7:0] s_data,
    input wire s_last,
    input wire s_bad,
    input wire m_ready,
    output reg m_valid,
    output reg [7:0] m_data,
    output reg m_last,
    output reg [7:0] m_len,
    output reg len_valid
);
reg [7:0] memd [0:15];
reg meml [0:15];
reg [4:0] wr_ptr;
reg [4:0] wr_cur;
reg [4:0] rd_ptr;
reg drop;
reg [7:0] len_cnt;
wire [4:0] occupancy = wr_cur - rd_ptr;
wire space_ok = occupancy < 5'd16;

always @(posedge clk) begin
    len_valid <= 1'b0;
    if (rst) begin
        wr_ptr <= 5'd0;
        wr_cur <= 5'd0;
        rd_ptr <= 5'd0;
        drop <= 1'b0;
        len_cnt <= 8'd0;
        m_valid <= 1'b0;
    end else begin
        if (s_valid) begin

            memd[wr_cur[3:0]] <= s_data;
            meml[wr_cur[3:0]] <= s_last;
            wr_cur <= wr_cur + 5'd1;













            len_cnt <= len_cnt + 8'd1;
            if (s_last) begin

                if (s_bad) begin



                    wr_cur <= wr_ptr;
                end else begin
                    wr_ptr <= wr_cur + 5'd1;
                    m_len <= len_cnt + 8'd1;
                    len_valid <= 1'b1;
                end


                drop <= 1'b0;



                len_cnt <= 8'd0;

            end
        end
        if (!m_valid || m_ready) begin
            if (rd_ptr != wr_ptr) begin
                m_valid <= 1'b1;
                m_data <= memd[rd_ptr[3:0]];
                m_last <= meml[rd_ptr[3:0]];
                rd_ptr <= rd_ptr + 5'd1;
            end else begin
                m_valid <= 1'b0;
            end
        end
    end
end
endmodule
