file(REMOVE_RECURSE
  "libhwdbg_common.a"
)
