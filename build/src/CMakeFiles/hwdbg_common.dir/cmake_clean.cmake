file(REMOVE_RECURSE
  "CMakeFiles/hwdbg_common.dir/common/bits.cc.o"
  "CMakeFiles/hwdbg_common.dir/common/bits.cc.o.d"
  "CMakeFiles/hwdbg_common.dir/common/logging.cc.o"
  "CMakeFiles/hwdbg_common.dir/common/logging.cc.o.d"
  "libhwdbg_common.a"
  "libhwdbg_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hwdbg_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
