# Empty compiler generated dependencies file for hwdbg_common.
# This may be replaced when dependencies are built.
