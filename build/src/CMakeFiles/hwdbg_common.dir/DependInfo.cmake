
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/common/bits.cc" "src/CMakeFiles/hwdbg_common.dir/common/bits.cc.o" "gcc" "src/CMakeFiles/hwdbg_common.dir/common/bits.cc.o.d"
  "/root/repo/src/common/logging.cc" "src/CMakeFiles/hwdbg_common.dir/common/logging.cc.o" "gcc" "src/CMakeFiles/hwdbg_common.dir/common/logging.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
