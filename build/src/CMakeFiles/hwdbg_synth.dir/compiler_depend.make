# Empty compiler generated dependencies file for hwdbg_synth.
# This may be replaced when dependencies are built.
