file(REMOVE_RECURSE
  "libhwdbg_synth.a"
)
