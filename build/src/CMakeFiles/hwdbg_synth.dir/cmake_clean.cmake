file(REMOVE_RECURSE
  "CMakeFiles/hwdbg_synth.dir/synth/platform.cc.o"
  "CMakeFiles/hwdbg_synth.dir/synth/platform.cc.o.d"
  "CMakeFiles/hwdbg_synth.dir/synth/resources.cc.o"
  "CMakeFiles/hwdbg_synth.dir/synth/resources.cc.o.d"
  "CMakeFiles/hwdbg_synth.dir/synth/timing.cc.o"
  "CMakeFiles/hwdbg_synth.dir/synth/timing.cc.o.d"
  "libhwdbg_synth.a"
  "libhwdbg_synth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hwdbg_synth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
