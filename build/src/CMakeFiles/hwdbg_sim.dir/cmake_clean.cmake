file(REMOVE_RECURSE
  "CMakeFiles/hwdbg_sim.dir/sim/design.cc.o"
  "CMakeFiles/hwdbg_sim.dir/sim/design.cc.o.d"
  "CMakeFiles/hwdbg_sim.dir/sim/eval.cc.o"
  "CMakeFiles/hwdbg_sim.dir/sim/eval.cc.o.d"
  "CMakeFiles/hwdbg_sim.dir/sim/primitives.cc.o"
  "CMakeFiles/hwdbg_sim.dir/sim/primitives.cc.o.d"
  "CMakeFiles/hwdbg_sim.dir/sim/simulator.cc.o"
  "CMakeFiles/hwdbg_sim.dir/sim/simulator.cc.o.d"
  "CMakeFiles/hwdbg_sim.dir/sim/vcd.cc.o"
  "CMakeFiles/hwdbg_sim.dir/sim/vcd.cc.o.d"
  "libhwdbg_sim.a"
  "libhwdbg_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hwdbg_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
