file(REMOVE_RECURSE
  "libhwdbg_sim.a"
)
