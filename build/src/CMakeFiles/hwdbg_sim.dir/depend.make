# Empty dependencies file for hwdbg_sim.
# This may be replaced when dependencies are built.
