
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/design.cc" "src/CMakeFiles/hwdbg_sim.dir/sim/design.cc.o" "gcc" "src/CMakeFiles/hwdbg_sim.dir/sim/design.cc.o.d"
  "/root/repo/src/sim/eval.cc" "src/CMakeFiles/hwdbg_sim.dir/sim/eval.cc.o" "gcc" "src/CMakeFiles/hwdbg_sim.dir/sim/eval.cc.o.d"
  "/root/repo/src/sim/primitives.cc" "src/CMakeFiles/hwdbg_sim.dir/sim/primitives.cc.o" "gcc" "src/CMakeFiles/hwdbg_sim.dir/sim/primitives.cc.o.d"
  "/root/repo/src/sim/simulator.cc" "src/CMakeFiles/hwdbg_sim.dir/sim/simulator.cc.o" "gcc" "src/CMakeFiles/hwdbg_sim.dir/sim/simulator.cc.o.d"
  "/root/repo/src/sim/vcd.cc" "src/CMakeFiles/hwdbg_sim.dir/sim/vcd.cc.o" "gcc" "src/CMakeFiles/hwdbg_sim.dir/sim/vcd.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/hwdbg_hdl.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hwdbg_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
