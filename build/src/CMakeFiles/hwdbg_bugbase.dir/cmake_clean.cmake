file(REMOVE_RECURSE
  "CMakeFiles/hwdbg_bugbase.dir/bugbase/designs.cc.o"
  "CMakeFiles/hwdbg_bugbase.dir/bugbase/designs.cc.o.d"
  "CMakeFiles/hwdbg_bugbase.dir/bugbase/fsm_zoo.cc.o"
  "CMakeFiles/hwdbg_bugbase.dir/bugbase/fsm_zoo.cc.o.d"
  "CMakeFiles/hwdbg_bugbase.dir/bugbase/study.cc.o"
  "CMakeFiles/hwdbg_bugbase.dir/bugbase/study.cc.o.d"
  "CMakeFiles/hwdbg_bugbase.dir/bugbase/testbed.cc.o"
  "CMakeFiles/hwdbg_bugbase.dir/bugbase/testbed.cc.o.d"
  "CMakeFiles/hwdbg_bugbase.dir/bugbase/workloads.cc.o"
  "CMakeFiles/hwdbg_bugbase.dir/bugbase/workloads.cc.o.d"
  "libhwdbg_bugbase.a"
  "libhwdbg_bugbase.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hwdbg_bugbase.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
