# Empty dependencies file for hwdbg_bugbase.
# This may be replaced when dependencies are built.
