file(REMOVE_RECURSE
  "libhwdbg_bugbase.a"
)
