# Empty dependencies file for hwdbg.
# This may be replaced when dependencies are built.
