file(REMOVE_RECURSE
  "CMakeFiles/hwdbg.dir/cli/main.cc.o"
  "CMakeFiles/hwdbg.dir/cli/main.cc.o.d"
  "hwdbg"
  "hwdbg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hwdbg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
