file(REMOVE_RECURSE
  "CMakeFiles/hwdbg_core.dir/core/dep_monitor.cc.o"
  "CMakeFiles/hwdbg_core.dir/core/dep_monitor.cc.o.d"
  "CMakeFiles/hwdbg_core.dir/core/fsm_monitor.cc.o"
  "CMakeFiles/hwdbg_core.dir/core/fsm_monitor.cc.o.d"
  "CMakeFiles/hwdbg_core.dir/core/instrument.cc.o"
  "CMakeFiles/hwdbg_core.dir/core/instrument.cc.o.d"
  "CMakeFiles/hwdbg_core.dir/core/losscheck.cc.o"
  "CMakeFiles/hwdbg_core.dir/core/losscheck.cc.o.d"
  "CMakeFiles/hwdbg_core.dir/core/signalcat.cc.o"
  "CMakeFiles/hwdbg_core.dir/core/signalcat.cc.o.d"
  "CMakeFiles/hwdbg_core.dir/core/stats_monitor.cc.o"
  "CMakeFiles/hwdbg_core.dir/core/stats_monitor.cc.o.d"
  "CMakeFiles/hwdbg_core.dir/core/validcheck.cc.o"
  "CMakeFiles/hwdbg_core.dir/core/validcheck.cc.o.d"
  "libhwdbg_core.a"
  "libhwdbg_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hwdbg_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
