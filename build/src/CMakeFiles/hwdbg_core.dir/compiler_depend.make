# Empty compiler generated dependencies file for hwdbg_core.
# This may be replaced when dependencies are built.
