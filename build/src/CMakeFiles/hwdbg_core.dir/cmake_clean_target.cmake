file(REMOVE_RECURSE
  "libhwdbg_core.a"
)
