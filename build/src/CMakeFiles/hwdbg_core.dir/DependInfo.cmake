
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/dep_monitor.cc" "src/CMakeFiles/hwdbg_core.dir/core/dep_monitor.cc.o" "gcc" "src/CMakeFiles/hwdbg_core.dir/core/dep_monitor.cc.o.d"
  "/root/repo/src/core/fsm_monitor.cc" "src/CMakeFiles/hwdbg_core.dir/core/fsm_monitor.cc.o" "gcc" "src/CMakeFiles/hwdbg_core.dir/core/fsm_monitor.cc.o.d"
  "/root/repo/src/core/instrument.cc" "src/CMakeFiles/hwdbg_core.dir/core/instrument.cc.o" "gcc" "src/CMakeFiles/hwdbg_core.dir/core/instrument.cc.o.d"
  "/root/repo/src/core/losscheck.cc" "src/CMakeFiles/hwdbg_core.dir/core/losscheck.cc.o" "gcc" "src/CMakeFiles/hwdbg_core.dir/core/losscheck.cc.o.d"
  "/root/repo/src/core/signalcat.cc" "src/CMakeFiles/hwdbg_core.dir/core/signalcat.cc.o" "gcc" "src/CMakeFiles/hwdbg_core.dir/core/signalcat.cc.o.d"
  "/root/repo/src/core/stats_monitor.cc" "src/CMakeFiles/hwdbg_core.dir/core/stats_monitor.cc.o" "gcc" "src/CMakeFiles/hwdbg_core.dir/core/stats_monitor.cc.o.d"
  "/root/repo/src/core/validcheck.cc" "src/CMakeFiles/hwdbg_core.dir/core/validcheck.cc.o" "gcc" "src/CMakeFiles/hwdbg_core.dir/core/validcheck.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/hwdbg_synth.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hwdbg_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hwdbg_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hwdbg_hdl.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hwdbg_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
