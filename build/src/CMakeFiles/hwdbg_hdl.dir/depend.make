# Empty dependencies file for hwdbg_hdl.
# This may be replaced when dependencies are built.
