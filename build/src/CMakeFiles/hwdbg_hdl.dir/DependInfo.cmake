
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/elab/elaborate.cc" "src/CMakeFiles/hwdbg_hdl.dir/elab/elaborate.cc.o" "gcc" "src/CMakeFiles/hwdbg_hdl.dir/elab/elaborate.cc.o.d"
  "/root/repo/src/elab/ip_models.cc" "src/CMakeFiles/hwdbg_hdl.dir/elab/ip_models.cc.o" "gcc" "src/CMakeFiles/hwdbg_hdl.dir/elab/ip_models.cc.o.d"
  "/root/repo/src/hdl/ast.cc" "src/CMakeFiles/hwdbg_hdl.dir/hdl/ast.cc.o" "gcc" "src/CMakeFiles/hwdbg_hdl.dir/hdl/ast.cc.o.d"
  "/root/repo/src/hdl/lexer.cc" "src/CMakeFiles/hwdbg_hdl.dir/hdl/lexer.cc.o" "gcc" "src/CMakeFiles/hwdbg_hdl.dir/hdl/lexer.cc.o.d"
  "/root/repo/src/hdl/parser.cc" "src/CMakeFiles/hwdbg_hdl.dir/hdl/parser.cc.o" "gcc" "src/CMakeFiles/hwdbg_hdl.dir/hdl/parser.cc.o.d"
  "/root/repo/src/hdl/preproc.cc" "src/CMakeFiles/hwdbg_hdl.dir/hdl/preproc.cc.o" "gcc" "src/CMakeFiles/hwdbg_hdl.dir/hdl/preproc.cc.o.d"
  "/root/repo/src/hdl/printer.cc" "src/CMakeFiles/hwdbg_hdl.dir/hdl/printer.cc.o" "gcc" "src/CMakeFiles/hwdbg_hdl.dir/hdl/printer.cc.o.d"
  "/root/repo/src/hdl/token.cc" "src/CMakeFiles/hwdbg_hdl.dir/hdl/token.cc.o" "gcc" "src/CMakeFiles/hwdbg_hdl.dir/hdl/token.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/hwdbg_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
