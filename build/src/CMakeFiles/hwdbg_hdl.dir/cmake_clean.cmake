file(REMOVE_RECURSE
  "CMakeFiles/hwdbg_hdl.dir/elab/elaborate.cc.o"
  "CMakeFiles/hwdbg_hdl.dir/elab/elaborate.cc.o.d"
  "CMakeFiles/hwdbg_hdl.dir/elab/ip_models.cc.o"
  "CMakeFiles/hwdbg_hdl.dir/elab/ip_models.cc.o.d"
  "CMakeFiles/hwdbg_hdl.dir/hdl/ast.cc.o"
  "CMakeFiles/hwdbg_hdl.dir/hdl/ast.cc.o.d"
  "CMakeFiles/hwdbg_hdl.dir/hdl/lexer.cc.o"
  "CMakeFiles/hwdbg_hdl.dir/hdl/lexer.cc.o.d"
  "CMakeFiles/hwdbg_hdl.dir/hdl/parser.cc.o"
  "CMakeFiles/hwdbg_hdl.dir/hdl/parser.cc.o.d"
  "CMakeFiles/hwdbg_hdl.dir/hdl/preproc.cc.o"
  "CMakeFiles/hwdbg_hdl.dir/hdl/preproc.cc.o.d"
  "CMakeFiles/hwdbg_hdl.dir/hdl/printer.cc.o"
  "CMakeFiles/hwdbg_hdl.dir/hdl/printer.cc.o.d"
  "CMakeFiles/hwdbg_hdl.dir/hdl/token.cc.o"
  "CMakeFiles/hwdbg_hdl.dir/hdl/token.cc.o.d"
  "libhwdbg_hdl.a"
  "libhwdbg_hdl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hwdbg_hdl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
