file(REMOVE_RECURSE
  "libhwdbg_hdl.a"
)
