# Empty dependencies file for hwdbg_analysis.
# This may be replaced when dependencies are built.
