file(REMOVE_RECURSE
  "CMakeFiles/hwdbg_analysis.dir/analysis/depgraph.cc.o"
  "CMakeFiles/hwdbg_analysis.dir/analysis/depgraph.cc.o.d"
  "CMakeFiles/hwdbg_analysis.dir/analysis/exprutil.cc.o"
  "CMakeFiles/hwdbg_analysis.dir/analysis/exprutil.cc.o.d"
  "CMakeFiles/hwdbg_analysis.dir/analysis/fsm_detect.cc.o"
  "CMakeFiles/hwdbg_analysis.dir/analysis/fsm_detect.cc.o.d"
  "CMakeFiles/hwdbg_analysis.dir/analysis/guards.cc.o"
  "CMakeFiles/hwdbg_analysis.dir/analysis/guards.cc.o.d"
  "CMakeFiles/hwdbg_analysis.dir/analysis/relations.cc.o"
  "CMakeFiles/hwdbg_analysis.dir/analysis/relations.cc.o.d"
  "libhwdbg_analysis.a"
  "libhwdbg_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hwdbg_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
