
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/depgraph.cc" "src/CMakeFiles/hwdbg_analysis.dir/analysis/depgraph.cc.o" "gcc" "src/CMakeFiles/hwdbg_analysis.dir/analysis/depgraph.cc.o.d"
  "/root/repo/src/analysis/exprutil.cc" "src/CMakeFiles/hwdbg_analysis.dir/analysis/exprutil.cc.o" "gcc" "src/CMakeFiles/hwdbg_analysis.dir/analysis/exprutil.cc.o.d"
  "/root/repo/src/analysis/fsm_detect.cc" "src/CMakeFiles/hwdbg_analysis.dir/analysis/fsm_detect.cc.o" "gcc" "src/CMakeFiles/hwdbg_analysis.dir/analysis/fsm_detect.cc.o.d"
  "/root/repo/src/analysis/guards.cc" "src/CMakeFiles/hwdbg_analysis.dir/analysis/guards.cc.o" "gcc" "src/CMakeFiles/hwdbg_analysis.dir/analysis/guards.cc.o.d"
  "/root/repo/src/analysis/relations.cc" "src/CMakeFiles/hwdbg_analysis.dir/analysis/relations.cc.o" "gcc" "src/CMakeFiles/hwdbg_analysis.dir/analysis/relations.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/hwdbg_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hwdbg_hdl.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hwdbg_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
