file(REMOVE_RECURSE
  "libhwdbg_analysis.a"
)
