# Empty dependencies file for generated_loc.
# This may be replaced when dependencies are built.
