file(REMOVE_RECURSE
  "CMakeFiles/generated_loc.dir/generated_loc.cc.o"
  "CMakeFiles/generated_loc.dir/generated_loc.cc.o.d"
  "generated_loc"
  "generated_loc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/generated_loc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
