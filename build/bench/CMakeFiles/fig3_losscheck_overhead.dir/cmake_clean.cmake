file(REMOVE_RECURSE
  "CMakeFiles/fig3_losscheck_overhead.dir/fig3_losscheck_overhead.cc.o"
  "CMakeFiles/fig3_losscheck_overhead.dir/fig3_losscheck_overhead.cc.o.d"
  "fig3_losscheck_overhead"
  "fig3_losscheck_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_losscheck_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
