# Empty compiler generated dependencies file for fig3_losscheck_overhead.
# This may be replaced when dependencies are built.
