# Empty compiler generated dependencies file for timing_closure.
# This may be replaced when dependencies are built.
