file(REMOVE_RECURSE
  "CMakeFiles/fig2_monitor_overhead.dir/fig2_monitor_overhead.cc.o"
  "CMakeFiles/fig2_monitor_overhead.dir/fig2_monitor_overhead.cc.o.d"
  "fig2_monitor_overhead"
  "fig2_monitor_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_monitor_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
