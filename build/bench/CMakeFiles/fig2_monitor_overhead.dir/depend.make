# Empty dependencies file for fig2_monitor_overhead.
# This may be replaced when dependencies are built.
