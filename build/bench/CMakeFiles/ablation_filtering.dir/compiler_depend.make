# Empty compiler generated dependencies file for ablation_filtering.
# This may be replaced when dependencies are built.
