file(REMOVE_RECURSE
  "CMakeFiles/ablation_filtering.dir/ablation_filtering.cc.o"
  "CMakeFiles/ablation_filtering.dir/ablation_filtering.cc.o.d"
  "ablation_filtering"
  "ablation_filtering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_filtering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
