# Empty compiler generated dependencies file for fsm_accuracy.
# This may be replaced when dependencies are built.
