file(REMOVE_RECURSE
  "CMakeFiles/fsm_accuracy.dir/fsm_accuracy.cc.o"
  "CMakeFiles/fsm_accuracy.dir/fsm_accuracy.cc.o.d"
  "fsm_accuracy"
  "fsm_accuracy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fsm_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
