# Empty dependencies file for table1_bug_study.
# This may be replaced when dependencies are built.
