file(REMOVE_RECURSE
  "CMakeFiles/table1_bug_study.dir/table1_bug_study.cc.o"
  "CMakeFiles/table1_bug_study.dir/table1_bug_study.cc.o.d"
  "table1_bug_study"
  "table1_bug_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_bug_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
