file(REMOVE_RECURSE
  "CMakeFiles/losscheck_effectiveness.dir/losscheck_effectiveness.cc.o"
  "CMakeFiles/losscheck_effectiveness.dir/losscheck_effectiveness.cc.o.d"
  "losscheck_effectiveness"
  "losscheck_effectiveness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/losscheck_effectiveness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
