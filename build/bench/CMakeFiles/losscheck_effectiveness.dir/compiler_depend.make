# Empty compiler generated dependencies file for losscheck_effectiveness.
# This may be replaced when dependencies are built.
