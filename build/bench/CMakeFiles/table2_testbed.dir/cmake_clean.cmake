file(REMOVE_RECURSE
  "CMakeFiles/table2_testbed.dir/table2_testbed.cc.o"
  "CMakeFiles/table2_testbed.dir/table2_testbed.cc.o.d"
  "table2_testbed"
  "table2_testbed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_testbed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
