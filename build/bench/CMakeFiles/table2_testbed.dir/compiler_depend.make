# Empty compiler generated dependencies file for table2_testbed.
# This may be replaced when dependencies are built.
