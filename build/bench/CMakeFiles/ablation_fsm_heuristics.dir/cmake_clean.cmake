file(REMOVE_RECURSE
  "CMakeFiles/ablation_fsm_heuristics.dir/ablation_fsm_heuristics.cc.o"
  "CMakeFiles/ablation_fsm_heuristics.dir/ablation_fsm_heuristics.cc.o.d"
  "ablation_fsm_heuristics"
  "ablation_fsm_heuristics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_fsm_heuristics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
