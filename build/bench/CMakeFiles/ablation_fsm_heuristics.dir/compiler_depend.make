# Empty compiler generated dependencies file for ablation_fsm_heuristics.
# This may be replaced when dependencies are built.
